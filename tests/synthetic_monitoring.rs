//! Workspace-level integration tests: ta → distrib → monitor pipelines over
//! the UPPAAL-style benchmark models.

use rvmtl::monitor::{naive_verdicts_bounded, Monitor, MonitorConfig};
use rvmtl::ta::{generate, specs, Model, TraceConfig};

fn small_config(processes: usize, seed: u64) -> TraceConfig {
    TraceConfig {
        processes,
        duration_ms: 100,
        event_rate: 40.0,
        epsilon_ms: 2,
        seed,
    }
}

#[test]
fn fischer_mutual_exclusion_holds_for_every_interleaving() {
    for seed in [1, 2, 3] {
        let comp = generate(Model::Fischer, &small_config(3, seed));
        let report = Monitor::new(MonitorConfig::with_segments(8)).run(&comp, &specs::phi3(3));
        assert!(
            report.verdicts.definitely_satisfied(),
            "seed {seed}: {}",
            report.verdicts
        );
    }
}

#[test]
fn train_gate_never_hosts_two_trains_on_the_bridge() {
    let comp = generate(Model::TrainGate, &small_config(3, 11));
    // Pairwise "never both crossing" — the bridge analogue of phi3.
    let phi = rvmtl::mtl::parse(
        "G (!(Train[0].Cross & Train[1].Cross) & !(Train[0].Cross & Train[2].Cross) & !(Train[1].Cross & Train[2].Cross))",
    )
    .unwrap();
    let report = Monitor::new(MonitorConfig::with_segments(8)).run(&comp, &phi);
    assert!(
        report.verdicts.definitely_satisfied(),
        "{}",
        report.verdicts
    );
}

#[test]
fn segmented_monitor_agrees_with_bruteforce_on_small_traces() {
    let cfg = TraceConfig {
        processes: 2,
        duration_ms: 30,
        event_rate: 30.0,
        epsilon_ms: 2,
        seed: 5,
    };
    let comp = generate(Model::Fischer, &cfg);
    let phi = specs::phi4(2, 40);
    let symbolic = Monitor::with_defaults().run(&comp, &phi).verdicts;
    if let Ok(oracle) = naive_verdicts_bounded(&comp, &phi, 200_000) {
        assert_eq!(symbolic, oracle);
    }
}

#[test]
fn gossip_eventually_spreads_secrets_given_enough_time() {
    let cfg = TraceConfig {
        processes: 2,
        duration_ms: 300,
        event_rate: 40.0,
        epsilon_ms: 2,
        seed: 8,
    };
    let comp = generate(Model::Gossip, &cfg);
    let phi = specs::phi5(2, 300);
    let report = Monitor::new(MonitorConfig::with_segments(10)).run(&comp, &phi);
    assert!(
        report.verdicts.may_be_satisfied(),
        "secrets should spread within the horizon: {}",
        report.verdicts
    );
}

#[test]
fn parallel_and_sequential_monitoring_agree_on_synthetic_traces() {
    let comp = generate(Model::Fischer, &small_config(2, 21));
    let phi = specs::phi4(2, 60);
    let sequential = Monitor::new(MonitorConfig::with_segments(6)).run(&comp, &phi);
    let parallel = Monitor::new(MonitorConfig::with_segments(6).parallel(true)).run(&comp, &phi);
    assert_eq!(sequential.verdicts, parallel.verdicts);
}
