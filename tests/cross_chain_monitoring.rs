//! Workspace-level integration tests: chain → distrib → solver → monitor
//! pipelines over the cross-chain protocols.

use rvmtl::chain::{
    specs, StepChoice, ThreePartyScenario, ThreePartySwap, TwoPartyScenario, TwoPartySwap,
};
use rvmtl::monitor::{Monitor, MonitorConfig};

const DELTA: u64 = 50;
const EPSILON: u64 = 3;

#[test]
fn conforming_two_party_swap_satisfies_liveness_and_conformance() {
    let exec = TwoPartySwap::new(DELTA).execute(&TwoPartyScenario::conforming());
    let comp = exec.to_computation(EPSILON);
    for (name, phi) in [
        ("liveness", specs::two_party::liveness(DELTA)),
        ("alice_conform", specs::two_party::alice_conform(DELTA)),
        ("bob_conform", specs::two_party::bob_conform(DELTA)),
    ] {
        let verdicts = Monitor::with_defaults().run(&comp, &phi).verdicts;
        assert!(verdicts.definitely_satisfied(), "{name}: {verdicts}");
    }
    // Safety: both parties conform and end with non-negative payoffs.
    assert!(specs::safety_holds(true, exec.payoff("alice")));
    assert!(specs::safety_holds(true, exec.payoff("bob")));
}

#[test]
fn late_step_violates_liveness_but_not_safety() {
    // Bob escrows late (step 4), so liveness fails; Alice still conforms and
    // must not lose assets.
    let mut steps = [StepChoice::on_time(); 6];
    steps[3] = StepChoice::late();
    let exec = TwoPartySwap::new(DELTA).execute(&TwoPartyScenario { steps });
    let comp = exec.to_computation(EPSILON);
    let liveness = Monitor::with_defaults()
        .run(&comp, &specs::two_party::liveness(DELTA))
        .verdicts;
    assert!(
        liveness.may_be_violated(),
        "late escrow must break liveness: {liveness}"
    );
    assert!(
        specs::safety_holds(true, exec.payoff("alice")),
        "alice payoff {}",
        exec.payoff("alice")
    );
}

#[test]
fn abandoned_swap_keeps_conforming_alice_hedged() {
    // Bob disappears after Alice escrows: the hedged-swap premium compensates
    // her for the locked asset.
    let steps = [
        StepChoice::on_time(),
        StepChoice::on_time(),
        StepChoice::on_time(),
        StepChoice::skipped(),
        StepChoice::skipped(),
        StepChoice::skipped(),
    ];
    let exec = TwoPartySwap::new(DELTA).execute(&TwoPartyScenario { steps });
    let comp = exec.to_computation(EPSILON);
    let conform = Monitor::with_defaults()
        .run(&comp, &specs::two_party::alice_conform(DELTA))
        .verdicts;
    let escrow_refunded = exec.has_event("apr", "asset_escrowed", "alice")
        && exec.has_event("apr", "asset_refunded", "alice");
    assert!(escrow_refunded);
    assert!(specs::hedged_compensation_holds(
        conform.may_be_satisfied(),
        escrow_refunded,
        exec.payoff("alice"),
        1,
    ));
}

#[test]
fn segmentation_choices_agree_on_conforming_three_party_swap() {
    let exec = ThreePartySwap::new(DELTA).execute(&ThreePartyScenario::conforming());
    let comp = exec.to_computation(EPSILON);
    let phi = specs::three_party::liveness(DELTA);
    let unsegmented = Monitor::with_defaults().run(&comp, &phi).verdicts;
    let paper_style = Monitor::new(MonitorConfig::with_segments(2))
        .run(&comp, &phi)
        .verdicts;
    assert!(unsegmented.definitely_satisfied());
    assert!(paper_style.definitely_satisfied());
}

#[test]
fn scenario_generators_produce_the_papers_log_counts() {
    assert_eq!(TwoPartyScenario::enumerate().len(), 1024);
    assert_eq!(ThreePartyScenario::enumerate().len(), 4096);
    assert_eq!(rvmtl::chain::AuctionScenario::enumerate().len(), 3888);
}

#[test]
fn ambiguous_verdicts_appear_when_epsilon_approaches_delta() {
    // The Sec. VI-B-3 observation: with ε comparable to Δ the same log admits
    // both verdicts for the liveness deadline of a late step.
    let mut steps = [StepChoice::on_time(); 6];
    steps[0] = StepChoice::late();
    let scenario = TwoPartyScenario { steps };
    let small_delta = 4u64;
    let exec = TwoPartySwap::new(small_delta).execute(&scenario);
    let phi = specs::two_party::liveness(small_delta);

    let precise = Monitor::with_defaults()
        .run(&exec.to_computation(1), &phi)
        .verdicts;
    let sloppy = Monitor::with_defaults()
        .run(&exec.to_computation(small_delta), &phi)
        .verdicts;
    assert!(
        !precise.is_ambiguous(),
        "ε ≪ Δ should give one verdict: {precise}"
    );
    assert!(
        sloppy.is_ambiguous(),
        "ε ≈ Δ should make the verdict ambiguous: {sloppy}"
    );
}
