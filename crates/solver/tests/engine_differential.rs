//! Engine differential suite: the data-oriented work-stack explorer and the
//! retained reference recursion must be *observationally identical* — same
//! rewritten-formula sets, same verdicts, and bit-identical [`SolverStats`]
//! (including the batch counters, which both engines account at the same
//! program points) — on every input. The suites sweep the whole ε axis
//! (1..=8), the delayed-window regime where the shift-normal zone machinery
//! fires, and the shift-free class, over both the sequential [`Interner`]
//! and the concurrent [`ShardedInterner`] arenas.

use rvmtl_distrib::{ComputationBuilder, DistributedComputation};
use rvmtl_mtl::testgen::{gen_formula, GenConfig, PROPS};
use rvmtl_mtl::{parse, state, ArenaOps, Formula, Interner, ShardedInterner};
use rvmtl_prng::StdRng;
use rvmtl_solver::{ExploreEngine, SegmentSolver, SolverStats};
use std::collections::BTreeSet;

/// Runs `phi` through a fresh solver over `arena` under the given engine.
/// Returns the full stats, the rewritten-formula ids (order-preserving, so
/// same-arena-type comparisons also pin emission order), and the verdict set
/// (comparable across arena representations).
fn solve(
    arena: &mut impl ArenaOps,
    comp: &DistributedComputation,
    phi: &Formula,
    engine: ExploreEngine,
    limit: Option<usize>,
) -> (SolverStats, Vec<rvmtl_mtl::FormulaId>, BTreeSet<bool>) {
    let anchor = comp.max_local_time() + comp.epsilon();
    let psi = arena.intern(phi);
    let mut solver = SegmentSolver::new(comp, anchor, arena).with_engine(engine);
    if let Some(l) = limit {
        solver = solver.with_limit(l);
    }
    let result = solver.progress(psi);
    let verdicts = result
        .formulas
        .iter()
        .map(|&id| arena.eval_empty(id))
        .collect();
    (
        result.stats,
        result.formulas.iter().copied().collect(),
        verdicts,
    )
}

/// Asserts both engines agree on a plain sequential arena (fresh arena per
/// engine, so the memo economies are compared cold-for-cold) and returns the
/// work-stack stats for suite-level accumulation.
fn assert_engines_agree(
    comp: &DistributedComputation,
    phi: &Formula,
    limit: Option<usize>,
    context: &str,
) -> SolverStats {
    let mut reference_arena = Interner::new();
    let reference = solve(
        &mut reference_arena,
        comp,
        phi,
        ExploreEngine::Reference,
        limit,
    );
    let mut stack_arena = Interner::new();
    let stack = solve(&mut stack_arena, comp, phi, ExploreEngine::WorkStack, limit);
    assert_eq!(
        reference.0, stack.0,
        "{context}: SolverStats must be bit-identical across engines"
    );
    assert_eq!(
        reference.1, stack.1,
        "{context}: rewritten-formula sets must be identical across engines"
    );
    assert_eq!(reference.2, stack.2, "{context}: verdicts must agree");
    stack.0
}

/// A small skew-heavy computation generator (shared shape with the
/// brute-force differential suite; kept local so this suite stays
/// self-contained about what it sweeps).
fn gen_comp(rng: &mut StdRng, epsilon: u64) -> DistributedComputation {
    let processes = rng.gen_range(1usize..3);
    let mut b = ComputationBuilder::new(processes, epsilon);
    for p in 0..processes {
        let events = rng.gen_range(0usize..4);
        let mut t = 0;
        for _ in 0..events {
            t += 1 + rng.gen_range(0u64..3);
            let state: rvmtl_mtl::State =
                PROPS.iter().filter(|_| rng.gen_bool()).copied().collect();
            b.event(p, t, state);
        }
    }
    b.build().expect("generated computations are valid")
}

fn gen_phi(rng: &mut StdRng) -> Formula {
    let cfg = GenConfig {
        max_depth: 2,
        interval_start_max: 4,
        interval_len_max: 8,
        ..GenConfig::default()
    };
    gen_formula(rng, &cfg)
}

/// Random formulas over random computations across the whole ε axis: the
/// regime sweep of the brute-force differential suite, replayed as an
/// engine-vs-engine comparison. The suite must also actually exercise the
/// batched probe path (accumulated batch counters > 0), or engine agreement
/// would be vacuous.
#[test]
fn engines_agree_across_epsilon_sweep() {
    let mut rng = StdRng::seed_from_u64(0xE9D1);
    let mut batches = 0usize;
    let mut probe_ticks = 0usize;
    for epsilon in 1u64..=8 {
        for case in 0..12 {
            let comp = gen_comp(&mut rng, epsilon);
            let phi = gen_phi(&mut rng);
            let stats = assert_engines_agree(
                &comp,
                &phi,
                None,
                &format!("ε = {epsilon}, case {case}, formula {phi}"),
            );
            batches += stats.frontier_batches;
            probe_ticks += stats.batched_probe_ticks;
        }
    }
    assert!(batches > 0, "the sweep never formed a frontier batch");
    assert!(
        probe_ticks > 0,
        "the sweep never walked the batched probe path"
    );
}

/// Delayed-window formulas (every live window translated strictly above the
/// anchor) across the ε axis: the regime where the shift-normal zone
/// machinery — translated-range collapse inside the batched splitter,
/// shift-relative memo keys — actually fires, asserted via the accumulated
/// `shift_normalized_nodes` counter.
#[test]
fn engines_agree_on_delayed_window_suite() {
    let mut rng = StdRng::seed_from_u64(0xE9D2);
    let mut normalized = 0usize;
    for epsilon in 1u64..=8 {
        for case in 0..10 {
            let comp = gen_comp(&mut rng, epsilon);
            let cfg = GenConfig {
                max_depth: 2,
                interval_start_max: 3,
                interval_len_max: 6,
                unbounded_intervals: false,
            };
            let base = gen_formula(&mut rng, &cfg);
            let shift = rng.gen_range(1u64..8);
            let mut scratch = Interner::new();
            let id = scratch.intern(&base);
            let shifted = ArenaOps::translate_up(&mut scratch, id, shift);
            let phi = ArenaOps::resolve(&scratch, shifted);
            let stats = assert_engines_agree(
                &comp,
                &phi,
                None,
                &format!("ε = {epsilon}, case {case}, formula {phi}"),
            );
            normalized += stats.shift_normalized_nodes;
        }
    }
    assert!(
        normalized > 0,
        "the suite never exercised the shift-normal canonicalisation"
    );
}

/// PRNG-generated shift-free specifications (window starts all at zero; the
/// arena watermark must stay down) on the Fig. 3-shaped fixture, over *both*
/// arena representations: plain vs plain compares full stats and id-level
/// rewrites per engine; sharded vs plain additionally pins that the engine
/// choice commutes with the arena representation (same stats, same
/// verdicts).
#[test]
fn engines_agree_on_shift_free_suite_both_arenas() {
    let mut rng = StdRng::seed_from_u64(0xE9D3);
    let cfg = GenConfig::default();
    let mut formulas = Vec::new();
    while formulas.len() < 24 {
        let phi = gen_formula(&mut rng, &cfg);
        let mut scratch = Interner::new();
        let _ = scratch.intern(&phi);
        if !scratch.ever_shifted() {
            formulas.push(phi);
        }
    }
    for epsilon in [1u64, 2, 4, 8] {
        let mut b = ComputationBuilder::new(2, epsilon);
        b.event(0, 1, state!["a"]);
        b.event(0, 4, state!["p"]);
        b.event(1, 2, state!["a", "q"]);
        b.event(1, 5, state!["b"]);
        let comp = b.build().expect("fixture is valid");
        for phi in &formulas {
            let plain_stats =
                assert_engines_agree(&comp, phi, None, &format!("ε = {epsilon}, formula {phi}"));

            let sharded = ShardedInterner::new();
            let mut handle = &sharded;
            let sharded_stack = solve(&mut handle, &comp, phi, ExploreEngine::WorkStack, None);
            let sharded_ref = solve(&mut handle, &comp, phi, ExploreEngine::Reference, None);
            assert_eq!(
                plain_stats, sharded_stack.0,
                "ε = {epsilon}, formula {phi}: plain vs sharded work-stack stats"
            );
            // The second run over the same sharded arena is warm, so only
            // shape-level (cache-independent) counters are comparable.
            assert_eq!(
                sharded_stack.0.explored_states, sharded_ref.0.explored_states,
                "ε = {epsilon}, formula {phi}: warm sharded reference shape"
            );
            assert_eq!(
                sharded_stack.2, sharded_ref.2,
                "ε = {epsilon}, formula {phi}: sharded verdicts across engines"
            );
        }
    }
}

/// Solution limits stop both engines at the same point: the limit interacts
/// with emission order (a premature stop under a different order would leak
/// through verdict sets), so agreement here pins that the work-stack driver
/// replays the recursion's unwind path exactly.
#[test]
fn engines_agree_under_limits_across_epsilon() {
    let mut rng = StdRng::seed_from_u64(0xE9D4);
    for epsilon in 1u64..=8 {
        for case in 0..6 {
            let comp = gen_comp(&mut rng, epsilon);
            let phi = gen_phi(&mut rng);
            for limit in 1..=3usize {
                assert_engines_agree(
                    &comp,
                    &phi,
                    Some(limit),
                    &format!("ε = {epsilon}, case {case}, limit {limit}, formula {phi}"),
                );
            }
        }
    }
}

/// The delayed-window tripwire of the shift-free suite, cross-checked per
/// engine: forcing the zone path with an unrelated delayed-window node must
/// leave both engines' stats and verdicts unchanged (the watermark is an
/// economy, not a semantics, under either driver).
#[test]
fn watermark_trip_is_invisible_under_both_engines() {
    let phi = parse("a U[0,6) b").expect("fixed formula parses");
    let mut b = ComputationBuilder::new(2, 3);
    b.event(0, 1, state!["a"]);
    b.event(0, 4, state![]);
    b.event(1, 2, state!["a"]);
    b.event(1, 5, state!["b"]);
    let comp = b.build().expect("fixture is valid");
    for engine in [ExploreEngine::WorkStack, ExploreEngine::Reference] {
        let mut plain = Interner::new();
        let down = solve(&mut plain, &comp, &phi, engine, None);
        assert!(!plain.ever_shifted());

        let mut tripped = Interner::new();
        let _ = tripped.intern(&parse("F[6,12) zz_tripwire").expect("tripwire parses"));
        assert!(tripped.ever_shifted());
        let up = solve(&mut tripped, &comp, &phi, engine, None);

        assert_eq!(down.0, up.0, "{engine:?}: stats across watermark states");
        assert_eq!(down.2, up.2, "{engine:?}: verdicts across watermark states");
    }
}
