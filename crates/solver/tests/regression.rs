//! Search-shape regression tests: the interval-splitting, hash-consed engine
//! explores one node per *residual-constant time range*, not one per tick.
//!
//! These tests pin `explored_states` / `memo_hits` / `completed_sequences` —
//! and the interval-abstraction counters `time_splits` /
//! `merged_time_points` — on fixed Fig. 3-style scenarios. If a change to the
//! engine alters any of the pinned numbers, it changed the search semantics
//! (not just its speed) — that may be intentional (e.g. a stronger pruning
//! rule), but it must be a conscious decision: re-derive the numbers, check
//! the differential tests still pass, and update the pins.

use rvmtl_distrib::{ComputationBuilder, DistributedComputation};
use rvmtl_mtl::{parse, state};
use rvmtl_solver::ProgressionQuery;

/// The computation of Fig. 3: two processes, ε = 2, four events.
fn fig3() -> DistributedComputation {
    fig3_eps(2)
}

/// Fig. 3 with a configurable clock-skew bound.
fn fig3_eps(epsilon: u64) -> DistributedComputation {
    let mut b = ComputationBuilder::new(2, epsilon);
    b.event(0, 1, state!["a"]);
    b.event(0, 4, state![]);
    b.event(1, 2, state!["a"]);
    b.event(1, 5, state!["b"]);
    b.build().unwrap()
}

#[test]
fn fig3_until_search_shape_is_pinned() {
    let comp = fig3();
    let phi = parse("a U[0,6) b").unwrap();
    let result = ProgressionQuery::new(&comp, 8).distinct_progressions(&phi);
    assert_eq!(
        result.formulas.len(),
        2,
        "two distinguishable trace classes"
    );
    assert_eq!(result.stats.explored_states, 24, "{:?}", result.stats);
    assert_eq!(result.stats.memo_hits, 32, "{:?}", result.stats);
    assert_eq!(result.stats.completed_sequences, 2, "{:?}", result.stats);
    assert_eq!(result.stats.constant_cutoffs, 3, "{:?}", result.stats);
    assert_eq!(result.stats.time_splits, 55, "{:?}", result.stats);
    assert_eq!(result.stats.merged_time_points, 1, "{:?}", result.stats);
    assert_eq!(result.stats.shift_normalized_nodes, 6, "{:?}", result.stats);
}

#[test]
fn fig3_eventually_search_shape_is_pinned() {
    let comp = fig3();
    let phi = parse("F[0,6) b").unwrap();
    let result = ProgressionQuery::new(&comp, 8).distinct_progressions(&phi);
    assert_eq!(result.formulas.len(), 2);
    assert_eq!(result.stats.explored_states, 23, "{:?}", result.stats);
    assert_eq!(result.stats.memo_hits, 33, "{:?}", result.stats);
    assert_eq!(result.stats.completed_sequences, 2, "{:?}", result.stats);
    assert_eq!(result.stats.time_splits, 55, "{:?}", result.stats);
    assert_eq!(result.stats.merged_time_points, 1, "{:?}", result.stats);
}

#[test]
fn fig3_always_search_shape_is_pinned() {
    let comp = fig3();
    let phi = parse("G[0,10) (a | b)").unwrap();
    let result = ProgressionQuery::new(&comp, 8).distinct_progressions(&phi);
    assert_eq!(result.formulas.len(), 2);
    assert_eq!(result.stats.explored_states, 23, "{:?}", result.stats);
    assert_eq!(result.stats.memo_hits, 34, "{:?}", result.stats);
    assert_eq!(result.stats.completed_sequences, 3, "{:?}", result.stats);
    assert_eq!(result.stats.time_splits, 56, "{:?}", result.stats);
    assert_eq!(result.stats.merged_time_points, 0, "{:?}", result.stats);
}

/// Every memo hit must stand for a state that the engine did *not* re-expand:
/// with memoisation disabled there is no such thing, so explored states must
/// strictly dominate the memoised run's. (Indirect check that the single-pass
/// rewrite kept the memo effective — the explored count stays well below the
/// number of search edges.)
#[test]
fn memoisation_carries_real_weight_on_fig3() {
    let comp = fig3();
    let phi = parse("a U[0,6) b").unwrap();
    let result = ProgressionQuery::new(&comp, 8).distinct_progressions(&phi);
    assert!(
        result.stats.memo_hits > result.stats.explored_states,
        "memo hits should dominate on the skew-heavy Fig. 3 lattice: {:?}",
        result.stats
    );
}

/// The whole point of the time-interval abstraction (ISSUE 2, Fig. 5b/5c of
/// the paper): the explored-state count must *saturate* once ε exceeds the
/// formula's temporal horizon, instead of growing linearly with the window
/// width as the per-tick engine did. The skipped ticks are accounted for in
/// `merged_time_points`, which keeps growing with ε.
#[test]
fn explored_states_saturate_in_epsilon() {
    let phi = parse("a U[0,6) b").unwrap();
    let run = |eps: u64| {
        let comp = fig3_eps(eps);
        ProgressionQuery::new(&comp, 5 + eps)
            .distinct_progressions(&phi)
            .stats
    };
    let at8 = run(8);
    let at32 = run(32);
    let at64 = run(64);
    assert_eq!(
        at8.explored_states, at64.explored_states,
        "explored states must be flat in ε beyond the formula horizon: {at8:?} vs {at64:?}"
    );
    assert_eq!(at8.explored_states, 70, "{at8:?}");
    assert!(
        at32.merged_time_points < at64.merged_time_points,
        "the widening windows must be absorbed by range merging: {at32:?} vs {at64:?}"
    );
}

/// Many mostly-idle processes: the cut lattice has 2^n points for n
/// single-event processes, overflowing any fixed-width rank for large n —
/// but time-window pruning keeps the actual search linear. The engine must
/// handle both the u128 stride path (n = 70) and the interned-rank fallback
/// (n = 140) instead of rejecting the computation outright.
#[test]
fn huge_sparse_lattices_are_searchable() {
    for n in [70u64, 140] {
        let mut b = ComputationBuilder::new(n as usize, 1);
        for p in 0..n {
            b.event(p as usize, 1 + 10 * p, state!["tick"]);
        }
        let comp = b.build().unwrap();
        let phi = parse("G[0,2000) tick").unwrap();
        let verdicts = rvmtl_solver::possible_verdicts(&comp, &phi);
        assert_eq!(
            verdicts,
            std::collections::BTreeSet::from([true]),
            "n = {n}"
        );
    }
}

/// A zero solution limit is a caller bug, not a request for an empty search;
/// it used to be silently clamped to 1.
#[test]
#[should_panic(expected = "must be at least 1")]
fn zero_limit_panics() {
    let comp = fig3();
    let _ = ProgressionQuery::new(&comp, 8).with_limit(0);
}

/// The shift-normal zone canonicalisation (ISSUE 4): on a *delayed-window*
/// formula over a dense lattice, the explored-state count must saturate at
/// an ε strictly below the formula's temporal horizon. `a U[6,12) b` has
/// horizon 12 but a live window of width 6: while the window has not opened,
/// residuals are exact time-translates of one canonical residual, so the
/// pre-window part of every occurrence window collapses into a single
/// translated range no matter how wide ε makes it — the engine goes flat
/// once every event window covers the *open* region (ε = 8 here), where the
/// invariant-only engine kept branching per pre-window tick up to ε = 12.
#[test]
fn explored_states_saturate_below_the_horizon_on_delayed_windows() {
    let phi = parse("a U[6,12) b").unwrap();
    let run = |eps: u64| {
        let mut b = ComputationBuilder::new(2, eps);
        b.event(0, 6, state!["a"]);
        b.event(0, 8, state!["a"]);
        b.event(0, 10, state!["a"]);
        b.event(1, 7, state!["a"]);
        b.event(1, 9, state!["a"]);
        b.event(1, 11, state!["b"]);
        let comp = b.build().unwrap();
        ProgressionQuery::new(&comp, 11 + eps)
            .distinct_progressions(&phi)
            .stats
    };
    let at8 = run(8);
    let at12 = run(12);
    let at64 = run(64);
    assert_eq!(
        at8.explored_states, at64.explored_states,
        "explored states must be flat from ε = 8 — strictly below the horizon 12: {at8:?} vs {at64:?}"
    );
    assert_eq!(at8.explored_states, at12.explored_states, "{at12:?}");
    assert!(
        at8.shift_normalized_nodes > 0,
        "the delayed window must exercise the zone canonicalisation: {at8:?}"
    );
    assert!(
        at64.merged_time_points > at8.merged_time_points,
        "widening windows must be absorbed by range merging: {at8:?} vs {at64:?}"
    );
}
