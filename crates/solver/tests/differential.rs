//! Differential and property-based tests: the solver's symbolic verdict sets
//! must coincide with brute-force enumeration of all traces of the
//! computation, for random computations and random formulas.

use proptest::prelude::*;
use rvmtl_distrib::{all_verdicts, ComputationBuilder, DistributedComputation};
use rvmtl_mtl::{Formula, Interval, State};
use rvmtl_solver::possible_verdicts;

const PROPS: [&str; 3] = ["p", "q", "r"];

#[derive(Debug, Clone)]
struct RandomComputation {
    epsilon: u64,
    /// Per process: (gap to previous event, state bits).
    events: Vec<Vec<(u64, [bool; 3])>>,
}

fn build(rc: &RandomComputation) -> DistributedComputation {
    let mut b = ComputationBuilder::new(rc.events.len().max(1), rc.epsilon);
    for (p, events) in rc.events.iter().enumerate() {
        let mut t = 0;
        for (gap, bits) in events {
            t += 1 + gap;
            let state: State = PROPS
                .iter()
                .zip(bits)
                .filter(|(_, b)| **b)
                .map(|(name, _)| *name)
                .collect();
            b.event(p, t, state);
        }
    }
    b.build().expect("generated computations are valid")
}

fn arb_computation() -> impl Strategy<Value = RandomComputation> {
    let event = (0u64..3, proptest::array::uniform3(proptest::bool::ANY));
    let process = proptest::collection::vec(event, 0..4);
    (1u64..4, proptest::collection::vec(process, 1..3))
        .prop_map(|(epsilon, events)| RandomComputation { epsilon, events })
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0u64..4, 1u64..8, proptest::bool::ANY).prop_map(|(s, l, unbounded)| {
        if unbounded {
            Interval::unbounded(s)
        } else {
            Interval::bounded(s, s + l)
        }
    })
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0..PROPS.len()).prop_map(|i| Formula::atom(PROPS[i])),
        Just(Formula::True),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (arb_interval(), inner.clone()).prop_map(|(i, a)| Formula::eventually(i, a)),
            (arb_interval(), inner.clone()).prop_map(|(i, a)| Formula::always(i, a)),
            (inner.clone(), arb_interval(), inner).prop_map(|(a, i, b)| Formula::until(a, i, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The solver's verdict set equals the brute-force oracle's on random
    /// computations and formulas.
    #[test]
    fn solver_matches_bruteforce(rc in arb_computation(), phi in arb_formula()) {
        let comp = build(&rc);
        // Keep the oracle tractable.
        prop_assume!(comp.event_count() <= 6);
        let expected = all_verdicts(&comp, &phi);
        let actual = possible_verdicts(&comp, &phi);
        prop_assert_eq!(actual, expected, "formula {}", phi);
    }

    /// Verdict sets are never empty and only contain booleans consistent with
    /// negation: verdicts(¬φ) is the element-wise negation of verdicts(φ).
    #[test]
    fn negation_flips_verdicts(rc in arb_computation(), phi in arb_formula()) {
        let comp = build(&rc);
        prop_assume!(comp.event_count() <= 6);
        let pos = possible_verdicts(&comp, &phi);
        let neg = possible_verdicts(&comp, &Formula::not(phi.clone()));
        prop_assert!(!pos.is_empty());
        let flipped: std::collections::BTreeSet<bool> = pos.iter().map(|v| !v).collect();
        prop_assert_eq!(neg, flipped, "formula {}", phi);
    }
}
