//! Differential and property-based tests: the solver's symbolic verdict sets
//! must coincide with brute-force enumeration of all traces of the
//! computation, for random computations and random formulas (seeded local
//! PRNG; case generators shared via `rvmtl_mtl::testgen` /
//! `rvmtl_distrib::testgen`).

use rvmtl_distrib::all_verdicts;
use rvmtl_distrib::testgen::gen_computation;
use rvmtl_mtl::testgen::{gen_formula, GenConfig};
use rvmtl_mtl::Formula;
use rvmtl_prng::StdRng;
use rvmtl_solver::possible_verdicts;

const CASES: usize = 64;

/// Small intervals keep the brute-force oracle tractable.
fn gen_phi(rng: &mut StdRng) -> Formula {
    let cfg = GenConfig {
        max_depth: 2,
        interval_start_max: 4,
        interval_len_max: 8,
        ..GenConfig::default()
    };
    gen_formula(rng, &cfg)
}

/// The solver's verdict set equals the brute-force oracle's on random
/// computations and formulas.
#[test]
fn solver_matches_bruteforce() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let mut checked = 0;
    while checked < CASES {
        let comp = gen_computation(&mut rng);
        let phi = gen_phi(&mut rng);
        // Keep the oracle tractable.
        if comp.event_count() > 6 {
            continue;
        }
        checked += 1;
        let expected = all_verdicts(&comp, &phi);
        let actual = possible_verdicts(&comp, &phi);
        assert_eq!(actual, expected, "formula {phi}");
    }
}

/// The interval-abstracted engine must preserve verdict sets across the whole
/// ε axis (the paper's Fig. 5b sweep): as ε grows, ever larger parts of each
/// event's occurrence window collapse into a single search node, and this
/// test pins that the collapse never merges time points that brute-force
/// enumeration distinguishes.
///
/// Computations are generated with a *fixed* ε so the sweep covers every
/// value in 1..=8 (the shared `gen_computation` draws ε ∈ 1..4 only, which
/// never exercises the saturated regime where whole windows merge).
#[test]
fn interval_abstraction_matches_bruteforce_across_epsilon() {
    let mut rng = StdRng::seed_from_u64(0xE125);
    for epsilon in 1u64..=8 {
        for _ in 0..12 {
            // The generator is capped at 2 processes × 2 events by
            // construction, keeping the oracle tractable even at ε = 8,
            // where a single event can have a 17-tick window.
            let processes = rng.gen_range(1usize..3);
            let mut b = rvmtl_distrib::ComputationBuilder::new(processes, epsilon);
            for p in 0..processes {
                let events = rng.gen_range(0usize..3);
                let mut t = 0;
                for _ in 0..events {
                    t += 1 + rng.gen_range(0u64..3);
                    let state: rvmtl_mtl::State = rvmtl_mtl::testgen::PROPS
                        .iter()
                        .filter(|_| rng.gen_bool())
                        .copied()
                        .collect();
                    b.event(p, t, state);
                }
            }
            let comp = b.build().expect("generated computations are valid");
            let phi = gen_phi(&mut rng);
            assert_eq!(
                possible_verdicts(&comp, &phi),
                all_verdicts(&comp, &phi),
                "formula {phi}, ε = {epsilon}"
            );
        }
    }
}

/// Verdict sets are never empty and consistent with negation: verdicts(¬φ)
/// is the element-wise negation of verdicts(φ).
#[test]
fn negation_flips_verdicts() {
    let mut rng = StdRng::seed_from_u64(0x0E64);
    let mut checked = 0;
    while checked < CASES {
        let comp = gen_computation(&mut rng);
        let phi = gen_phi(&mut rng);
        if comp.event_count() > 6 {
            continue;
        }
        checked += 1;
        let pos = possible_verdicts(&comp, &phi);
        let neg = possible_verdicts(&comp, &Formula::not(phi.clone()));
        assert!(!pos.is_empty());
        let flipped: std::collections::BTreeSet<bool> = pos.iter().map(|v| !v).collect();
        assert_eq!(neg, flipped, "formula {phi}");
    }
}

/// The shift-normal engine on *delayed-window* formulas — windows starting
/// strictly after the anchor, whose pre-window residuals are exact
/// time-translates of one canonical residual — must preserve verdict sets
/// across the whole ε axis. This is the regime where the zone
/// canonicalisation (translated-range collapse, shift-relative memo keys)
/// actually fires, so the sweep additionally asserts that it fired: plain
/// per-formula agreement alone could pass with the machinery disabled.
#[test]
fn delayed_window_verdicts_match_bruteforce_across_epsilon() {
    use rvmtl_solver::ProgressionQuery;
    let mut rng = StdRng::seed_from_u64(0x5F1D);
    let mut normalized_nodes = 0usize;
    for epsilon in 1u64..=8 {
        for _ in 0..10 {
            let processes = rng.gen_range(1usize..3);
            let mut b = rvmtl_distrib::ComputationBuilder::new(processes, epsilon);
            for p in 0..processes {
                let events = rng.gen_range(0usize..3);
                let mut t = 0;
                for _ in 0..events {
                    t += 1 + rng.gen_range(0u64..3);
                    let state: rvmtl_mtl::State = rvmtl_mtl::testgen::PROPS
                        .iter()
                        .filter(|_| rng.gen_bool())
                        .copied()
                        .collect();
                    b.event(p, t, state);
                }
            }
            let comp = b.build().expect("generated computations are valid");
            // Bias every top-level window away from zero: translate the
            // generated formula's live intervals up by a random offset.
            let cfg = GenConfig {
                max_depth: 2,
                interval_start_max: 3,
                interval_len_max: 6,
                unbounded_intervals: false,
            };
            let base = gen_formula(&mut rng, &cfg);
            let shift = rng.gen_range(1u64..8);
            let mut interner = rvmtl_mtl::Interner::new();
            let id = interner.intern(&base);
            let shifted = rvmtl_mtl::ArenaOps::translate_up(&mut interner, id, shift);
            let phi = rvmtl_mtl::ArenaOps::resolve(&interner, shifted);
            let anchor = comp.max_local_time() + comp.epsilon();
            let result = ProgressionQuery::new(&comp, anchor).distinct_progressions(&phi);
            normalized_nodes += result.stats.shift_normalized_nodes;
            assert_eq!(
                result.verdicts(),
                all_verdicts(&comp, &phi),
                "formula {phi}, ε = {epsilon}"
            );
        }
    }
    assert!(
        normalized_nodes > 0,
        "the sweep never exercised the shift-normal canonicalisation"
    );
}
