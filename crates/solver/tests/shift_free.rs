//! The shift-free fast path is *observationally invisible*: an arena whose
//! shift watermark never trips (`ever_shifted() == false`) and the same
//! formulas forced through the full zone path (watermark tripped by an
//! unrelated delayed-window node) must produce bit-identical [`SolverStats`]
//! and verdict sets. This pins the tentpole claim of the NodeMeta/watermark
//! optimisation — it removes the shift-normal tax, it does not change the
//! search — for both the sequential [`Interner`] and the concurrent
//! [`ShardedInterner`], on PRNG-generated shift-free specifications.

use rvmtl_distrib::{ComputationBuilder, DistributedComputation};
use rvmtl_mtl::testgen::{gen_formula, GenConfig};
use rvmtl_mtl::{parse, state, ArenaOps, Formula, Interner, ShardedInterner};
use rvmtl_prng::StdRng;
use rvmtl_solver::{SegmentSolver, SolverStats};
use std::collections::BTreeSet;

/// A small skew-heavy computation (the Fig. 3 shape at a configurable ε).
fn fixture(epsilon: u64) -> DistributedComputation {
    let mut b = ComputationBuilder::new(2, epsilon);
    b.event(0, 1, state!["a"]);
    b.event(0, 4, state!["p"]);
    b.event(1, 2, state!["a", "q"]);
    b.event(1, 5, state!["b"]);
    b.build().unwrap()
}

/// PRNG-generated formulas filtered to the shift-free class: interning one
/// into a fresh arena must leave the watermark down. (The generator produces
/// arbitrary window starts, so delayed-window draws are simply skipped.)
fn shift_free_formulas(count: usize, seed: u64) -> Vec<Formula> {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = GenConfig::default();
    let mut out = Vec::new();
    while out.len() < count {
        let phi = gen_formula(&mut rng, &config);
        let mut scratch = Interner::new();
        let _ = scratch.intern(&phi);
        if !scratch.ever_shifted() {
            out.push(phi);
        }
    }
    out
}

/// Runs `phi` through a `SegmentSolver` over `arena`, returning the stats of
/// the query and the verdict set of its rewritten formulas.
fn solve<A: ArenaOps>(
    arena: &mut A,
    comp: &DistributedComputation,
    phi: &Formula,
) -> (SolverStats, BTreeSet<bool>) {
    let anchor = comp.max_local_time() + comp.epsilon();
    let psi = arena.intern(phi);
    let mut solver = SegmentSolver::new(comp, anchor, arena);
    let result = solver.progress(psi);
    let verdicts = result
        .formulas
        .iter()
        .map(|&id| solver_eval(arena, id))
        .collect();
    (result.stats, verdicts)
}

fn solver_eval<A: ArenaOps>(arena: &A, id: rvmtl_mtl::FormulaId) -> bool {
    arena.eval_empty(id)
}

/// Trips the watermark of an arena with a delayed-window node that shares no
/// structure with the monitored formulas (fresh proposition), forcing every
/// subsequent query through the per-node zone checks.
fn trip<A: ArenaOps>(arena: &mut A) {
    let tripwire = parse("F[6,12) zz_tripwire").unwrap();
    let _ = arena.intern(&tripwire);
    assert!(arena.ever_shifted(), "tripwire must raise the watermark");
}

/// Sequential arena: watermark down vs forced zone path — identical
/// `SolverStats` (explored states, memo hits, splits, merges, zone rewrites)
/// and identical verdicts, formula by formula.
#[test]
fn shift_free_fast_path_is_observationally_invisible_sequential() {
    let formulas = shift_free_formulas(48, 0x5F4E);
    for epsilon in [1u64, 2, 4] {
        let comp = fixture(epsilon);
        for phi in &formulas {
            let mut plain = Interner::new();
            let fast = solve(&mut plain, &comp, phi);
            assert!(
                !plain.ever_shifted(),
                "phi = {phi}: a shift-free query must not trip the watermark"
            );

            let mut forced = Interner::new();
            trip(&mut forced);
            let slow = solve(&mut forced, &comp, phi);

            assert_eq!(
                fast.0, slow.0,
                "phi = {phi}, eps = {epsilon}: SolverStats must be bit-identical"
            );
            assert_eq!(
                fast.1, slow.1,
                "phi = {phi}, eps = {epsilon}: verdicts must agree"
            );
        }
    }
}

/// Sharded arena: same property through `&ShardedInterner` handles (the
/// parallel monitoring path), compared against the sequential fast path.
#[test]
fn shift_free_fast_path_is_observationally_invisible_sharded() {
    let formulas = shift_free_formulas(24, 0x54DD);
    let comp = fixture(2);
    for phi in &formulas {
        let mut plain = Interner::new();
        let fast = solve(&mut plain, &comp, phi);

        let arena = ShardedInterner::new();
        let mut handle = &arena;
        let sharded_fast = solve(&mut handle, &comp, phi);
        assert!(!arena.ever_shifted(), "phi = {phi}");

        let forced = ShardedInterner::new();
        let mut forced_handle = &forced;
        trip(&mut forced_handle);
        let sharded_slow = solve(&mut forced_handle, &comp, phi);

        assert_eq!(fast.0, sharded_fast.0, "phi = {phi}: sequential vs sharded");
        assert_eq!(
            sharded_fast.0, sharded_slow.0,
            "phi = {phi}: sharded fast vs forced zone path"
        );
        assert_eq!(fast.1, sharded_fast.1, "phi = {phi}");
        assert_eq!(sharded_fast.1, sharded_slow.1, "phi = {phi}");
    }
}

/// The watermark story end-to-end in one arena: a shift-free query runs with
/// the watermark down; interning the first nonzero-slack node flips it; the
/// same shift-free query re-run through the now-tripped arena reports the
/// same stats and verdicts; and `Interner::compact` dropping the shifted
/// node re-arms the fast path with the query *still* unchanged.
#[test]
fn watermark_flip_and_compact_leave_queries_unchanged() {
    let comp = fixture(3);
    let phi = parse("a U[0,6) b").unwrap();

    let mut arena = Interner::new();
    let (stats_down, verdicts_down) = solve(&mut arena, &comp, &phi);
    assert!(!arena.ever_shifted());

    trip(&mut arena);
    let (stats_up, verdicts_up) = solve(&mut arena, &comp, &phi);
    // A fresh arena with the watermark up must also agree (no cache-carry
    // effects hiding a divergence).
    let mut fresh_up = Interner::new();
    trip(&mut fresh_up);
    let (stats_fresh, verdicts_fresh) = solve(&mut fresh_up, &comp, &phi);
    assert_eq!(stats_down, stats_fresh);
    assert_eq!(verdicts_down, verdicts_fresh);
    assert_eq!(verdicts_down, verdicts_up);
    // The warmed arena run may only differ in memo economy, never in shape:
    // explored states and zone rewrites are cache-independent.
    assert_eq!(stats_down.explored_states, stats_up.explored_states);
    assert_eq!(
        stats_down.shift_normalized_nodes,
        stats_up.shift_normalized_nodes
    );

    // GC away the tripwire: the watermark drops and the query still runs
    // identically on the re-armed fast path.
    let root = arena.intern(&phi);
    let remap = arena.compact([root]);
    assert!(
        !arena.ever_shifted(),
        "compact must re-arm the shift-free fast path"
    );
    let _ = remap;
    let (stats_rearmed, verdicts_rearmed) = solve(&mut arena, &comp, &phi);
    assert_eq!(stats_down.explored_states, stats_rearmed.explored_states);
    assert_eq!(verdicts_down, verdicts_rearmed);
}
