//! The decision engine behind the monitor's per-segment queries.
//!
//! The paper encodes each segment as an SMT instance over (1) an
//! uninterpreted function `ρ` describing a sequence of consistent cuts, (2) a
//! monotone time function `τ` whose values are drawn from each event's `±ε`
//! window (`δ`), and (3) constraints asserting a verdict of the MTL formula —
//! then asks Z3 for satisfying assignments, blocking each verdict found to
//! enumerate the distinct ones (Sec. V).
//!
//! This module is a dedicated decision procedure for exactly that theory: a
//! depth-first search over cut sequences and admissible time assignments that
//! carries the *progressed formula* along each branch and memoises on
//! `(cut, last assigned time, pending formula)`. Because progression composes
//! (`Pr(α.α′, φ) ≡ Pr(α′, Pr(α, φ))`), the search returns the exact set of
//! rewritten formulas (and hence verdicts) that the explicit enumeration of
//! `Tr(E, ⇝)` would produce, without materialising the traces.

use rvmtl_distrib::{Cut, DistributedComputation};
use rvmtl_mtl::{evaluate, progress, progress_gap, Formula, TimedTrace};
use std::collections::{BTreeSet, HashMap};

/// Counters describing the work performed by a query — useful for the
/// scalability experiments and for regression-testing the memoisation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of distinct search states explored.
    pub explored_states: usize,
    /// Number of memoisation hits.
    pub memo_hits: usize,
    /// Number of complete cut sequences reached.
    pub completed_sequences: usize,
    /// Number of branches cut off early because the pending formula had
    /// already collapsed to a constant verdict.
    pub constant_cutoffs: usize,
}

/// The result of a progression query on one segment: the set of distinct
/// rewritten formulas, together with solver statistics.
#[derive(Debug, Clone)]
pub struct ProgressionResult {
    /// The distinct progressed formulas, one per distinguishable class of
    /// traces of the segment.
    pub formulas: BTreeSet<Formula>,
    /// Work counters.
    pub stats: SolverStats,
}

impl ProgressionResult {
    /// The set of final verdicts obtained by closing every rewritten formula
    /// against the empty future (finite-trace semantics).
    pub fn verdicts(&self) -> BTreeSet<bool> {
        self.formulas.iter().map(finalize).collect()
    }
}

/// Closes a (possibly rewritten) formula at the end of the computation: any
/// obligation still referring to future observations is resolved by the
/// finite-trace semantics over an empty remainder (`◇` obligations fail, `□`
/// obligations hold vacuously).
pub fn finalize(phi: &Formula) -> bool {
    evaluate(&TimedTrace::empty(), phi)
}

/// A progression query over one segment (or a whole computation).
#[derive(Debug, Clone)]
pub struct ProgressionQuery<'a> {
    comp: &'a DistributedComputation,
    /// Time at which the residuals of the returned formulas are anchored
    /// (the base time of the *next* segment).
    next_anchor: u64,
    /// Stop after this many distinct rewritten formulas have been found
    /// (`usize::MAX` for no limit).
    limit: usize,
}

impl<'a> ProgressionQuery<'a> {
    /// Creates a query over `comp` whose residual obligations will be anchored
    /// at `next_anchor` (the base time of the next segment, or any time at or
    /// after the segment's last event for a final segment).
    pub fn new(comp: &'a DistributedComputation, next_anchor: u64) -> Self {
        ProgressionQuery {
            comp,
            next_anchor,
            limit: usize::MAX,
        }
    }

    /// Limits the number of distinct rewritten formulas to search for; the
    /// query returns as soon as the limit is reached. This mirrors the paper's
    /// repeated SMT invocations with blocked verdicts (Fig. 5e).
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit.max(1);
        self
    }

    /// Runs the query for a pending formula `phi` anchored at the segment's
    /// base time, returning every distinct rewritten formula the segment's
    /// traces can produce.
    pub fn distinct_progressions(&self, phi: &Formula) -> ProgressionResult {
        let mut engine = Engine {
            comp: self.comp,
            next_anchor: self.next_anchor,
            limit: self.limit,
            memo: HashMap::new(),
            feasibility: HashMap::new(),
            stats: SolverStats::default(),
            found: BTreeSet::new(),
        };
        let initial_cut = Cut::empty(self.comp.process_count());
        engine.explore(&initial_cut, self.comp.base_time(), phi);
        ProgressionResult {
            formulas: engine.found,
            stats: engine.stats,
        }
    }
}

/// Convenience wrapper: the set of distinct rewritten formulas of `phi` over
/// `comp`, anchoring residuals at `next_anchor`.
pub fn distinct_progressions(
    comp: &DistributedComputation,
    phi: &Formula,
    next_anchor: u64,
) -> BTreeSet<Formula> {
    ProgressionQuery::new(comp, next_anchor)
        .distinct_progressions(phi)
        .formulas
}

/// The set of verdicts `[(E, ⇝) ⊨F φ]` of a complete computation, computed
/// symbolically (without enumerating traces). Agrees with
/// [`rvmtl_distrib::all_verdicts`] — that equivalence is checked by the
/// differential tests.
pub fn possible_verdicts(comp: &DistributedComputation, phi: &Formula) -> BTreeSet<bool> {
    let anchor = comp.max_local_time() + comp.epsilon();
    ProgressionQuery::new(comp, anchor)
        .distinct_progressions(phi)
        .verdicts()
}

/// Returns `true` if some trace of the computation yields the verdict
/// `target`; stops searching as soon as a witness is found.
pub fn exists_verdict(comp: &DistributedComputation, phi: &Formula, target: bool) -> bool {
    // Search with a small limit repeatedly is not necessary: verdicts are a
    // projection of the rewritten formulas, so search all of them but stop as
    // soon as one with the requested verdict appears.
    let anchor = comp.max_local_time() + comp.epsilon();
    let mut engine = Engine {
        comp,
        next_anchor: anchor,
        limit: usize::MAX,
        memo: HashMap::new(),
        feasibility: HashMap::new(),
        stats: SolverStats::default(),
        found: BTreeSet::new(),
    };
    engine.explore_until(
        &Cut::empty(comp.process_count()),
        comp.base_time(),
        phi,
        &mut |formula| finalize(formula) == target,
    )
}

struct Engine<'a> {
    comp: &'a DistributedComputation,
    next_anchor: u64,
    limit: usize,
    memo: HashMap<(Vec<usize>, u64, Formula), BTreeSet<Formula>>,
    feasibility: HashMap<(Vec<usize>, u64), bool>,
    stats: SolverStats,
    found: BTreeSet<Formula>,
}

impl<'a> Engine<'a> {
    /// Returns `true` if the remaining events of `cut` can be scheduled with
    /// monotone times starting at `pending_time` (every event within its ±ε
    /// window). Used to close branches whose pending formula has already
    /// collapsed to a constant: the constant only counts as a solution if the
    /// cut sequence can actually be completed.
    fn can_complete(&mut self, cut: &Cut, pending_time: u64) -> bool {
        if cut.is_full(self.comp) {
            return true;
        }
        let key = (cut.counts().to_vec(), pending_time);
        if let Some(&cached) = self.feasibility.get(&key) {
            return cached;
        }
        let mut feasible = false;
        'outer: for event in cut.enabled(self.comp) {
            let (lo, hi) = self.comp.time_window(event);
            let lo = lo.max(pending_time);
            if lo > hi {
                continue;
            }
            let next_cut = cut.extended(self.comp, event);
            // Scheduling the event as early as possible dominates any later
            // choice for feasibility purposes.
            if self.can_complete(&next_cut, lo) {
                feasible = true;
                break 'outer;
            }
        }
        self.feasibility.insert(key, feasible);
        feasible
    }
    /// The pending-position state of a search node: the frontier state of the
    /// cut, which will be progressed once the time of the *next* event (or the
    /// next segment's anchor) is known.
    fn pending_state(&self, cut: &Cut) -> rvmtl_mtl::State {
        cut.frontier_state(self.comp)
    }

    fn single(&self, state: rvmtl_mtl::State, time: u64) -> TimedTrace {
        TimedTrace::new(vec![state], vec![time]).expect("single observation is monotone")
    }

    /// Progression of the pending formula when one more observation (or the
    /// end of the segment) arrives at time `next_time`.
    fn step(&self, cut: &Cut, pending_time: u64, psi: &Formula, next_time: u64) -> Formula {
        if cut.size() == 0 {
            // No observation is pending yet: only time has passed since the
            // segment's base.
            progress_gap(psi, next_time.saturating_sub(self.comp.base_time()))
        } else {
            let trace = self.single(self.pending_state(cut), pending_time);
            progress(&trace, psi, next_time)
        }
    }

    fn explore(&mut self, cut: &Cut, pending_time: u64, psi: &Formula) {
        let _ = self.explore_until(cut, pending_time, psi, &mut |_| false);
    }

    /// Explores the search space rooted at the given node, inserting every
    /// final rewritten formula into `self.found`. Returns `true` (and stops)
    /// as soon as `stop` accepts one of the found formulas or the configured
    /// limit is reached.
    fn explore_until(
        &mut self,
        cut: &Cut,
        pending_time: u64,
        psi: &Formula,
        stop: &mut dyn FnMut(&Formula) -> bool,
    ) -> bool {
        if self.found.len() >= self.limit {
            return true;
        }
        let key = (cut.counts().to_vec(), pending_time, psi.clone());
        if let Some(cached) = self.memo.get(&key) {
            self.stats.memo_hits += 1;
            let cached = cached.clone();
            for f in cached {
                let hit = stop(&f);
                self.found.insert(f);
                if hit || self.found.len() >= self.limit {
                    return true;
                }
            }
            return false;
        }
        self.stats.explored_states += 1;
        let mut local: BTreeSet<Formula> = BTreeSet::new();
        let mut stopped = false;

        if psi.is_constant() && self.can_complete(cut, pending_time) {
            // The verdict can no longer change: every feasible extension
            // produces the same rewritten formula.
            self.stats.constant_cutoffs += 1;
            local.insert(psi.clone());
        } else if psi.is_constant() {
            // Dead branch: the remaining events cannot be scheduled, so this
            // partial interleaving corresponds to no trace at all.
        } else if cut.is_full(self.comp) {
            self.stats.completed_sequences += 1;
            let final_formula = self.step(cut, pending_time, psi, self.next_anchor);
            local.insert(final_formula);
        } else {
            'outer: for event in cut.enabled(self.comp) {
                let (lo, hi) = self.comp.time_window(event);
                let lo = lo.max(pending_time);
                if lo > hi {
                    continue;
                }
                let next_cut = cut.extended(self.comp, event);
                for t in lo..=hi {
                    let advanced = self.step(cut, pending_time, psi, t);
                    stopped |= self.explore_until(&next_cut, t, &advanced, stop);
                    // Collect what this subtree contributed so the memo entry
                    // for this node is complete even on early exit paths.
                    if stopped {
                        break 'outer;
                    }
                }
            }
            // The formulas found below this node are not tracked separately
            // from `self.found`; recompute the local set only when the node
            // completed without an early stop (memoisation must not cache
            // partial results).
            if stopped {
                return true;
            }
            // Re-derive this node's contribution by re-walking its children
            // through the memo (cheap: every child is memoised now).
            for event in cut.enabled(self.comp) {
                let (lo, hi) = self.comp.time_window(event);
                let lo = lo.max(pending_time);
                if lo > hi {
                    continue;
                }
                let next_cut = cut.extended(self.comp, event);
                for t in lo..=hi {
                    let advanced = self.step(cut, pending_time, psi, t);
                    let child_key = (next_cut.counts().to_vec(), t, advanced);
                    if let Some(childset) = self.memo.get(&child_key) {
                        local.extend(childset.iter().cloned());
                    }
                }
            }
        }

        for f in &local {
            if stop(f) {
                stopped = true;
            }
            self.found.insert(f.clone());
        }
        self.memo.insert(key, local);
        stopped || self.found.len() >= self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvmtl_distrib::{all_verdicts, ComputationBuilder};
    use rvmtl_mtl::{parse, state, Interval};

    fn fig3(epsilon: u64) -> DistributedComputation {
        let mut b = ComputationBuilder::new(2, epsilon);
        b.event(0, 1, state!["a"]);
        b.event(0, 4, state![]);
        b.event(1, 2, state!["a"]);
        b.event(1, 5, state!["b"]);
        b.build().unwrap()
    }

    #[test]
    fn verdicts_match_bruteforce_on_fig3() {
        let comp = fig3(2);
        let phi = parse("a U[0,6) b").unwrap();
        assert_eq!(possible_verdicts(&comp, &phi), all_verdicts(&comp, &phi));
        assert_eq!(possible_verdicts(&comp, &phi).len(), 2);
    }

    #[test]
    fn verdicts_match_bruteforce_on_many_formulas() {
        let comp = fig3(2);
        let formulas = [
            "F[0,6) b",
            "G[0,4) a",
            "a U[2,9) b",
            "F[0,3) b",
            "G[0,10) (a | b)",
            "(F[0,6) a) & (F[0,8) b)",
            "!(a U[0,6) b)",
        ];
        for text in formulas {
            let phi = parse(text).unwrap();
            assert_eq!(
                possible_verdicts(&comp, &phi),
                all_verdicts(&comp, &phi),
                "mismatch for {text}"
            );
        }
    }

    #[test]
    fn verdicts_match_bruteforce_with_varying_epsilon() {
        for eps in [1, 2, 3] {
            let comp = fig3(eps);
            let phi = parse("a U[0,6) b").unwrap();
            assert_eq!(
                possible_verdicts(&comp, &phi),
                all_verdicts(&comp, &phi),
                "mismatch for ε = {eps}"
            );
        }
    }

    #[test]
    fn unambiguous_computation_has_single_verdict() {
        let mut b = ComputationBuilder::new(2, 1);
        b.event(0, 1, state!["a"]);
        b.event(1, 3, state!["b"]);
        let comp = b.build().unwrap();
        let phi = parse("a U[0,6) b").unwrap();
        let verdicts = possible_verdicts(&comp, &phi);
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts.contains(&true));
    }

    #[test]
    fn exists_verdict_finds_witnesses() {
        let comp = fig3(2);
        let phi = parse("a U[0,6) b").unwrap();
        assert!(exists_verdict(&comp, &phi, true));
        assert!(exists_verdict(&comp, &phi, false));
        let trivially_true = parse("true").unwrap();
        assert!(exists_verdict(&comp, &trivially_true, true));
        assert!(!exists_verdict(&comp, &trivially_true, false));
    }

    #[test]
    fn progression_shrinks_pending_obligation_deterministically() {
        // The Fig. 2 scenario: during the first segment only setup/deposit
        // events occur (no redeem), so the pending until survives. Because
        // residuals are anchored at the next segment's boundary (here 5), the
        // interval shrinks by exactly the boundary offset regardless of the
        // interleaving — the ordering ambiguity of the deposits resurfaces as
        // differing verdicts in the *next* segment instead (see the monitor
        // crate's Fig. 2 end-to-end test).
        let mut b = ComputationBuilder::new(2, 2);
        b.event(0, 1, state!["Apr.SetUp"]);
        b.event(1, 1, state!["Ban.SetUp"]);
        b.event(1, 3, state!["Ban.Deposit(pb)"]);
        b.event(0, 4, state!["Apr.Deposit(pa+pb)"]);
        let comp = b.build().unwrap();
        let phi = parse("!Apr.Redeem(bob) U[0,8) Ban.Redeem(alice)").unwrap();
        let result = ProgressionQuery::new(&comp, 5).distinct_progressions(&phi);
        let expected: Formula = parse("!Apr.Redeem(bob) U[0,3) Ban.Redeem(alice)").unwrap();
        assert_eq!(result.formulas, BTreeSet::from([expected]));
        assert_eq!(
            result
                .formulas
                .iter()
                .map(|f| match f {
                    Formula::Until(_, i, _) => *i,
                    other => panic!("unexpected rewritten formula {other}"),
                })
                .collect::<BTreeSet<_>>(),
            BTreeSet::from([Interval::bounded(0, 3)])
        );
    }

    #[test]
    fn limit_stops_early() {
        let comp = fig3(3);
        let phi = parse("a U[0,6) b").unwrap();
        let limited = ProgressionQuery::new(&comp, 10)
            .with_limit(1)
            .distinct_progressions(&phi);
        assert_eq!(limited.formulas.len(), 1);
        let full = ProgressionQuery::new(&comp, 10).distinct_progressions(&phi);
        assert!(full.formulas.len() >= limited.formulas.len());
    }

    #[test]
    fn memoisation_reduces_work() {
        let mut b = ComputationBuilder::new(2, 3);
        for t in 1..=4u64 {
            b.event(0, 2 * t, state!["p"]);
            b.event(1, 2 * t + 1, state!["q"]);
        }
        let comp = b.build().unwrap();
        let phi = parse("G[0,20) (p | q)").unwrap();
        let result = ProgressionQuery::new(&comp, 30).distinct_progressions(&phi);
        assert!(result.stats.memo_hits > 0, "expected memo hits: {:?}", result.stats);
        assert!(result.stats.explored_states > 0);
    }

    #[test]
    fn empty_computation_progresses_by_gap_only() {
        let comp = ComputationBuilder::new(2, 2).build().unwrap();
        let phi = parse("F[0,5) p").unwrap();
        // Anchoring the residual 3 time units later shrinks the interval.
        let res = distinct_progressions(&comp, &phi, 3);
        assert_eq!(res.len(), 1);
        assert_eq!(res.iter().next().unwrap(), &parse("F[0,2) p").unwrap());
        // Anchoring past the deadline resolves it to false.
        let res = distinct_progressions(&comp, &phi, 10);
        assert_eq!(res.iter().next().unwrap(), &Formula::False);
    }

    #[test]
    fn constant_formula_short_circuits() {
        let comp = fig3(2);
        let result = ProgressionQuery::new(&comp, 10).distinct_progressions(&Formula::True);
        assert_eq!(result.formulas.len(), 1);
        assert!(result.stats.constant_cutoffs >= 1);
        assert_eq!(result.verdicts(), BTreeSet::from([true]));
    }

    #[test]
    fn finalize_applies_finite_semantics() {
        assert!(finalize(&Formula::True));
        assert!(!finalize(&Formula::False));
        assert!(!finalize(&parse("F[0,5) p").unwrap()));
        assert!(finalize(&parse("G[0,5) p").unwrap()));
        assert!(!finalize(&parse("a U[0,5) b").unwrap()));
        assert!(!finalize(&parse("p").unwrap()));
    }
}
