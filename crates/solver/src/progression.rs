//! The decision engine behind the monitor's per-segment queries.
//!
//! The paper encodes each segment as an SMT instance over (1) an
//! uninterpreted function `ρ` describing a sequence of consistent cuts, (2) a
//! monotone time function `τ` whose values are drawn from each event's `±ε`
//! window (`δ`), and (3) constraints asserting a verdict of the MTL formula —
//! then asks Z3 for satisfying assignments, blocking each verdict found to
//! enumerate the distinct ones (Sec. V).
//!
//! This module is a dedicated decision procedure for exactly that theory: a
//! depth-first search over cut sequences and admissible time assignments that
//! carries the *progressed formula* along each branch and memoises on
//! `(cut, last assigned time, pending formula)`. Because progression composes
//! (`Pr(α.α′, φ) ≡ Pr(α′, Pr(α, φ))`), the search returns the exact set of
//! rewritten formulas (and hence verdicts) that the explicit enumeration of
//! `Tr(E, ⇝)` would produce, without materialising the traces.
//!
//! # Hot-path design
//!
//! The search spends its entire budget on memo lookups and progression steps,
//! so both are kept O(1)-shaped:
//!
//! * **Formulas are hash-consed.** The engine borrows a caller-supplied
//!   [`Interner`] (the monitor keeps one alive for the whole query, across
//!   segments) and carries [`FormulaId`]s (4-byte copies with id-equality and
//!   id-hashing) instead of `Formula` trees; progression steps go through
//!   [`Interner::progress_one_over`] / [`Interner::progress_gap_over`].
//! * **Time is explored per residual, not per tick.** An event admissible in
//!   the window `[lo, hi]` is *not* branched on once per occurrence time:
//!   [`Interner::progress_one_over`] partitions the window into maximal
//!   ranges with one residual each (at most `temporal_horizon + 1` of them,
//!   independent of ε), and the search recurses once per range. A range whose
//!   residual is time-invariant collapses to its earliest point — the
//!   canonical representative of the whole range, because the reachable
//!   rewrite set of a time-invariant pending formula shrinks monotonically in
//!   the pending time — so the memo key can stay a fixed-size
//!   `(cut rank, canonical time, FormulaId)` triple and still deduplicate
//!   entire time ranges.
//! * **Cuts are ranked.** A cut is a vector of per-process counts; the engine
//!   maps it to a single `u128` *rank* via mixed-radix strides
//!   (`rank = Σ counts[p]·stride[p]`, `stride[p] = Π_{q<p}(n_q+1)`), updated
//!   incrementally by `+stride[p]` when the search appends an event of
//!   process `p`. The memo key is the packed `(u128, u64, FormulaId)` triple —
//!   fixed-size, no allocation, O(1) hash/eq. Lattices too large even for
//!   `u128` fall back to interning the count vectors of visited cuts (see
//!   [`CutRanker`]).
//! * **Single-pass accumulation.** Each node's contribution set is assembled
//!   while its children are first explored (every child hands its results to
//!   the parent's sink), so no second walk over the children — and no second
//!   round of progression calls — is needed to populate the memo.
//! * **Per-cut caches.** `cut.enabled()` and `cut.frontier_state()` are
//!   computed once per cut rank and shared across all time steps and pending
//!   formulas that visit the cut.

use crate::memo::{MemoProbe, MemoTable, StagedSlot};
use rvmtl_distrib::{Cut, DistributedComputation, EventId};
use rvmtl_mtl::hashing::FxHashMap;
use rvmtl_mtl::{
    evaluate, ArenaOps, Formula, FormulaId, Interner, ProbeScratch, RangeKind, SplitRange,
    StateKey, TimedTrace,
};
use std::collections::BTreeSet;
use std::mem;
use std::sync::Arc;

/// Which exploration engine a solver runs.
///
/// Both engines execute the *same* search — identical verdict sets and
/// identical [`SolverStats`] on every input, which the `engine_differential`
/// suite asserts across ε sweeps, property suites and both arenas. They
/// differ only in how the search tree is traversed:
///
/// * [`ExploreEngine::WorkStack`] (the default) — the data-oriented core: an
///   explicit work stack over struct-of-arrays frontier batches, batched
///   cache probes, pooled per-depth buffers and staged memo slots (see the
///   crate-level "Data-oriented core" section).
/// * [`ExploreEngine::Reference`] — the retained recursive explorer, kept as
///   the differential baseline and the `--abtest` comparison engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExploreEngine {
    /// Flat work-stack engine over frontier batches (default).
    #[default]
    WorkStack,
    /// Recursive reference engine (differential baseline).
    Reference,
}

/// Generates [`SolverStats`] together with its element-wise combinators from
/// **one** field list, so a counter added here is automatically covered by
/// [`SolverStats::absorb`], [`SolverStats::delta_since`] and
/// [`SolverStats::for_each_field`]. (The previous hand-written `delta_since`
/// silently read 0 for any counter it forgot — a bug class this macro removes
/// structurally; `stats_combinators_cover_every_field` pins it.)
macro_rules! solver_stats {
    ($($(#[$doc:meta])* $field:ident),+ $(,)?) => {
        /// Counters describing the work performed by a query — useful for the
        /// scalability experiments and for regression-testing the memoisation.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct SolverStats {
            $($(#[$doc])* pub $field: usize,)+
        }

        impl SolverStats {
            /// Adds the counters of `other` into `self` (used by the monitor
            /// to aggregate per-segment statistics).
            pub fn absorb(&mut self, other: &SolverStats) {
                $(self.$field += other.$field;)+
            }

            /// The element-wise difference `self − other` (used to carve the
            /// stats of one query out of a solver's cumulative counters).
            pub fn delta_since(&self, other: &SolverStats) -> SolverStats {
                SolverStats {
                    $($field: self.$field - other.$field,)+
                }
            }

            /// Visits every counter as a `(name, value)` pair, in declaration
            /// order. This is the introspection hook the bench pins and the
            /// telemetry bridge build on: a counter added to the macro list
            /// shows up everywhere without further plumbing.
            pub fn for_each_field(&self, mut f: impl FnMut(&'static str, usize)) {
                $(f(stringify!($field), self.$field);)+
            }

            /// Mutable counterpart of [`SolverStats::for_each_field`] (used
            /// by the coverage unit test to fill every field with a distinct
            /// nonzero value without naming the fields).
            pub fn for_each_field_mut(&mut self, mut f: impl FnMut(&'static str, &mut usize)) {
                $(f(stringify!($field), &mut self.$field);)+
            }
        }
    };
}

solver_stats! {
    /// Number of distinct search states explored.
    explored_states,
    /// Number of memoisation hits.
    memo_hits,
    /// Number of complete cut sequences reached.
    completed_sequences,
    /// Number of branches cut off early because the pending formula had
    /// already collapsed to a constant verdict.
    constant_cutoffs,
    /// Number of residual-constant time ranges produced by the
    /// interval-splitting progression (one per `(node, event, residual)`
    /// instead of one per `(node, event, tick)`).
    time_splits,
    /// Number of admissible occurrence times that were *not* explored as
    /// separate search states because their range collapsed to its canonical
    /// earliest point (the per-tick engine would have explored each of them).
    /// Counts both time-invariant uniform ranges and shift-normal translated
    /// ranges.
    merged_time_points,
    /// Number of search nodes that were rewritten to their shift-normal zone
    /// representative before the memo lookup (pending time advanced toward
    /// the first live window, pending formula translated down in step), so a
    /// memo entry earned at one absolute time is a hit at every translate.
    shift_normalized_nodes,
    /// Number of sibling frontier batches progressed against one event in a
    /// single pass: one per `(search node, enabled event)` pair with a
    /// non-empty admissible window. Structural — both explore engines count
    /// the same expansions, so the figure is pinnable.
    frontier_batches,
    /// Number of per-tick cache probes issued through the batched splitter
    /// entry points (`progress_one_over_batched` / `progress_gap_over_batched`
    /// — one contiguous hash-table walk per batch instead of one per tick).
    /// Structural, like `frontier_batches`.
    batched_probe_ticks,
}

/// The result of a progression query on one segment: the set of distinct
/// rewritten formulas, together with solver statistics.
#[derive(Debug, Clone)]
pub struct ProgressionResult {
    /// The distinct progressed formulas, one per distinguishable class of
    /// traces of the segment.
    pub formulas: BTreeSet<Formula>,
    /// Work counters.
    pub stats: SolverStats,
}

impl ProgressionResult {
    /// The set of final verdicts obtained by closing every rewritten formula
    /// against the empty future (finite-trace semantics).
    pub fn verdicts(&self) -> BTreeSet<bool> {
        self.formulas.iter().map(finalize).collect()
    }
}

/// Closes a (possibly rewritten) formula at the end of the computation: any
/// obligation still referring to future observations is resolved by the
/// finite-trace semantics over an empty remainder (`◇` obligations fail, `□`
/// obligations hold vacuously).
pub fn finalize(phi: &Formula) -> bool {
    evaluate(&TimedTrace::empty(), phi)
}

/// A progression query over one segment (or a whole computation).
#[derive(Debug, Clone)]
pub struct ProgressionQuery<'a> {
    comp: &'a DistributedComputation,
    /// Time at which the residuals of the returned formulas are anchored
    /// (the base time of the *next* segment).
    next_anchor: u64,
    /// Stop after this many distinct rewritten formulas have been found
    /// (`usize::MAX` for no limit).
    limit: usize,
    /// Which exploration engine runs the search.
    engine: ExploreEngine,
}

impl<'a> ProgressionQuery<'a> {
    /// Creates a query over `comp` whose residual obligations will be anchored
    /// at `next_anchor` (the base time of the next segment, or any time at or
    /// after the segment's last event for a final segment).
    pub fn new(comp: &'a DistributedComputation, next_anchor: u64) -> Self {
        ProgressionQuery {
            comp,
            next_anchor,
            limit: usize::MAX,
            engine: ExploreEngine::default(),
        }
    }

    /// Selects the exploration engine (default: [`ExploreEngine::WorkStack`]).
    /// Both engines produce identical results and statistics; the reference
    /// engine exists as a differential baseline and A/B comparison point.
    pub fn with_engine(mut self, engine: ExploreEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Limits the number of distinct rewritten formulas to search for; the
    /// query returns as soon as the limit is reached. This mirrors the paper's
    /// repeated SMT invocations with blocked verdicts (Fig. 5e).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is 0. A progression query always produces at least
    /// one rewritten formula on a feasible segment, so a zero limit cannot
    /// mean anything except a caller bug — it used to be silently clamped to
    /// 1, which masked such bugs.
    pub fn with_limit(mut self, limit: usize) -> Self {
        assert!(
            limit > 0,
            "ProgressionQuery::with_limit: the solution limit must be at least 1"
        );
        self.limit = limit;
        self
    }

    /// Runs the query for a pending formula `phi` anchored at the segment's
    /// base time, returning every distinct rewritten formula the segment's
    /// traces can produce.
    pub fn distinct_progressions(&self, phi: &Formula) -> ProgressionResult {
        let mut interner = Interner::new();
        let psi = interner.intern(phi);
        let mut engine = Engine::new(self.comp, self.next_anchor, self.limit, &mut interner);
        engine.mode = self.engine;
        engine.run(psi, &mut |_, _| false);
        let (found, stats) = engine.into_parts();
        ProgressionResult {
            formulas: found.iter().map(|&id| interner.resolve(id)).collect(),
            stats,
        }
    }
}

/// The result of progressing one interned pending formula through a
/// [`SegmentSolver`]: the distinct rewritten formulas as ids in the shared
/// interner, plus the statistics of this query alone.
#[derive(Debug, Clone)]
pub struct InternedProgression {
    /// The distinct rewritten formulas, interned in the solver's shared arena.
    pub formulas: BTreeSet<FormulaId>,
    /// Work counters of this query (not cumulative across queries).
    pub stats: SolverStats,
}

/// A solver for one segment shared by *all* pending formulas of that segment,
/// working directly on [`FormulaId`]s in a caller-owned arena.
///
/// This is the monitor-facing entry point: the memo table, the feasibility
/// cache and the per-cut `enabled`/`frontier` caches are built once per
/// segment and reused by every pending formula progressed through it (memo
/// entries are keyed by the pending formula, so entries produced for one
/// formula are directly reusable by another that rewrites into the same
/// obligation). The arena outlives the solver — the monitor keeps one arena
/// alive across all segments of a query, so the stable parts of the
/// specification are interned exactly once.
///
/// The solver is generic over [`ArenaOps`]: the sequential monitor path hands
/// it an exclusive `&mut Interner`, while parallel paths hand each worker a
/// shared `&ShardedInterner` handle — one solver code path for both (the
/// worker-local memo tables stay private to the solver; only the arena and
/// its progression caches are shared).
pub struct SegmentSolver<'a, 'i, A: ArenaOps = Interner> {
    engine: Engine<'a, 'i, A>,
}

impl<'a, 'i, A: ArenaOps> SegmentSolver<'a, 'i, A> {
    /// Creates a solver for `comp` anchoring residuals at `next_anchor`,
    /// interning formulas in the caller's arena.
    pub fn new(comp: &'a DistributedComputation, next_anchor: u64, interner: &'i mut A) -> Self {
        SegmentSolver {
            engine: Engine::new(comp, next_anchor, usize::MAX, interner),
        }
    }

    /// [`SegmentSolver::new`] continuing from the caches of an earlier solver
    /// of the *same* segment over the *same* arena (see [`SegmentCaches`]).
    /// The pipeline workers of the streaming runtime use this to stop
    /// rebuilding the memo per `(query, segment, formula)` work item.
    pub fn with_caches(
        comp: &'a DistributedComputation,
        next_anchor: u64,
        interner: &'i mut A,
        caches: SegmentCaches,
    ) -> Self {
        SegmentSolver {
            engine: Engine::with_caches(comp, next_anchor, usize::MAX, interner, caches),
        }
    }

    /// Extracts the per-segment caches for reuse by a later solver of the
    /// same segment.
    pub fn into_caches(self) -> SegmentCaches {
        self.engine.caches
    }

    /// Limits the number of distinct rewritten formulas per
    /// [`SegmentSolver::progress`] call.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is 0 (see [`ProgressionQuery::with_limit`]).
    pub fn with_limit(mut self, limit: usize) -> Self {
        assert!(
            limit > 0,
            "SegmentSolver::with_limit: the solution limit must be at least 1"
        );
        self.engine.limit = limit;
        self
    }

    /// Selects the exploration engine (default: [`ExploreEngine::WorkStack`]).
    /// Both engines produce identical results and statistics; the reference
    /// engine exists as a differential baseline and A/B comparison point.
    pub fn with_engine(mut self, engine: ExploreEngine) -> Self {
        self.engine.mode = engine;
        self
    }

    /// Progresses one pending formula over the segment, returning the distinct
    /// rewritten formulas as interner ids.
    pub fn progress(&mut self, psi: FormulaId) -> InternedProgression {
        #[cfg(feature = "test-panic")]
        self.panic_if_marked(psi);
        let before = self.engine.stats;
        self.engine.found.clear();
        self.engine.run(psi, &mut |_, _| false);
        InternedProgression {
            formulas: std::mem::take(&mut self.engine.found),
            stats: self.engine.stats.delta_since(&before),
        }
    }

    /// Cumulative statistics over every query run through this solver.
    pub fn stats(&self) -> SolverStats {
        self.engine.stats
    }

    /// Deterministic failure injection for the `test-panic` feature: a
    /// pending formula mentioning the reserved `__panic__` atom panics at
    /// progression entry — crucially *before* any shard of a shared arena is
    /// locked, so the panic never poisons state other queries depend on —
    /// letting the runtime's panic-isolation path be driven from tests
    /// without unsafe hooks or extra dependencies.
    #[cfg(feature = "test-panic")]
    fn panic_if_marked(&self, psi: FormulaId) {
        let phi = ArenaOps::resolve(&*self.engine.interner, psi);
        if phi.atoms().iter().any(|p| p.name() == "__panic__") {
            panic!("test-panic: progressing a formula marked with the __panic__ atom");
        }
    }
}

/// Convenience wrapper: the set of distinct rewritten formulas of `phi` over
/// `comp`, anchoring residuals at `next_anchor`.
pub fn distinct_progressions(
    comp: &DistributedComputation,
    phi: &Formula,
    next_anchor: u64,
) -> BTreeSet<Formula> {
    ProgressionQuery::new(comp, next_anchor)
        .distinct_progressions(phi)
        .formulas
}

/// The set of verdicts `[(E, ⇝) ⊨F φ]` of a complete computation, computed
/// symbolically (without enumerating traces). Agrees with
/// [`rvmtl_distrib::all_verdicts`] — that equivalence is checked by the
/// differential tests.
pub fn possible_verdicts(comp: &DistributedComputation, phi: &Formula) -> BTreeSet<bool> {
    let anchor = comp.max_local_time() + comp.epsilon();
    ProgressionQuery::new(comp, anchor)
        .distinct_progressions(phi)
        .verdicts()
}

/// Returns `true` if some trace of the computation yields the verdict
/// `target`; stops searching as soon as a witness is found.
pub fn exists_verdict(comp: &DistributedComputation, phi: &Formula, target: bool) -> bool {
    // Verdicts are a projection of the rewritten formulas, so search all of
    // them but stop as soon as one with the requested verdict appears.
    let anchor = comp.max_local_time() + comp.epsilon();
    let mut interner = Interner::new();
    let psi = interner.intern(phi);
    let mut engine = Engine::new(comp, anchor, usize::MAX, &mut interner);
    engine.run(psi, &mut |interner, id| interner.eval_empty(id) == target)
}

/// Memo key of a search node: `(cut rank, canonical pending time, pending
/// formula)`. Fixed-size, allocation-free, O(1) hash and equality.
///
/// A node stands for every admissible pending time of a *range* when the
/// pending formula is time-invariant or the range sweeps one shift-normal
/// zone; the canonical representative of such a range is its earliest time
/// (see [`Engine::explore`]). Nodes are additionally rewritten to their
/// *zone representative* before the lookup (see [`Engine::canonical_node`]):
/// while every live window lies strictly in the future, the pending time is
/// advanced toward the window anchor and the pending formula translated down
/// in step, so translates of one obligation encountered at different
/// absolute times share a single memo entry.
type NodeKey = (u128, u64, FormulaId);

/// The per-segment solver caches: the search memo, the feasibility cache,
/// the per-cut `enabled`/`frontier`/earliest-window caches and the cut
/// ranker.
///
/// Extracted from the engine so callers that progress *many* pending
/// formulas through the same segment — most importantly the streaming
/// runtime's pipeline workers, which receive one `(query, segment, formula)`
/// work item at a time — can carry the caches from one [`SegmentSolver`] to
/// the next with [`SegmentSolver::with_caches`] /
/// [`SegmentSolver::into_caches`] instead of rebuilding them per work item.
/// All contained state is deterministic for a given computation (memo
/// entries are complete contribution sets, ranks are mixed-radix), so two
/// instances built independently can be merged with
/// [`SegmentCaches::absorb`].
pub struct SegmentCaches {
    /// Maps cuts to unique ranks (see [`CutRanker`]).
    ranker: CutRanker,
    /// Contribution sets per node, stored as sorted deduplicated boxed
    /// slices (the sets are tiny for most nodes; a flat slice beats a tree
    /// set on both build and replay, and `Box` keeps the caches `Send` so
    /// pipeline workers can hand them around). The open-addressed
    /// [`MemoTable`] folds the activation lookup and the completion insert
    /// into a single hash walk per node via staged slots.
    memo: MemoTable<NodeKey, Box<[FormulaId]>>,
    feasibility: FxHashMap<(u128, u64), bool>,
    /// `cut.enabled()` per cut rank.
    enabled_cache: FxHashMap<u128, Arc<[EventId]>>,
    /// `cut.frontier_state()` per cut rank, pre-interned in the formula arena
    /// so progressions against it are memoised on a 4-byte key.
    frontier_cache: FxHashMap<u128, StateKey>,
    /// Earliest admissible window start over the enabled events, per cut
    /// rank — the bound up to which a node's pending time can be advanced
    /// without changing its children (see [`Engine::canonical_node`]).
    min_lo_cache: FxHashMap<u128, u64>,
    /// Key/result buffers of the batched probe splitters, pooled across
    /// every progression of the segment (scratch, never merged by `absorb`).
    probe: ProbeScratch,
    /// Residual ranges of the event currently being progressed (scratch).
    splits: Vec<SplitRange>,
    /// Pooled per-depth frames and cuts of the work-stack engine (scratch).
    stack: StackScratch,
}

impl SegmentCaches {
    /// Fresh caches for one segment.
    pub fn new(comp: &DistributedComputation) -> Self {
        SegmentCaches {
            ranker: CutRanker::new(comp),
            memo: MemoTable::default(),
            feasibility: FxHashMap::default(),
            enabled_cache: FxHashMap::default(),
            frontier_cache: FxHashMap::default(),
            min_lo_cache: FxHashMap::default(),
            probe: ProbeScratch::default(),
            splits: Vec::new(),
            stack: StackScratch::default(),
        }
    }

    /// Merges another instance built for the *same segment over the same
    /// arena* into this one. With mixed-radix ranks every key is globally
    /// deterministic, so the union is exact; in the interned-rank fallback
    /// (astronomically large lattices) the two instances may have assigned
    /// ranks differently and `other` is discarded instead.
    pub fn absorb(&mut self, other: SegmentCaches) {
        if !matches!(self.ranker, CutRanker::Strides(_))
            || !matches!(other.ranker, CutRanker::Strides(_))
        {
            return;
        }
        for (key, value) in other.memo.into_entries() {
            self.memo.insert(key, value);
        }
        self.feasibility.extend(other.feasibility);
        self.enabled_cache.extend(other.enabled_cache);
        self.frontier_cache.extend(other.frontier_cache);
        self.min_lo_cache.extend(other.min_lo_cache);
        // `other`'s probe/splits/stack scratch carries no results — dropped.
    }

    /// Number of memoised search nodes (diagnostic).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

/// Assigns every cut of one computation a unique `u128` rank.
///
/// The fast path ranks a cut by its mixed-radix value over the per-process
/// event counts (`rank = Σ counts[p]·stride[p]`), maintained incrementally by
/// `+stride[p]` as the search appends events. When the lattice has more than
/// `u128::MAX` points (hundreds of mostly-idle processes — the lattice is
/// astronomically larger than anything the search will visit, which prunes
/// through time windows), ranks fall back to interning the count vectors of
/// the cuts actually reached, which stay dense.
enum CutRanker {
    Strides(Vec<u128>),
    Interned(FxHashMap<Box<[usize]>, u128>),
}

impl CutRanker {
    fn new(comp: &DistributedComputation) -> Self {
        let mut strides = Vec::with_capacity(comp.process_count());
        let mut acc: u128 = 1;
        for p in 0..comp.process_count() {
            strides.push(acc);
            let radix = comp.events_of(p.into()).len() as u128 + 1;
            acc = match acc.checked_mul(radix) {
                Some(next) => next,
                None => return CutRanker::Interned(FxHashMap::default()),
            };
        }
        CutRanker::Strides(strides)
    }

    /// The rank of the empty cut. In the interned mode rank 0 is reserved for
    /// it: the empty cut is never produced by `child` (every child contains at
    /// least one event), and `child` assigns ids starting at 1.
    fn root(&mut self) -> u128 {
        0
    }

    /// The rank of `next_cut`, reached from a cut of rank `parent` by one
    /// event of `process`.
    fn child(&mut self, parent: u128, next_cut: &Cut, process: usize) -> u128 {
        match self {
            CutRanker::Strides(strides) => parent + strides[process],
            CutRanker::Interned(ids) => {
                // Ids start at 1; 0 names the empty cut (see `root`).
                let next = ids.len() as u128 + 1;
                *ids.entry(next_cut.counts().into()).or_insert(next)
            }
        }
    }
}

/// One level of the work-stack engine: a search node mid-expansion holding
/// the flat struct-of-arrays batch of sibling children produced for the
/// event currently being progressed. Frames are pooled per depth in
/// [`StackScratch`] and reinitialised in place, so steady-state descent
/// allocates nothing.
struct Frame {
    /// Cut rank of the node (the cut itself lives at the same index of the
    /// parallel `StackScratch::cuts` array).
    rank: u128,
    /// Canonical pending time of the node.
    time: u64,
    /// Canonical pending formula of the node.
    psi: FormulaId,
    /// Memo slot reserved at activation, redeemed at completion.
    slot: StagedSlot,
    /// Whether the node's cut is empty (gap progression) or not (frontier
    /// progression).
    empty_cut: bool,
    /// The node's enabled events.
    enabled: Arc<[EventId]>,
    /// Next enabled event to progress against.
    event_ix: usize,
    /// Rank of the child cut for the event currently batched.
    next_rank: u128,
    /// SoA sibling batch for the current event: canonical pending times…
    batch_times: Vec<u64>,
    /// …residual pending formulas…
    batch_ids: Vec<FormulaId>,
    /// …and merged-away time points per sibling (the width of the range the
    /// sibling canonically represents; 0 for per-tick children).
    batch_merged: Vec<u64>,
    /// Next sibling of the batch to activate.
    child_ix: usize,
    /// The node's contribution set, assembled as its children finish.
    local: Vec<FormulaId>,
}

impl Frame {
    fn new() -> Self {
        Frame {
            rank: 0,
            time: 0,
            psi: FormulaId::TRUE,
            slot: StagedSlot::invalid(),
            empty_cut: true,
            enabled: Vec::new().into(),
            event_ix: 0,
            next_rank: 0,
            batch_times: Vec::new(),
            batch_ids: Vec::new(),
            batch_merged: Vec::new(),
            child_ix: 0,
            local: Vec::new(),
        }
    }
}

/// The pooled per-depth state of the work-stack engine: one [`Frame`] and one
/// [`Cut`] per search depth, grown on first use and reused across every
/// progression of the segment.
///
/// Invariant: `cuts[0]` is the empty cut and is never rewritten — the driver
/// only ever writes `cuts[depth + 1]` (via [`Cut::extended_into`]), and depth
/// starts at 0.
#[derive(Default)]
struct StackScratch {
    frames: Vec<Frame>,
    cuts: Vec<Cut>,
}

impl StackScratch {
    /// Ensures depth `depth + 1` (a frame and cut for both the level and its
    /// child) exists.
    fn ensure_levels(&mut self, depth: usize, process_count: usize) {
        while self.frames.len() < depth + 2 {
            self.frames.push(Frame::new());
        }
        while self.cuts.len() < depth + 2 {
            self.cuts.push(Cut::empty(process_count));
        }
    }
}

/// Outcome of activating a search node in the work-stack engine.
enum Activation {
    /// The node resolved without descending (memo hit, constant cutoff, dead
    /// branch or completed sequence); the flag is the node's stop signal
    /// (`stop` accepted a formula or the limit was reached).
    Finished(bool),
    /// The node initialised its frame and the driver must descend into it.
    Descended,
}

/// One driver-loop action, computed inside the borrow region over the split
/// frame/cut arrays and executed after those borrows end.
enum Action {
    /// Nothing to do (empty window, sibling handed off, batch refilled).
    Advance,
    /// A child frame was initialised; descend.
    Descend,
    /// The frame at the current depth finished without stopping; pop.
    Pop,
    /// The root frame finished with the given stop signal.
    Return(bool),
    /// A stop signal fired at the current depth; unwind raw contribution
    /// sets from `depth` to the root and return `true`.
    Unwind,
    /// The frame at the current depth finished *with* a stop signal: pop
    /// first, then unwind from the parent.
    PopUnwind,
}

struct Engine<'a, 'i, A: ArenaOps> {
    comp: &'a DistributedComputation,
    next_anchor: u64,
    limit: usize,
    /// Hash-consed formula arena, borrowed from the caller so it can span
    /// several segments (and every pending formula of each).
    interner: &'i mut A,
    /// The per-segment caches (memo, feasibility, per-cut tables, ranker) —
    /// extractable so callers can share them across solvers of one segment.
    caches: SegmentCaches,
    stats: SolverStats,
    found: BTreeSet<FormulaId>,
    /// Which traversal runs the search (see [`ExploreEngine`]).
    mode: ExploreEngine,
}

/// Early-stop predicate over found formulas; receives the arena so it can
/// inspect (e.g. finalize) the formula without resolving it to a tree.
type StopFn<'s, A> = dyn FnMut(&A, FormulaId) -> bool + 's;

impl<'a, 'i, A: ArenaOps> Engine<'a, 'i, A> {
    fn new(
        comp: &'a DistributedComputation,
        next_anchor: u64,
        limit: usize,
        interner: &'i mut A,
    ) -> Self {
        Engine::with_caches(comp, next_anchor, limit, interner, SegmentCaches::new(comp))
    }

    fn with_caches(
        comp: &'a DistributedComputation,
        next_anchor: u64,
        limit: usize,
        interner: &'i mut A,
        caches: SegmentCaches,
    ) -> Self {
        Engine {
            comp,
            next_anchor,
            limit,
            interner,
            caches,
            stats: SolverStats::default(),
            found: BTreeSet::new(),
            mode: ExploreEngine::default(),
        }
    }

    /// Explores the full search space for `psi`. Returns `true` if `stop`
    /// accepted a formula (or the limit was reached) before exhaustion.
    fn run(&mut self, psi: FormulaId, stop: &mut StopFn<'_, A>) -> bool {
        let mut sink = Vec::new();
        match self.mode {
            ExploreEngine::WorkStack => self.run_stack(psi, stop, &mut sink),
            ExploreEngine::Reference => {
                let initial_cut = Cut::empty(self.comp.process_count());
                let root = self.caches.ranker.root();
                self.explore(
                    &initial_cut,
                    root,
                    self.comp.base_time(),
                    psi,
                    stop,
                    &mut sink,
                )
            }
        }
    }

    fn into_parts(self) -> (BTreeSet<FormulaId>, SolverStats) {
        (self.found, self.stats)
    }

    /// The events that can consistently extend the cut, computed once per cut
    /// rank.
    fn enabled(&mut self, cut: &Cut, rank: u128) -> Arc<[EventId]> {
        if let Some(cached) = self.caches.enabled_cache.get(&rank) {
            return Arc::clone(cached);
        }
        let enabled: Arc<[EventId]> = cut.enabled(self.comp).into();
        self.caches.enabled_cache.insert(rank, Arc::clone(&enabled));
        enabled
    }

    /// The frontier state of the cut, computed and interned once per cut
    /// rank.
    fn frontier(&mut self, cut: &Cut, rank: u128) -> StateKey {
        if let Some(&cached) = self.caches.frontier_cache.get(&rank) {
            return cached;
        }
        let key = self.interner.intern_state(&cut.frontier_state(self.comp));
        self.caches.frontier_cache.insert(rank, key);
        key
    }

    /// The earliest admissible window start over the cut's enabled events,
    /// computed once per cut rank. A node whose pending time lies below this
    /// bound schedules its next event in exactly the same time range as a
    /// node at the bound — pending time only matters once it *clips* a
    /// window.
    fn min_enabled_lo(&mut self, cut: &Cut, rank: u128) -> u64 {
        if let Some(&cached) = self.caches.min_lo_cache.get(&rank) {
            return cached;
        }
        let enabled = self.enabled(cut, rank);
        let min_lo = enabled
            .iter()
            .map(|&event| self.comp.time_window(event).0)
            .min()
            .unwrap_or(0);
        self.caches.min_lo_cache.insert(rank, min_lo);
        min_lo
    }

    /// Rewrites a search node to its *shift-normal zone representative*
    /// before memo lookup and exploration. Sound whenever advancing the
    /// pending time does not change the node's subtree:
    ///
    /// * the pending time may advance up to [`Engine::min_enabled_lo`] —
    ///   below that bound it clips no event window, so the children (event,
    ///   occurrence-time) pairs are unchanged;
    /// * a time-invariant pending formula is unaffected by the advance (its
    ///   progressions ignore elapsed time), so the node at the bound is
    ///   *equal* to the original;
    /// * a pending formula with shift slack σ ≥ 1 is translated down in step
    ///   with the advance (capped at σ − 1, so the first window stays
    ///   strictly in the future and the observation keeps falling outside
    ///   it): by the translation lemma of
    ///   [`rvmtl_mtl::Interner::shift_slack`] the progressions of the
    ///   translated pair coincide with the original's at every matching
    ///   absolute time.
    ///
    /// Two obligations that are time-translates of each other therefore meet
    /// in one memo entry keyed by their common zone representative — a memo
    /// entry earned at one absolute time is a hit at every translate.
    ///
    /// # Shift-free fast path
    ///
    /// When the arena's shift watermark ([`ArenaOps::ever_shifted`]) is down
    /// — no node with a nonzero finite slack was ever interned, the common
    /// case for specifications whose windows all start at zero — every
    /// pending formula provably has slack 0 or `u64::MAX`, so the only
    /// rewrite this method can ever perform is the time-invariant advance.
    /// The fast path decides that from the fused metadata record alone and
    /// skips the zone branching wholesale; by construction it returns exactly
    /// what the general path would, so search shapes (and the pinned
    /// explored-state counts) are bit-identical with the watermark up or
    /// down.
    fn canonical_node(
        &mut self,
        cut: &Cut,
        rank: u128,
        pending_time: u64,
        psi: FormulaId,
    ) -> (u64, FormulaId) {
        // One fused read serves the invariance check and the slack branch.
        let meta = self.interner.node_meta(psi);
        let invariant = meta.horizon == 0;
        if !self.interner.ever_shifted() {
            // Shift-free arena: slack is 0 (open window — no rewrite) or MAX
            // (propositional, hence invariant). Only the invariant advance
            // below can apply.
            if !invariant {
                return (pending_time, psi);
            }
        } else if !invariant && (meta.slack == 0 || meta.slack == u64::MAX) {
            // Cheap early-out for the common case: a formula with an open
            // window (slack 0) and time-dependent progression admits no
            // rewrite at all — skip the per-cut bound lookup entirely.
            return (pending_time, psi);
        }
        let bound = if cut.is_full(self.comp) {
            // No events left: only the final anchor remains, and the step to
            // it tolerates any pending time up to the anchor.
            self.next_anchor
        } else {
            self.min_enabled_lo(cut, rank)
        };
        if pending_time >= bound {
            return (pending_time, psi);
        }
        if invariant {
            self.stats.shift_normalized_nodes += 1;
            return (bound, psi);
        }
        let canonical_time = bound.min(pending_time.saturating_add(meta.slack - 1));
        if canonical_time == pending_time {
            return (pending_time, psi);
        }
        let translated = self
            .interner
            .translate_down(psi, canonical_time - pending_time);
        self.stats.shift_normalized_nodes += 1;
        (canonical_time, translated)
    }

    /// Returns `true` if the remaining events of `cut` can be scheduled with
    /// monotone times starting at `pending_time` (every event within its ±ε
    /// window). Used to close branches whose pending formula has already
    /// collapsed to a constant: the constant only counts as a solution if the
    /// cut sequence can actually be completed.
    fn can_complete(&mut self, cut: &Cut, rank: u128, pending_time: u64) -> bool {
        if cut.is_full(self.comp) {
            return true;
        }
        let key = (rank, pending_time);
        if let Some(&cached) = self.caches.feasibility.get(&key) {
            return cached;
        }
        let mut feasible = false;
        let enabled = self.enabled(cut, rank);
        for &event in enabled.iter() {
            let (lo, hi) = self.comp.time_window(event);
            let lo = lo.max(pending_time);
            if lo > hi {
                continue;
            }
            let next_cut = cut.extended(self.comp, event);
            let next_rank =
                self.caches
                    .ranker
                    .child(rank, &next_cut, self.comp.event(event).process.0);
            // Scheduling the event as early as possible dominates any later
            // choice for feasibility purposes.
            if self.can_complete(&next_cut, next_rank, lo) {
                feasible = true;
                break;
            }
        }
        self.caches.feasibility.insert(key, feasible);
        feasible
    }

    /// Progression of the pending formula when one more observation (or the
    /// end of the segment) arrives at time `next_time`. The pending formula
    /// is anchored at `pending_time` (for the empty cut that is the
    /// segment's base, possibly advanced by the zone canonicalisation — the
    /// formula was translated down in step, so the gap is measured from the
    /// canonical anchor).
    fn step(
        &mut self,
        cut: &Cut,
        rank: u128,
        pending_time: u64,
        psi: FormulaId,
        next_time: u64,
    ) -> FormulaId {
        if cut.size() == 0 {
            // No observation is pending yet: only time has passed since the
            // formula's anchor.
            self.interner
                .progress_gap_cached(psi, next_time.saturating_sub(pending_time))
        } else {
            let key = self.frontier(cut, rank);
            self.interner
                .progress_one_cached(key, psi, next_time.saturating_sub(pending_time))
        }
    }

    /// Explores the search space rooted at the given node. Every final
    /// rewritten formula of the subtree is inserted into `self.found` and into
    /// the caller's `sink` (the parent node's contribution set, assembled in
    /// this same pass — this is what makes the search single-pass). Returns
    /// `true` (and stops) as soon as `stop` accepts one of the found formulas
    /// or the configured limit is reached; a node abandoned early caches
    /// nothing, so the memo only ever holds complete contribution sets.
    ///
    /// # Time-interval abstraction and shift-normal zones
    ///
    /// The admissible occurrence times of an enabled event are *not* branched
    /// on one tick at a time. The window is partitioned by
    /// [`Interner::progress_one_over`] into maximal [`rvmtl_mtl::SplitRange`]s,
    /// and each range contributes:
    ///
    /// * **one** child node at the range's earliest time when the residual is
    ///   time-invariant ([`Interner::is_time_invariant`]). This is sound and
    ///   complete because a time-invariant pending formula rewrites the same
    ///   way along every schedule regardless of timing, so the set of final
    ///   formulas reachable from pending time `t` is exactly the set of
    ///   event schedules completable with monotone in-window times `≥ t` —
    ///   which shrinks monotonically in `t`. The union over a range therefore
    ///   equals the contribution of its infimum, which becomes the range's
    ///   canonical memo representative.
    /// * **one** child node at the earliest time of a
    ///   [`RangeKind::Translated`] range — the ticks of such a range sweep
    ///   one shift-normal zone (the residuals are exact time-translates with
    ///   a common window anchor and shifts ≥ 1), so later members schedule a
    ///   subset of the event times available to the earliest one while
    ///   producing identical residuals at matching absolute times: their
    ///   contributions nest, and the union over the range again equals the
    ///   contribution of its infimum. This is what caps the per-event
    ///   branching at the live window *width* (plus the open-window ticks)
    ///   instead of the full temporal horizon — the ε-saturation point of a
    ///   delayed-window formula drops below its horizon.
    /// * one child node per tick otherwise (the residual still holds a live
    ///   open bounded interval, so different pending times genuinely differ)
    ///   — but the residual itself is computed once per range, not per tick.
    fn explore(
        &mut self,
        cut: &Cut,
        rank: u128,
        pending_time: u64,
        psi: FormulaId,
        stop: &mut StopFn<'_, A>,
        sink: &mut Vec<FormulaId>,
    ) -> bool {
        if self.found.len() >= self.limit {
            return true;
        }
        // Rewrite to the zone representative first: translates of one
        // obligation share a single memo entry and a single subtree.
        let (pending_time, psi) = self.canonical_node(cut, rank, pending_time, psi);
        let key: NodeKey = (rank, pending_time, psi);
        if let Some(cached) = self.caches.memo.get(&key) {
            self.stats.memo_hits += 1;
            sink.extend(cached.iter().copied());
            // Field-disjoint borrows: the cached slice lives in
            // `self.caches`, the replay touches only `found`/`interner`.
            let (found, interner, limit) = (&mut self.found, &mut *self.interner, self.limit);
            for &f in cached.iter() {
                let hit = stop(interner, f);
                found.insert(f);
                if hit || found.len() >= limit {
                    return true;
                }
            }
            return false;
        }
        self.stats.explored_states += 1;
        let mut local: Vec<FormulaId> = Vec::new();
        let mut stopped = false;

        if psi.is_constant() && self.can_complete(cut, rank, pending_time) {
            // The verdict can no longer change: every feasible extension
            // produces the same rewritten formula.
            self.stats.constant_cutoffs += 1;
            local.push(psi);
        } else if psi.is_constant() {
            // Dead branch: the remaining events cannot be scheduled, so this
            // partial interleaving corresponds to no trace at all.
        } else if cut.is_full(self.comp) {
            self.stats.completed_sequences += 1;
            let final_formula = self.step(cut, rank, pending_time, psi, self.next_anchor);
            local.push(final_formula);
        } else {
            let enabled = self.enabled(cut, rank);
            'outer: for &event in enabled.iter() {
                let (lo, hi) = self.comp.time_window(event);
                let lo = lo.max(pending_time);
                if lo > hi {
                    continue;
                }
                let next_cut = cut.extended(self.comp, event);
                let next_rank =
                    self.caches
                        .ranker
                        .child(rank, &next_cut, self.comp.event(event).process.0);
                // One batched splitter call per (node, event): the cache
                // probes for the whole admissible window are issued as one
                // contiguous walk, misses resolved together.
                let mut splits: Vec<SplitRange> = Vec::new();
                let probes = if cut.size() == 0 {
                    // No observation is pending yet: only time has passed
                    // since the formula's (canonical) anchor.
                    self.interner.progress_gap_over_batched(
                        psi,
                        pending_time,
                        lo,
                        hi,
                        &mut self.caches.probe,
                        &mut splits,
                    )
                } else {
                    let key = self.frontier(cut, rank);
                    self.interner.progress_one_over_batched(
                        key,
                        pending_time,
                        psi,
                        lo,
                        hi,
                        &mut self.caches.probe,
                        &mut splits,
                    )
                };
                self.stats.frontier_batches += 1;
                self.stats.batched_probe_ticks += probes;
                self.stats.time_splits += splits.len();
                for range in splits {
                    let collapse = range.kind == RangeKind::Translated
                        || self.interner.is_time_invariant(range.residual);
                    if collapse {
                        // The whole range is subsumed by its earliest time
                        // (see the method documentation).
                        self.stats.merged_time_points += (range.hi - range.lo) as usize;
                        stopped |= self.explore(
                            &next_cut,
                            next_rank,
                            range.lo,
                            range.residual,
                            stop,
                            &mut local,
                        );
                        if stopped {
                            break 'outer;
                        }
                    } else {
                        for t in range.lo..=range.hi {
                            stopped |= self.explore(
                                &next_cut,
                                next_rank,
                                t,
                                range.residual,
                                stop,
                                &mut local,
                            );
                            if stopped {
                                break 'outer;
                            }
                        }
                    }
                }
            }
            if stopped {
                // Partial exploration: surface what was found but do not
                // memoise an incomplete set.
                sink.extend(local.iter().copied());
                return true;
            }
        }

        // Children of different events/time ranges may have contributed the
        // same rewritten formula; canonicalise once per node.
        local.sort_unstable();
        local.dedup();
        for &f in &local {
            if stop(self.interner, f) {
                stopped = true;
            }
            self.found.insert(f);
        }
        sink.extend(local.iter().copied());
        self.caches.memo.insert(key, local.into());
        stopped || self.found.len() >= self.limit
    }

    /// Work-stack traversal: the same search as [`Engine::explore`] (same
    /// visit order, same stats, same memo content) driven by an explicit
    /// stack of pooled [`Frame`]s instead of recursion. The scratch is taken
    /// out of the caches for the duration of the run so the driver can split
    /// its arrays while calling `&mut self` methods.
    fn run_stack(
        &mut self,
        psi: FormulaId,
        stop: &mut StopFn<'_, A>,
        sink: &mut Vec<FormulaId>,
    ) -> bool {
        let mut scratch = mem::take(&mut self.caches.stack);
        let stopped = self.drive(&mut scratch, psi, stop, sink);
        self.caches.stack = scratch;
        stopped
    }

    fn drive(
        &mut self,
        scratch: &mut StackScratch,
        psi: FormulaId,
        stop: &mut StopFn<'_, A>,
        sink: &mut Vec<FormulaId>,
    ) -> bool {
        let process_count = self.comp.process_count();
        scratch.ensure_levels(0, process_count);
        let root_rank = self.caches.ranker.root();
        let base_time = self.comp.base_time();
        {
            let root_cut = &scratch.cuts[0];
            let root_frame = &mut scratch.frames[0];
            match self.activate(root_cut, root_rank, base_time, psi, stop, sink, root_frame) {
                Activation::Finished(stopped) => return stopped,
                Activation::Descended => {}
            }
        }
        let mut depth = 0usize;
        loop {
            scratch.ensure_levels(depth, process_count);
            // Split the pooled arrays around `depth` so the node's cut/frame,
            // its child's cut/frame and its parent's sink can be borrowed
            // simultaneously (all disjoint from `self`).
            let action = {
                let (cuts_here, cuts_child) = scratch.cuts.split_at_mut(depth + 1);
                let cut = &cuts_here[depth];
                let child_cut = &mut cuts_child[0];
                let (frames_above, frames_here) = scratch.frames.split_at_mut(depth);
                let (frame, child_frame) = match frames_here {
                    [frame, child_frame, ..] => (frame, child_frame),
                    _ => unreachable!("ensure_levels grew the frame pool"),
                };
                if frame.child_ix < frame.batch_times.len() {
                    // Phase A: activate the next sibling of the current
                    // batch. The range width it canonically represents is
                    // accounted before activation, exactly where the
                    // recursive engine counts it.
                    let i = frame.child_ix;
                    frame.child_ix += 1;
                    self.stats.merged_time_points += frame.batch_merged[i] as usize;
                    match self.activate(
                        child_cut,
                        frame.next_rank,
                        frame.batch_times[i],
                        frame.batch_ids[i],
                        stop,
                        &mut frame.local,
                        child_frame,
                    ) {
                        Activation::Finished(true) => Action::Unwind,
                        Activation::Finished(false) => Action::Advance,
                        Activation::Descended => Action::Descend,
                    }
                } else if frame.event_ix < frame.enabled.len() {
                    // Phase B: progress the node against its next enabled
                    // event and flatten the resulting residual ranges into
                    // the SoA sibling batch.
                    let event = frame.enabled[frame.event_ix];
                    frame.event_ix += 1;
                    let (lo, hi) = self.comp.time_window(event);
                    let lo = lo.max(frame.time);
                    if lo > hi {
                        Action::Advance
                    } else {
                        cut.extended_into(self.comp, event, child_cut);
                        frame.next_rank = self.caches.ranker.child(
                            frame.rank,
                            child_cut,
                            self.comp.event(event).process.0,
                        );
                        let probes = if frame.empty_cut {
                            self.interner.progress_gap_over_batched(
                                frame.psi,
                                frame.time,
                                lo,
                                hi,
                                &mut self.caches.probe,
                                &mut self.caches.splits,
                            )
                        } else {
                            let key = self.frontier(cut, frame.rank);
                            self.interner.progress_one_over_batched(
                                key,
                                frame.time,
                                frame.psi,
                                lo,
                                hi,
                                &mut self.caches.probe,
                                &mut self.caches.splits,
                            )
                        };
                        self.stats.frontier_batches += 1;
                        self.stats.batched_probe_ticks += probes;
                        self.stats.time_splits += self.caches.splits.len();
                        frame.batch_times.clear();
                        frame.batch_ids.clear();
                        frame.batch_merged.clear();
                        frame.child_ix = 0;
                        for range in self.caches.splits.iter() {
                            let collapse = range.kind == RangeKind::Translated
                                || self.interner.is_time_invariant(range.residual);
                            if collapse {
                                // The whole range is subsumed by its
                                // earliest time (see [`Engine::explore`]).
                                frame.batch_times.push(range.lo);
                                frame.batch_ids.push(range.residual);
                                frame.batch_merged.push(range.hi - range.lo);
                            } else {
                                for t in range.lo..=range.hi {
                                    frame.batch_times.push(t);
                                    frame.batch_ids.push(range.residual);
                                    frame.batch_merged.push(0);
                                }
                            }
                        }
                        Action::Advance
                    }
                } else {
                    // Phase C: every event batched and every sibling
                    // activated — the node's contribution set is complete.
                    let key: NodeKey = (frame.rank, frame.time, frame.psi);
                    let parent_sink: &mut Vec<FormulaId> = match frames_above.last_mut() {
                        Some(parent) => &mut parent.local,
                        None => &mut *sink,
                    };
                    let stopped =
                        self.finish_node(key, frame.slot, &mut frame.local, parent_sink, stop);
                    if depth == 0 {
                        Action::Return(stopped)
                    } else if stopped {
                        Action::PopUnwind
                    } else {
                        Action::Pop
                    }
                }
            };
            match action {
                Action::Advance => {}
                Action::Descend => depth += 1,
                Action::Pop => depth -= 1,
                Action::Return(stopped) => return stopped,
                Action::Unwind => {
                    unwind_raw(scratch, depth, sink);
                    return true;
                }
                Action::PopUnwind => {
                    depth -= 1;
                    unwind_raw(scratch, depth, sink);
                    return true;
                }
            }
        }
    }

    /// Activates a search node in the work-stack engine: the limit check,
    /// zone canonicalisation, staged memo probe and leaf resolution of
    /// [`Engine::explore`], in the same order. Interior nodes initialise
    /// `frame` in place and descend.
    #[allow(clippy::too_many_arguments)]
    fn activate(
        &mut self,
        cut: &Cut,
        rank: u128,
        pending_time: u64,
        psi: FormulaId,
        stop: &mut StopFn<'_, A>,
        parent_sink: &mut Vec<FormulaId>,
        frame: &mut Frame,
    ) -> Activation {
        if self.found.len() >= self.limit {
            return Activation::Finished(true);
        }
        let (time, psi) = self.canonical_node(cut, rank, pending_time, psi);
        let key: NodeKey = (rank, time, psi);
        // One hash walk serves both the activation lookup and (on a miss)
        // the completion insert, via the staged slot.
        let slot = match self.caches.memo.probe(&key) {
            MemoProbe::Hit(ix) => {
                self.stats.memo_hits += 1;
                let cached = self.caches.memo.value(ix);
                parent_sink.extend(cached.iter().copied());
                // Field-disjoint borrows: the cached slice lives in
                // `self.caches`, the replay touches only `found`/`interner`.
                let (found, interner, limit) = (&mut self.found, &mut *self.interner, self.limit);
                for &f in cached.iter() {
                    let hit = stop(interner, f);
                    found.insert(f);
                    if hit || found.len() >= limit {
                        return Activation::Finished(true);
                    }
                }
                return Activation::Finished(false);
            }
            MemoProbe::Miss(slot) => slot,
        };
        self.stats.explored_states += 1;
        if psi.is_constant() {
            frame.local.clear();
            if self.can_complete(cut, rank, time) {
                // The verdict can no longer change: every feasible extension
                // produces the same rewritten formula.
                self.stats.constant_cutoffs += 1;
                frame.local.push(psi);
            }
            // (An empty set is the dead-branch case: the remaining events
            // cannot be scheduled, so this partial interleaving corresponds
            // to no trace at all.)
            let stopped = self.finish_node(key, slot, &mut frame.local, parent_sink, stop);
            return Activation::Finished(stopped);
        }
        if cut.is_full(self.comp) {
            self.stats.completed_sequences += 1;
            let final_formula = self.step(cut, rank, time, psi, self.next_anchor);
            frame.local.clear();
            frame.local.push(final_formula);
            let stopped = self.finish_node(key, slot, &mut frame.local, parent_sink, stop);
            return Activation::Finished(stopped);
        }
        frame.rank = rank;
        frame.time = time;
        frame.psi = psi;
        frame.slot = slot;
        frame.empty_cut = cut.size() == 0;
        frame.enabled = self.enabled(cut, rank);
        frame.event_ix = 0;
        frame.next_rank = 0;
        frame.batch_times.clear();
        frame.batch_ids.clear();
        frame.batch_merged.clear();
        frame.child_ix = 0;
        frame.local.clear();
        Activation::Descended
    }

    /// Completes a node: canonicalises its contribution set, scans it
    /// against `stop`/`found`, hands it to the parent's sink and redeems the
    /// staged memo slot. Mirrors the tail of [`Engine::explore`] exactly
    /// (including scanning the full set even after a stop hit — the set is
    /// complete, so it is memoised either way).
    fn finish_node(
        &mut self,
        key: NodeKey,
        slot: StagedSlot,
        local: &mut Vec<FormulaId>,
        parent_sink: &mut Vec<FormulaId>,
        stop: &mut StopFn<'_, A>,
    ) -> bool {
        local.sort_unstable();
        local.dedup();
        let mut stopped = false;
        for &f in local.iter() {
            if stop(self.interner, f) {
                stopped = true;
            }
            self.found.insert(f);
        }
        parent_sink.extend(local.iter().copied());
        self.caches
            .memo
            .insert_staged(slot, key, local.as_slice().into());
        stopped || self.found.len() >= self.limit
    }
}

/// Drains the raw (unsorted, unmemoised) contribution sets from `from` down
/// to the root into `sink` — the work-stack analog of the recursive engine's
/// early-stop path, where every ancestor surfaces what was found so far but
/// memoises nothing (its set is incomplete).
fn unwind_raw(scratch: &mut StackScratch, from: usize, sink: &mut Vec<FormulaId>) {
    let mut depth = from;
    loop {
        if depth == 0 {
            sink.append(&mut scratch.frames[0].local);
            return;
        }
        let (above, here) = scratch.frames.split_at_mut(depth);
        above[depth - 1].local.append(&mut here[0].local);
        depth -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvmtl_distrib::{all_verdicts, ComputationBuilder};
    use rvmtl_mtl::{parse, state, Interval};

    fn fig3(epsilon: u64) -> DistributedComputation {
        let mut b = ComputationBuilder::new(2, epsilon);
        b.event(0, 1, state!["a"]);
        b.event(0, 4, state![]);
        b.event(1, 2, state!["a"]);
        b.event(1, 5, state!["b"]);
        b.build().unwrap()
    }

    #[test]
    fn verdicts_match_bruteforce_on_fig3() {
        let comp = fig3(2);
        let phi = parse("a U[0,6) b").unwrap();
        assert_eq!(possible_verdicts(&comp, &phi), all_verdicts(&comp, &phi));
        assert_eq!(possible_verdicts(&comp, &phi).len(), 2);
    }

    #[test]
    fn verdicts_match_bruteforce_on_many_formulas() {
        let comp = fig3(2);
        let formulas = [
            "F[0,6) b",
            "G[0,4) a",
            "a U[2,9) b",
            "F[0,3) b",
            "G[0,10) (a | b)",
            "(F[0,6) a) & (F[0,8) b)",
            "!(a U[0,6) b)",
        ];
        for text in formulas {
            let phi = parse(text).unwrap();
            assert_eq!(
                possible_verdicts(&comp, &phi),
                all_verdicts(&comp, &phi),
                "mismatch for {text}"
            );
        }
    }

    #[test]
    fn verdicts_match_bruteforce_with_varying_epsilon() {
        for eps in [1, 2, 3] {
            let comp = fig3(eps);
            let phi = parse("a U[0,6) b").unwrap();
            assert_eq!(
                possible_verdicts(&comp, &phi),
                all_verdicts(&comp, &phi),
                "mismatch for ε = {eps}"
            );
        }
    }

    #[test]
    fn unambiguous_computation_has_single_verdict() {
        let mut b = ComputationBuilder::new(2, 1);
        b.event(0, 1, state!["a"]);
        b.event(1, 3, state!["b"]);
        let comp = b.build().unwrap();
        let phi = parse("a U[0,6) b").unwrap();
        let verdicts = possible_verdicts(&comp, &phi);
        assert_eq!(verdicts.len(), 1);
        assert!(verdicts.contains(&true));
    }

    #[test]
    fn exists_verdict_finds_witnesses() {
        let comp = fig3(2);
        let phi = parse("a U[0,6) b").unwrap();
        assert!(exists_verdict(&comp, &phi, true));
        assert!(exists_verdict(&comp, &phi, false));
        let trivially_true = parse("true").unwrap();
        assert!(exists_verdict(&comp, &trivially_true, true));
        assert!(!exists_verdict(&comp, &trivially_true, false));
    }

    #[test]
    fn progression_shrinks_pending_obligation_deterministically() {
        // The Fig. 2 scenario: during the first segment only setup/deposit
        // events occur (no redeem), so the pending until survives. Because
        // residuals are anchored at the next segment's boundary (here 5), the
        // interval shrinks by exactly the boundary offset regardless of the
        // interleaving — the ordering ambiguity of the deposits resurfaces as
        // differing verdicts in the *next* segment instead (see the monitor
        // crate's Fig. 2 end-to-end test).
        let mut b = ComputationBuilder::new(2, 2);
        b.event(0, 1, state!["Apr.SetUp"]);
        b.event(1, 1, state!["Ban.SetUp"]);
        b.event(1, 3, state!["Ban.Deposit(pb)"]);
        b.event(0, 4, state!["Apr.Deposit(pa+pb)"]);
        let comp = b.build().unwrap();
        let phi = parse("!Apr.Redeem(bob) U[0,8) Ban.Redeem(alice)").unwrap();
        let result = ProgressionQuery::new(&comp, 5).distinct_progressions(&phi);
        let expected: Formula = parse("!Apr.Redeem(bob) U[0,3) Ban.Redeem(alice)").unwrap();
        assert_eq!(result.formulas, BTreeSet::from([expected]));
        assert_eq!(
            result
                .formulas
                .iter()
                .map(|f| match f {
                    Formula::Until(_, i, _) => *i,
                    other => panic!("unexpected rewritten formula {other}"),
                })
                .collect::<BTreeSet<_>>(),
            BTreeSet::from([Interval::bounded(0, 3)])
        );
    }

    #[test]
    fn limit_stops_early() {
        let comp = fig3(3);
        let phi = parse("a U[0,6) b").unwrap();
        let limited = ProgressionQuery::new(&comp, 10)
            .with_limit(1)
            .distinct_progressions(&phi);
        assert_eq!(limited.formulas.len(), 1);
        let full = ProgressionQuery::new(&comp, 10).distinct_progressions(&phi);
        assert!(full.formulas.len() >= limited.formulas.len());
    }

    #[test]
    fn memoisation_reduces_work() {
        let mut b = ComputationBuilder::new(2, 3);
        for t in 1..=4u64 {
            b.event(0, 2 * t, state!["p"]);
            b.event(1, 2 * t + 1, state!["q"]);
        }
        let comp = b.build().unwrap();
        let phi = parse("G[0,20) (p | q)").unwrap();
        let result = ProgressionQuery::new(&comp, 30).distinct_progressions(&phi);
        assert!(
            result.stats.memo_hits > 0,
            "expected memo hits: {:?}",
            result.stats
        );
        assert!(result.stats.explored_states > 0);
    }

    #[test]
    fn empty_computation_progresses_by_gap_only() {
        let comp = ComputationBuilder::new(2, 2).build().unwrap();
        let phi = parse("F[0,5) p").unwrap();
        // Anchoring the residual 3 time units later shrinks the interval.
        let res = distinct_progressions(&comp, &phi, 3);
        assert_eq!(res.len(), 1);
        assert_eq!(res.iter().next().unwrap(), &parse("F[0,2) p").unwrap());
        // Anchoring past the deadline resolves it to false.
        let res = distinct_progressions(&comp, &phi, 10);
        assert_eq!(res.iter().next().unwrap(), &Formula::False);
    }

    #[test]
    fn constant_formula_short_circuits() {
        let comp = fig3(2);
        let result = ProgressionQuery::new(&comp, 10).distinct_progressions(&Formula::True);
        assert_eq!(result.formulas.len(), 1);
        assert!(result.stats.constant_cutoffs >= 1);
        assert_eq!(result.verdicts(), BTreeSet::from([true]));
    }

    #[test]
    fn stats_combinators_cover_every_field() {
        // Fill every counter with a distinct nonzero value *without naming
        // the fields*, so a counter added to the macro list is covered here
        // automatically — this is the regression test for the bug class
        // where `delta_since` forgot a newly added counter.
        let mut stats = SolverStats::default();
        let mut next = 1usize;
        let mut field_count = 0usize;
        stats.for_each_field_mut(|_, value| {
            *value = next;
            next += 1;
            field_count += 1;
        });
        assert!(field_count >= 9, "expected at least 9 counters");

        // delta_since(default) must reproduce every field exactly.
        assert_eq!(stats.delta_since(&SolverStats::default()), stats);
        // x.delta_since(x) must be all zeros.
        assert_eq!(stats.delta_since(&stats), SolverStats::default());
        // absorb must double every field.
        let mut doubled = stats;
        doubled.absorb(&stats);
        let mut expected_doubled = SolverStats::default();
        let mut next = 1usize;
        expected_doubled.for_each_field_mut(|_, value| {
            *value = 2 * next;
            next += 1;
        });
        assert_eq!(doubled, expected_doubled);
        // for_each_field must visit the same fields with the same values.
        let mut seen = Vec::new();
        stats.for_each_field(|name, value| seen.push((name, value)));
        assert_eq!(seen.len(), field_count);
        assert!(seen.iter().any(|&(name, _)| name == "frontier_batches"));
        assert!(seen.iter().any(|&(name, _)| name == "batched_probe_ticks"));
    }

    #[test]
    fn engines_agree_on_results_and_stats() {
        let comp = fig3(2);
        for text in ["a U[0,6) b", "G[0,10) (a | b)", "F[0,3) b"] {
            let phi = parse(text).unwrap();
            let work_stack = ProgressionQuery::new(&comp, 10)
                .with_engine(ExploreEngine::WorkStack)
                .distinct_progressions(&phi);
            let reference = ProgressionQuery::new(&comp, 10)
                .with_engine(ExploreEngine::Reference)
                .distinct_progressions(&phi);
            assert_eq!(work_stack.formulas, reference.formulas, "formulas: {text}");
            assert_eq!(work_stack.stats, reference.stats, "stats: {text}");
            assert!(work_stack.stats.frontier_batches > 0, "batches: {text}");
            assert!(work_stack.stats.batched_probe_ticks > 0, "probes: {text}");
        }
    }

    #[test]
    fn engines_agree_under_limit_stop() {
        let comp = fig3(3);
        let phi = parse("a U[0,6) b").unwrap();
        for limit in 1..=3usize {
            let work_stack = ProgressionQuery::new(&comp, 10)
                .with_limit(limit)
                .with_engine(ExploreEngine::WorkStack)
                .distinct_progressions(&phi);
            let reference = ProgressionQuery::new(&comp, 10)
                .with_limit(limit)
                .with_engine(ExploreEngine::Reference)
                .distinct_progressions(&phi);
            assert_eq!(work_stack.formulas, reference.formulas, "limit {limit}");
            assert_eq!(work_stack.stats, reference.stats, "limit {limit}");
        }
    }

    #[test]
    fn finalize_applies_finite_semantics() {
        assert!(finalize(&Formula::True));
        assert!(!finalize(&Formula::False));
        assert!(!finalize(&parse("F[0,5) p").unwrap()));
        assert!(finalize(&parse("G[0,5) p").unwrap()));
        assert!(!finalize(&parse("a U[0,5) b").unwrap()));
        assert!(!finalize(&parse("p").unwrap()));
    }
}
