//! An open-addressed memo table with *staged slots*.
//!
//! The search memo is consulted exactly twice per explored node: once at
//! activation (is the contribution set already known?) and once at completion
//! (store the set just assembled). With a standard `HashMap` those are two
//! independent hash walks over a 28-byte key. This table performs the walk
//! once: a miss returns a [`StagedSlot`] — the empty slot where the key would
//! live — and the completion insert goes straight to that slot when it is
//! still valid, falling back to a regular insert when a descendant's
//! insertion resized the table or collided into the reserved slot in the
//! meantime.
//!
//! ## Why the fallback preserves correctness
//!
//! Linear probing with no deletions gives two invariants the staged insert
//! leans on:
//!
//! * the staged slot was the *first* empty slot on the key's probe chain, and
//!   entries are never removed — so the key cannot have been inserted
//!   elsewhere while the slot is still empty (any insert of the same key
//!   would have landed exactly there);
//! * a resize invalidates every index, which is what the generation counter
//!   detects (it increments only on resize).
//!
//! Either check failing routes through [`MemoTable::insert`], which re-probes
//! from scratch — so the staged path is a pure fast path, never a semantic
//! one. The `staged_slot_survives_collisions_and_growth` test drives both
//! failure modes explicitly.

use rvmtl_mtl::hashing::FxHasher;
use std::hash::{Hash, Hasher};

/// Initial slot count of a table that has seen at least one insert. Must be a
/// power of two (the probe sequence masks, it does not modulo).
const INITIAL_SLOTS: usize = 16;

/// A reserved empty slot returned by a failed [`MemoTable::probe`], to be
/// redeemed by [`MemoTable::insert_staged`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct StagedSlot {
    index: usize,
    generation: u64,
}

impl StagedSlot {
    /// A placeholder no table will redeem on the fast path (sentinel
    /// generation) — the initial value of pooled work-stack frames before
    /// activation stamps a real slot.
    pub(crate) fn invalid() -> Self {
        StagedSlot {
            index: 0,
            generation: u64::MAX,
        }
    }
}

/// Outcome of [`MemoTable::probe`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum MemoProbe {
    /// The key is present; redeem with [`MemoTable::value`].
    Hit(usize),
    /// The key is absent; the slot where it would be inserted.
    Miss(StagedSlot),
}

/// Open-addressed (linear probing, power-of-two capacity, ≤ 7/8 load factor)
/// hash table keyed with the Fx hasher. No deletion — the memo only grows
/// within a segment, which is precisely what makes staged slots sound.
#[derive(Debug)]
pub(crate) struct MemoTable<K, V> {
    slots: Vec<Option<(K, V)>>,
    len: usize,
    /// Incremented on every resize; a [`StagedSlot`] from an older generation
    /// holds a dangling index and is rejected.
    generation: u64,
}

impl<K, V> Default for MemoTable<K, V> {
    fn default() -> Self {
        MemoTable {
            slots: Vec::new(),
            len: 0,
            generation: 0,
        }
    }
}

fn hash_of<K: Hash>(key: &K) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

impl<K: Hash + Eq, V> MemoTable<K, V> {
    /// Number of entries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// One hash walk deciding hit (index of the entry) or miss (the slot an
    /// insert of this key would fill, stamped with the current generation).
    pub(crate) fn probe(&self, key: &K) -> MemoProbe {
        if self.slots.is_empty() {
            // Stamp an impossible generation: `insert_staged` will fall back
            // to a regular insert, which allocates the table.
            return MemoProbe::Miss(StagedSlot {
                index: 0,
                generation: u64::MAX,
            });
        }
        let mask = self.slots.len() - 1;
        let mut ix = (hash_of(key) as usize) & mask;
        loop {
            match &self.slots[ix] {
                None => {
                    return MemoProbe::Miss(StagedSlot {
                        index: ix,
                        generation: self.generation,
                    })
                }
                Some((k, _)) if k == key => return MemoProbe::Hit(ix),
                Some(_) => ix = (ix + 1) & mask,
            }
        }
    }

    /// The value at a [`MemoProbe::Hit`] index.
    pub(crate) fn value(&self, index: usize) -> &V {
        match &self.slots[index] {
            Some((_, v)) => v,
            None => unreachable!("Hit indexes name occupied slots"),
        }
    }

    /// Convenience single-walk lookup for callers without a completion phase.
    pub(crate) fn get(&self, key: &K) -> Option<&V> {
        match self.probe(key) {
            MemoProbe::Hit(ix) => Some(self.value(ix)),
            MemoProbe::Miss(_) => None,
        }
    }

    /// Standard insert (replaces the value on a duplicate key).
    pub(crate) fn insert(&mut self, key: K, value: V) {
        self.grow_if_needed();
        match self.probe(&key) {
            MemoProbe::Hit(ix) => {
                if let Some(entry) = self.slots[ix].as_mut() {
                    entry.1 = value;
                }
            }
            MemoProbe::Miss(slot) => {
                self.slots[slot.index] = Some((key, value));
                self.len += 1;
            }
        }
    }

    /// Redeems a slot reserved by an earlier miss: when the table has not
    /// resized since, the slot is still empty, and the post-insert load
    /// factor stays in bounds, the entry is placed with **no** hash walk;
    /// otherwise this degrades to [`MemoTable::insert`]. See the module
    /// documentation for the soundness argument.
    pub(crate) fn insert_staged(&mut self, slot: StagedSlot, key: K, value: V) {
        if slot.generation == self.generation
            && (self.len + 1) * 8 <= self.slots.len() * 7
            && self.slots[slot.index].is_none()
        {
            self.slots[slot.index] = Some((key, value));
            self.len += 1;
            return;
        }
        self.insert(key, value);
    }

    /// Consumes the table, yielding every entry (for cache absorption).
    pub(crate) fn into_entries(self) -> impl Iterator<Item = (K, V)> {
        self.slots.into_iter().flatten()
    }

    fn grow_if_needed(&mut self) {
        if (self.len + 1) * 8 <= self.slots.len() * 7 {
            return;
        }
        let new_cap = (self.slots.len() * 2).max(INITIAL_SLOTS);
        let old = std::mem::replace(&mut self.slots, {
            let mut v = Vec::new();
            v.resize_with(new_cap, || None);
            v
        });
        self.generation += 1;
        let mask = new_cap - 1;
        for (key, value) in old.into_iter().flatten() {
            let mut ix = (hash_of(&key) as usize) & mask;
            while self.slots[ix].is_some() {
                ix = (ix + 1) & mask;
            }
            self.slots[ix] = Some((key, value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip_across_growth() {
        let mut table: MemoTable<u64, usize> = MemoTable::default();
        for i in 0..1000u64 {
            table.insert(i, i as usize * 3);
        }
        assert_eq!(table.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(table.get(&i), Some(&(i as usize * 3)));
        }
        assert_eq!(table.get(&1000), None);
        // Duplicate insert replaces.
        table.insert(7, 99);
        assert_eq!(table.len(), 1000);
        assert_eq!(table.get(&7), Some(&99));
    }

    #[test]
    fn staged_slot_survives_collisions_and_growth() {
        let mut table: MemoTable<u64, usize> = MemoTable::default();
        // Empty-table miss: the sentinel generation must route through the
        // allocating insert.
        let slot = match table.probe(&42) {
            MemoProbe::Miss(slot) => slot,
            MemoProbe::Hit(_) => panic!("empty table cannot hit"),
        };
        table.insert_staged(slot, 42, 1);
        assert_eq!(table.get(&42), Some(&1));

        // Stage a slot, then force a resize before redeeming it: the stale
        // generation must be detected and the entry still land correctly.
        let slot = match table.probe(&43) {
            MemoProbe::Miss(slot) => slot,
            MemoProbe::Hit(_) => panic!("43 not yet inserted"),
        };
        for i in 100..200u64 {
            table.insert(i, 0);
        }
        table.insert_staged(slot, 43, 2);
        assert_eq!(table.get(&43), Some(&2));

        // Stage a slot, fill it with a *different* key via the regular path
        // (no resize: stay under the load bound), then redeem: occupancy
        // detection must fall back without clobbering the interloper.
        let mut table: MemoTable<u64, usize> = MemoTable::default();
        table.insert(0, 0);
        let slot = match table.probe(&1) {
            MemoProbe::Miss(slot) => slot,
            MemoProbe::Hit(_) => panic!("1 not yet inserted"),
        };
        // Find a key that lands in the reserved slot (probe agreement), then
        // insert it first.
        let interloper = (2..10_000u64)
            .find(|k| {
                matches!(table.probe(k), MemoProbe::Miss(s) if s.index == slot.index && s.generation == slot.generation)
            })
            .expect("some key collides into the reserved slot");
        table.insert(interloper, 7);
        table.insert_staged(slot, 1, 8);
        assert_eq!(table.get(&interloper), Some(&7));
        assert_eq!(table.get(&1), Some(&8));
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn into_entries_yields_everything() {
        let mut table: MemoTable<u64, usize> = MemoTable::default();
        for i in 0..50u64 {
            table.insert(i, i as usize);
        }
        let mut entries: Vec<_> = table.into_entries().collect();
        entries.sort_unstable();
        assert_eq!(entries.len(), 50);
        assert_eq!(entries[0], (0, 0));
        assert_eq!(entries[49], (49, 49));
    }
}
