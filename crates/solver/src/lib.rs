//! An SMT-style decision engine for MTL monitoring under partial synchrony.
//!
//! This crate plays the role of the SMT solver in the paper's architecture
//! (Sec. V): given one segment of a distributed computation and a pending MTL
//! formula, it determines every *distinct* way the segment's admissible traces
//! (consistent-cut sequences × bounded-skew time assignments) can rewrite the
//! formula, and therefore every verdict the segment can justify.
//!
//! Two interfaces are provided:
//!
//! * [`ProgressionQuery`] / [`distinct_progressions`] / [`possible_verdicts`] —
//!   the direct query API used by the monitor crate;
//! * [`SolverInstance`] — an incremental check/block/model loop mirroring how
//!   the paper drives Z3 with blocking clauses (Fig. 5e).
//!
//! The engine is exact: its verdict sets coincide with brute-force
//! enumeration of all traces (`rvmtl_distrib::all_verdicts`), which is
//! verified by differential and property-based tests.
//!
//! # Engine design: memo keys and the formula interner
//!
//! The search is a DFS over `(cut, pending time, pending formula)` nodes; the
//! memo table is consulted once per node visit, so the cost of building and
//! hashing the key — and of taking a progression step — *is* the cost of the
//! solver. Three representation choices keep all of it O(1)-shaped:
//!
//! 1. **Formulas are hash-consed** in an [`rvmtl_mtl::Interner`] owned by the
//!    engine for the lifetime of one query. Every distinct canonical formula
//!    is stored once and named by a 4-byte [`rvmtl_mtl::FormulaId`]; clone is
//!    a copy, equality is an integer compare, and the id doubles as a perfect
//!    hash. Progression steps run inside the arena
//!    ([`rvmtl_mtl::Interner::progress_one`] /
//!    [`rvmtl_mtl::Interner::progress_gap`]) and the arena's smart
//!    constructors canonicalise on the fly, so simplification-equivalent
//!    rewrites deduplicate by construction — the memo never sees two names
//!    for the same pending obligation.
//!
//! 2. **Cuts are ranked into a `u128`.** A cut of a fixed computation is a
//!    vector of per-process event counts; the engine assigns each process a
//!    mixed-radix stride (`stride[p] = Π_{q<p} (n_q + 1)`) and identifies the
//!    cut with `Σ counts[p]·stride[p]` — a bijection onto `0..Π(n_p+1)`.
//!    Extending a cut by one event of process `p` is `rank + stride[p]`, so
//!    ranks are maintained incrementally and no per-node `Vec` key is ever
//!    materialised. When the lattice exceeds `u128::MAX` points (hundreds of
//!    mostly-idle processes), ranking falls back to interning the count
//!    vectors of the cuts actually visited, which stay dense. The memo key is
//!    the packed triple `(u128 cut rank, u64 pending time, FormulaId)` hashed
//!    with the Fx multiply-xor hasher ([`rvmtl_mtl::hashing`]).
//!
//! 3. **Single-pass accumulation.** Each node's result set (the distinct
//!    rewritten formulas reachable below it) is assembled while its children
//!    are explored for the first time: every recursive call receives the
//!    parent's sink and deposits its contribution directly. Progression
//!    (`step`) therefore runs exactly once per `(node, event, t)` edge —
//!    there is no second "re-derive by re-walking children" pass — and a node
//!    abandoned by an early stop (solution limit, verdict witness) caches
//!    nothing, keeping the memo free of partial sets. Per-cut derived data
//!    (`enabled()`, `frontier_state()`) is cached by cut rank and shared by
//!    all formulas and time assignments passing through the cut.
//!
//! The search-shape counters ([`SolverStats`]) are pinned on a Fig. 3-style
//! scenario in `tests/regression.rs`; `BENCH_1.json` at the repository root
//! tracks the resulting throughput on the Fig. 5a workload.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod instance;
mod progression;

pub use instance::{CheckResult, Model, SolverInstance};
pub use progression::{
    distinct_progressions, exists_verdict, finalize, possible_verdicts, ProgressionQuery,
    ProgressionResult, SolverStats,
};
