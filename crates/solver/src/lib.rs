//! An SMT-style decision engine for MTL monitoring under partial synchrony.
//!
//! This crate plays the role of the SMT solver in the paper's architecture
//! (Sec. V): given one segment of a distributed computation and a pending MTL
//! formula, it determines every *distinct* way the segment's admissible traces
//! (consistent-cut sequences × bounded-skew time assignments) can rewrite the
//! formula, and therefore every verdict the segment can justify.
//!
//! Two interfaces are provided:
//!
//! * [`ProgressionQuery`] / [`distinct_progressions`] / [`possible_verdicts`] —
//!   the direct query API used by the monitor crate;
//! * [`SolverInstance`] — an incremental check/block/model loop mirroring how
//!   the paper drives Z3 with blocking clauses (Fig. 5e).
//!
//! The engine is exact: its verdict sets coincide with brute-force
//! enumeration of all traces (`rvmtl_distrib::all_verdicts`), which is
//! verified by differential and property-based tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod instance;
mod progression;

pub use instance::{CheckResult, Model, SolverInstance};
pub use progression::{
    distinct_progressions, exists_verdict, finalize, possible_verdicts, ProgressionQuery,
    ProgressionResult, SolverStats,
};
