//! An SMT-style decision engine for MTL monitoring under partial synchrony.
//!
//! This crate plays the role of the SMT solver in the paper's architecture
//! (Sec. V): given one segment of a distributed computation and a pending MTL
//! formula, it determines every *distinct* way the segment's admissible traces
//! (consistent-cut sequences × bounded-skew time assignments) can rewrite the
//! formula, and therefore every verdict the segment can justify.
//!
//! Three interfaces are provided:
//!
//! * [`SegmentSolver`] — the monitor-facing API: one solver per segment,
//!   shared by every pending formula, working on [`rvmtl_mtl::FormulaId`]s in
//!   a caller-owned query-spanning [`rvmtl_mtl::Interner`];
//! * [`ProgressionQuery`] / [`distinct_progressions`] / [`possible_verdicts`] —
//!   the self-contained query API over `Formula` trees;
//! * [`SolverInstance`] — an incremental check/block/model loop mirroring how
//!   the paper drives Z3 with blocking clauses (Fig. 5e).
//!
//! The engine is exact: its verdict sets coincide with brute-force
//! enumeration of all traces (`rvmtl_distrib::all_verdicts`), which is
//! verified by differential and property-based tests.
//!
//! # Engine design: interval nodes, memo keys and the formula interner
//!
//! The search is a DFS over `(cut, pending time, pending formula)` nodes; the
//! memo table is consulted once per node visit, so the cost of building and
//! hashing the key — and of taking a progression step — *is* the cost of the
//! solver. Four representation choices keep all of it O(1)-shaped:
//!
//! 1. **Formulas are hash-consed** in an [`rvmtl_mtl::Interner`] *borrowed
//!    from the caller*: [`SegmentSolver`] shares one arena across every
//!    pending formula of a segment, and the monitor keeps that arena alive
//!    across all segments of a query, so the stable parts of the
//!    specification are interned exactly once. Every distinct canonical
//!    formula is stored once and named by a 4-byte [`rvmtl_mtl::FormulaId`];
//!    clone is a copy, equality is an integer compare, and the id doubles as
//!    a perfect hash. The arena's smart constructors canonicalise on the fly,
//!    so simplification-equivalent rewrites deduplicate by construction — the
//!    memo never sees two names for the same pending obligation.
//!
//! 2. **Time is explored per residual, not per tick.** The admissible
//!    occurrence window `[lo, hi]` of an enabled event (width `2ε + 1`) is
//!    partitioned by [`rvmtl_mtl::Interner::progress_one_over`] into maximal
//!    *residual-constant ranges* — at most
//!    `min(hi − lo, temporal_horizon(ψ)) + 1` of them, where the
//!    [temporal horizon](rvmtl_mtl::Interner::temporal_horizon) is the
//!    largest interval endpoint in the pending formula — and the search
//!    recurses once per range. A range whose residual is *time-invariant*
//!    (horizon 0: every live interval is `[0, ∞)`, so progression never
//!    again depends on timing) collapses to a single child at the range's
//!    earliest time: the reachable rewrite set of a time-invariant pending
//!    formula shrinks monotonically in the pending time, so the union over
//!    the range equals the contribution of its infimum. This is what turns
//!    the ε axis from a linear branching factor into a bounded one — beyond
//!    `ε ≈ horizon` the explored-state count saturates (see the
//!    `epsilon_saturation` series of `BENCH_2.json` and
//!    `tests/regression.rs::explored_states_saturate_in_epsilon`).
//!    Progression steps themselves are memoised per node of the formula DAG,
//!    keyed `(frontier state, subformula, min(elapsed, horizon))`
//!    ([`rvmtl_mtl::Interner::progress_one_cached`]), so structurally shared
//!    obligations are progressed once per `(state, elapsed)` across the whole
//!    query.
//!
//! 3. **Cuts are ranked into a `u128`.** A cut of a fixed computation is a
//!    vector of per-process event counts; the engine assigns each process a
//!    mixed-radix stride (`stride[p] = Π_{q<p} (n_q + 1)`) and identifies the
//!    cut with `Σ counts[p]·stride[p]` — a bijection onto `0..Π(n_p+1)`.
//!    Extending a cut by one event of process `p` is `rank + stride[p]`, so
//!    ranks are maintained incrementally and no per-node `Vec` key is ever
//!    materialised. When the lattice exceeds `u128::MAX` points (hundreds of
//!    mostly-idle processes), ranking falls back to interning the count
//!    vectors of the cuts actually visited, which stay dense. The memo key is
//!    the packed triple `(u128 cut rank, u64 canonical pending time,
//!    FormulaId)` hashed with the Fx multiply-xor hasher
//!    ([`rvmtl_mtl::hashing`]) — a time *range* is represented by its
//!    canonical infimum, so range nodes and singleton nodes share one
//!    fixed-size key space and memo hits fire across differently-shaped
//!    parents.
//!
//! 4. **Single-pass accumulation.** Each node's result set (the distinct
//!    rewritten formulas reachable below it) is assembled while its children
//!    are explored for the first time: every recursive call receives the
//!    parent's sink and deposits its contribution directly. Progression
//!    therefore runs once per `(node, event, residual-range)` edge — there is
//!    no second "re-derive by re-walking children" pass — and a node
//!    abandoned by an early stop (solution limit, verdict witness) caches
//!    nothing, keeping the memo free of partial sets. Per-cut derived data
//!    (`enabled()`, the interned frontier state, the earliest enabled window
//!    start) is cached by cut rank and shared by all formulas and time
//!    assignments passing through the cut; the whole bundle is extractable
//!    as [`SegmentCaches`] so several solvers of one segment (the streaming
//!    runtime's pipeline work items) continue from each other's tables.
//!
//! # Shift-normal zones
//!
//! The interval abstraction of point 2 collapses a time range only when its
//! residual is fully time-invariant. The arena's *shift-normal form*
//! ([`rvmtl_mtl::Interner::shift_slack`] /
//! [`rvmtl_mtl::ArenaOps::normalize`]) extends the collapse to residuals
//! that still carry live bounded windows, as long as those windows have not
//! *opened*: two pending formulas that are exact time-translates of each
//! other (same canonical residual, shifts ≥ 1) do identical future work at
//! matching absolute times, because no observation can fall inside a window
//! that only opens later — the zone/region construction of timed-automata
//! tooling, transplanted onto progression. The engine exploits the
//! equivalence in three places:
//!
//! * **Translated ranges.** [`rvmtl_mtl::Interner::progress_one_over`]
//!   merges consecutive occurrence-time ticks whose residuals are exact unit
//!   translates of one another into a single
//!   [`rvmtl_mtl::RangeKind::Translated`] range, and the search collapses it
//!   to its earliest tick exactly like an invariant range: within one zone,
//!   a later pending time can only schedule a subset of the event times
//!   available to an earlier one while producing identical residuals at
//!   matching absolute times, so the contributions nest and the union over
//!   the range equals its infimum's. Per-event branching is thereby bounded
//!   by the live window *width* (open-region ticks) instead of the temporal
//!   horizon — on delayed-window formulas the ε-saturation point drops
//!   strictly below the horizon (`BENCH_4.json`, `epsilon_dense`;
//!   `tests/regression.rs::explored_states_saturate_below_the_horizon_on_delayed_windows`).
//! * **Zone-canonical memo keys.** Before the memo lookup, a node whose
//!   pending time lies below every enabled window start is rewritten to its
//!   zone representative: the pending time advances to that bound (capped at
//!   `shift slack − 1`, keeping the first window strictly future) and the
//!   pending formula is translated down in step. Translates of one
//!   obligation reached at different absolute times — across parents,
//!   events, and pending formulas — therefore share one `(rank, time, id)`
//!   memo entry: a memo entry earned at one absolute time is a hit at every
//!   translate. The rewrite count is reported as
//!   [`SolverStats::shift_normalized_nodes`].
//! * **Shift-relative progression caches.** The arena's
//!   `one_cache`/`gap_cache` are keyed `(canonical residual, elapsed −
//!   shift)` ([`rvmtl_mtl::ArenaOps::progress_one_cached`]), so the
//!   progression *results* feeding the search are likewise computed once per
//!   zone, not once per absolute anchor — and survive GC compaction exactly
//!   when their canonical endpoints do.
//!
//! The soundness boundary of the whole construction is the shift slack's
//! definition: an `Until` whose left argument is not time-invariant has
//! slack 0 (its left obligation is progressed at observations *before* the
//! window opens, anchoring it absolutely), the shift-0 member of a zone is
//! never merged with its translates (its window is open: the observation
//! participates), and differential suites pin verdict equality against
//! brute-force enumeration across ε sweeps biased to delayed windows.
//!
//! # Fused node metadata and the shift-free fast path
//!
//! The zone machinery must not tax formulas that have no translatable
//! structure (every window starting at zero — the common phi4-style
//! specification). Two representation choices erase that tax:
//!
//! * **Fused metadata records.** Everything the engine asks about a pending
//!   formula besides its children — kind tag, temporal horizon, shift slack,
//!   canonical residual — lives in one dense [`rvmtl_mtl::NodeMeta`] table
//!   entry ([`rvmtl_mtl::ArenaOps::node_meta`]). The pre-memo rewrite and
//!   the range-collapse checks issue a single indexed read where the PR 4
//!   engine walked three parallel side tables, and the progression caches
//!   are keyed by packed `u128` scalars ([`rvmtl_mtl::OneKey`] /
//!   [`rvmtl_mtl::GapKey`]) that hash as two words and compare as one
//!   integer instead of field-by-field tuples.
//! * **The arena shift watermark.** An arena that has never interned a
//!   nonzero-finite-slack node reports
//!   [`rvmtl_mtl::ArenaOps::ever_shifted`]` == false`, and every consumer
//!   short-circuits: `normalize` is the identity, cache keys stay in the
//!   direct PR 2 form, and the engine's pre-memo zone rewrite reduces
//!   to the time-invariant advance — provably the only rewrite a shift-free
//!   arena admits, so search shapes (and the pinned explored-state counts)
//!   are bit-identical with the watermark up or down; the
//!   `shift_free_fast_path` property suite asserts exactly that, and the CI
//!   `bench_snapshot --check` gate pins the counters of every sweep against
//!   `BENCH_PINS.json`.
//!
//! # Data-oriented core
//!
//! The representation work above fixes *what* the hot loop touches (packed
//! keys, fused metadata, cached derived data); the work-stack engine
//! ([`ExploreEngine::WorkStack`], the default) additionally fixes *how* it
//! touches it, replacing the recursive explorer with an explicit stack of
//! pooled per-depth frames over struct-of-arrays sibling batches:
//!
//! * **Flat frontier batches.** When a node is progressed against one
//!   enabled event, the admissible window's residual ranges are flattened
//!   into three parallel arrays — pending times, residual ids, merged range
//!   widths — held in the node's pooled frame. All sibling children of one
//!   cut rank therefore live contiguously and are activated by index, with
//!   no per-child allocation: cuts are rewritten in place per depth
//!   ([`rvmtl_distrib::Cut::extended_into`]), and frames/cut/scratch buffers
//!   are pooled in [`SegmentCaches`] across every progression of a segment.
//! * **Batched cache probes.** The per-tick progression-cache lookups of a
//!   window are issued as *one* contiguous walk per `(node, event)` batch
//!   ([`rvmtl_mtl::ArenaOps::progress_one_over_batched`] /
//!   [`rvmtl_mtl::ArenaOps::progress_gap_over_batched`]): keys for the whole
//!   window are packed first, probed together (on the sharded arena a run of
//!   same-shard keys takes the shard lock once instead of once per tick),
//!   and the misses are resolved together afterwards. Within one batch all
//!   packed keys are distinct — the shift-relative key coordinate strictly
//!   increases across the run and the horizon clamp is reached only at the
//!   final tick — so probe-all-then-resolve observes exactly the hit/miss
//!   tallies of the interleaved scalar loop, which keeps the cache counters
//!   pinnable. The zone rewrite is likewise amortised: siblings sharing a
//!   canonical residual are batch entries of one splitter call, not repeated
//!   `normalize` walks.
//! * **Staged memo slots.** The search memo is an open-addressed table
//!   whose miss probe returns the slot the key would occupy
//!   (`MemoTable::probe`); the completion insert redeems that slot without a
//!   second hash walk, so each `(rank, time, formula)` triple is hashed once
//!   per node instead of once at activation and once at completion.
//! * **Union-of-contributions survives batching** because batching changes
//!   only the *schedule* of the same edges, not their set: the driver
//!   activates batch entries in the order the recursive engine would have
//!   recursed (events in enabled order, ranges in window order, ticks within
//!   a range in time order), counts merged range widths at the same points,
//!   and assembles each node's contribution set in the same single pass
//!   (children deposit into the parent frame's sink). The retained
//!   recursive engine ([`ExploreEngine::Reference`]) runs the identical
//!   search through the same batched splitters; the `engine_differential`
//!   suite pins verdict sets *and* full [`SolverStats`] equality between
//!   the two across ε sweeps, property suites and both arenas, and the
//!   `--abtest` mode of `bench_snapshot` measures the ns/state gap between
//!   them under interleaved rounds.
//!
//! The batch shape itself is pinned: [`SolverStats::frontier_batches`] (one
//! per `(node, event)` expansion with a non-empty clipped window) and
//! [`SolverStats::batched_probe_ticks`] (per-tick probes issued through the
//! batched entry points) are structural counts, identical across engines
//! and recorded in `BENCH_PINS.json` like every other search-shape counter.
//!
//! The search-shape counters ([`SolverStats`], including the
//! interval-abstraction counters `time_splits` / `merged_time_points` and
//! the zone counter `shift_normalized_nodes`) are pinned on Fig. 3-style
//! scenarios in `tests/regression.rs`; `BENCH_1.json` … `BENCH_4.json` at
//! the repository root track the resulting throughput on the Fig. 5a
//! workload and the ε/length/dense sweeps.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod instance;
mod memo;
mod progression;

pub use instance::{CheckResult, Model, SolverInstance};
pub use progression::{
    distinct_progressions, exists_verdict, finalize, possible_verdicts, ExploreEngine,
    InternedProgression, ProgressionQuery, ProgressionResult, SegmentCaches, SegmentSolver,
    SolverStats,
};
