//! An SMT-style driver interface over the progression engine.
//!
//! The paper drives Z3 in a loop: assert the consistent-cut and timing
//! constraints of the segment, assert the formula-verdict constraint, `check`,
//! read back a model, then add a blocking clause and `check` again to discover
//! the next distinct solution (this loop is the x-axis of Fig. 5e).
//! [`SolverInstance`] mirrors that workflow on top of
//! [`crate::ProgressionQuery`].

use crate::progression::{finalize, ProgressionQuery, SolverStats};
use rvmtl_distrib::DistributedComputation;
use rvmtl_mtl::Formula;
use std::collections::BTreeSet;

/// The outcome of a [`SolverInstance::check`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// A solution distinct from all blocked ones exists; the model describes
    /// it.
    Sat(Model),
    /// No unblocked solution exists.
    Unsat,
}

impl CheckResult {
    /// Returns the model if the result is `Sat`.
    pub fn model(&self) -> Option<&Model> {
        match self {
            CheckResult::Sat(m) => Some(m),
            CheckResult::Unsat => None,
        }
    }

    /// Returns `true` if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, CheckResult::Sat(_))
    }
}

/// A satisfying assignment: one distinguishable way the segment's traces can
/// rewrite the monitored formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    /// The rewritten (progressed) formula for the next segment.
    pub rewritten: Formula,
    /// The verdict obtained if the computation were to end here (the
    /// rewritten formula closed against an empty future).
    pub verdict: bool,
}

/// An incremental solver instance for one segment and one monitored formula.
///
/// # Examples
///
/// ```
/// use rvmtl_distrib::ComputationBuilder;
/// use rvmtl_mtl::{parse, state};
/// use rvmtl_solver::SolverInstance;
///
/// // Fig. 3: the computation is ambiguous for a U[0,6) b under ε = 2.
/// let mut b = ComputationBuilder::new(2, 2);
/// b.event(0, 1, state!["a"]);
/// b.event(0, 4, state![]);
/// b.event(1, 2, state!["a"]);
/// b.event(1, 5, state!["b"]);
/// let comp = b.build()?;
///
/// let mut solver = SolverInstance::new(&comp, parse("a U[0,6) b")?, 10);
/// let mut verdicts = std::collections::BTreeSet::new();
/// while let Some(model) = solver.check().model().cloned() {
///     verdicts.insert(model.verdict);
///     solver.block(&model);
/// }
/// assert_eq!(verdicts.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SolverInstance<'a> {
    comp: &'a DistributedComputation,
    phi: Formula,
    next_anchor: u64,
    blocked: BTreeSet<Formula>,
    last_stats: SolverStats,
}

impl<'a> SolverInstance<'a> {
    /// Creates an instance for the given segment, monitored formula and
    /// residual anchor (base time of the next segment).
    pub fn new(comp: &'a DistributedComputation, phi: Formula, next_anchor: u64) -> Self {
        SolverInstance {
            comp,
            phi,
            next_anchor,
            blocked: BTreeSet::new(),
            last_stats: SolverStats::default(),
        }
    }

    /// Searches for a solution distinct from every blocked one.
    ///
    /// Each call re-runs the search asking for one more distinct solution than
    /// is currently blocked, mirroring the repeated SMT invocations of the
    /// paper (whose cost Fig. 5e measures).
    pub fn check(&mut self) -> CheckResult {
        let want = self.blocked.len() + 1;
        let result = ProgressionQuery::new(self.comp, self.next_anchor)
            .with_limit(want)
            .distinct_progressions(&self.phi);
        self.last_stats = result.stats;
        match result
            .formulas
            .into_iter()
            .find(|f| !self.blocked.contains(f))
        {
            Some(rewritten) => {
                let verdict = finalize(&rewritten);
                CheckResult::Sat(Model { rewritten, verdict })
            }
            None => {
                // The limited search may have only rediscovered blocked
                // solutions; retry without a limit to be certain.
                let full = ProgressionQuery::new(self.comp, self.next_anchor)
                    .distinct_progressions(&self.phi);
                self.last_stats = full.stats;
                match full
                    .formulas
                    .into_iter()
                    .find(|f| !self.blocked.contains(f))
                {
                    Some(rewritten) => {
                        let verdict = finalize(&rewritten);
                        CheckResult::Sat(Model { rewritten, verdict })
                    }
                    None => CheckResult::Unsat,
                }
            }
        }
    }

    /// Adds a blocking clause excluding the given model's rewritten formula
    /// from future `check` calls.
    pub fn block(&mut self, model: &Model) {
        self.blocked.insert(model.rewritten.clone());
    }

    /// The formulas blocked so far.
    pub fn blocked(&self) -> &BTreeSet<Formula> {
        &self.blocked
    }

    /// Statistics of the most recent `check` call.
    pub fn last_stats(&self) -> SolverStats {
        self.last_stats
    }

    /// Runs the check/block loop to completion and returns every distinct
    /// model, in discovery order.
    pub fn all_models(&mut self) -> Vec<Model> {
        let mut models = Vec::new();
        while let CheckResult::Sat(model) = self.check() {
            self.block(&model);
            models.push(model);
        }
        models
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvmtl_distrib::ComputationBuilder;
    use rvmtl_mtl::{parse, state};

    fn fig3() -> DistributedComputation {
        let mut b = ComputationBuilder::new(2, 2);
        b.event(0, 1, state!["a"]);
        b.event(0, 4, state![]);
        b.event(1, 2, state!["a"]);
        b.event(1, 5, state!["b"]);
        b.build().unwrap()
    }

    #[test]
    fn check_block_loop_enumerates_all_solutions() {
        let comp = fig3();
        let mut solver = SolverInstance::new(&comp, parse("a U[0,6) b").unwrap(), 10);
        let models = solver.all_models();
        assert!(models.len() >= 2);
        let verdicts: BTreeSet<bool> = models.iter().map(|m| m.verdict).collect();
        assert_eq!(verdicts.len(), 2);
        // After exhaustion the instance stays unsat.
        assert_eq!(solver.check(), CheckResult::Unsat);
    }

    #[test]
    fn unambiguous_instance_has_single_model() {
        let mut b = ComputationBuilder::new(1, 1);
        b.event(0, 1, state!["a"]);
        b.event(0, 3, state!["b"]);
        let comp = b.build().unwrap();
        let mut solver = SolverInstance::new(&comp, parse("a U[0,6) b").unwrap(), 10);
        let models = solver.all_models();
        assert_eq!(models.len(), 1);
        assert!(models[0].verdict);
    }

    #[test]
    fn blocking_is_persistent() {
        let comp = fig3();
        let mut solver = SolverInstance::new(&comp, parse("F[0,6) b").unwrap(), 10);
        let first = solver.check();
        assert!(first.is_sat());
        let model = first.model().unwrap().clone();
        solver.block(&model);
        if let CheckResult::Sat(second) = solver.check() {
            assert_ne!(second.rewritten, model.rewritten);
        }
        assert_eq!(solver.blocked().len(), 1);
    }

    #[test]
    fn stats_are_reported() {
        let comp = fig3();
        let mut solver = SolverInstance::new(&comp, parse("G[0,8) (a | b)").unwrap(), 10);
        let _ = solver.check();
        assert!(solver.last_stats().explored_states > 0);
    }
}
