//! Fig. 5f — impact of the event rate (events per second per process).

use rvmtl_bench::{
    default_trace_config, formula, measure, print_header, synthetic_computation, DEFAULT_SEGMENTS,
};

fn main() {
    println!("Fig. 5f — impact of the event rate (runtime vs events per second per process)\n");
    print_header("rate");
    for (phi_index, processes) in [(4usize, 1usize), (4, 2), (6, 1), (6, 2)] {
        let phi = formula(phi_index, processes);
        for rate in [25.0f64, 50.0, 75.0, 100.0, 125.0] {
            let mut cfg = default_trace_config();
            cfg.processes = processes;
            cfg.event_rate = rate;
            let comp = synthetic_computation(phi_index, &cfg);
            let sample = measure(
                format!("phi{phi_index}, |P|={processes}"),
                rate / 5.0, // expressed in the paper's events/sec scale
                &comp,
                &phi,
                DEFAULT_SEGMENTS,
            );
            println!("{}", sample.row());
        }
    }
    println!("\nExpected shape (paper): runtime grows super-linearly with the event rate, and");
    println!("faster for larger process counts (more events per segment and more concurrency).");
}
