//! Fig. 5e — impact of the number of distinct solutions (verdicts) requested
//! per segment, driven through the SMT-style check/block loop.

use rvmtl_bench::{default_trace_config, formula, print_header, synthetic_computation, Sample};
use rvmtl_distrib::{segment, SegmentationMode};
use rvmtl_monitor::VerdictSet;
use rvmtl_solver::SolverInstance;
use std::time::Instant;

fn main() {
    println!("Fig. 5e — impact of the number of solutions requested per segment\n");
    print_header("solutions");
    for (phi_index, processes) in [(4usize, 1usize), (4, 2), (6, 1), (6, 2)] {
        let mut cfg = default_trace_config();
        cfg.processes = processes;
        let comp = synthetic_computation(phi_index, &cfg);
        let phi = formula(phi_index, processes);
        let segments = segment(&comp, 15, SegmentationMode::Disjoint);
        for solutions in 1usize..=4 {
            let started = Instant::now();
            let mut states = 0;
            let mut verdicts = VerdictSet::new();
            for (i, seg) in segments.iter().enumerate() {
                let next_anchor = segments
                    .get(i + 1)
                    .map(|s| s.base_time())
                    .unwrap_or(comp.max_local_time() + comp.epsilon());
                // The paper re-runs the SMT instance once per requested
                // solution, blocking previous models.
                let mut instance = SolverInstance::new(seg, phi.clone(), next_anchor);
                for _ in 0..solutions {
                    match instance.check() {
                        rvmtl_solver::CheckResult::Sat(model) => {
                            states += instance.last_stats().explored_states;
                            verdicts.insert(if model.verdict {
                                rvmtl_monitor::Verdict::True
                            } else {
                                rvmtl_monitor::Verdict::False
                            });
                            instance.block(&model);
                        }
                        rvmtl_solver::CheckResult::Unsat => break,
                    }
                }
            }
            let sample = Sample {
                series: format!("phi{phi_index}, |P|={processes}"),
                x: solutions as f64,
                runtime: started.elapsed(),
                explored_states: states,
                verdicts,
            };
            println!("{}", sample.row());
        }
    }
    println!("\nExpected shape (paper): runtime grows roughly linearly with the number of");
    println!("distinct solutions requested, since each extra solution is one more solver run");
    println!("of unchanged difficulty.");
}
