//! Fig. 6 — monitoring the cross-chain protocols: runtime vs the number of
//! events in the transaction log, for the two-party swap (g = 1), three-party
//! swap (g = 2) and auction (g = 2).

use rvmtl_bench::{
    blockchain_workloads, measure, print_header, BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON,
};

fn main() {
    println!("Fig. 6 — blockchain experiments (runtime vs number of events in the log)\n");
    print_header("events");
    let mut samples = Vec::new();
    for (label, segments, comp, phi) in blockchain_workloads(BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON) {
        let sample = measure(label, comp.event_count() as f64, &comp, &phi, segments);
        println!("{}", sample.row());
        samples.push(sample);
    }
    println!("\nExpected shape (paper): runtime increases with the number of events in the");
    println!("log; the auction and three-party protocols (more chains, more events, g = 2)");
    println!("sit above the two-party swap (single segment, fewer events).");
    let max = samples
        .iter()
        .max_by(|a, b| a.runtime.cmp(&b.runtime))
        .expect("non-empty");
    println!(
        "\nSlowest workload: {} at {:.3} ms",
        max.series,
        max.runtime.as_secs_f64() * 1000.0
    );
}
