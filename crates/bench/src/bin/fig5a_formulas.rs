//! Fig. 5a — impact of the monitored formula (ϕ₁–ϕ₆) and of the number of
//! processes on the monitor's runtime.

use rvmtl_bench::{
    default_trace_config, formula, measure, print_header, synthetic_computation, DEFAULT_SEGMENTS,
};

fn main() {
    println!("Fig. 5a — impact of the formula (runtime vs number of processes)\n");
    print_header("|P|");
    for index in 1..=6usize {
        for processes in [1usize, 2, 3] {
            let mut cfg = default_trace_config();
            cfg.processes = processes;
            let comp = synthetic_computation(index, &cfg);
            let phi = formula(index, processes);
            let sample = measure(
                format!("phi{index}"),
                processes as f64,
                &comp,
                &phi,
                DEFAULT_SEGMENTS,
            );
            println!("{}", sample.row());
        }
    }
    println!("\nExpected shape (paper): runtime grows with the number of processes for every");
    println!("formula; formulas with nested temporal operators (phi2, phi4, phi6) and more");
    println!("sub-formulas (phi1, phi5) sit above the flat single-operator ones (phi3).");
}
