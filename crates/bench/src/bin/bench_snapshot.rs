//! Machine-readable performance snapshot of the paper's workloads, and the
//! CI search-shape regression gate.
//!
//! Prints a JSON object with wall time, explored solver states, and the
//! states-per-second throughput for each formula of the Fig. 5a sweep plus an
//! aggregate, and — with `--sweeps` — the ε sweep of Fig. 5b/5c, the length
//! sweep of Fig. 5d, the shift-free tax sweep (per-state cost on formulas
//! with no translatable structure), the Fig. 6 cross-chain protocol lattices
//! (two-party / three-party swap and auction scenario sets), and the
//! streaming-pipeline sweep comparing the batch monitor against the
//! `rvmtl-runtime` [`StreamMonitor`] (sequential and pipelined) on long
//! multi-query computations. The repository keeps outputs of this tool in
//! `BENCH_1.json` … `BENCH_5.json` so perf-focused PRs have hard
//! before/after numbers:
//!
//! ```text
//! cargo run --release --bin bench_snapshot -- [label] [--sweeps] > snapshot.json
//! ```
//!
//! Without `--sweeps` only the (fast) Fig. 5a series runs; `--protocols`
//! additionally runs just the protocol series (the CI smoke). Every sweep
//! also emits a one-line summary (state counts + throughput) to *stderr*, so
//! CI logs retain the headline numbers even when stdout is discarded.
//!
//! Two further modes drive the CI regression gate over the
//! machine-independent search-shape counters (see [`rvmtl_bench::pins`]):
//!
//! ```text
//! bench_snapshot --check [BENCH_PINS.json]        # exit 1 on counter drift
//! bench_snapshot --write-pins [BENCH_PINS.json]   # regenerate the budget
//! ```
//!
//! `--checkpoint-smoke` runs the recovery gate alone: every checkpoint
//! scenario is streamed with serialize-and-restore restarts at GC epochs,
//! and the process exits non-zero if any restarted run diverges from its
//! uninterrupted reference (the CI recovery smoke).
//!
//! `--scrape-check <file>` validates a scraped text exposition (as printed
//! by `examples/streaming.rs` or [`StreamMonitor::telemetry_text`]): every
//! line must parse as `name{labels} value` and the core runtime metric
//! families must be present (the CI telemetry smoke).
//!
//! `--wire-smoke` runs the wire-transport gate alone: every wire-replay
//! scenario captures its delivered schedule to a `.rvw` file and replays it
//! through `rvmtl-wire`, and the process exits non-zero if any replayed run
//! diverges from direct in-memory ingestion (the CI wire smoke).
//!
//! `--abtest` runs the solver-engine A/B comparison: the retained reference
//! recursion against the default work-stack engine on the `until_eps16` and
//! `always_eps16` shift-free fixtures, in *interleaved* rounds (reference
//! then work-stack within every round, so frequency scaling and scheduler
//! drift land on both engines equally — the honest protocol on a one-core
//! container) reporting min/median ns-per-state per engine and the speedup
//! ratio. The repository keeps its output in `BENCH_9.json`.

use rvmtl_bench::{
    blockchain_workloads, default_trace_config, formula, pins, sweep_monitor, sweep_points,
    synthetic_computation, BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON, DEFAULT_SEGMENTS,
};
use rvmtl_distrib::EventId;
use rvmtl_monitor::Monitor;
use rvmtl_monitor::MonitorConfig;
use rvmtl_runtime::{StreamConfig, StreamMonitor};
use std::time::Instant;

/// Measurement of monitoring `phi` over `comp`: returns
/// `(explored_states, seconds per run)`.
///
/// Sub-millisecond workloads are timed as blocks of enough iterations to
/// reach ~25 ms per block (best of 5 blocks, divided by the iteration
/// count), so scheduler noise and timer resolution do not dominate the
/// per-run figure.
fn measure_best(
    comp: &rvmtl_distrib::DistributedComputation,
    phi: &rvmtl_mtl::Formula,
    segments: usize,
) -> (usize, f64) {
    let monitor = sweep_monitor(segments);
    // One warm-up run yields the (deterministic) state count and calibrates
    // the block size.
    let started = Instant::now();
    let states = monitor.run(comp, phi).explored_states();
    let once = started.elapsed().as_secs_f64().max(1e-7);
    let iters = ((0.025 / once) as usize).clamp(1, 10_000);
    let mut best_secs = f64::MAX;
    for _ in 0..5 {
        let started = Instant::now();
        for _ in 0..iters {
            let _ = monitor.run(comp, phi);
        }
        let secs = started.elapsed().as_secs_f64() / iters as f64;
        if secs < best_secs {
            best_secs = secs;
        }
    }
    (states, best_secs)
}

/// Wall time of one full streaming run (feed every event in global time
/// order, then finish), best of `rounds`.
fn measure_stream(
    comp: &rvmtl_distrib::DistributedComputation,
    formulas: &[rvmtl_mtl::Formula],
    config: &StreamConfig,
    rounds: usize,
) -> f64 {
    let mut events: Vec<EventId> = (0..comp.event_count()).map(EventId).collect();
    events.sort_by_key(|&id| (comp.event(id).local_time, comp.event(id).process.0));
    let mut best = f64::MAX;
    for _ in 0..rounds {
        let started = Instant::now();
        let mut monitor = StreamMonitor::new(comp.process_count(), comp.epsilon(), config.clone());
        for phi in formulas {
            monitor.add_query(phi);
        }
        for &id in &events {
            let e = comp.event(id);
            monitor
                .observe(e.process.0, e.local_time, e.state.clone())
                .expect("benchmark events are stream-legal");
        }
        let _ = monitor.finish();
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

/// Wall time of the batch reference on the same queries (one `Monitor::run`
/// per formula — the pre-runtime serving path), best of `rounds`.
fn measure_batch(
    comp: &rvmtl_distrib::DistributedComputation,
    formulas: &[rvmtl_mtl::Formula],
    segments: usize,
    rounds: usize,
) -> f64 {
    let monitor = Monitor::new(MonitorConfig::with_segments(segments));
    let mut best = f64::MAX;
    for _ in 0..rounds {
        let started = Instant::now();
        for phi in formulas {
            let _ = monitor.run(comp, phi);
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

/// The argument following `flag` (if any, and not itself a flag), or the
/// default pins path.
fn path_after(args: &[String], flag: &str) -> String {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PINS.json".into())
}

/// `--check`: compare the current machine-independent counters of every
/// sweep against the committed budget file; any drift fails the process.
fn run_check(path: &str) -> ! {
    // Fail fast on a bad path or malformed budget before spending the
    // collection run.
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("[bench] cannot read pin budget {path}: {e}");
            std::process::exit(1);
        }
    };
    let pinned = match pins::parse_pins(&text) {
        Ok(pinned) => pinned,
        Err(e) => {
            eprintln!("[bench] cannot parse pin budget {path}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("[bench] collecting search-shape counters for the pin check …");
    let current = pins::all_entries();
    let drift = pins::diff_pins(&current, &pinned);
    if drift.is_empty() {
        eprintln!(
            "[bench] search-shape counters match {path} ({} pinned values)",
            pinned.len(),
        );
        std::process::exit(0);
    }
    eprintln!(
        "[bench] search-shape drift against {path} ({} of {} values):",
        drift.len(),
        pinned.len().max(current.len())
    );
    for line in &drift {
        eprintln!("[bench]   {line}");
    }
    eprintln!(
        "[bench] if the change is intentional, regenerate the budget with \
         `cargo run --release --bin bench_snapshot -- --write-pins {path}` \
         and commit the diff"
    );
    std::process::exit(1);
}

/// `--checkpoint-smoke`: run every checkpoint scenario's
/// serialize-and-restore harness and fail the process on any divergence
/// between the restarted run and the uninterrupted reference.
fn run_checkpoint_smoke() -> ! {
    let mut failed = false;
    for case in rvmtl_bench::checkpoint_cases() {
        let run = rvmtl_bench::run_checkpoint_case(&case);
        let ok = run.recovered_identical();
        eprintln!(
            "[bench] checkpoint-smoke {}: {} restarts, {} snapshot bytes, {}",
            case.name,
            run.restarts,
            run.snapshot_bytes,
            if ok { "verdict-identical" } else { "DIVERGED" },
        );
        failed |= !ok || run.restarts == 0;
    }
    if failed {
        eprintln!("[bench] checkpoint-smoke FAILED: recovery is not verdict-identical");
        std::process::exit(1);
    }
    eprintln!("[bench] checkpoint-smoke passed");
    std::process::exit(0);
}

/// `--wire-smoke`: run every wire-replay scenario — the fault-storm
/// schedule captured to a `.rvw` file and drained back through
/// [`rvmtl_wire::WireSource`] — and fail the process if any replayed run
/// diverges from direct in-memory ingestion (the CI wire-transport gate;
/// see `docs/PROTOCOL.md` for the format under test).
fn run_wire_smoke() -> ! {
    let mut failed = false;
    for case in rvmtl_bench::wire_replay_cases() {
        let run = rvmtl_bench::run_wire_replay_case(&case);
        let ok = run.replay_identical() && run.stats.decode_errors == 0;
        eprintln!(
            "[bench] wire-smoke {} ({}): {} frames, {} wire bytes, {} rejected, {}",
            case.name,
            if case.pipelined {
                "pipelined"
            } else {
                "sequential"
            },
            run.stats.frames_total(),
            run.wire_bytes,
            run.stats.rejected,
            if ok { "verdict-identical" } else { "DIVERGED" },
        );
        failed |= !ok || run.wire_bytes == 0;
    }
    if failed {
        eprintln!("[bench] wire-smoke FAILED: wire replay is not verdict-identical");
        std::process::exit(1);
    }
    eprintln!("[bench] wire-smoke passed");
    std::process::exit(0);
}

/// `--scrape-check`: parse a scraped text exposition and fail the process on
/// any malformed line or missing core metric family.
fn run_scrape_check(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("[bench] cannot read scraped exposition {path}: {e}");
            std::process::exit(1);
        }
    };
    let samples = match rvmtl_runtime::parse_exposition(&text) {
        Ok(samples) => samples,
        Err(e) => {
            eprintln!("[bench] scraped exposition {path} does not parse: {e}");
            std::process::exit(1);
        }
    };
    let mut failed = samples.is_empty();
    if failed {
        eprintln!("[bench] scraped exposition {path} holds no samples");
    }
    for required in [
        "rvmtl_events_observed_total",
        "rvmtl_segments_processed_total",
        "rvmtl_gc_epochs_total",
        "rvmtl_pending_obligations",
    ] {
        if !samples.iter().any(|s| s.name == required) {
            eprintln!("[bench] scraped exposition {path} is missing {required}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "[bench] scraped exposition {path} is well-formed ({} samples)",
        samples.len()
    );
    std::process::exit(0);
}

/// `--abtest`: interleaved A/B comparison of the two solver exploration
/// engines on the shift-free saturation fixtures. Both engines execute the
/// identical search (asserted on verdicts and explored-state counts before
/// any timing), so ns-per-state is the only axis that can differ; rounds are
/// interleaved so slow host-level drift cancels out of the comparison.
fn run_abtest() -> ! {
    use rvmtl_solver::ExploreEngine;
    const ROUNDS: usize = 9;
    const FIXTURES: [&str; 2] = ["until_eps16", "always_eps16"];
    let engine_monitor = |segments: usize, engine: ExploreEngine| {
        Monitor::new(if segments <= 1 {
            MonitorConfig::unsegmented().engine(engine)
        } else {
            MonitorConfig::with_segments(segments).engine(engine)
        })
    };
    let mut rows = Vec::new();
    for (name, comp, phi, segments) in rvmtl_bench::shift_free_workloads() {
        if !FIXTURES.contains(&name) {
            continue;
        }
        let reference = engine_monitor(segments, ExploreEngine::Reference);
        let work_stack = engine_monitor(segments, ExploreEngine::WorkStack);
        // Equality gate before any clock starts: a timing comparison between
        // engines that explore different searches would be meaningless.
        let ref_report = reference.run(&comp, &phi);
        let ws_report = work_stack.run(&comp, &phi);
        assert_eq!(
            ref_report.verdicts, ws_report.verdicts,
            "{name}: engines disagree on verdicts"
        );
        assert_eq!(
            ref_report.explored_states(),
            ws_report.explored_states(),
            "{name}: engines disagree on explored states"
        );
        let states = ws_report.explored_states();
        // Calibrate the block size on the reference (slower) engine so both
        // engines run identical iteration counts per round.
        let started = Instant::now();
        let _ = reference.run(&comp, &phi);
        let once = started.elapsed().as_secs_f64().max(1e-7);
        let iters = ((0.02 / once) as usize).clamp(1, 10_000);
        let mut ref_ns: Vec<f64> = Vec::with_capacity(ROUNDS);
        let mut ws_ns: Vec<f64> = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            for (times, monitor) in [(&mut ref_ns, &reference), (&mut ws_ns, &work_stack)] {
                let started = Instant::now();
                for _ in 0..iters {
                    let _ = monitor.run(&comp, &phi);
                }
                let secs = started.elapsed().as_secs_f64() / iters as f64;
                times.push(secs * 1e9 / states as f64);
            }
        }
        ref_ns.sort_by(f64::total_cmp);
        ws_ns.sort_by(f64::total_cmp);
        let (ref_min, ref_med) = (ref_ns[0], ref_ns[ROUNDS / 2]);
        let (ws_min, ws_med) = (ws_ns[0], ws_ns[ROUNDS / 2]);
        rows.push(format!(
            concat!(
                "    {{\"fixture\": \"{}\", \"explored_states\": {}, ",
                "\"iters_per_round\": {}, ",
                "\"reference_ns_per_state\": {{\"min\": {:.1}, \"median\": {:.1}}}, ",
                "\"work_stack_ns_per_state\": {{\"min\": {:.1}, \"median\": {:.1}}}, ",
                "\"speedup_min\": {:.3}, \"speedup_median\": {:.3}}}"
            ),
            name,
            states,
            iters,
            ref_min,
            ref_med,
            ws_min,
            ws_med,
            ref_min / ws_min,
            ref_med / ws_med,
        ));
        eprintln!(
            concat!(
                "[bench] abtest {}: reference {:.1}/{:.1} ns/state (min/median), ",
                "work_stack {:.1}/{:.1} ns/state, speedup x{:.2} (min) x{:.2} (median)"
            ),
            name,
            ref_min,
            ref_med,
            ws_min,
            ws_med,
            ref_min / ws_min,
            ref_med / ws_med,
        );
    }
    println!("{{");
    println!("  \"mode\": \"abtest\",");
    println!("  \"rounds\": {ROUNDS},");
    println!(
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!("  \"series\": [");
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--abtest") {
        run_abtest();
    }
    if args.iter().any(|a| a == "--check") {
        run_check(&path_after(&args, "--check"));
    }
    if args.iter().any(|a| a == "--checkpoint-smoke") {
        run_checkpoint_smoke();
    }
    if args.iter().any(|a| a == "--wire-smoke") {
        run_wire_smoke();
    }
    if args.iter().any(|a| a == "--scrape-check") {
        run_scrape_check(&path_after(&args, "--scrape-check"));
    }
    if args.iter().any(|a| a == "--write-pins") {
        let path = path_after(&args, "--write-pins");
        eprintln!("[bench] collecting search-shape counters for {path} …");
        let entries = pins::all_entries();
        std::fs::write(&path, pins::format_pins(&entries)).expect("write pin budget");
        eprintln!("[bench] wrote {} pinned values to {path}", entries.len());
        return;
    }
    let sweeps = args.iter().any(|a| a == "--sweeps");
    let protocols = sweeps || args.iter().any(|a| a == "--protocols");
    let label = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "snapshot".into())
        .replace('\\', "\\\\")
        .replace('"', "\\\"");

    // All deterministic sweep points come from the single shared producer —
    // the same membership the `--check`/`--write-pins` gate collects, so a
    // sweep cannot be timed without being pinned or vice versa. Sweep
    // rationale lives with the fixtures in `rvmtl_bench`:
    //
    // * `fig5a` — the headline series, duration doubled above scheduler
    //   noise (always measured, even without `--sweeps`);
    // * `epsilon_sweep` — Fig. 5b, the axis the per-tick engine blew up on;
    // * `epsilon_saturation` — must go flat once ε exceeds the horizon;
    // * `epsilon_dense` — delayed-window formula, must go flat *below* the
    //   horizon (the shift-normal zone signature);
    // * `length_sweep` — Fig. 5d;
    // * `shift_free` — all windows at zero, the watermark never trips;
    //   `ns_per_state` is the figure the before/after comparison in
    //   `BENCH_5.json` tracks (explored-state counts are pinned unchanged by
    //   the `--check` gate, so the per-state cost ratio *is* the
    //   shift-normal tax).
    let mut rows = Vec::new();
    let mut epsilon_rows = Vec::new();
    let mut saturation_rows = Vec::new();
    let mut dense_rows = Vec::new();
    let mut length_rows = Vec::new();
    let mut shift_free_rows = Vec::new();
    let mut total_states = 0usize;
    let mut total_secs = 0f64;
    let mut summary: Vec<(&'static str, usize, f64)> = Vec::new();
    for p in sweep_points() {
        if !sweeps && p.sweep != "fig5a" {
            continue;
        }
        let (states, best_secs) = measure_best(&p.comp, &p.phi, p.segments);
        match summary.last_mut() {
            Some(row) if row.0 == p.sweep => {
                row.1 += states;
                row.2 += best_secs;
            }
            _ => summary.push((p.sweep, states, best_secs)),
        }
        let events = p.comp.event_count();
        match p.sweep {
            "fig5a" => {
                total_states += states;
                total_secs += best_secs;
                rows.push(format!(
                    concat!(
                        "    {{\"formula\": \"{}\", \"events\": {}, \"explored_states\": {}, ",
                        "\"wall_ms\": {:.3}, \"states_per_sec\": {:.0}}}"
                    ),
                    p.point,
                    events,
                    states,
                    best_secs * 1000.0,
                    states as f64 / best_secs
                ));
            }
            "epsilon_sweep" => epsilon_rows.push(format!(
                concat!(
                    "    {{\"epsilon\": {}, \"explored_states\": {}, \"wall_ms\": {:.3}, ",
                    "\"states_per_sec\": {:.0}}}"
                ),
                p.x,
                states,
                best_secs * 1000.0,
                states as f64 / best_secs
            )),
            "epsilon_saturation" => saturation_rows.push(format!(
                "    {{\"epsilon\": {}, \"explored_states\": {}, \"wall_ms\": {:.3}}}",
                p.x,
                states,
                best_secs * 1000.0,
            )),
            "epsilon_dense" => dense_rows.push(format!(
                "    {{\"epsilon\": {}, \"explored_states\": {}, \"wall_ms\": {:.3}}}",
                p.x,
                states,
                best_secs * 1000.0,
            )),
            "length_sweep" => length_rows.push(format!(
                concat!(
                    "    {{\"length\": {}, \"events\": {}, \"explored_states\": {}, ",
                    "\"wall_ms\": {:.3}}}"
                ),
                p.x,
                events,
                states,
                best_secs * 1000.0,
            )),
            "shift_free" => shift_free_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"events\": {}, \"explored_states\": {}, ",
                    "\"wall_ms\": {:.3}, \"states_per_sec\": {:.0}, \"ns_per_state\": {:.1}}}"
                ),
                p.point,
                events,
                states,
                best_secs * 1000.0,
                states as f64 / best_secs,
                best_secs * 1e9 / states as f64,
            )),
            other => unreachable!("unhandled sweep {other} — add a row format for it"),
        }
    }
    let point_count = |sweep: &str| -> usize {
        match sweep {
            "fig5a" => rows.len(),
            "epsilon_sweep" => epsilon_rows.len(),
            "epsilon_saturation" => saturation_rows.len(),
            "epsilon_dense" => dense_rows.len(),
            "length_sweep" => length_rows.len(),
            _ => shift_free_rows.len(),
        }
    };
    for (sweep, states, secs) in &summary {
        eprintln!(
            "[bench] {}: {} points, {} states, {:.3} ms, {:.0} states/s",
            sweep,
            point_count(sweep),
            states,
            secs * 1000.0,
            *states as f64 / secs
        );
    }

    // The Fig. 6 cross-chain protocol workloads (two-party / three-party
    // swap, auction scenario sets): tracked here so regressions on the
    // protocol lattices are pinned instead of only observable through the
    // unpinned `fig6_blockchain` bench bin.
    let mut protocol_rows = Vec::new();
    if protocols {
        let (mut sweep_states, mut sweep_secs, mut count) = (0usize, 0f64, 0usize);
        for (name, segments, comp, phi) in
            blockchain_workloads(BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON)
        {
            let (states, best_secs) = measure_best(&comp, &phi, segments.max(1));
            sweep_states += states;
            sweep_secs += best_secs;
            count += 1;
            protocol_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"segments\": {}, \"events\": {}, ",
                    "\"explored_states\": {}, \"wall_ms\": {:.3}}}"
                ),
                name.replace('"', "\\\""),
                segments.max(1),
                comp.event_count(),
                states,
                best_secs * 1000.0,
            ));
        }
        eprintln!(
            "[bench] fig6_protocols: {} workloads, {} states, {:.3} ms, {:.0} states/s",
            count,
            sweep_states,
            sweep_secs * 1000.0,
            sweep_states as f64 / sweep_secs
        );
    }

    // The fault-storm sweep: every adversarial-ingestion scenario of
    // `fault_storm_cases` streamed through the sequential runtime. The
    // counters (rejections, absorbed duplicates, shed events, explored
    // states) are deterministic and pinned by the `--check` gate; only the
    // wall clock is measured here.
    let mut fault_rows = Vec::new();
    if sweeps {
        let (mut sweep_states, mut sweep_secs, mut count) = (0usize, 0f64, 0usize);
        for case in rvmtl_bench::fault_storm_cases() {
            let started = Instant::now();
            let (report, faulted) = rvmtl_bench::run_fault_storm_case(&case);
            let secs = started.elapsed().as_secs_f64();
            sweep_states += report.stats.explored_states;
            sweep_secs += secs;
            count += 1;
            let h = report.health;
            fault_rows.push(format!(
                concat!(
                    "    {{\"case\": \"{}\", \"arrivals\": {}, \"explored_states\": {}, ",
                    "\"rejected\": {}, \"deduped\": {}, \"dropped\": {}, ",
                    "\"late_beyond_epsilon\": {}, \"wall_ms\": {:.3}}}"
                ),
                case.name,
                faulted.arrivals.len(),
                report.stats.explored_states,
                h.rejected,
                h.deduped,
                h.dropped,
                h.late_beyond_epsilon,
                secs * 1000.0,
            ));
            eprintln!("[bench]   fault_storm {}: health: {}", case.name, h);
        }
        eprintln!(
            "[bench] fault_storm: {} cases, {} states, {:.3} ms",
            count,
            sweep_states,
            sweep_secs * 1000.0,
        );
    }

    // The checkpoint sweep: every recovery scenario streamed through the
    // serialize-and-restore harness. Restart counts, snapshot sizes and
    // recovery identity are deterministic and pinned by the `--check` gate
    // (and gated alone by `--checkpoint-smoke`); only the wall clock — the
    // price of snapshotting at every GC epoch — is measured here.
    let mut checkpoint_rows = Vec::new();
    if sweeps {
        let (mut sweep_secs, mut count) = (0f64, 0usize);
        for case in rvmtl_bench::checkpoint_cases() {
            let started = Instant::now();
            let run = rvmtl_bench::run_checkpoint_case(&case);
            let secs = started.elapsed().as_secs_f64();
            sweep_secs += secs;
            count += 1;
            checkpoint_rows.push(format!(
                concat!(
                    "    {{\"case\": \"{}\", \"restarts\": {}, \"snapshot_bytes\": {}, ",
                    "\"recovered_identical\": {}, \"wall_ms\": {:.3}}}"
                ),
                case.name,
                run.restarts,
                run.snapshot_bytes,
                run.recovered_identical(),
                secs * 1000.0,
            ));
            eprintln!(
                "[bench]   checkpoint {}: health: {}",
                case.name, run.report.health
            );
        }
        eprintln!(
            "[bench] checkpoint_sweep: {} cases, {:.3} ms",
            count,
            sweep_secs * 1000.0,
        );
    }

    // The telemetry sweep: the canonical instrumented workload (the clean
    // fault-storm schedule with telemetry on). Count-shape metrics are
    // pinned by the `--check` gate; the timing histograms are wall-clock and
    // reported here only — the stderr lines put the health counters and the
    // busiest instruments (where the time went) into every CI log.
    let mut telemetry_rows = Vec::new();
    if sweeps {
        let started = Instant::now();
        let (report, kinds) = pins::run_telemetry_workload();
        let secs = started.elapsed().as_secs_f64();
        let snap = &report.telemetry;
        eprintln!(
            "[bench] telemetry: {:.3} ms instrumented, health: {}",
            secs * 1000.0,
            report.health
        );
        let mut hists: Vec<_> = snap.histograms.iter().filter(|h| h.count > 0).collect();
        hists.sort_by_key(|h| std::cmp::Reverse((h.sum, h.count)));
        for h in hists.iter().take(3) {
            eprintln!(
                concat!(
                    "[bench]   {}{}{}{}: count {}, sum {:.3} ms, ",
                    "p50 {} ns, p90 {} ns, p99 {} ns, max {} ns"
                ),
                h.name,
                if h.labels.is_empty() { "" } else { "{" },
                h.labels,
                if h.labels.is_empty() { "" } else { "}" },
                h.count,
                h.sum as f64 / 1e6,
                h.p50,
                h.p90,
                h.p99,
                h.max,
            );
        }
        let flight_events: u64 = kinds.iter().map(|(_, n)| n).sum();
        telemetry_rows.push(format!(
            concat!(
                "    {{\"events_observed\": {}, \"segments_processed\": {}, ",
                "\"gc_epochs\": {}, \"flight_events\": {}, \"exposition_samples\": {}, ",
                "\"wall_ms\": {:.3}}}"
            ),
            snap.counter("rvmtl_events_observed_total").unwrap_or(0),
            snap.counter("rvmtl_segments_processed_total").unwrap_or(0),
            snap.counter("rvmtl_gc_epochs_total").unwrap_or(0),
            flight_events,
            rvmtl_runtime::parse_exposition(&snap.to_prometheus())
                .map(|s| s.len())
                .unwrap_or(0),
            secs * 1000.0,
        ));
    }

    // The streaming-pipeline sweep: long multi-query computations through the
    // batch monitor (one run per query — the pre-runtime serving path), the
    // streaming runtime's sequential path (shared per-segment solver across
    // queries), and its pipelined path. `workers` documents the measurement
    // host; on a single-core container the pipelined column measures
    // scheduling overhead, not speedup.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut pipeline_rows = Vec::new();
    if sweeps {
        let formulas = [formula(3, 2), formula(4, 2)];
        for length in [200u64, 400, 800] {
            let mut cfg = default_trace_config();
            cfg.duration_ms = length;
            // A skew bound above the default keeps every segment's search
            // non-trivial, so the sweep measures solver work, not ingestion.
            cfg.epsilon_ms = 3;
            let comp = synthetic_computation(4, &cfg);
            let duration = comp.duration().max(1);
            let segment_length = (duration / DEFAULT_SEGMENTS as u64).max(1);
            let batch = measure_batch(&comp, &formulas, DEFAULT_SEGMENTS, 3);
            let stream_seq =
                measure_stream(&comp, &formulas, &StreamConfig::new(segment_length), 3);
            // At least two workers so the pipeline machinery itself is
            // measured even on a single-core host (oversubscribed there).
            let stream_pipe = measure_stream(
                &comp,
                &formulas,
                &StreamConfig::new(segment_length)
                    .pipelined(Some(workers.max(2)))
                    .flush_depth(4),
                3,
            );
            pipeline_rows.push(format!(
                concat!(
                    "    {{\"length\": {}, \"events\": {}, \"queries\": {}, ",
                    "\"batch_ms\": {:.3}, \"stream_seq_ms\": {:.3}, \"stream_pipe_ms\": {:.3}}}"
                ),
                length,
                comp.event_count(),
                formulas.len(),
                batch * 1000.0,
                stream_seq * 1000.0,
                stream_pipe * 1000.0,
            ));
            eprintln!(
                concat!(
                    "[bench] pipeline_sweep len {}: batch {:.3} ms, ",
                    "stream_seq {:.3} ms, stream_pipe {:.3} ms"
                ),
                length,
                batch * 1000.0,
                stream_seq * 1000.0,
                stream_pipe * 1000.0
            );
        }
    }

    println!("{{");
    println!("  \"label\": \"{label}\",");
    println!("  \"available_parallelism\": {workers},");
    println!("  \"workload\": \"fig5a synthetic (g = {DEFAULT_SEGMENTS})\",");
    println!("  \"series\": [");
    println!("{}", rows.join(",\n"));
    println!("  ],");
    if sweeps {
        println!("  \"epsilon_sweep\": [");
        println!("{}", epsilon_rows.join(",\n"));
        println!("  ],");
        println!("  \"epsilon_saturation\": [");
        println!("{}", saturation_rows.join(",\n"));
        println!("  ],");
        println!("  \"epsilon_dense\": [");
        println!("{}", dense_rows.join(",\n"));
        println!("  ],");
        println!("  \"length_sweep\": [");
        println!("{}", length_rows.join(",\n"));
        println!("  ],");
        println!("  \"shift_free\": [");
        println!("{}", shift_free_rows.join(",\n"));
        println!("  ],");
    }
    if protocols {
        println!("  \"fig6_protocols\": [");
        println!("{}", protocol_rows.join(",\n"));
        println!("  ],");
    }
    if sweeps {
        println!("  \"fault_storm\": [");
        println!("{}", fault_rows.join(",\n"));
        println!("  ],");
        println!("  \"checkpoint_sweep\": [");
        println!("{}", checkpoint_rows.join(",\n"));
        println!("  ],");
        println!("  \"telemetry\": [");
        println!("{}", telemetry_rows.join(",\n"));
        println!("  ],");
        println!("  \"pipeline_sweep\": [");
        println!("{}", pipeline_rows.join(",\n"));
        println!("  ],");
    }
    println!("  \"total_explored_states\": {total_states},");
    println!("  \"total_wall_ms\": {:.3},", total_secs * 1000.0);
    println!(
        "  \"states_per_sec\": {:.0}",
        total_states as f64 / total_secs
    );
    println!("}}");
}
