//! Machine-readable performance snapshot of the paper's workloads.
//!
//! Prints a JSON object with wall time, explored solver states, and the
//! states-per-second throughput for each formula of the Fig. 5a sweep plus an
//! aggregate, and — with `--sweeps` — the ε sweep of Fig. 5b/5c, the length
//! sweep of Fig. 5d, the Fig. 6 cross-chain protocol lattices (two-party /
//! three-party swap and auction scenario sets), and the streaming-pipeline
//! sweep comparing the batch monitor against the `rvmtl-runtime`
//! [`StreamMonitor`] (sequential and pipelined) on long multi-query
//! computations. The repository keeps outputs of this tool in
//! `BENCH_1.json` / `BENCH_2.json` / `BENCH_3.json` so perf-focused PRs have
//! hard before/after numbers:
//!
//! ```text
//! cargo run --release --bin bench_snapshot -- [label] [--sweeps] > snapshot.json
//! ```
//!
//! Without `--sweeps` only the (fast) Fig. 5a series runs; `--protocols`
//! additionally runs just the protocol series (the CI smoke). CI smokes both
//! modes (output discarded) so no sweep code path can bitrot.

use rvmtl_bench::{
    blockchain_workloads, default_trace_config, formula, synthetic_computation, BLOCKCHAIN_DELTA,
    BLOCKCHAIN_EPSILON, DEFAULT_SEGMENTS,
};
use rvmtl_distrib::EventId;
use rvmtl_monitor::Monitor;
use rvmtl_monitor::MonitorConfig;
use rvmtl_runtime::{StreamConfig, StreamMonitor};
use std::time::Instant;

/// Measurement of monitoring `phi` over `comp`: returns
/// `(explored_states, seconds per run)`.
///
/// Sub-millisecond workloads are timed as blocks of enough iterations to
/// reach ~25 ms per block (best of 5 blocks, divided by the iteration
/// count), so scheduler noise and timer resolution do not dominate the
/// per-run figure.
fn measure_best(
    comp: &rvmtl_distrib::DistributedComputation,
    phi: &rvmtl_mtl::Formula,
    segments: usize,
) -> (usize, f64) {
    let monitor = Monitor::new(MonitorConfig::with_segments(segments));
    // One warm-up run yields the (deterministic) state count and calibrates
    // the block size.
    let started = Instant::now();
    let states = monitor.run(comp, phi).explored_states();
    let once = started.elapsed().as_secs_f64().max(1e-7);
    let iters = ((0.025 / once) as usize).clamp(1, 10_000);
    let mut best_secs = f64::MAX;
    for _ in 0..5 {
        let started = Instant::now();
        for _ in 0..iters {
            let _ = monitor.run(comp, phi);
        }
        let secs = started.elapsed().as_secs_f64() / iters as f64;
        if secs < best_secs {
            best_secs = secs;
        }
    }
    (states, best_secs)
}

/// Wall time of one full streaming run (feed every event in global time
/// order, then finish), best of `rounds`.
fn measure_stream(
    comp: &rvmtl_distrib::DistributedComputation,
    formulas: &[rvmtl_mtl::Formula],
    config: &StreamConfig,
    rounds: usize,
) -> f64 {
    let mut events: Vec<EventId> = (0..comp.event_count()).map(EventId).collect();
    events.sort_by_key(|&id| (comp.event(id).local_time, comp.event(id).process.0));
    let mut best = f64::MAX;
    for _ in 0..rounds {
        let started = Instant::now();
        let mut monitor = StreamMonitor::new(comp.process_count(), comp.epsilon(), config.clone());
        for phi in formulas {
            monitor.add_query(phi);
        }
        for &id in &events {
            let e = comp.event(id);
            monitor
                .observe(e.process.0, e.local_time, e.state.clone())
                .expect("benchmark events are stream-legal");
        }
        let _ = monitor.finish();
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

/// Wall time of the batch reference on the same queries (one `Monitor::run`
/// per formula — the pre-runtime serving path), best of `rounds`.
fn measure_batch(
    comp: &rvmtl_distrib::DistributedComputation,
    formulas: &[rvmtl_mtl::Formula],
    segments: usize,
    rounds: usize,
) -> f64 {
    let monitor = Monitor::new(MonitorConfig::with_segments(segments));
    let mut best = f64::MAX;
    for _ in 0..rounds {
        let started = Instant::now();
        for phi in formulas {
            let _ = monitor.run(comp, phi);
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sweeps = args.iter().any(|a| a == "--sweeps");
    let protocols = sweeps || args.iter().any(|a| a == "--protocols");
    let label = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "snapshot".into())
        .replace('\\', "\\\\")
        .replace('"', "\\\"");

    // The Fig. 5a defaults, doubled in length so the measurement rises well
    // above scheduler noise.
    let mut cfg = default_trace_config();
    cfg.duration_ms *= 2;

    let mut rows = Vec::new();
    let mut total_states = 0usize;
    let mut total_secs = 0f64;
    for index in [1usize, 3, 4, 6] {
        let comp = synthetic_computation(index, &cfg);
        let phi = formula(index, cfg.processes);
        let (states, best_secs) = measure_best(&comp, &phi, DEFAULT_SEGMENTS);
        total_states += states;
        total_secs += best_secs;
        rows.push(format!(
            concat!(
                "    {{\"formula\": \"phi{}\", \"events\": {}, \"explored_states\": {}, ",
                "\"wall_ms\": {:.3}, \"states_per_sec\": {:.0}}}"
            ),
            index,
            comp.event_count(),
            states,
            best_secs * 1000.0,
            states as f64 / best_secs
        ));
    }

    // The ε sweep of Fig. 5b (phi4, g = 7 — the steepest baseline series):
    // the axis on which the per-tick engine blew up linearly.
    let mut epsilon_rows = Vec::new();
    if sweeps {
        let phi = formula(4, 2);
        for epsilon in [1u64, 2, 3, 4, 5, 6] {
            let mut cfg = default_trace_config();
            cfg.epsilon_ms = epsilon;
            let comp = synthetic_computation(4, &cfg);
            let (states, best_secs) = measure_best(&comp, &phi, 7);
            epsilon_rows.push(format!(
                concat!(
                    "    {{\"epsilon\": {}, \"explored_states\": {}, \"wall_ms\": {:.3}, ",
                    "\"states_per_sec\": {:.0}}}"
                ),
                epsilon,
                states,
                best_secs * 1000.0,
                states as f64 / best_secs
            ));
        }
    }

    // The ε saturation sweep: a Fig. 3-sized computation under skew bounds
    // far beyond the formula's temporal horizon (6). The per-tick engine grew
    // linearly in ε forever; the interval abstraction must go flat once every
    // window is wider than the horizon.
    let mut saturation_rows = Vec::new();
    if sweeps {
        let phi = rvmtl_mtl::parse("a U[0,6) b").expect("fixed formula parses");
        for epsilon in [1u64, 2, 4, 8, 16, 32, 64] {
            let mut b = rvmtl_distrib::ComputationBuilder::new(2, epsilon);
            b.event(0, 1, rvmtl_mtl::state!["a"]);
            b.event(0, 4, rvmtl_mtl::state![]);
            b.event(1, 2, rvmtl_mtl::state!["a"]);
            b.event(1, 5, rvmtl_mtl::state!["b"]);
            let comp = b.build().expect("fixed computation is valid");
            let (states, best_secs) = measure_best(&comp, &phi, 1);
            saturation_rows.push(format!(
                "    {{\"epsilon\": {}, \"explored_states\": {}, \"wall_ms\": {:.3}}}",
                epsilon,
                states,
                best_secs * 1000.0,
            ));
        }
    }

    // The dense-workload ε sweep: a *delayed-window* formula (`a U[6,12) b`,
    // temporal horizon 12, live window width 6) over a dense two-process
    // lattice (one event per tick, clustered at the window). Residuals of
    // the delayed window are exact time-translates of each other while the
    // window has not opened, so a shift-normal engine's branching saturates
    // once every event window covers the *open* region — at an ε around the
    // window's width, strictly below the horizon. A per-tick or
    // invariant-only engine keeps branching on the pre-window ticks too and
    // only goes flat once ε reaches the full horizon.
    let mut dense_rows = Vec::new();
    if sweeps {
        let phi = rvmtl_mtl::parse("a U[6,12) b").expect("fixed formula parses");
        for epsilon in [1u64, 2, 3, 4, 5, 6, 8, 10, 12, 16, 32, 64] {
            let mut b = rvmtl_distrib::ComputationBuilder::new(2, epsilon);
            b.event(0, 6, rvmtl_mtl::state!["a"]);
            b.event(0, 8, rvmtl_mtl::state!["a"]);
            b.event(0, 10, rvmtl_mtl::state!["a"]);
            b.event(1, 7, rvmtl_mtl::state!["a"]);
            b.event(1, 9, rvmtl_mtl::state!["a"]);
            b.event(1, 11, rvmtl_mtl::state!["b"]);
            let comp = b.build().expect("fixed computation is valid");
            let (states, best_secs) = measure_best(&comp, &phi, 1);
            dense_rows.push(format!(
                "    {{\"epsilon\": {}, \"explored_states\": {}, \"wall_ms\": {:.3}}}",
                epsilon,
                states,
                best_secs * 1000.0,
            ));
        }
    }

    // The length sweep of Fig. 5d (phi4, |P| = 2, g = 15).
    let mut length_rows = Vec::new();
    if sweeps {
        let phi = formula(4, 2);
        for length in [100u64, 200, 300, 400, 500] {
            let mut cfg = default_trace_config();
            cfg.duration_ms = length;
            let comp = synthetic_computation(4, &cfg);
            let (states, best_secs) = measure_best(&comp, &phi, DEFAULT_SEGMENTS);
            length_rows.push(format!(
                concat!(
                    "    {{\"length\": {}, \"events\": {}, \"explored_states\": {}, ",
                    "\"wall_ms\": {:.3}}}"
                ),
                length,
                comp.event_count(),
                states,
                best_secs * 1000.0,
            ));
        }
    }

    // The Fig. 6 cross-chain protocol workloads (two-party / three-party
    // swap, auction scenario sets): tracked here so regressions on the
    // protocol lattices are pinned instead of only observable through the
    // unpinned `fig6_blockchain` bench bin.
    let mut protocol_rows = Vec::new();
    if protocols {
        for (name, segments, comp, phi) in
            blockchain_workloads(BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON)
        {
            let (states, best_secs) = measure_best(&comp, &phi, segments.max(1));
            protocol_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"segments\": {}, \"events\": {}, ",
                    "\"explored_states\": {}, \"wall_ms\": {:.3}}}"
                ),
                name.replace('"', "\\\""),
                segments.max(1),
                comp.event_count(),
                states,
                best_secs * 1000.0,
            ));
        }
    }

    // The streaming-pipeline sweep: long multi-query computations through the
    // batch monitor (one run per query — the pre-runtime serving path), the
    // streaming runtime's sequential path (shared per-segment solver across
    // queries), and its pipelined path. `workers` documents the measurement
    // host; on a single-core container the pipelined column measures
    // scheduling overhead, not speedup.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut pipeline_rows = Vec::new();
    if sweeps {
        let formulas = [formula(3, 2), formula(4, 2)];
        for length in [200u64, 400, 800] {
            let mut cfg = default_trace_config();
            cfg.duration_ms = length;
            // A skew bound above the default keeps every segment's search
            // non-trivial, so the sweep measures solver work, not ingestion.
            cfg.epsilon_ms = 3;
            let comp = synthetic_computation(4, &cfg);
            let duration = comp.duration().max(1);
            let segment_length = (duration / DEFAULT_SEGMENTS as u64).max(1);
            let batch = measure_batch(&comp, &formulas, DEFAULT_SEGMENTS, 3);
            let stream_seq =
                measure_stream(&comp, &formulas, &StreamConfig::new(segment_length), 3);
            // At least two workers so the pipeline machinery itself is
            // measured even on a single-core host (oversubscribed there).
            let stream_pipe = measure_stream(
                &comp,
                &formulas,
                &StreamConfig::new(segment_length)
                    .pipelined(Some(workers.max(2)))
                    .flush_depth(4),
                3,
            );
            pipeline_rows.push(format!(
                concat!(
                    "    {{\"length\": {}, \"events\": {}, \"queries\": {}, ",
                    "\"batch_ms\": {:.3}, \"stream_seq_ms\": {:.3}, \"stream_pipe_ms\": {:.3}}}"
                ),
                length,
                comp.event_count(),
                formulas.len(),
                batch * 1000.0,
                stream_seq * 1000.0,
                stream_pipe * 1000.0,
            ));
        }
    }

    println!("{{");
    println!("  \"label\": \"{label}\",");
    println!("  \"available_parallelism\": {workers},");
    println!("  \"workload\": \"fig5a synthetic (g = {DEFAULT_SEGMENTS})\",");
    println!("  \"series\": [");
    println!("{}", rows.join(",\n"));
    println!("  ],");
    if sweeps {
        println!("  \"epsilon_sweep\": [");
        println!("{}", epsilon_rows.join(",\n"));
        println!("  ],");
        println!("  \"epsilon_saturation\": [");
        println!("{}", saturation_rows.join(",\n"));
        println!("  ],");
        println!("  \"epsilon_dense\": [");
        println!("{}", dense_rows.join(",\n"));
        println!("  ],");
        println!("  \"length_sweep\": [");
        println!("{}", length_rows.join(",\n"));
        println!("  ],");
    }
    if protocols {
        println!("  \"fig6_protocols\": [");
        println!("{}", protocol_rows.join(",\n"));
        println!("  ],");
    }
    if sweeps {
        println!("  \"pipeline_sweep\": [");
        println!("{}", pipeline_rows.join(",\n"));
        println!("  ],");
    }
    println!("  \"total_explored_states\": {total_states},");
    println!("  \"total_wall_ms\": {:.3},", total_secs * 1000.0);
    println!(
        "  \"states_per_sec\": {:.0}",
        total_states as f64 / total_secs
    );
    println!("}}");
}
