//! Machine-readable performance snapshot of the Fig. 5a synthetic workload.
//!
//! Prints a JSON object with wall time, explored solver states, and the
//! states-per-second throughput for each formula of the Fig. 5a sweep plus an
//! aggregate. The repository keeps the output of this tool in `BENCH_1.json`
//! so perf-focused PRs have a hard before/after number:
//!
//! ```text
//! cargo run --release --bin bench_snapshot -- [label] > snapshot.json
//! ```

use rvmtl_bench::{default_trace_config, formula, synthetic_computation, DEFAULT_SEGMENTS};
use rvmtl_monitor::Monitor;
use rvmtl_monitor::MonitorConfig;
use std::time::Instant;

fn main() {
    let label = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "snapshot".into())
        .replace('\\', "\\\\")
        .replace('"', "\\\"");
    // The Fig. 5a defaults, doubled in length so the measurement rises well
    // above scheduler noise.
    let mut cfg = default_trace_config();
    cfg.duration_ms *= 2;

    let mut rows = Vec::new();
    let mut total_states = 0usize;
    let mut total_secs = 0f64;
    for index in [1usize, 3, 4, 6] {
        let comp = synthetic_computation(index, &cfg);
        let phi = formula(index, cfg.processes);
        let monitor = Monitor::new(MonitorConfig::with_segments(DEFAULT_SEGMENTS));
        // Warm-up, then best-of-3 to shed scheduler noise.
        let _ = monitor.run(&comp, &phi);
        let mut best_secs = f64::MAX;
        let mut states = 0usize;
        for _ in 0..3 {
            let started = Instant::now();
            let report = monitor.run(&comp, &phi);
            let secs = started.elapsed().as_secs_f64();
            if secs < best_secs {
                best_secs = secs;
                states = report.explored_states();
            }
        }
        total_states += states;
        total_secs += best_secs;
        rows.push(format!(
            concat!(
                "    {{\"formula\": \"phi{}\", \"events\": {}, \"explored_states\": {}, ",
                "\"wall_ms\": {:.3}, \"states_per_sec\": {:.0}}}"
            ),
            index,
            comp.event_count(),
            states,
            best_secs * 1000.0,
            states as f64 / best_secs
        ));
    }

    println!("{{");
    println!("  \"label\": \"{label}\",");
    println!("  \"workload\": \"fig5a synthetic (g = {DEFAULT_SEGMENTS})\",");
    println!("  \"series\": [");
    println!("{}", rows.join(",\n"));
    println!("  ],");
    println!("  \"total_explored_states\": {total_states},");
    println!("  \"total_wall_ms\": {:.3},", total_secs * 1000.0);
    println!(
        "  \"states_per_sec\": {:.0}",
        total_states as f64 / total_secs
    );
    println!("}}");
}
