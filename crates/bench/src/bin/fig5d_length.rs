//! Fig. 5d — impact of the computation length l.

use rvmtl_bench::{
    default_trace_config, formula, measure, print_header, synthetic_computation, DEFAULT_SEGMENTS,
};

fn main() {
    println!("Fig. 5d — impact of the computation length (runtime vs length, fixed g and ε)\n");
    print_header("length");
    for (phi_index, processes) in [(4usize, 1usize), (4, 2), (6, 1), (6, 2)] {
        let phi = formula(phi_index, processes);
        for length in [100u64, 200, 300, 400, 500] {
            let mut cfg = default_trace_config();
            cfg.processes = processes;
            cfg.duration_ms = length;
            let comp = synthetic_computation(phi_index, &cfg);
            let sample = measure(
                format!("phi{phi_index}, |P|={processes}"),
                length as f64,
                &comp,
                &phi,
                DEFAULT_SEGMENTS,
            );
            println!("{}", sample.row());
        }
    }
    println!("\nExpected shape (paper): runtime grows with the computation length, roughly");
    println!("linearly once the segment count is held constant (each segment gets more events).");
}
