//! Fig. 5c — impact of the segment frequency (segments per unit of time).

use rvmtl_bench::{default_trace_config, formula, measure, print_header, synthetic_computation};
use rvmtl_distrib::segments_for_frequency;

fn main() {
    println!("Fig. 5c — impact of segment frequency (runtime vs segments per 10-unit window)\n");
    print_header("seg-freq");
    for (phi_index, processes) in [(4usize, 1usize), (4, 2), (6, 1), (6, 2)] {
        let mut cfg = default_trace_config();
        cfg.processes = processes;
        let comp = synthetic_computation(phi_index, &cfg);
        let phi = formula(phi_index, processes);
        for freq in [0.025f64, 0.05, 0.075, 0.1, 0.15, 0.2] {
            let g = segments_for_frequency(comp.duration(), freq);
            let sample = measure(
                format!("phi{phi_index}, |P|={processes}"),
                freq * 10.0,
                &comp,
                &phi,
                g,
            );
            println!("{}", sample.row());
        }
    }
    println!("\nExpected shape (paper): runtime first drops as segments get shorter, reaches a");
    println!("sweet spot, then rises again slightly once per-instance setup work dominates.");
}
