//! Fig. 5b — impact of the time-synchronisation constant ε, for several
//! segment counts g.

use rvmtl_bench::{default_trace_config, formula, measure, print_header, synthetic_computation};

fn main() {
    println!("Fig. 5b — impact of ε (runtime vs clock-skew bound), one series per g\n");
    print_header("epsilon");
    let phi = formula(4, 2);
    for g in [7usize, 10, 15, 25] {
        for epsilon in [1u64, 2, 3, 4, 5] {
            let mut cfg = default_trace_config();
            cfg.epsilon_ms = epsilon;
            let comp = synthetic_computation(4, &cfg);
            let sample = measure(format!("phi4, g={g}"), epsilon as f64, &comp, &phi, g);
            println!("{}", sample.row());
        }
    }
    println!("\nExpected shape (paper): runtime grows super-linearly with ε, and the growth is");
    println!("steeper for smaller g (longer segments combined with a larger skew admit many");
    println!("more interleavings per solver instance).");
}
