//! The Δ-vs-ε study of Sec. VI-B-3: when the clock-skew bound ε approaches the
//! protocol deadline Δ, the monitor starts returning *both* verdicts for the
//! same log (the timestamps no longer determine on which side of the deadline
//! an event fell). The paper's design recommendation follows: do not choose a
//! Δ comparable to ε.

use rvmtl_chain::{specs, TwoPartyScenario, TwoPartySwap};
use rvmtl_monitor::Monitor;

fn main() {
    println!("Δ vs ε — fraction of two-party-swap logs with an ambiguous liveness verdict\n");
    println!(
        "{:<10} {:<10} {:>12} {:>12} {:>12}",
        "delta", "epsilon", "logs", "ambiguous", "fraction"
    );
    println!("{}", "-".repeat(60));

    // A small slice of the 1024-log set: the conforming run plus runs with a
    // single late step, which are the ones whose verdict flips near deadlines.
    let scenarios: Vec<_> = (0..6u8)
        .map(|k| TwoPartyScenario::from_encoding(3, 3, 1 << k))
        .chain(std::iter::once(TwoPartyScenario::conforming()))
        .collect();

    for delta in [20u64, 40] {
        for epsilon in [2u64, delta / 4, delta / 2, delta] {
            let protocol = TwoPartySwap::new(delta);
            let phi = specs::two_party::liveness(delta);
            let mut ambiguous = 0usize;
            for scenario in &scenarios {
                let comp = protocol.execute(scenario).to_computation(epsilon);
                let verdicts = Monitor::with_defaults().run(&comp, &phi).verdicts;
                if verdicts.is_ambiguous() {
                    ambiguous += 1;
                }
            }
            println!(
                "{:<10} {:<10} {:>12} {:>12} {:>12.2}",
                delta,
                epsilon,
                scenarios.len(),
                ambiguous,
                ambiguous as f64 / scenarios.len() as f64
            );
        }
    }
    println!("\nExpected shape (paper): with ε ≪ Δ every log has a single verdict; once ε is");
    println!("comparable to Δ (ε ⪆ Δ/2) both ⊤ and ⊥ verdicts appear for the same log, so Δ");
    println!("should not be chosen close to the clock-skew bound.");
}
