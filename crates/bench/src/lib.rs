//! Shared harness for regenerating every figure of the paper's evaluation
//! (Fig. 5a–5f and Fig. 6, plus the Δ-vs-ε observation of Sec. VI-B-3).
//!
//! Absolute runtimes are not comparable to the paper's (their testbed is a
//! 2×Xeon-8180 machine driving Z3; ours is a laptop-scale pure-Rust engine),
//! so every experiment reports the *series shape*: which configuration is
//! slower, by roughly what factor, and where the curves bend. Time-valued
//! parameters are expressed in a coarser unit (1 unit ≈ 10 ms of the paper's
//! wall clock) to keep the per-segment search spaces laptop-sized; the ratios
//! between ε, the event spacing and the formula deadlines match the paper's.

use rvmtl_chain::{
    Auction, AuctionScenario, ThreePartyScenario, ThreePartySwap, TwoPartyScenario, TwoPartySwap,
};
use rvmtl_distrib::{
    ComputationBuilder, DistributedComputation, FaultConfig, FaultInjector, FaultPolicy,
    FaultedStream, StreamEvent,
};
use rvmtl_monitor::{Monitor, MonitorConfig, VerdictSet};
use rvmtl_mtl::{state, Formula};
use rvmtl_runtime::{StreamConfig, StreamMonitor, StreamReport};
use rvmtl_ta::{generate, specs, Model, TraceConfig};
use std::time::{Duration, Instant};

pub mod pins;

/// One measured point of an experiment series.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Name of the series the point belongs to (e.g. `phi4, |P|=2`).
    pub series: String,
    /// The swept parameter value (ε, segment frequency, event count, …).
    pub x: f64,
    /// Wall-clock monitoring time.
    pub runtime: Duration,
    /// Number of solver search states explored (a machine-independent proxy
    /// for the runtime).
    pub explored_states: usize,
    /// The verdicts obtained.
    pub verdicts: VerdictSet,
}

impl Sample {
    /// Formats the sample as an aligned table row.
    pub fn row(&self) -> String {
        format!(
            "{:<28} {:>10.2} {:>12.3} {:>12} {:>10}",
            self.series,
            self.x,
            self.runtime.as_secs_f64() * 1000.0,
            self.explored_states,
            self.verdicts.to_string()
        )
    }
}

/// Prints the standard table header matching [`Sample::row`].
pub fn print_header(x_label: &str) {
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>10}",
        "series", x_label, "runtime[ms]", "states", "verdicts"
    );
    println!("{}", "-".repeat(78));
}

/// The synthetic-workload defaults used across the Fig. 5 experiments
/// (the paper's ε = 15 ms, |P| = 2, l = 2 s, 10 events/s, g = 15, expressed in
/// the coarser time unit).
pub fn default_trace_config() -> TraceConfig {
    TraceConfig {
        processes: 2,
        duration_ms: 200,
        event_rate: 50.0,
        epsilon_ms: 2,
        seed: 2022,
    }
}

/// The default deadline (in coarse time units) used for the timed formulas
/// ϕ₄ and ϕ₅.
pub const DEFAULT_BOUND: u64 = 60;

/// The default segment count (the paper's g = 15).
pub const DEFAULT_SEGMENTS: usize = 15;

/// Runs `f` `samples` times and prints the min/median wall time — the
/// `criterion`-shaped measurement loop used by the `harness = false` bench
/// targets (the offline build has no criterion crate). Returns the per-sample
/// durations for callers that post-process them.
pub fn bench_case<R>(label: &str, samples: usize, mut f: impl FnMut() -> R) -> Vec<Duration> {
    // One warm-up iteration so allocator and cache effects do not land on the
    // first sample.
    let _ = f();
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let started = Instant::now();
            let _ = f();
            started.elapsed()
        })
        .collect();
    times.sort();
    println!(
        "  {:<40} min {:>10.3} ms   median {:>10.3} ms   ({} samples)",
        label,
        times[0].as_secs_f64() * 1000.0,
        times[times.len() / 2].as_secs_f64() * 1000.0,
        times.len()
    );
    times
}

/// Runs the monitor over a computation and packages the measurement.
pub fn measure(
    series: impl Into<String>,
    x: f64,
    comp: &DistributedComputation,
    phi: &Formula,
    segments: usize,
) -> Sample {
    let monitor = sweep_monitor(segments);
    let started = Instant::now();
    let report = monitor.run(comp, phi);
    Sample {
        series: series.into(),
        x,
        runtime: started.elapsed(),
        explored_states: report.explored_states(),
        verdicts: report.verdicts,
    }
}

/// Generates the synthetic computation used by a Fig. 5 series: the model is
/// chosen to match the formula (train-gate for ϕ₁/ϕ₂, Fischer for ϕ₃/ϕ₄,
/// gossip for ϕ₅/ϕ₆).
pub fn synthetic_computation(formula_index: usize, config: &TraceConfig) -> DistributedComputation {
    let model = match formula_index {
        1 | 2 => Model::TrainGate,
        3 | 4 => Model::Fischer,
        _ => Model::Gossip,
    };
    generate(model, config)
}

/// The formula ϕ_i instantiated for the given process count and the default
/// deadline.
pub fn formula(index: usize, processes: usize) -> Formula {
    specs::by_index(index, processes, DEFAULT_BOUND)
}

/// Builds the cross-chain computations of Fig. 6. Returns
/// `(label, segments, computation, formula)` tuples of increasing event
/// count, one per protocol, using the conforming scenario plus a handful of
/// deviating ones.
pub fn blockchain_workloads(
    delta: u64,
    epsilon: u64,
) -> Vec<(String, usize, DistributedComputation, Formula)> {
    use rvmtl_chain::specs as chain_specs;
    let mut out = Vec::new();

    let two_party = TwoPartySwap::new(delta);
    for (label, scenario) in [
        ("2-party conforming", TwoPartyScenario::conforming()),
        ("2-party partial", TwoPartyScenario::from_encoding(2, 3, 0)),
        (
            "2-party late",
            TwoPartyScenario::from_encoding(3, 3, 0b001001),
        ),
    ] {
        let exec = two_party.execute(&scenario);
        out.push((
            format!("{label} ({} events)", exec.event_count()),
            1,
            exec.to_computation(epsilon),
            chain_specs::two_party::liveness(delta),
        ));
    }

    let three_party = ThreePartySwap::new(delta);
    for (label, scenario) in [
        ("3-party conforming", ThreePartyScenario::conforming()),
        (
            "3-party partial",
            ThreePartyScenario {
                progress: [3, 2, 1],
                late_bits: 0,
            },
        ),
    ] {
        let exec = three_party.execute(&scenario);
        out.push((
            format!("{label} ({} events)", exec.event_count()),
            2,
            exec.to_computation(epsilon),
            chain_specs::three_party::liveness(delta),
        ));
    }

    let auction = Auction::new(delta);
    for (label, scenario) in [
        ("auction conforming", AuctionScenario::conforming()),
        ("auction cheating", {
            let mut s = AuctionScenario::conforming();
            s.release_both_secrets = true;
            s.actions[3] = rvmtl_chain::ActionChoice::OnTime;
            s
        }),
    ] {
        let exec = auction.execute(&scenario);
        out.push((
            format!("{label} ({} events)", exec.event_count()),
            2,
            exec.to_computation(epsilon),
            chain_specs::auction::liveness(delta),
        ));
    }
    out
}

/// The formula indices of the Fig. 5a series. Shared by
/// `bench_snapshot --sweeps` and the `BENCH_PINS.json` counter collection so
/// the timing sweep and the CI gate cannot drift apart (the same applies to
/// every grid constant below).
pub const FIG5A_INDICES: [usize; 4] = [1, 3, 4, 6];

/// The ε grid of the Fig. 5b sweep (phi4).
pub const EPSILON_SWEEP_GRID: [u64; 6] = [1, 2, 3, 4, 5, 6];

/// The segment count of the Fig. 5b sweep.
pub const EPSILON_SWEEP_SEGMENTS: usize = 7;

/// The ε grid of the saturation sweep (Fig. 3 fixture, `a U[0,6) b`).
pub const SATURATION_GRID: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The ε grid of the dense delayed-window sweep (`a U[6,12) b`).
pub const DENSE_GRID: [u64; 12] = [1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 32, 64];

/// The duration grid of the Fig. 5d length sweep.
pub const LENGTH_GRID: [u64; 5] = [100, 200, 300, 400, 500];

/// The trace config of the Fig. 5a series: the defaults with the duration
/// doubled, so the measurement rises well above scheduler noise.
pub fn fig5a_config() -> TraceConfig {
    let mut cfg = default_trace_config();
    cfg.duration_ms *= 2;
    cfg
}

/// One sweep point of the deterministic benchmark suite: sweep name, point
/// name, the swept parameter value, the workload, and the segment count.
pub struct SweepPoint {
    /// Sweep the point belongs to (`fig5a`, `epsilon_sweep`, …).
    pub sweep: &'static str,
    /// Point name within the sweep (`phi4`, `eps3`, `len200`, …).
    pub point: String,
    /// The swept parameter value (formula index, ε, duration).
    pub x: u64,
    /// The computation to monitor.
    pub comp: DistributedComputation,
    /// The formula to monitor.
    pub phi: Formula,
    /// Segment count for the monitor.
    pub segments: usize,
}

/// Every point of the deterministic sweeps (`fig5a`, `epsilon_sweep`,
/// `epsilon_saturation`, `epsilon_dense`, `length_sweep`, `shift_free`) in
/// sweep-then-grid order. This is the **single source of sweep membership**:
/// `bench_snapshot --sweeps` times exactly these points and `pins::pin_rows`
/// pins exactly these points (plus the separately shared
/// [`blockchain_workloads`]), so a sweep added here is automatically both
/// measured and gated — it cannot join one side and silently skip the other.
/// The wall-clock-only pipeline sweep is not a deterministic point and stays
/// in `bench_snapshot`.
pub fn sweep_points() -> Vec<SweepPoint> {
    let mut out = Vec::new();
    let cfg = fig5a_config();
    for index in FIG5A_INDICES {
        out.push(SweepPoint {
            sweep: "fig5a",
            point: format!("phi{index}"),
            x: index as u64,
            comp: synthetic_computation(index, &cfg),
            phi: formula(index, cfg.processes),
            segments: DEFAULT_SEGMENTS,
        });
    }
    for epsilon in EPSILON_SWEEP_GRID {
        let mut cfg = default_trace_config();
        cfg.epsilon_ms = epsilon;
        out.push(SweepPoint {
            sweep: "epsilon_sweep",
            point: format!("eps{epsilon}"),
            x: epsilon,
            comp: synthetic_computation(4, &cfg),
            phi: formula(4, 2),
            segments: EPSILON_SWEEP_SEGMENTS,
        });
    }
    for epsilon in SATURATION_GRID {
        out.push(SweepPoint {
            sweep: "epsilon_saturation",
            point: format!("eps{epsilon}"),
            x: epsilon,
            comp: saturation_computation(epsilon),
            phi: rvmtl_mtl::parse("a U[0,6) b").expect("fixed formula parses"),
            segments: 1,
        });
    }
    for epsilon in DENSE_GRID {
        out.push(SweepPoint {
            sweep: "epsilon_dense",
            point: format!("eps{epsilon}"),
            x: epsilon,
            comp: dense_computation(epsilon),
            phi: rvmtl_mtl::parse("a U[6,12) b").expect("fixed formula parses"),
            segments: 1,
        });
    }
    for length in LENGTH_GRID {
        let mut cfg = default_trace_config();
        cfg.duration_ms = length;
        out.push(SweepPoint {
            sweep: "length_sweep",
            point: format!("len{length}"),
            x: length,
            comp: synthetic_computation(4, &cfg),
            phi: formula(4, 2),
            segments: DEFAULT_SEGMENTS,
        });
    }
    for (name, comp, phi, segments) in shift_free_workloads() {
        out.push(SweepPoint {
            sweep: "shift_free",
            point: name.to_string(),
            x: 0,
            comp,
            phi,
            segments,
        });
    }
    out
}

/// The monitor used by every sweep measurement and counter collection: one
/// construction rule shared by `bench_snapshot` and `pins`, so the two can
/// never run the same workload under different segmentation.
pub fn sweep_monitor(segments: usize) -> Monitor {
    Monitor::new(if segments <= 1 {
        MonitorConfig::unsegmented()
    } else {
        MonitorConfig::with_segments(segments)
    })
}

/// The Fig. 3-style fixture behind the ε-saturation sweep and the solver's
/// regression pins: two processes, four events, configurable skew bound.
/// Shared by `bench_snapshot --sweeps` and the `BENCH_PINS.json` counter
/// collection so the timing sweep and the CI gate cannot drift apart.
pub fn saturation_computation(epsilon: u64) -> DistributedComputation {
    let mut b = ComputationBuilder::new(2, epsilon);
    b.event(0, 1, state!["a"]);
    b.event(0, 4, state![]);
    b.event(1, 2, state!["a"]);
    b.event(1, 5, state!["b"]);
    b.build().expect("fixed computation is valid")
}

/// The dense two-process delayed-window fixture of the `epsilon_dense` sweep
/// (one event every tick, clustered at the `a U[6,12) b` window). Shared by
/// the snapshot harness and the pins collection.
pub fn dense_computation(epsilon: u64) -> DistributedComputation {
    let mut b = ComputationBuilder::new(2, epsilon);
    b.event(0, 6, state!["a"]);
    b.event(0, 8, state!["a"]);
    b.event(0, 10, state!["a"]);
    b.event(1, 7, state!["a"]);
    b.event(1, 9, state!["a"]);
    b.event(1, 11, state!["b"]);
    b.build().expect("fixed computation is valid")
}

/// The shift-free tax workloads: specifications whose windows all start at
/// zero, so the arena's shift watermark never trips and the whole zone
/// machinery must cost nothing. Each returns
/// `(name, computation, formula, segments)`; the ε values are raised above
/// the defaults so the solver explores enough states for a stable per-state
/// cost figure.
pub fn shift_free_workloads() -> Vec<(&'static str, DistributedComputation, Formula, usize)> {
    let mut out = Vec::new();
    let mut cfg = default_trace_config();
    cfg.epsilon_ms = 3;
    out.push((
        "phi4_eps3",
        synthetic_computation(4, &cfg),
        formula(4, cfg.processes),
        DEFAULT_SEGMENTS,
    ));
    out.push((
        "phi1_eps3",
        synthetic_computation(1, &cfg),
        formula(1, cfg.processes),
        DEFAULT_SEGMENTS,
    ));
    out.push((
        "until_eps16",
        saturation_computation(16),
        rvmtl_mtl::parse("a U[0,6) b").expect("fixed formula parses"),
        1,
    ));
    out.push((
        "always_eps16",
        saturation_computation(16),
        rvmtl_mtl::parse("G[0,10) (a | b)").expect("fixed formula parses"),
        1,
    ));
    out
}

/// The Δ used for the blockchain experiments, expressed in the coarse time
/// unit (the paper's Δ = 500 ms).
pub const BLOCKCHAIN_DELTA: u64 = 50;
/// Default clock skew bound for the blockchain experiments.
pub const BLOCKCHAIN_EPSILON: u64 = 3;

/// One scenario of the `fault_storm` sweep: a fault mix, the ingestion
/// policy it is absorbed under, and the injection seed. Membership is shared
/// by `bench_snapshot --sweeps` (wall clock) and [`pins::fault_entries`]
/// (counter gate), like every other sweep.
pub struct FaultStormCase {
    /// Pin-key / row name of the case.
    pub name: &'static str,
    /// The ingestion policy the monitor runs under.
    pub policy: FaultPolicy,
    /// The injected fault mix.
    pub faults: FaultConfig,
    /// Seed of the deterministic injection.
    pub seed: u64,
}

/// The fault-storm scenario grid: the clean baseline under `Strict`, a
/// duplicate-heavy feed under `Dedup`, a lossy reordered feed under
/// `BestEffort`, and the full storm under both `Strict` (reject-and-count)
/// and `BestEffort` (shed-and-count).
pub fn fault_storm_cases() -> Vec<FaultStormCase> {
    vec![
        FaultStormCase {
            name: "clean_strict",
            policy: FaultPolicy::Strict,
            faults: FaultConfig::none(),
            seed: 0xFA01,
        },
        FaultStormCase {
            name: "dup_dedup",
            policy: FaultPolicy::Dedup,
            faults: FaultConfig::duplicates(0.3),
            seed: 0xFA02,
        },
        FaultStormCase {
            name: "lossy_best_effort",
            policy: FaultPolicy::BestEffort,
            faults: FaultConfig {
                drop_rate: 0.15,
                duplicate_rate: 0.0,
                delay_rate: 0.2,
                max_delay_slots: 4,
            },
            seed: 0xFA03,
        },
        FaultStormCase {
            name: "storm_strict",
            policy: FaultPolicy::Strict,
            faults: FaultConfig::storm(),
            seed: 0xFA04,
        },
        FaultStormCase {
            name: "storm_best_effort",
            policy: FaultPolicy::BestEffort,
            faults: FaultConfig::storm(),
            seed: 0xFA04,
        },
    ]
}

/// The workload every fault-storm case streams: the phi4/Fischer synthetic
/// trace at a fault-sweep-sized duration, one query.
pub fn fault_storm_workload() -> (DistributedComputation, Formula) {
    let mut cfg = default_trace_config();
    cfg.duration_ms = 120;
    (synthetic_computation(4, &cfg), formula(4, cfg.processes))
}

/// Runs one fault-storm case on the sequential streaming path: injects the
/// case's faults into the canonical clean schedule and feeds every arrival,
/// counting rejections instead of stopping on them (under `Strict` a faulted
/// arrival *should* error; the deterministic reject-and-continue feed is the
/// scenario being measured). Returns the stream report and the injection
/// record — both pure functions of the case, which is what makes the
/// `fault_storm` pins machine-independent.
pub fn run_fault_storm_case(case: &FaultStormCase) -> (StreamReport, FaultedStream) {
    let (comp, phi) = fault_storm_workload();
    let clean = StreamEvent::schedule_of(&comp);
    let faulted = FaultInjector::new(case.seed, case.faults).inject(&clean);
    let segment_length = (comp.duration().max(1) / DEFAULT_SEGMENTS as u64).max(1);
    let mut monitor = StreamMonitor::new(
        comp.process_count(),
        comp.epsilon(),
        StreamConfig::new(segment_length).fault_policy(case.policy),
    );
    monitor.add_query(&phi);
    for e in faulted.events() {
        // Rejections are part of the scenario (counted in the report's
        // health); acceptance is asserted only for the policies that promise
        // it, by the runtime's own differential suite.
        let _ = monitor.observe(e.process, e.time, e.state.clone());
    }
    (monitor.finish(), faulted)
}

/// One scenario of the `checkpoint` sweep: a delivered schedule (fault mix +
/// policy + seed, same grammar as [`FaultStormCase`]) streamed with GC every
/// segment, serializing and restoring the monitor from its own snapshot
/// every `restart_every` GC epochs. Membership is shared by
/// `bench_snapshot --sweeps` / `--checkpoint-smoke` (wall clock + recovery
/// gate) and [`pins::checkpoint_entries`] (counter gate).
pub struct CheckpointCase {
    /// Pin-key / row name of the case.
    pub name: &'static str,
    /// The ingestion policy the monitor runs under.
    pub policy: FaultPolicy,
    /// The injected fault mix.
    pub faults: FaultConfig,
    /// Seed of the deterministic injection.
    pub seed: u64,
    /// Serialize + restore every this many GC epochs.
    pub restart_every: usize,
}

/// The checkpoint scenario grid: a clean `Strict` stream restarted at every
/// epoch, a duplicate-heavy `Dedup` feed restarted every other epoch, and a
/// lossy `BestEffort` feed restarted at every epoch — so recovery is
/// exercised with exact, absorbed and degraded state in the snapshot.
pub fn checkpoint_cases() -> Vec<CheckpointCase> {
    vec![
        CheckpointCase {
            name: "clean_strict_every_epoch",
            policy: FaultPolicy::Strict,
            faults: FaultConfig::none(),
            seed: 0xCB01,
            restart_every: 1,
        },
        CheckpointCase {
            name: "dup_dedup_every_2",
            policy: FaultPolicy::Dedup,
            faults: FaultConfig::duplicates(0.3),
            seed: 0xCB02,
            restart_every: 2,
        },
        CheckpointCase {
            name: "lossy_best_effort_every_epoch",
            policy: FaultPolicy::BestEffort,
            faults: FaultConfig {
                drop_rate: 0.15,
                duplicate_rate: 0.0,
                delay_rate: 0.2,
                max_delay_slots: 4,
            },
            seed: 0xCB03,
            restart_every: 1,
        },
    ]
}

/// Outcome of one checkpoint case: the restarted run, its uninterrupted
/// reference on the same delivered schedule, and the recovery counters.
pub struct CheckpointRun {
    /// Report of the run that was serialized/restored at every boundary.
    pub report: StreamReport,
    /// Report of the uninterrupted reference run.
    pub reference: StreamReport,
    /// Number of serialize + restore round trips performed.
    pub restarts: u64,
    /// Size in bytes of the last snapshot taken (a deterministic function of
    /// the workload on the sequential path — pinned, so unintended format or
    /// state-footprint growth shows up as counter drift).
    pub snapshot_bytes: u64,
}

impl CheckpointRun {
    /// `true` when the restarted run is observably identical to the
    /// uninterrupted one: same verdicts, pending sets and integrity tags.
    pub fn recovered_identical(&self) -> bool {
        self.report.verdicts == self.reference.verdicts
            && self.report.pending == self.reference.pending
            && self.report.integrity == self.reference.integrity
    }
}

/// Runs one checkpoint case on the sequential streaming path (GC every
/// segment): feeds the case's faulted schedule twice — once uninterrupted,
/// once serializing the monitor to bytes and restoring it into a fresh one
/// every `restart_every` GC epochs. Pure function of the case, like
/// [`run_fault_storm_case`].
pub fn run_checkpoint_case(case: &CheckpointCase) -> CheckpointRun {
    let (comp, phi) = fault_storm_workload();
    let clean = StreamEvent::schedule_of(&comp);
    let faulted = FaultInjector::new(case.seed, case.faults).inject(&clean);
    let delivered: Vec<StreamEvent> = faulted.events().cloned().collect();
    let segment_length = (comp.duration().max(1) / DEFAULT_SEGMENTS as u64).max(1);
    let config = StreamConfig::new(segment_length)
        .gc_interval(1)
        .fault_policy(case.policy);

    let mut reference = StreamMonitor::new(comp.process_count(), comp.epsilon(), config.clone());
    reference.add_query(&phi);
    for e in &delivered {
        let _ = reference.observe(e.process, e.time, e.state.clone());
    }
    let reference = reference.finish();

    let mut monitor = StreamMonitor::new(comp.process_count(), comp.epsilon(), config.clone());
    monitor.add_query(&phi);
    let mut restarts = 0u64;
    let mut snapshot_bytes = 0u64;
    let mut last_restart_gc = 0usize;
    for e in &delivered {
        let _ = monitor.observe(e.process, e.time, e.state.clone());
        if monitor.gc_runs() >= last_restart_gc + case.restart_every {
            let bytes = monitor.checkpoint_bytes();
            snapshot_bytes = bytes.len() as u64;
            monitor = StreamMonitor::restore_from_bytes(&bytes, config.clone())
                .expect("a freshly written snapshot restores");
            restarts += 1;
            last_restart_gc = monitor.gc_runs();
        }
    }
    CheckpointRun {
        report: monitor.finish(),
        reference,
        restarts,
        snapshot_bytes,
    }
}

/// One scenario of the `wire_replay` smoke: the fault-storm workload's
/// delivered schedule fed once through direct in-memory calls and once
/// through a `.rvw` wire capture file (header, then `Hello`, per-event
/// frames, and `End`) drained by [`rvmtl_wire::WireSource`] — across fault
/// policies and both execution paths. Membership is shared by
/// `bench_snapshot --wire-smoke` (the CI gate) and the library test.
pub struct WireReplayCase {
    /// Row name of the case.
    pub name: &'static str,
    /// The ingestion policy both monitors run under (also the `Hello`
    /// handshake's declared policy).
    pub policy: FaultPolicy,
    /// The injected fault mix of the delivered schedule.
    pub faults: FaultConfig,
    /// Seed of the deterministic injection.
    pub seed: u64,
    /// Replay on the pipelined path (2 workers) instead of sequentially.
    pub pipelined: bool,
}

/// The wire-replay scenario grid: each fault policy exercised on both
/// execution paths, so the smoke covers exact, absorbed and degraded
/// evidence over the framed transport.
pub fn wire_replay_cases() -> Vec<WireReplayCase> {
    let policies = [
        (
            "clean_strict",
            FaultPolicy::Strict,
            FaultConfig::none(),
            0xE1A1u64,
        ),
        (
            "dup_dedup",
            FaultPolicy::Dedup,
            FaultConfig::duplicates(0.3),
            0xE1A2,
        ),
        (
            "lossy_best_effort",
            FaultPolicy::BestEffort,
            FaultConfig {
                drop_rate: 0.1,
                duplicate_rate: 0.1,
                delay_rate: 0.2,
                max_delay_slots: 3,
            },
            0xE1A3,
        ),
    ];
    let mut cases = Vec::new();
    for (name, policy, faults, seed) in policies {
        for pipelined in [false, true] {
            cases.push(WireReplayCase {
                name,
                policy,
                faults,
                seed,
                pipelined,
            });
        }
    }
    cases
}

/// The outcome of one wire-replay case: the direct-ingestion report, the
/// wire-replayed report, and the transport-level accounting.
pub struct WireReplayRun {
    /// Report of the monitor fed through direct `observe` calls.
    pub direct: StreamReport,
    /// Report of the monitor fed through the `.rvw` capture.
    pub replayed: StreamReport,
    /// Size of the capture file in bytes.
    pub wire_bytes: u64,
    /// The wire source's frame counters.
    pub stats: rvmtl_wire::WireStats,
    /// Whether the case ran pipelined.
    pub pipelined: bool,
}

impl WireReplayRun {
    /// `true` if the wire-replayed run is indistinguishable from direct
    /// ingestion: verdicts, pending obligations, integrity tags, segment
    /// count and health always, plus exact [`SolverStats`] equality on the
    /// sequential path (the pipelined explored/memo split is racy between
    /// any two runs, wire or not, so there only the deterministic counters
    /// gate).
    ///
    /// [`SolverStats`]: rvmtl_solver::SolverStats
    pub fn replay_identical(&self) -> bool {
        let base = self.replayed.verdicts == self.direct.verdicts
            && self.replayed.pending == self.direct.pending
            && self.replayed.integrity == self.direct.integrity
            && self.replayed.segments == self.direct.segments
            && self.replayed.health == self.direct.health;
        let stats = if self.pipelined {
            self.replayed.stats.explored_states + self.replayed.stats.memo_hits
                == self.direct.stats.explored_states + self.direct.stats.memo_hits
                && self.replayed.stats.completed_sequences == self.direct.stats.completed_sequences
        } else {
            self.replayed.stats == self.direct.stats
        };
        base && stats
    }
}

/// Runs one wire-replay case: injects the case's faults into the canonical
/// clean schedule, feeds the delivered arrivals directly into one monitor,
/// captures the identical arrivals to a `.rvw` file, and drains that file
/// through [`rvmtl_wire::WireSource`] into a second, identically configured
/// monitor.
///
/// # Panics
///
/// Panics if the capture file cannot be written or read back, or if the
/// capture fails the wire handshake against its own configuration — both
/// are harness defects, not scenario outcomes.
pub fn run_wire_replay_case(case: &WireReplayCase) -> WireReplayRun {
    use rvmtl_wire::{capture_events, Hello, WireSource};

    let (comp, phi) = fault_storm_workload();
    let clean = StreamEvent::schedule_of(&comp);
    let faulted = FaultInjector::new(case.seed, case.faults).inject(&clean);
    let delivered: Vec<StreamEvent> = faulted.events().cloned().collect();
    let segment_length = (comp.duration().max(1) / DEFAULT_SEGMENTS as u64).max(1);
    let mut config = StreamConfig::new(segment_length).fault_policy(case.policy);
    if case.pipelined {
        config = config.pipelined(Some(2));
    }

    let mut direct = StreamMonitor::new(comp.process_count(), comp.epsilon(), config.clone());
    direct.add_query(&phi);
    for e in &delivered {
        let _ = direct.observe(e.process, e.time, e.state.clone());
    }
    let direct = direct.finish();

    let hello = Hello {
        epsilon: comp.epsilon(),
        processes: comp.process_count(),
        fault_policy: case.policy,
    };
    let path = std::env::temp_dir().join(format!(
        "rvmtl_wire_smoke_{}_{}.rvw",
        case.name,
        if case.pipelined {
            "pipelined"
        } else {
            "sequential"
        }
    ));
    let file = std::fs::File::create(&path).expect("create .rvw capture");
    capture_events(std::io::BufWriter::new(file), &hello, &delivered).expect("write capture");
    let wire_bytes = std::fs::metadata(&path).expect("stat capture").len();

    let mut replayed = StreamMonitor::new(comp.process_count(), comp.epsilon(), config);
    replayed.add_query(&phi);
    let reader = std::io::BufReader::new(std::fs::File::open(&path).expect("open capture"));
    let mut source = WireSource::new(reader).expect("wire header");
    source.run(&mut replayed).expect("replay capture");
    let stats = *source.stats();
    let _ = std::fs::remove_file(&path);

    WireReplayRun {
        direct,
        replayed: replayed.finish(),
        wire_bytes,
        stats,
        pipelined: case.pipelined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_replay_cases_are_replay_identical() {
        for case in wire_replay_cases() {
            let run = run_wire_replay_case(&case);
            assert!(run.wire_bytes > 0, "{}: empty capture", case.name);
            assert_eq!(run.stats.decode_errors, 0, "{}", case.name);
            assert!(
                run.replay_identical(),
                "{} ({}): wire replay diverged from direct ingestion",
                case.name,
                if case.pipelined {
                    "pipelined"
                } else {
                    "sequential"
                }
            );
        }
    }

    #[test]
    fn checkpoint_cases_restart_and_recover_identically() {
        for case in checkpoint_cases() {
            let run = run_checkpoint_case(&case);
            assert!(run.restarts > 0, "{}: the fixture must restart", case.name);
            assert!(run.snapshot_bytes > 0, "{}", case.name);
            assert!(
                run.recovered_identical(),
                "{}: restarted run diverged from the uninterrupted reference",
                case.name
            );
        }
    }

    #[test]
    fn synthetic_workloads_are_monitorable() {
        let mut cfg = default_trace_config();
        cfg.duration_ms = 60;
        for index in [1, 3, 4, 6] {
            let comp = synthetic_computation(index, &cfg);
            let phi = formula(index, cfg.processes);
            let sample = measure(format!("phi{index}"), 0.0, &comp, &phi, 4);
            assert!(
                !sample.verdicts.is_empty(),
                "phi{index} produced no verdict"
            );
        }
    }

    #[test]
    fn blockchain_workloads_cover_all_three_protocols() {
        let workloads = blockchain_workloads(BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON);
        assert_eq!(workloads.len(), 7);
        assert!(workloads.iter().any(|(l, ..)| l.starts_with("2-party")));
        assert!(workloads.iter().any(|(l, ..)| l.starts_with("3-party")));
        assert!(workloads.iter().any(|(l, ..)| l.starts_with("auction")));
        // Event counts vary across the workloads (the x-axis of Fig. 6).
        let counts: std::collections::BTreeSet<usize> = workloads
            .iter()
            .map(|(_, _, c, _)| c.event_count())
            .collect();
        assert!(counts.len() >= 4);
    }

    #[test]
    fn conforming_two_party_liveness_is_satisfied() {
        let workloads = blockchain_workloads(BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON);
        let (label, segments, comp, phi) = &workloads[0];
        assert!(label.contains("conforming"));
        let sample = measure(label.clone(), 0.0, comp, phi, *segments);
        assert!(sample.verdicts.may_be_satisfied());
    }

    #[test]
    fn shift_free_workloads_never_trip_the_watermark() {
        for (name, _comp, phi, _segments) in shift_free_workloads() {
            let mut interner = rvmtl_mtl::Interner::new();
            let _ = interner.intern(&phi);
            assert!(
                !interner.ever_shifted(),
                "{name}: a shift-free workload must not trip the arena watermark"
            );
        }
    }

    #[test]
    fn sample_row_is_aligned() {
        let cfg = TraceConfig {
            duration_ms: 40,
            ..default_trace_config()
        };
        let comp = synthetic_computation(4, &cfg);
        let sample = measure("phi4", 2.0, &comp, &formula(4, 2), 2);
        let row = sample.row();
        assert!(row.contains("phi4"));
        print_header("epsilon");
        println!("{row}");
    }
}
