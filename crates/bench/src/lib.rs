//! Shared harness for regenerating every figure of the paper's evaluation
//! (Fig. 5a–5f and Fig. 6, plus the Δ-vs-ε observation of Sec. VI-B-3).
//!
//! Absolute runtimes are not comparable to the paper's (their testbed is a
//! 2×Xeon-8180 machine driving Z3; ours is a laptop-scale pure-Rust engine),
//! so every experiment reports the *series shape*: which configuration is
//! slower, by roughly what factor, and where the curves bend. Time-valued
//! parameters are expressed in a coarser unit (1 unit ≈ 10 ms of the paper's
//! wall clock) to keep the per-segment search spaces laptop-sized; the ratios
//! between ε, the event spacing and the formula deadlines match the paper's.

use rvmtl_chain::{
    Auction, AuctionScenario, ThreePartyScenario, ThreePartySwap, TwoPartyScenario, TwoPartySwap,
};
use rvmtl_distrib::DistributedComputation;
use rvmtl_monitor::{Monitor, MonitorConfig, VerdictSet};
use rvmtl_mtl::Formula;
use rvmtl_ta::{generate, specs, Model, TraceConfig};
use std::time::{Duration, Instant};

/// One measured point of an experiment series.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Name of the series the point belongs to (e.g. `phi4, |P|=2`).
    pub series: String,
    /// The swept parameter value (ε, segment frequency, event count, …).
    pub x: f64,
    /// Wall-clock monitoring time.
    pub runtime: Duration,
    /// Number of solver search states explored (a machine-independent proxy
    /// for the runtime).
    pub explored_states: usize,
    /// The verdicts obtained.
    pub verdicts: VerdictSet,
}

impl Sample {
    /// Formats the sample as an aligned table row.
    pub fn row(&self) -> String {
        format!(
            "{:<28} {:>10.2} {:>12.3} {:>12} {:>10}",
            self.series,
            self.x,
            self.runtime.as_secs_f64() * 1000.0,
            self.explored_states,
            self.verdicts.to_string()
        )
    }
}

/// Prints the standard table header matching [`Sample::row`].
pub fn print_header(x_label: &str) {
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>10}",
        "series", x_label, "runtime[ms]", "states", "verdicts"
    );
    println!("{}", "-".repeat(78));
}

/// The synthetic-workload defaults used across the Fig. 5 experiments
/// (the paper's ε = 15 ms, |P| = 2, l = 2 s, 10 events/s, g = 15, expressed in
/// the coarser time unit).
pub fn default_trace_config() -> TraceConfig {
    TraceConfig {
        processes: 2,
        duration_ms: 200,
        event_rate: 50.0,
        epsilon_ms: 2,
        seed: 2022,
    }
}

/// The default deadline (in coarse time units) used for the timed formulas
/// ϕ₄ and ϕ₅.
pub const DEFAULT_BOUND: u64 = 60;

/// The default segment count (the paper's g = 15).
pub const DEFAULT_SEGMENTS: usize = 15;

/// Runs `f` `samples` times and prints the min/median wall time — the
/// `criterion`-shaped measurement loop used by the `harness = false` bench
/// targets (the offline build has no criterion crate). Returns the per-sample
/// durations for callers that post-process them.
pub fn bench_case<R>(label: &str, samples: usize, mut f: impl FnMut() -> R) -> Vec<Duration> {
    // One warm-up iteration so allocator and cache effects do not land on the
    // first sample.
    let _ = f();
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let started = Instant::now();
            let _ = f();
            started.elapsed()
        })
        .collect();
    times.sort();
    println!(
        "  {:<40} min {:>10.3} ms   median {:>10.3} ms   ({} samples)",
        label,
        times[0].as_secs_f64() * 1000.0,
        times[times.len() / 2].as_secs_f64() * 1000.0,
        times.len()
    );
    times
}

/// Runs the monitor over a computation and packages the measurement.
pub fn measure(
    series: impl Into<String>,
    x: f64,
    comp: &DistributedComputation,
    phi: &Formula,
    segments: usize,
) -> Sample {
    let monitor = Monitor::new(if segments <= 1 {
        MonitorConfig::unsegmented()
    } else {
        MonitorConfig::with_segments(segments)
    });
    let started = Instant::now();
    let report = monitor.run(comp, phi);
    Sample {
        series: series.into(),
        x,
        runtime: started.elapsed(),
        explored_states: report.explored_states(),
        verdicts: report.verdicts,
    }
}

/// Generates the synthetic computation used by a Fig. 5 series: the model is
/// chosen to match the formula (train-gate for ϕ₁/ϕ₂, Fischer for ϕ₃/ϕ₄,
/// gossip for ϕ₅/ϕ₆).
pub fn synthetic_computation(formula_index: usize, config: &TraceConfig) -> DistributedComputation {
    let model = match formula_index {
        1 | 2 => Model::TrainGate,
        3 | 4 => Model::Fischer,
        _ => Model::Gossip,
    };
    generate(model, config)
}

/// The formula ϕ_i instantiated for the given process count and the default
/// deadline.
pub fn formula(index: usize, processes: usize) -> Formula {
    specs::by_index(index, processes, DEFAULT_BOUND)
}

/// Builds the cross-chain computations of Fig. 6. Returns
/// `(label, segments, computation, formula)` tuples of increasing event
/// count, one per protocol, using the conforming scenario plus a handful of
/// deviating ones.
pub fn blockchain_workloads(
    delta: u64,
    epsilon: u64,
) -> Vec<(String, usize, DistributedComputation, Formula)> {
    use rvmtl_chain::specs as chain_specs;
    let mut out = Vec::new();

    let two_party = TwoPartySwap::new(delta);
    for (label, scenario) in [
        ("2-party conforming", TwoPartyScenario::conforming()),
        ("2-party partial", TwoPartyScenario::from_encoding(2, 3, 0)),
        (
            "2-party late",
            TwoPartyScenario::from_encoding(3, 3, 0b001001),
        ),
    ] {
        let exec = two_party.execute(&scenario);
        out.push((
            format!("{label} ({} events)", exec.event_count()),
            1,
            exec.to_computation(epsilon),
            chain_specs::two_party::liveness(delta),
        ));
    }

    let three_party = ThreePartySwap::new(delta);
    for (label, scenario) in [
        ("3-party conforming", ThreePartyScenario::conforming()),
        (
            "3-party partial",
            ThreePartyScenario {
                progress: [3, 2, 1],
                late_bits: 0,
            },
        ),
    ] {
        let exec = three_party.execute(&scenario);
        out.push((
            format!("{label} ({} events)", exec.event_count()),
            2,
            exec.to_computation(epsilon),
            chain_specs::three_party::liveness(delta),
        ));
    }

    let auction = Auction::new(delta);
    for (label, scenario) in [
        ("auction conforming", AuctionScenario::conforming()),
        ("auction cheating", {
            let mut s = AuctionScenario::conforming();
            s.release_both_secrets = true;
            s.actions[3] = rvmtl_chain::ActionChoice::OnTime;
            s
        }),
    ] {
        let exec = auction.execute(&scenario);
        out.push((
            format!("{label} ({} events)", exec.event_count()),
            2,
            exec.to_computation(epsilon),
            chain_specs::auction::liveness(delta),
        ));
    }
    out
}

/// The Δ used for the blockchain experiments, expressed in the coarse time
/// unit (the paper's Δ = 500 ms).
pub const BLOCKCHAIN_DELTA: u64 = 50;
/// Default clock skew bound for the blockchain experiments.
pub const BLOCKCHAIN_EPSILON: u64 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_workloads_are_monitorable() {
        let mut cfg = default_trace_config();
        cfg.duration_ms = 60;
        for index in [1, 3, 4, 6] {
            let comp = synthetic_computation(index, &cfg);
            let phi = formula(index, cfg.processes);
            let sample = measure(format!("phi{index}"), 0.0, &comp, &phi, 4);
            assert!(
                !sample.verdicts.is_empty(),
                "phi{index} produced no verdict"
            );
        }
    }

    #[test]
    fn blockchain_workloads_cover_all_three_protocols() {
        let workloads = blockchain_workloads(BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON);
        assert_eq!(workloads.len(), 7);
        assert!(workloads.iter().any(|(l, ..)| l.starts_with("2-party")));
        assert!(workloads.iter().any(|(l, ..)| l.starts_with("3-party")));
        assert!(workloads.iter().any(|(l, ..)| l.starts_with("auction")));
        // Event counts vary across the workloads (the x-axis of Fig. 6).
        let counts: std::collections::BTreeSet<usize> = workloads
            .iter()
            .map(|(_, _, c, _)| c.event_count())
            .collect();
        assert!(counts.len() >= 4);
    }

    #[test]
    fn conforming_two_party_liveness_is_satisfied() {
        let workloads = blockchain_workloads(BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON);
        let (label, segments, comp, phi) = &workloads[0];
        assert!(label.contains("conforming"));
        let sample = measure(label.clone(), 0.0, comp, phi, *segments);
        assert!(sample.verdicts.may_be_satisfied());
    }

    #[test]
    fn sample_row_is_aligned() {
        let cfg = TraceConfig {
            duration_ms: 40,
            ..default_trace_config()
        };
        let comp = synthetic_computation(4, &cfg);
        let sample = measure("phi4", 2.0, &comp, &formula(4, 2), 2);
        let row = sample.row();
        assert!(row.contains("phi4"));
        print_header("epsilon");
        println!("{row}");
    }
}
