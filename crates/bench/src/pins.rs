//! The machine-independent search-shape budget behind the CI regression
//! gate (`bench_snapshot --check`).
//!
//! Container wall-clock is too noisy to gate on, but the solver's
//! *search-shape counters* — explored states, memo hits, interval splits,
//! merged time points, zone rewrites — and the verdict sets are exact,
//! deterministic functions of the workload on the sequential monitoring
//! path. This module evaluates every sweep of the benchmark suite once
//! (counters only, no timing loops) and flattens the results into
//! `"sweep/point/counter": value` entries; the committed `BENCH_PINS.json`
//! at the repository root holds the expected values, and CI fails on any
//! drift. A perf PR that intentionally changes search shapes regenerates the
//! file with `bench_snapshot --write-pins` — the diff then documents exactly
//! which sweeps moved, in the same commit that moved them.
//!
//! The JSON format is deliberately flat (one scalar per line) so the file
//! can be parsed by [`parse_pins`] without a JSON library and diffs stay
//! line-per-counter readable.

use crate::{
    blockchain_workloads, sweep_monitor, sweep_points, BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON,
};
use rvmtl_distrib::DistributedComputation;
use rvmtl_mtl::Formula;
use rvmtl_runtime::{StreamConfig, StreamEvent, StreamMonitor, StreamReport};
use rvmtl_solver::SolverStats;

/// The aggregated search-shape counters and verdict code of one sweep point.
#[derive(Debug, Clone)]
pub struct PinRow {
    /// `sweep/point` key prefix.
    pub key: String,
    /// Solver counters summed over every segment of the run.
    pub stats: SolverStats,
    /// Verdict-set code: bit 0 = may be satisfied, bit 1 = may be violated,
    /// bit 2 = some verdict still inconclusive.
    pub verdicts: u64,
}

/// Runs one workload on the sequential monitoring path and aggregates its
/// deterministic counters.
pub fn counter_sample(
    comp: &DistributedComputation,
    phi: &Formula,
    segments: usize,
) -> (SolverStats, u64) {
    let report = sweep_monitor(segments).run(comp, phi);
    let mut stats = SolverStats::default();
    for seg in &report.segments {
        stats.absorb(&seg.solver_stats);
    }
    let verdicts = report.verdicts.may_be_satisfied() as u64
        | (report.verdicts.may_be_violated() as u64) << 1
        | (report.verdicts.iter().any(|v| !v.is_conclusive()) as u64) << 2;
    (stats, verdicts)
}

/// Lower-cases a workload label into a stable `a-z0-9_-` pin key segment.
fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            'a'..='z' | '0'..='9' | '-' | '_' => out.push(c),
            'A'..='Z' => out.push(c.to_ascii_lowercase()),
            ' ' => out.push('_'),
            _ => {}
        }
    }
    out.trim_matches('_').to_string()
}

/// Evaluates every deterministic sweep of the benchmark suite once and
/// returns one [`PinRow`] per sweep point. Membership comes from
/// [`crate::sweep_points`] — the same producer `bench_snapshot --sweeps`
/// times — plus the separately shared [`blockchain_workloads`]; the
/// wall-clock-only pipeline sweep is excluded by construction.
pub fn pin_rows() -> Vec<PinRow> {
    let mut rows: Vec<PinRow> = Vec::new();
    let mut push = |key: String, comp: &DistributedComputation, phi: &Formula, segments: usize| {
        let (stats, verdicts) = counter_sample(comp, phi, segments);
        rows.push(PinRow {
            key,
            stats,
            verdicts,
        });
    };

    for p in sweep_points() {
        push(
            format!("{}/{}", p.sweep, p.point),
            &p.comp,
            &p.phi,
            p.segments,
        );
    }

    // The Fig. 6 cross-chain protocol lattices.
    for (label, segments, comp, phi) in blockchain_workloads(BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON) {
        push(
            format!("fig6/{}", slug(&label)),
            &comp,
            &phi,
            segments.max(1),
        );
    }

    rows
}

/// The `fault_storm` pin entries: every [`crate::fault_storm_cases`]
/// scenario run once on the sequential streaming path, flattened into the
/// solver's search-shape counters, the verdict code, and the runtime health
/// counters (rejections, absorbed duplicates, shed events). Injection is
/// seeded and ingestion is sequential, so every value is a pure function of
/// the workload — the same machine-independence contract as [`pin_rows`].
pub fn fault_entries() -> Vec<(String, u64)> {
    let mut entries = Vec::new();
    for case in crate::fault_storm_cases() {
        let (report, _faulted) = crate::run_fault_storm_case(&case);
        let key = format!("fault_storm/{}", case.name);
        let s = &report.stats;
        entries.push((format!("{key}/explored_states"), s.explored_states as u64));
        entries.push((format!("{key}/memo_hits"), s.memo_hits as u64));
        entries.push((format!("{key}/time_splits"), s.time_splits as u64));
        entries.push((
            format!("{key}/merged_time_points"),
            s.merged_time_points as u64,
        ));
        entries.push((
            format!("{key}/shift_normalized_nodes"),
            s.shift_normalized_nodes as u64,
        ));
        let v = &report.verdicts[0];
        let verdicts = v.may_be_satisfied() as u64
            | (v.may_be_violated() as u64) << 1
            | (v.iter().any(|x| !x.is_conclusive()) as u64) << 2;
        entries.push((format!("{key}/verdicts"), verdicts));
        let h = report.health;
        entries.push((format!("{key}/rejected"), h.rejected));
        entries.push((format!("{key}/deduped"), h.deduped));
        entries.push((format!("{key}/dropped"), h.dropped));
        entries.push((format!("{key}/late_beyond_epsilon"), h.late_beyond_epsilon));
    }
    entries.sort();
    entries
}

/// The `checkpoint` pin entries: every [`crate::checkpoint_cases`] scenario
/// run once through the serialize-and-restore harness
/// ([`crate::run_checkpoint_case`]). Pins the restart count, the snapshot
/// byte size (format + state-footprint growth shows up as drift), whether
/// the restarted run stayed observably identical to the uninterrupted
/// reference (`recovered_identical`, pinned at 1 — a 0 here means recovery
/// itself broke), and the restarted run's verdict code and absorption
/// counters. Same machine-independence contract as [`fault_entries`].
pub fn checkpoint_entries() -> Vec<(String, u64)> {
    let mut entries = Vec::new();
    for case in crate::checkpoint_cases() {
        let run = crate::run_checkpoint_case(&case);
        let key = format!("checkpoint/{}", case.name);
        entries.push((format!("{key}/restarts"), run.restarts));
        entries.push((format!("{key}/snapshot_bytes"), run.snapshot_bytes));
        entries.push((
            format!("{key}/recovered_identical"),
            run.recovered_identical() as u64,
        ));
        let v = &run.report.verdicts[0];
        let verdicts = v.may_be_satisfied() as u64
            | (v.may_be_violated() as u64) << 1
            | (v.iter().any(|x| !x.is_conclusive()) as u64) << 2;
        entries.push((format!("{key}/verdicts"), verdicts));
        let h = run.report.health;
        entries.push((format!("{key}/deduped"), h.deduped));
        entries.push((format!("{key}/dropped"), h.dropped));
    }
    entries.sort();
    entries
}

/// Runs the canonical telemetry workload: the clean fault-storm schedule
/// streamed through the sequential path with telemetry enabled and GC every
/// 4 segments. Returns the final report (whose
/// [`StreamReport::telemetry`] snapshot carries every instrument) and the
/// flight recorder's full-lifecycle kind counts — the ring is sized far
/// above the event count, so nothing is overwritten and the counts are a
/// pure function of the workload.
pub fn run_telemetry_workload() -> (StreamReport, Vec<(String, u64)>) {
    let (comp, phi) = crate::fault_storm_workload();
    let clean = StreamEvent::schedule_of(&comp);
    let segment_length = (comp.duration().max(1) / crate::DEFAULT_SEGMENTS as u64).max(1);
    let config = StreamConfig::new(segment_length)
        .gc_interval(4)
        .with_telemetry()
        .flight_capacity(16_384);
    let mut monitor = StreamMonitor::new(comp.process_count(), comp.epsilon(), config);
    monitor.add_query(&phi);
    for e in &clean {
        monitor
            .observe(e.process, e.time, e.state.clone())
            .expect("the clean schedule is stream-legal");
    }
    // The recorder handle shares the ring, so reading it after `finish`
    // includes the tail segments and the stream-finished marker.
    let flight = monitor.flight_recorder().clone();
    let report = monitor.finish();
    let mut counts: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for kind in flight.kinds() {
        *counts.entry(kind.name()).or_default() += 1;
    }
    let kinds = counts
        .into_iter()
        .map(|(name, count)| (name.to_string(), count))
        .collect();
    (report, kinds)
}

/// Builds one `telemetry/...` pin key, folding label pairs (quotes stripped)
/// into the path so keys stay valid flat-JSON strings.
fn telemetry_key(class: &str, name: &str, labels: &str) -> String {
    if labels.is_empty() {
        format!("telemetry/{class}/{name}")
    } else {
        format!("telemetry/{class}/{name}/{}", labels.replace('"', ""))
    }
}

/// The `telemetry` pin entries: every *count-shape* metric of the canonical
/// telemetry workload ([`run_telemetry_workload`]) — bridged counters,
/// population gauges, and the flight recorder's kind counts. Timing metrics
/// (`*_nanos*` instruments, histogram summaries) are wall-clock and are
/// deliberately excluded: they are reported by `bench_snapshot --sweeps`,
/// never pinned.
pub fn telemetry_entries() -> Vec<(String, u64)> {
    let (report, kinds) = run_telemetry_workload();
    let mut entries = Vec::new();
    for c in &report.telemetry.counters {
        if c.name.contains("_nanos") {
            continue;
        }
        entries.push((telemetry_key("counter", &c.name, &c.labels), c.value));
    }
    for g in &report.telemetry.gauges {
        entries.push((
            telemetry_key("gauge", &g.name, &g.labels),
            u64::try_from(g.value).unwrap_or(0),
        ));
    }
    for (kind, count) in kinds {
        entries.push((format!("telemetry/flight/{kind}"), count));
    }
    entries.sort();
    entries
}

/// Every gated entry: the batch sweep counters ([`pin_rows`] flattened) plus
/// the `fault_storm`, `checkpoint` and `telemetry` streaming counters,
/// sorted — exactly what `bench_snapshot --check` compares and
/// `--write-pins` writes.
pub fn all_entries() -> Vec<(String, u64)> {
    let mut entries = flatten(&pin_rows());
    entries.extend(fault_entries());
    entries.extend(checkpoint_entries());
    entries.extend(telemetry_entries());
    entries.sort();
    entries
}

/// Flattens pin rows into sorted `(key, value)` scalar entries — the unit of
/// comparison of the CI gate.
pub fn flatten(rows: &[PinRow]) -> Vec<(String, u64)> {
    let mut entries: Vec<(String, u64)> = Vec::with_capacity(rows.len() * 8);
    for row in rows {
        let s = &row.stats;
        entries.push((
            format!("{}/explored_states", row.key),
            s.explored_states as u64,
        ));
        entries.push((format!("{}/memo_hits", row.key), s.memo_hits as u64));
        entries.push((format!("{}/time_splits", row.key), s.time_splits as u64));
        entries.push((
            format!("{}/merged_time_points", row.key),
            s.merged_time_points as u64,
        ));
        entries.push((
            format!("{}/shift_normalized_nodes", row.key),
            s.shift_normalized_nodes as u64,
        ));
        entries.push((
            format!("{}/frontier_batches", row.key),
            s.frontier_batches as u64,
        ));
        entries.push((
            format!("{}/batched_probe_ticks", row.key),
            s.batched_probe_ticks as u64,
        ));
        entries.push((format!("{}/verdicts", row.key), row.verdicts));
    }
    entries.sort();
    entries
}

/// Serialises flat pin entries as the committed `BENCH_PINS.json` (a single
/// JSON object, one `"key": value` pair per line, keys sorted).
pub fn format_pins(entries: &[(String, u64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!("  \"{key}\": {value}{comma}\n"));
    }
    out.push_str("}\n");
    out
}

/// Parses the flat `BENCH_PINS.json` object back into `(key, value)` entries.
/// Accepts exactly the shape [`format_pins`] writes (a single object of
/// string-keyed unsigned integers, any whitespace); anything else is an
/// error naming the offending position.
pub fn parse_pins(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut entries = Vec::new();
    let mut chars = text.char_indices().peekable();
    let mut seen_open = false;
    let mut seen_close = false;
    while let Some((pos, c)) = chars.next() {
        match c {
            c if c.is_whitespace() || c == ',' => {}
            '{' if !seen_open => seen_open = true,
            '}' if seen_open && !seen_close => seen_close = true,
            '"' if seen_open && !seen_close => {
                let mut key = String::new();
                loop {
                    match chars.next() {
                        Some((_, '"')) => break,
                        Some((_, '\\')) => return Err(format!("escape in key at byte {pos}")),
                        Some((_, k)) => key.push(k),
                        None => return Err(format!("unterminated key at byte {pos}")),
                    }
                }
                // Expect a colon, then an unsigned integer.
                loop {
                    match chars.peek() {
                        Some(&(_, w)) if w.is_whitespace() => {
                            chars.next();
                        }
                        Some(&(_, ':')) => {
                            chars.next();
                            break;
                        }
                        other => {
                            return Err(format!("expected ':' after \"{key}\", got {other:?}"))
                        }
                    }
                }
                let mut digits = String::new();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_whitespace() && digits.is_empty() {
                        chars.next();
                    } else if d.is_ascii_digit() {
                        digits.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if digits.is_empty() {
                    return Err(format!("expected integer value for \"{key}\""));
                }
                let value: u64 = digits
                    .parse()
                    .map_err(|e| format!("value of \"{key}\": {e}"))?;
                entries.push((key, value));
            }
            other => return Err(format!("unexpected character {other:?} at byte {pos}")),
        }
    }
    if !seen_open || !seen_close {
        return Err("not a JSON object".into());
    }
    Ok(entries)
}

/// Compares current entries against the committed budget. Returns
/// human-readable drift lines (empty = pass): value drifts, keys missing
/// from the budget (new sweep points that must be pinned) and stale budget
/// keys (sweep points that no longer exist).
pub fn diff_pins(current: &[(String, u64)], pinned: &[(String, u64)]) -> Vec<String> {
    use std::collections::BTreeMap;
    let current: BTreeMap<&str, u64> = current.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let pinned: BTreeMap<&str, u64> = pinned.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let mut drift = Vec::new();
    for (key, &want) in &pinned {
        match current.get(key) {
            Some(&got) if got == want => {}
            Some(&got) => drift.push(format!("drift  {key}: pinned {want}, got {got}")),
            None => drift.push(format!("stale  {key}: pinned {want}, sweep point gone")),
        }
    }
    for (key, &got) in &current {
        if !pinned.contains_key(key) {
            drift.push(format!("unpinned  {key}: got {got}, add it to the budget"));
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_roundtrip_through_format_and_parse() {
        let entries = vec![
            ("a/explored_states".to_string(), 7u64),
            ("b c/verdicts".to_string(), 3u64),
        ];
        let text = format_pins(&entries);
        assert_eq!(parse_pins(&text).unwrap(), entries);
        assert!(parse_pins("{}").unwrap().is_empty());
        assert!(parse_pins("[1, 2]").is_err());
        assert!(parse_pins("{\"k\": -1}").is_err());
    }

    #[test]
    fn diff_reports_drift_stale_and_unpinned() {
        let pinned = vec![("a".into(), 1u64), ("b".into(), 2u64), ("c".into(), 3u64)];
        let current = vec![("a".into(), 1u64), ("b".into(), 9u64), ("d".into(), 4u64)];
        let drift = diff_pins(&current, &pinned);
        assert_eq!(drift.len(), 3, "{drift:?}");
        assert!(drift.iter().any(|l| l.contains("drift  b")));
        assert!(drift.iter().any(|l| l.contains("stale  c")));
        assert!(drift.iter().any(|l| l.contains("unpinned  d")));
        assert!(diff_pins(&pinned.clone(), &pinned).is_empty());
    }

    #[test]
    fn counter_sample_is_deterministic() {
        let comp = crate::saturation_computation(4);
        let phi = rvmtl_mtl::parse("a U[0,6) b").unwrap();
        let a = counter_sample(&comp, &phi, 1);
        let b = counter_sample(&comp, &phi, 1);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert!(a.0.explored_states > 0);
    }

    #[test]
    fn slugs_are_stable_and_clean() {
        assert_eq!(
            slug("2-party conforming (14 events)"),
            "2-party_conforming_14_events"
        );
        assert_eq!(slug("Auction cheating"), "auction_cheating");
    }
}
