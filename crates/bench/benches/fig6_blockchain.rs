//! Criterion benchmarks over the cross-chain protocol logs (Fig. 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rvmtl_bench::{blockchain_workloads, BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON};
use rvmtl_monitor::{Monitor, MonitorConfig};

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_blockchain");
    group.sample_size(10);
    for (label, segments, comp, phi) in blockchain_workloads(BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON)
    {
        group.bench_with_input(BenchmarkId::from_parameter(label), &comp, |b, comp| {
            let config = if segments <= 1 {
                MonitorConfig::unsegmented()
            } else {
                MonitorConfig::with_segments(segments)
            };
            b.iter(|| Monitor::new(config.clone()).run(comp, &phi));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
