//! Benchmarks over the cross-chain protocol logs (Fig. 6). `harness = false`
//! micro-benchmark; see `fig5_synthetic.rs` for the measurement scheme.

use rvmtl_bench::{bench_case, blockchain_workloads, BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON};
use rvmtl_monitor::{Monitor, MonitorConfig};

fn main() {
    println!("\nfig6_blockchain");
    for (label, segments, comp, phi) in blockchain_workloads(BLOCKCHAIN_DELTA, BLOCKCHAIN_EPSILON) {
        let config = if segments <= 1 {
            MonitorConfig::unsegmented()
        } else {
            MonitorConfig::with_segments(segments)
        };
        bench_case(&label, 10, || Monitor::new(config.clone()).run(&comp, &phi));
    }
}
