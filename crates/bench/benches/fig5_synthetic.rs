//! Benchmarks over the synthetic (UPPAAL-model) workloads — one group per
//! swept parameter of Fig. 5. The offline build has no `criterion`, so this is
//! a `harness = false` micro-benchmark with a fixed sample count reporting
//! min/median wall time per case.

use rvmtl_bench::{bench_case, default_trace_config, formula, synthetic_computation};
use rvmtl_monitor::{Monitor, MonitorConfig};

fn bench_formulas() {
    println!("\nfig5a_formula");
    let mut cfg = default_trace_config();
    cfg.duration_ms = 100;
    for index in [1usize, 3, 4, 6] {
        let comp = synthetic_computation(index, &cfg);
        let phi = formula(index, cfg.processes);
        bench_case(&format!("phi{index}"), 10, || {
            Monitor::new(MonitorConfig::with_segments(8)).run(&comp, &phi)
        });
    }
}

fn bench_epsilon() {
    println!("\nfig5b_epsilon");
    let phi = formula(4, 2);
    for epsilon in [1u64, 2, 3] {
        let mut cfg = default_trace_config();
        cfg.duration_ms = 100;
        cfg.epsilon_ms = epsilon;
        let comp = synthetic_computation(4, &cfg);
        bench_case(&format!("epsilon={epsilon}"), 10, || {
            Monitor::new(MonitorConfig::with_segments(8)).run(&comp, &phi)
        });
    }
}

fn bench_segments() {
    println!("\nfig5c_segments");
    let mut cfg = default_trace_config();
    cfg.duration_ms = 100;
    let comp = synthetic_computation(4, &cfg);
    let phi = formula(4, 2);
    for g in [4usize, 8, 16] {
        bench_case(&format!("g={g}"), 10, || {
            Monitor::new(MonitorConfig::with_segments(g)).run(&comp, &phi)
        });
    }
}

fn main() {
    bench_formulas();
    bench_epsilon();
    bench_segments();
}
