//! Criterion benchmarks over the synthetic (UPPAAL-model) workloads —
//! one benchmark group per swept parameter of Fig. 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rvmtl_bench::{default_trace_config, formula, synthetic_computation};
use rvmtl_monitor::{Monitor, MonitorConfig};

fn bench_formulas(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_formula");
    group.sample_size(10);
    let mut cfg = default_trace_config();
    cfg.duration_ms = 100;
    for index in [1usize, 3, 4, 6] {
        let comp = synthetic_computation(index, &cfg);
        let phi = formula(index, cfg.processes);
        group.bench_with_input(BenchmarkId::from_parameter(format!("phi{index}")), &index, |b, _| {
            b.iter(|| Monitor::new(MonitorConfig::with_segments(8)).run(&comp, &phi));
        });
    }
    group.finish();
}

fn bench_epsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_epsilon");
    group.sample_size(10);
    let phi = formula(4, 2);
    for epsilon in [1u64, 2, 3] {
        let mut cfg = default_trace_config();
        cfg.duration_ms = 100;
        cfg.epsilon_ms = epsilon;
        let comp = synthetic_computation(4, &cfg);
        group.bench_with_input(BenchmarkId::from_parameter(epsilon), &epsilon, |b, _| {
            b.iter(|| Monitor::new(MonitorConfig::with_segments(8)).run(&comp, &phi));
        });
    }
    group.finish();
}

fn bench_segments(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5c_segments");
    group.sample_size(10);
    let mut cfg = default_trace_config();
    cfg.duration_ms = 100;
    let comp = synthetic_computation(4, &cfg);
    let phi = formula(4, 2);
    for g in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, _| {
            b.iter(|| Monitor::new(MonitorConfig::with_segments(g)).run(&comp, &phi));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_formulas, bench_epsilon, bench_segments);
criterion_main!(benches);
