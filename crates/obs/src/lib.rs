//! `rvmtl-obs` — hand-rolled observability primitives for the monitoring
//! runtime.
//!
//! The paper's decentralized MTL monitor is itself an observability tool,
//! but a monitor an operator cannot observe is a black box: nothing says how
//! long an event takes to become a verdict, where segments stall, or what
//! the arena and its caches cost over a stream's lifetime. This crate is the
//! telemetry layer the runtime instruments itself with — dependency-free by
//! construction (the offline build container forbids `tracing`/`metrics`,
//! so the instruments are built directly on std atomics, the same policy as
//! `rvmtl-prng`). Three pieces:
//!
//! * **Metrics registry** ([`Registry`]): monotone [`Counter`]s, [`Gauge`]s
//!   and log2-bucketed [`Histogram`]s with p50/p90/p99 summaries. All
//!   recording is lock-free relaxed atomics; registration and snapshotting
//!   take a mutex. A disabled registry ([`Registry::no_op`]) mints no-op
//!   handles, so instrumented code compiled against it pays one never-taken
//!   branch per call site — the runtime's "telemetry off" mode.
//! * **Span timing** ([`Stopwatch`], [`ScopeTimer`]): wall-clock spans
//!   feeding histograms; a `ScopeTimer` records on drop and never reads the
//!   clock when its target histogram is disabled.
//! * **Flight recorder** ([`FlightRecorder`]): a fixed-capacity,
//!   never-reallocating ring of timestamped lifecycle events
//!   ([`FlightKind`]: event observed → segment closed → queued → solve
//!   start → solved → GC epoch → checkpoint written), with per-segment
//!   event-to-verdict latency derivation and a JSONL dump.
//!
//! Read-side, a [`TelemetrySnapshot`] is the typed view of everything; its
//! [`TelemetrySnapshot::to_prometheus`] renders text exposition whose every
//! sample line is `name{labels} value`, machine-validated by
//! [`parse_exposition`] (the CI telemetry smoke scrapes the streaming
//! example through exactly that parser).
//!
//! The split of responsibilities with the runtime: *count-shape* metrics
//! (segments closed, GC epochs, cache hits) are bridged from monitor state
//! into the snapshot at read time — deterministic, available even with
//! telemetry disabled, and pinned by the CI search-shape budget; *timing*
//! metrics (histograms, the flight recorder's timestamps) exist only when
//! telemetry is enabled and are reported, never pinned.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// Observability must never take the monitored system down: every lock here
// recovers from poisoning and every fallible path degrades to "record
// nothing" instead of unwrapping (same policy as rvmtl-runtime).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod flight;
mod metrics;
mod time;

pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use metrics::{
    parse_exposition, Counter, CounterSnapshot, ExpositionSample, Gauge, GaugeSnapshot, Histogram,
    HistogramSnapshot, Registry, TelemetrySnapshot, HISTOGRAM_BUCKETS,
};
pub use time::{ScopeTimer, Stopwatch};
