//! Lightweight span timing feeding the histograms: a manual [`Stopwatch`]
//! and a drop-guard [`ScopeTimer`].

use crate::Histogram;
use std::time::{Duration, Instant};

/// A manual stopwatch over [`Instant`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed whole nanoseconds (saturating).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Restarts the stopwatch, returning the lap time.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let lap = now - self.started;
        self.started = now;
        lap
    }
}

/// Times a scope and records the span into a [`Histogram`] (as nanoseconds)
/// when dropped. Against a disabled histogram the timer never reads the
/// clock — construction and drop are each one branch.
pub struct ScopeTimer {
    /// `None` when the target histogram is disabled (nothing to record).
    started: Option<(Instant, Histogram)>,
}

impl ScopeTimer {
    /// Starts timing into `histogram` (no-op if the histogram is disabled).
    pub fn new(histogram: &Histogram) -> Self {
        ScopeTimer {
            started: histogram
                .is_enabled()
                .then(|| (Instant::now(), histogram.clone())),
        }
    }

    /// Stops early and records, consuming the timer.
    pub fn stop(mut self) {
        self.finish();
    }

    /// Discards the span without recording it.
    pub fn cancel(mut self) {
        self.started = None;
    }

    fn finish(&mut self) {
        if let Some((started, histogram)) = self.started.take() {
            histogram.record_duration(started.elapsed());
        }
    }
}

impl Drop for ScopeTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn stopwatch_measures_nonzero_monotone_spans() {
        let mut watch = Stopwatch::start();
        std::hint::black_box((0..1000).sum::<u64>());
        let first = watch.elapsed_nanos();
        let lap = watch.lap();
        assert!(u64::try_from(lap.as_nanos()).unwrap() >= first);
    }

    #[test]
    fn scope_timer_records_on_drop_and_stop() {
        let registry = Registry::new();
        let h = registry.histogram("span_nanos", "");
        {
            let _t = ScopeTimer::new(&h);
        }
        ScopeTimer::new(&h).stop();
        ScopeTimer::new(&h).cancel();
        assert_eq!(h.count(), 2, "drop + stop record, cancel does not");
    }

    #[test]
    fn scope_timer_against_disabled_histogram_is_inert() {
        let h = Histogram::no_op();
        let t = ScopeTimer::new(&h);
        assert!(t.started.is_none());
        drop(t);
        assert_eq!(h.count(), 0);
    }
}
