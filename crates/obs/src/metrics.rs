//! The atomic metrics registry: monotone counters, gauges, and log2-bucketed
//! histograms with quantile summaries, snapshotted into a typed
//! [`TelemetrySnapshot`] and rendered as Prometheus-style text exposition.
//!
//! Every instrument is a cheap cloneable handle. A handle minted by an
//! *enabled* [`Registry`] points at shared atomic storage; a handle minted by
//! a disabled registry ([`Registry::no_op`]) holds nothing — every recording
//! method is one null check and returns, so a runtime built against a
//! disabled registry pays no atomics, no allocation, and no locks on its hot
//! paths.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a registry mutex, recovering from poisoning: registration lists and
/// instrument cores are append-only/atomic, so a panicking thread cannot
/// leave them inconsistent.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Number of log2 histogram buckets: one per possible bit length of a `u64`
/// sample (0 through 64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index of a sample: its bit length (0 for a zero sample), so
/// bucket `i ≥ 1` holds samples in `[2^(i-1), 2^i)`.
#[inline]
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `index` (the value reported for
/// quantiles that land in it).
fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

struct CounterCore {
    name: String,
    labels: String,
    value: AtomicU64,
}

/// A monotone counter. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter(Option<Arc<CounterCore>>);

impl Counter {
    /// A counter that records nothing (what a disabled registry hands out).
    pub fn no_op() -> Self {
        Counter(None)
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.0 {
            core.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op counter).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |core| core.value.load(Ordering::Relaxed))
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

struct GaugeCore {
    name: String,
    labels: String,
    value: AtomicI64,
}

/// A gauge: a value that can move both ways. Cloning shares the cell.
#[derive(Clone)]
pub struct Gauge(Option<Arc<GaugeCore>>);

impl Gauge {
    /// A gauge that records nothing.
    pub fn no_op() -> Self {
        Gauge(None)
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(core) = &self.0 {
            core.value.store(value, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(core) = &self.0 {
            core.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op gauge).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |core| core.value.load(Ordering::Relaxed))
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

struct HistogramCore {
    name: String,
    labels: String,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A log2-bucketed histogram of `u64` samples (durations in nanoseconds,
/// sizes in entries — dimensionless here, the name carries the unit).
///
/// Recording is lock-free: one relaxed fetch-add into the sample's bit-length
/// bucket plus count/sum/min/max updates. Quantiles are derived at snapshot
/// time by walking the cumulative bucket counts; a reported quantile is the
/// *upper bound* of the bucket the rank lands in (clamped to the observed
/// maximum), so `p99 ≤ 2 × true p99` — log2 resolution, which is what a
/// latency dashboard needs and all a dependency-free fixed ring can afford.
#[derive(Clone)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A histogram that records nothing.
    pub fn no_op() -> Self {
        Histogram(None)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let Some(core) = &self.0 else {
            return;
        };
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as whole nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, duration: std::time::Duration) {
        if self.0.is_some() {
            self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Number of recorded samples (0 for a no-op histogram).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |core| core.count.load(Ordering::Relaxed))
    }

    fn snapshot_core(core: &HistogramCore) -> HistogramSnapshot {
        let count = core.count.load(Ordering::Relaxed);
        let buckets: Vec<(u64, u64)> = core
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper(i), n))
            })
            .collect();
        let max = core.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-quantile (1-based, ceiling): the smallest bucket
            // whose cumulative count reaches it.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for &(upper, n) in &buckets {
                seen += n;
                if seen >= rank {
                    return upper.min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            name: core.name.clone(),
            labels: core.labels.clone(),
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                core.min.load(Ordering::Relaxed)
            },
            max: if count == 0 { 0 } else { max },
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            buckets,
        }
    }
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name (Prometheus-style, e.g. `rvmtl_segments_closed_total`).
    pub name: String,
    /// Raw label pairs, e.g. `query="0"` (empty = no labels).
    pub labels: String,
    /// Counter value.
    pub value: u64,
}

/// Point-in-time value of one gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Raw label pairs (empty = no labels).
    pub labels: String,
    /// Gauge value.
    pub value: i64,
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Raw label pairs (empty = no labels).
    pub labels: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median estimate (log2 resolution, see [`Histogram`]).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Non-empty log2 buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// A typed point-in-time view of every registered instrument, plus any
/// bridged values the caller appends (state-derived counters that live
/// outside the registry). This is what
/// `StreamMonitor::telemetry()` returns and what the text exposition is
/// rendered from.
///
/// # Examples
///
/// A snapshot's text exposition round-trips through [`parse_exposition`]
/// (the CI scrape smoke relies on exactly this):
///
/// ```
/// use rvmtl_obs::{parse_exposition, TelemetrySnapshot};
///
/// let mut snapshot = TelemetrySnapshot::default();
/// snapshot.push_counter("rvmtl_events_observed_total", "", 42);
/// snapshot.push_gauge("rvmtl_pending_obligations", "query=\"0\"", 3);
///
/// let text = snapshot.to_prometheus();
/// assert!(text.contains("rvmtl_events_observed_total 42"));
///
/// let samples = parse_exposition(&text).expect("own exposition parses");
/// assert_eq!(samples.len(), 2);
/// assert_eq!(samples[0].name, "rvmtl_events_observed_total");
/// assert_eq!(samples[0].value, 42.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// All counters, registered then bridged, in registration order.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histogram summaries.
    pub histograms: Vec<HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Appends a bridged counter value.
    pub fn push_counter(&mut self, name: impl Into<String>, labels: impl Into<String>, value: u64) {
        self.counters.push(CounterSnapshot {
            name: name.into(),
            labels: labels.into(),
            value,
        });
    }

    /// Appends a bridged gauge value.
    pub fn push_gauge(&mut self, name: impl Into<String>, labels: impl Into<String>, value: i64) {
        self.gauges.push(GaugeSnapshot {
            name: name.into(),
            labels: labels.into(),
            value,
        });
    }

    /// The value of the first counter with this name (any labels).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The value of the first gauge with this name (any labels).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The first histogram summary with this name (any labels).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Sum of a counter over all label sets (e.g. a per-query family).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Renders the snapshot as Prometheus-style text exposition: `# TYPE`
    /// comment lines plus one `name{labels} value` sample line per metric.
    /// Histograms render as summaries (`_count`, `_sum`, `_min`, `_max` and
    /// `quantile=…` sample lines). The output round-trips through
    /// [`parse_exposition`].
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last_type: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if last_type.as_deref() != Some(name) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_type = Some(name.to_string());
            }
        };
        for c in &self.counters {
            type_line(&mut out, &c.name, "counter");
            let _ = writeln!(out, "{}{} {}", c.name, braced(&c.labels), c.value);
        }
        for g in &self.gauges {
            type_line(&mut out, &g.name, "gauge");
            let _ = writeln!(out, "{}{} {}", g.name, braced(&g.labels), g.value);
        }
        for h in &self.histograms {
            type_line(&mut out, &h.name, "summary");
            for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                let labels = if h.labels.is_empty() {
                    format!("quantile=\"{q}\"")
                } else {
                    format!("{},quantile=\"{q}\"", h.labels)
                };
                let _ = writeln!(out, "{}{{{labels}}} {v}", h.name);
            }
            for (suffix, v) in [
                ("count", h.count),
                ("sum", h.sum),
                ("min", h.min),
                ("max", h.max),
            ] {
                let _ = writeln!(out, "{}_{suffix}{} {v}", h.name, braced(&h.labels));
            }
        }
        out
    }
}

/// Wraps non-empty label pairs in braces for a sample line.
fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

/// One parsed sample line of a text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpositionSample {
    /// Metric name.
    pub name: String,
    /// Raw label pairs (brace contents; empty = no labels).
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

/// Parses (and thereby validates) Prometheus-style text exposition: every
/// non-comment, non-blank line must be `name{labels} value` (labels
/// optional), where `name` is `[a-zA-Z_:][a-zA-Z0-9_:]*`, labels are
/// `key="value"` pairs, and `value` parses as a finite float.
///
/// # Errors
///
/// The first offending line, quoted with its line number.
pub fn parse_exposition(text: &str) -> Result<Vec<ExpositionSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        // Metric name.
        let name_end = line
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return Err(bad("expected a metric name"));
        }
        let mut rest = &line[name_end..];
        // Optional label set.
        let mut labels = "";
        if let Some(stripped) = rest.strip_prefix('{') {
            let Some(close) = stripped.find('}') else {
                return Err(bad("unterminated label set"));
            };
            labels = &stripped[..close];
            for pair in labels.split(',') {
                let Some((key, value)) = pair.split_once('=') else {
                    return Err(bad("label pair without '='"));
                };
                if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    return Err(bad("invalid label name"));
                }
                if !(value.len() >= 2 && value.starts_with('"') && value.ends_with('"')) {
                    return Err(bad("label value must be quoted"));
                }
            }
            rest = &stripped[close + 1..];
        }
        // Exactly one space, then the value.
        let Some(value_text) = rest.strip_prefix(' ') else {
            return Err(bad("expected ' ' before the value"));
        };
        let value: f64 = value_text
            .trim()
            .parse()
            .map_err(|_| bad("value is not a number"))?;
        if !value.is_finite() {
            return Err(bad("value is not finite"));
        }
        samples.push(ExpositionSample {
            name: name.to_string(),
            labels: labels.to_string(),
            value,
        });
    }
    Ok(samples)
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<Arc<CounterCore>>,
    gauges: Vec<Arc<GaugeCore>>,
    histograms: Vec<Arc<HistogramCore>>,
}

/// The instrument registry. An enabled registry mints live handles and
/// snapshots them; a disabled one ([`Registry::no_op`]) mints no-op handles,
/// making every instrumented code path one never-taken branch.
///
/// # Examples
///
/// ```
/// use rvmtl_obs::Registry;
///
/// let registry = Registry::new();
/// let events = registry.counter("events_total", "");
/// let per_query = registry.counter("solved_total", "query=\"0\"");
/// events.inc();
/// events.add(2);
/// per_query.inc();
///
/// let snapshot = registry.snapshot();
/// assert_eq!(snapshot.counter("events_total"), Some(3));
/// assert_eq!(snapshot.counter_total("solved_total"), 1);
///
/// // A disabled registry mints no-op handles and snapshots empty.
/// let off = Registry::no_op();
/// let silent = off.counter("events_total", "");
/// silent.inc();
/// assert!(off.snapshot().counters.is_empty());
/// ```
pub struct Registry {
    inner: Option<Mutex<RegistryInner>>,
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> Self {
        Registry {
            inner: Some(Mutex::new(RegistryInner::default())),
        }
    }

    /// A disabled registry: every instrument it mints is a no-op and
    /// [`Registry::snapshot`] is empty.
    pub fn no_op() -> Self {
        Registry { inner: None }
    }

    /// Whether instruments minted here record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers a counter. `labels` is the raw pair list (e.g.
    /// `query="3"`), empty for none.
    pub fn counter(&self, name: &str, labels: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::no_op();
        };
        let core = Arc::new(CounterCore {
            name: name.to_string(),
            labels: labels.to_string(),
            value: AtomicU64::new(0),
        });
        lock_recover(inner).counters.push(Arc::clone(&core));
        Counter(Some(core))
    }

    /// Registers a gauge.
    pub fn gauge(&self, name: &str, labels: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::no_op();
        };
        let core = Arc::new(GaugeCore {
            name: name.to_string(),
            labels: labels.to_string(),
            value: AtomicI64::new(0),
        });
        lock_recover(inner).gauges.push(Arc::clone(&core));
        Gauge(Some(core))
    }

    /// Registers a histogram.
    pub fn histogram(&self, name: &str, labels: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::no_op();
        };
        let core = Arc::new(HistogramCore {
            name: name.to_string(),
            labels: labels.to_string(),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        });
        lock_recover(inner).histograms.push(Arc::clone(&core));
        Histogram(Some(core))
    }

    /// Snapshots every registered instrument, in registration order (empty
    /// for a disabled registry).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(inner) = &self.inner else {
            return TelemetrySnapshot::default();
        };
        let inner = lock_recover(inner);
        TelemetrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|c| CounterSnapshot {
                    name: c.name.clone(),
                    labels: c.labels.clone(),
                    value: c.value.load(Ordering::Relaxed),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|g| GaugeSnapshot {
                    name: g.name.clone(),
                    labels: g.labels.clone(),
                    value: g.value.load(Ordering::Relaxed),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|h| Histogram::snapshot_core(h))
                .collect(),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in a bucket whose bound covers it.
        for v in [0u64, 1, 2, 7, 8, 1023, 1024, u64::MAX] {
            assert!(v <= bucket_upper(bucket_index(v)), "{v}");
        }
    }

    #[test]
    fn counters_and_gauges_record_and_snapshot() {
        let registry = Registry::new();
        let c = registry.counter("seen_total", "");
        let g = registry.gauge("depth", "kind=\"queue\"");
        c.inc();
        c.add(4);
        g.set(7);
        g.add(-2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("seen_total"), Some(5));
        assert_eq!(snap.gauge("depth"), Some(5));
        assert_eq!(snap.gauges[0].labels, "kind=\"queue\"");
    }

    #[test]
    fn histogram_quantiles_have_log2_resolution() {
        let registry = Registry::new();
        let h = registry.histogram("latency_nanos", "");
        // 100 samples at 10, 10 at 1000, 1 at 100_000.
        for _ in 0..100 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        h.record(100_000);
        let snap = registry.snapshot();
        let hist = snap.histogram("latency_nanos").unwrap();
        assert_eq!(hist.count, 111);
        assert_eq!(hist.sum, 100 * 10 + 10 * 1000 + 100_000);
        assert_eq!(hist.min, 10);
        assert_eq!(hist.max, 100_000);
        // p50 lands in the bucket of 10 ([8,15]); p99 in the bucket of 1000.
        assert!(hist.p50 >= 10 && hist.p50 < 16, "{}", hist.p50);
        assert!(hist.p99 >= 1000 && hist.p99 < 2048, "{}", hist.p99);
        // p50 ≤ p90 ≤ p99 ≤ max always.
        assert!(hist.p50 <= hist.p90 && hist.p90 <= hist.p99 && hist.p99 <= hist.max);
    }

    #[test]
    fn empty_histogram_summarises_to_zeroes() {
        let registry = Registry::new();
        let _h = registry.histogram("empty", "");
        let snap = registry.snapshot();
        let hist = snap.histogram("empty").unwrap();
        assert_eq!(
            (hist.count, hist.sum, hist.min, hist.max, hist.p99),
            (0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn disabled_registry_is_a_no_op() {
        let registry = Registry::no_op();
        assert!(!registry.is_enabled());
        let c = registry.counter("x", "");
        let g = registry.gauge("y", "");
        let h = registry.histogram("z", "");
        c.add(10);
        g.set(5);
        h.record(123);
        assert!(!c.is_enabled() && !g.is_enabled() && !h.is_enabled());
        assert_eq!((c.get(), g.get(), h.count()), (0, 0, 0));
        assert_eq!(registry.snapshot(), TelemetrySnapshot::default());
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let registry = Registry::new();
        registry.counter("events_total", "").add(3);
        registry.gauge("queue_depth", "stage=\"solve\"").set(-2);
        let h = registry.histogram("solve_nanos", "query=\"0\"");
        h.record(5);
        h.record(900);
        let mut snap = registry.snapshot();
        snap.push_counter("bridged_total", "", 42);
        let text = snap.to_prometheus();
        let samples = parse_exposition(&text).expect("exposition must parse");
        // 2 counters + 1 gauge + 7 histogram lines (3 quantiles + 4 stats).
        assert_eq!(samples.len(), 10, "{text}");
        assert!(samples
            .iter()
            .any(|s| s.name == "queue_depth" && s.value == -2.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "solve_nanos_count" && s.value == 2.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "solve_nanos" && s.labels.contains("quantile=\"0.99\"")));
        assert!(samples.iter().any(|s| s.name == "bridged_total"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "1bad_name 3",
            "name",
            "name{unterminated 3",
            "name{k=v} 3",
            "name{=\"v\"} 3",
            "name not_a_number",
            "name{k=\"v\"} NaN",
        ] {
            assert!(parse_exposition(bad).is_err(), "{bad:?} must be rejected");
        }
        assert!(parse_exposition("# comment\n\nname{k=\"v\"} 3.5\n").is_ok());
    }

    #[test]
    fn counter_total_sums_a_label_family() {
        let registry = Registry::new();
        registry.counter("pending", "query=\"0\"").add(2);
        registry.counter("pending", "query=\"1\"").add(3);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("pending"), 5);
    }
}
