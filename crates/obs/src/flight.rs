//! The pipeline flight recorder: a fixed-capacity ring buffer of timestamped
//! lifecycle events.
//!
//! A metrics registry answers "how much, how often"; the flight recorder
//! answers "what just happened, in what order" — the last N lifecycle events
//! of the pipeline (event observed → segment closed → queued → solve start →
//! solved → GC epoch → checkpoint written), cheap enough to leave on in
//! production and bounded by construction: the ring is allocated once at
//! creation and **never reallocates** — when full, the oldest event is
//! overwritten, keeping a coherent oldest→newest window (monotone,
//! contiguous sequence numbers).
//!
//! Timestamps are microseconds since the recorder was created (wall-clock
//! spans, not state): two runs of the same stream produce the same *kind
//! sequence* with different timestamps, which is exactly what the
//! determinism tests assert.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Locks the ring, recovering from poisoning: every mutation below is a
/// single-slot write plus index bumps, consistent at any panic point.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One lifecycle event class, with its logical payload (no timestamps here —
/// those live on the enclosing [`FlightEvent`], so kind sequences compare
/// deterministically across runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightKind {
    /// An event of `process` at local `time` was accepted into the stream.
    EventObserved {
        /// Originating process index.
        process: u32,
        /// Local timestamp of the event.
        time: u64,
    },
    /// A heartbeat advanced `process`'s clock to `time`.
    Heartbeat {
        /// Originating process index.
        process: u32,
        /// Local timestamp of the beacon.
        time: u64,
    },
    /// The watermark closed the segment `[base, end)`.
    SegmentClosed {
        /// Segment base time.
        base: u64,
        /// Segment end boundary.
        end: u64,
    },
    /// A closed segment entered the processing queue at this depth.
    SegmentQueued {
        /// Segment base time.
        base: u64,
        /// Queue depth after the push.
        depth: u64,
    },
    /// A segment was handed to the solver stage.
    SolveStart {
        /// Segment base time.
        base: u64,
    },
    /// A segment's rewrites were folded into every observing query's pending
    /// set — its verdict contribution is visible from here on.
    SegmentSolved {
        /// Segment base time.
        base: u64,
    },
    /// A GC epoch compacted the query-spanning arena.
    GcEpoch {
        /// Arena nodes surviving the compaction.
        retained: u64,
    },
    /// An epoch checkpoint was written durably.
    CheckpointWritten {
        /// The epoch (processed-segment count) of the snapshot.
        epoch: u64,
        /// Serialized size in bytes.
        bytes: u64,
    },
    /// An automatic epoch checkpoint failed to write (the monitor kept
    /// running).
    CheckpointFailed,
    /// The stream was finished and residual obligations closed.
    StreamFinished,
}

impl FlightKind {
    /// Stable snake_case name of the event class (the JSONL `kind` field).
    pub fn name(&self) -> &'static str {
        match self {
            FlightKind::EventObserved { .. } => "event_observed",
            FlightKind::Heartbeat { .. } => "heartbeat",
            FlightKind::SegmentClosed { .. } => "segment_closed",
            FlightKind::SegmentQueued { .. } => "segment_queued",
            FlightKind::SolveStart { .. } => "solve_start",
            FlightKind::SegmentSolved { .. } => "segment_solved",
            FlightKind::GcEpoch { .. } => "gc_epoch",
            FlightKind::CheckpointWritten { .. } => "checkpoint_written",
            FlightKind::CheckpointFailed => "checkpoint_failed",
            FlightKind::StreamFinished => "stream_finished",
        }
    }

    /// The logical payload as JSON object fields (empty for payload-free
    /// kinds), e.g. `,"base":70,"end":140`.
    fn json_fields(&self) -> String {
        match self {
            FlightKind::EventObserved { process, time }
            | FlightKind::Heartbeat { process, time } => {
                format!(",\"process\":{process},\"time\":{time}")
            }
            FlightKind::SegmentClosed { base, end } => format!(",\"base\":{base},\"end\":{end}"),
            FlightKind::SegmentQueued { base, depth } => {
                format!(",\"base\":{base},\"depth\":{depth}")
            }
            FlightKind::SolveStart { base } | FlightKind::SegmentSolved { base } => {
                format!(",\"base\":{base}")
            }
            FlightKind::GcEpoch { retained } => format!(",\"retained\":{retained}"),
            FlightKind::CheckpointWritten { epoch, bytes } => {
                format!(",\"epoch\":{epoch},\"bytes\":{bytes}")
            }
            FlightKind::CheckpointFailed | FlightKind::StreamFinished => String::new(),
        }
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotone sequence number (never reused, survives wraps — the gap
    /// between the smallest live `seq` and 0 is exactly the overwritten
    /// prefix).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_micros: u64,
    /// What happened.
    pub kind: FlightKind,
}

struct Ring {
    /// The slots; allocated once, len grows to capacity and stays there.
    slots: Vec<FlightEvent>,
    /// Index the next event is written to once the ring is full.
    head: usize,
    /// Next sequence number.
    next_seq: u64,
}

struct RecorderCore {
    ring: Mutex<Ring>,
    capacity: usize,
    epoch: Instant,
}

/// The bounded flight recorder. Cloning shares the ring; a recorder from
/// [`FlightRecorder::no_op`] drops every event at a single branch.
#[derive(Clone)]
pub struct FlightRecorder(Option<Arc<RecorderCore>>);

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 (a zero-slot ring cannot hold a window; use
    /// [`FlightRecorder::no_op`] to disable recording).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be at least 1");
        FlightRecorder(Some(Arc::new(RecorderCore {
            ring: Mutex::new(Ring {
                slots: Vec::with_capacity(capacity),
                head: 0,
                next_seq: 0,
            }),
            capacity,
            epoch: Instant::now(),
        })))
    }

    /// A recorder that drops everything.
    pub fn no_op() -> Self {
        FlightRecorder(None)
    }

    /// Whether events are recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The fixed slot count (0 for a no-op recorder).
    pub fn capacity(&self) -> usize {
        self.0.as_ref().map_or(0, |core| core.capacity)
    }

    /// The allocated slot capacity of the backing buffer — for asserting the
    /// no-reallocation invariant (equals [`FlightRecorder::capacity`]
    /// forever on an enabled recorder).
    pub fn allocated_capacity(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |core| lock_recover(&core.ring).slots.capacity())
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.0
            .as_ref()
            .map_or(0, |core| lock_recover(&core.ring).slots.len())
    }

    /// Whether no event has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |core| lock_recover(&core.ring).next_seq)
    }

    /// Records one event (stamped now).
    pub fn record(&self, kind: FlightKind) {
        let Some(core) = &self.0 else {
            return;
        };
        let at_micros = u64::try_from(core.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut ring = lock_recover(&core.ring);
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let event = FlightEvent {
            seq,
            at_micros,
            kind,
        };
        if ring.slots.len() < core.capacity {
            ring.slots.push(event);
        } else {
            // Overwrite-on-wrap: `head` is always the *oldest* slot once the
            // ring is full, so replacing it keeps the window contiguous.
            let head = ring.head;
            ring.slots[head] = event;
            ring.head = (head + 1) % core.capacity;
        }
    }

    /// The retained window, oldest → newest.
    pub fn events(&self) -> Vec<FlightEvent> {
        let Some(core) = &self.0 else {
            return Vec::new();
        };
        let ring = lock_recover(&core.ring);
        let mut out = Vec::with_capacity(ring.slots.len());
        out.extend_from_slice(&ring.slots[ring.head..]);
        out.extend_from_slice(&ring.slots[..ring.head]);
        out
    }

    /// The retained kind sequence, oldest → newest (what the determinism
    /// tests compare — no timestamps).
    pub fn kinds(&self) -> Vec<FlightKind> {
        self.events().into_iter().map(|e| e.kind).collect()
    }

    /// Dumps the retained window as JSON Lines, one event object per line:
    /// `{"seq":…,"at_micros":…,"kind":"…"[, payload fields]}`.
    pub fn dump_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in self.events() {
            let _ = writeln!(
                out,
                "{{\"seq\":{},\"at_micros\":{},\"kind\":\"{}\"{}}}",
                e.seq,
                e.at_micros,
                e.kind.name(),
                e.kind.json_fields()
            );
        }
        out
    }

    /// Per-segment event-to-verdict latency, derived from the retained
    /// window: for every segment base whose [`FlightKind::SegmentClosed`]
    /// *and* [`FlightKind::SegmentSolved`] events are both still in the
    /// ring, the microseconds between them — the time an event spent between
    /// "its segment can never change again" and "its verdict contribution is
    /// visible". Returned oldest → newest by solve time.
    pub fn segment_latencies_micros(&self) -> Vec<(u64, u64)> {
        use std::collections::HashMap;
        let mut closed_at: HashMap<u64, u64> = HashMap::new();
        let mut out = Vec::new();
        for e in self.events() {
            match e.kind {
                FlightKind::SegmentClosed { base, .. } => {
                    closed_at.insert(base, e.at_micros);
                }
                FlightKind::SegmentSolved { base } => {
                    if let Some(closed) = closed_at.remove(&base) {
                        out.push((base, e.at_micros.saturating_sub(closed)));
                    }
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_dumps_jsonl() {
        let recorder = FlightRecorder::with_capacity(16);
        recorder.record(FlightKind::SegmentClosed { base: 0, end: 10 });
        recorder.record(FlightKind::SolveStart { base: 0 });
        recorder.record(FlightKind::SegmentSolved { base: 0 });
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.recorded(), 3);
        let events = recorder.events();
        assert_eq!(events[0].seq, 0);
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert!(events.windows(2).all(|w| w[0].at_micros <= w[1].at_micros));
        let dump = recorder.dump_jsonl();
        assert_eq!(dump.lines().count(), 3);
        assert!(dump.contains("\"kind\":\"segment_closed\",\"base\":0,\"end\":10"));
        assert!(dump.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn derives_segment_latencies_from_the_window() {
        let recorder = FlightRecorder::with_capacity(16);
        recorder.record(FlightKind::SegmentClosed { base: 0, end: 10 });
        recorder.record(FlightKind::SegmentClosed { base: 10, end: 20 });
        recorder.record(FlightKind::SegmentSolved { base: 0 });
        recorder.record(FlightKind::SegmentSolved { base: 10 });
        // Unmatched solve (its close was never recorded) is skipped.
        recorder.record(FlightKind::SegmentSolved { base: 99 });
        let latencies = recorder.segment_latencies_micros();
        assert_eq!(latencies.len(), 2);
        assert_eq!(latencies[0].0, 0);
        assert_eq!(latencies[1].0, 10);
    }

    #[test]
    fn no_op_recorder_drops_everything() {
        let recorder = FlightRecorder::no_op();
        recorder.record(FlightKind::StreamFinished);
        assert!(!recorder.is_enabled());
        assert!(recorder.is_empty());
        assert_eq!(recorder.capacity(), 0);
        assert_eq!(recorder.dump_jsonl(), "");
        assert!(recorder.segment_latencies_micros().is_empty());
    }
}
