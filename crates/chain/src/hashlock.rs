//! Hashlocks: the hash/preimage pairs that gate redemption in cross-chain
//! swaps.
//!
//! The simulation uses a 64-bit FNV-1a hash — collision resistance is
//! irrelevant here because the monitor only observes *events*, not the
//! cryptography; what matters is that a contract can check that the released
//! secret matches the lock it was configured with.

/// A secret preimage held by the party allowed to trigger redemption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Preimage(pub u64);

/// The hash of a preimage, stored in a contract at setup time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hashlock(u64);

impl Preimage {
    /// The hashlock corresponding to this preimage.
    pub fn lock(&self) -> Hashlock {
        Hashlock(fnv1a(self.0))
    }
}

impl Hashlock {
    /// Returns `true` if `preimage` opens this lock.
    pub fn opens(&self, preimage: &Preimage) -> bool {
        fnv1a(preimage.0) == self.0
    }
}

fn fnv1a(value: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in value.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preimage_opens_its_own_lock() {
        let s = Preimage(42);
        assert!(s.lock().opens(&s));
    }

    #[test]
    fn different_preimage_is_rejected() {
        let s = Preimage(42);
        assert!(!s.lock().opens(&Preimage(43)));
        assert!(!s.lock().opens(&Preimage(0)));
    }

    #[test]
    fn locks_of_distinct_preimages_differ() {
        assert_ne!(Preimage(1).lock(), Preimage(2).lock());
        assert_ne!(Preimage(u64::MAX).lock(), Preimage(0).lock());
    }
}
