//! An ERC20-style token ledger.
//!
//! Each mock blockchain manages one fungible token. Contracts escrow tokens by
//! transferring them to their own account and release them by transferring
//! out, so conservation of total supply is an invariant the tests check.

use std::collections::BTreeMap;
use std::fmt;

/// An account on a chain: a protocol party or a contract.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Account(String);

impl Account {
    /// Creates an account with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Account(name.into())
    }

    /// The account name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Account {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Account {
    fn from(s: &str) -> Self {
        Account::new(s)
    }
}

/// Errors produced by ledger operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenError {
    /// The source account does not hold enough tokens.
    InsufficientBalance {
        /// The account attempting to pay.
        account: Account,
        /// Its current balance.
        balance: u64,
        /// The requested amount.
        requested: u64,
    },
}

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenError::InsufficientBalance {
                account,
                balance,
                requested,
            } => write!(
                f,
                "account {account} holds {balance} tokens but {requested} were requested"
            ),
        }
    }
}

impl std::error::Error for TokenError {}

/// A fungible-token ledger (the ERC20 contract of the paper's experiments).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenLedger {
    balances: BTreeMap<Account, u64>,
}

impl TokenLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        TokenLedger::default()
    }

    /// Mints `amount` tokens into `account`.
    pub fn mint(&mut self, account: impl Into<Account>, amount: u64) {
        *self.balances.entry(account.into()).or_insert(0) += amount;
    }

    /// The balance of `account` (0 if it never held tokens).
    pub fn balance(&self, account: &Account) -> u64 {
        self.balances.get(account).copied().unwrap_or(0)
    }

    /// Transfers `amount` tokens from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`TokenError::InsufficientBalance`] if `from` holds fewer than
    /// `amount` tokens; no state is modified in that case.
    pub fn transfer(
        &mut self,
        from: impl Into<Account>,
        to: impl Into<Account>,
        amount: u64,
    ) -> Result<(), TokenError> {
        let from = from.into();
        let to = to.into();
        let balance = self.balance(&from);
        if balance < amount {
            return Err(TokenError::InsufficientBalance {
                account: from,
                balance,
                requested: amount,
            });
        }
        *self.balances.get_mut(&from).expect("checked above") -= amount;
        *self.balances.entry(to).or_insert(0) += amount;
        Ok(())
    }

    /// Total number of tokens in existence.
    pub fn total_supply(&self) -> u64 {
        self.balances.values().sum()
    }

    /// Iterates over `(account, balance)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Account, u64)> {
        self.balances.iter().map(|(a, &b)| (a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_and_balance() {
        let mut ledger = TokenLedger::new();
        ledger.mint("alice", 100);
        ledger.mint("alice", 2);
        assert_eq!(ledger.balance(&"alice".into()), 102);
        assert_eq!(ledger.balance(&"bob".into()), 0);
        assert_eq!(ledger.total_supply(), 102);
    }

    #[test]
    fn transfer_moves_tokens() {
        let mut ledger = TokenLedger::new();
        ledger.mint("alice", 100);
        ledger.transfer("alice", "swap", 40).unwrap();
        assert_eq!(ledger.balance(&"alice".into()), 60);
        assert_eq!(ledger.balance(&"swap".into()), 40);
        assert_eq!(ledger.total_supply(), 100);
    }

    #[test]
    fn transfer_fails_without_funds() {
        let mut ledger = TokenLedger::new();
        ledger.mint("alice", 10);
        let err = ledger.transfer("alice", "bob", 11).unwrap_err();
        assert!(matches!(err, TokenError::InsufficientBalance { .. }));
        // Nothing moved.
        assert_eq!(ledger.balance(&"alice".into()), 10);
        assert_eq!(ledger.balance(&"bob".into()), 0);
    }

    #[test]
    fn conservation_under_many_transfers() {
        let mut ledger = TokenLedger::new();
        ledger.mint("alice", 100);
        ledger.mint("bob", 100);
        for i in 0..10u64 {
            let _ = ledger.transfer("alice", "contract", i);
            let _ = ledger.transfer("contract", "bob", i / 2);
        }
        assert_eq!(ledger.total_supply(), 200);
    }

    #[test]
    fn account_display_and_conversion() {
        let a = Account::from("carol");
        assert_eq!(a.name(), "carol");
        assert_eq!(a.to_string(), "carol");
    }
}
