//! The per-chain hedged swap contract.
//!
//! Each chain participating in a (two- or three-party) hedged swap deploys one
//! instance of this contract. The contract escrows one party's asset, is
//! guarded by a hashlock and absolute deadlines, collects premiums that hedge
//! the counterparty against a sore-loser attack, and emits an event for every
//! successful call — the events are what the runtime monitor observes.

use crate::{Account, ChainError, Hashlock, MockChain, Preimage};

/// The lifecycle state of one hedged swap contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapState {
    /// The premium hedging the redeemer has been deposited.
    pub premium_deposited: bool,
    /// The asset has been escrowed by its owner.
    pub asset_escrowed: bool,
    /// The asset has been redeemed by the counterparty.
    pub asset_redeemed: bool,
    /// The asset has been refunded to its owner.
    pub asset_refunded: bool,
    /// The premium has been refunded to its payer.
    pub premium_refunded: bool,
    /// The premium has been paid out as compensation.
    pub premium_redeemed: bool,
    /// All assets held by the contract have been settled.
    pub settled: bool,
}

/// One hedged swap contract deployed on one chain.
///
/// Roles: `asset_owner` escrows `asset_amount` tokens; `redeemer` may redeem
/// them by revealing the hashlock preimage before the redeem deadline;
/// `premium_payer` deposits `premium_amount` tokens which are refunded on a
/// successful swap and paid to the escrowing party as compensation otherwise.
#[derive(Debug, Clone)]
pub struct SwapContract {
    name: String,
    asset_owner: String,
    redeemer: String,
    premium_payer: String,
    asset_amount: u64,
    premium_amount: u64,
    hashlock: Hashlock,
    /// Absolute local-time deadlines for (premium deposit, escrow, redeem).
    deadlines: (u64, u64, u64),
    state: SwapState,
}

impl SwapContract {
    /// Deploys a contract.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        asset_owner: impl Into<String>,
        redeemer: impl Into<String>,
        premium_payer: impl Into<String>,
        asset_amount: u64,
        premium_amount: u64,
        hashlock: Hashlock,
        deadlines: (u64, u64, u64),
    ) -> Self {
        SwapContract {
            name: name.into(),
            asset_owner: asset_owner.into(),
            redeemer: redeemer.into(),
            premium_payer: premium_payer.into(),
            asset_amount,
            premium_amount,
            hashlock,
            deadlines,
            state: SwapState::default(),
        }
    }

    /// The contract's account on its chain.
    pub fn account(&self) -> Account {
        Account::new(self.name.clone())
    }

    /// The contract's current state.
    pub fn state(&self) -> SwapState {
        self.state
    }

    /// The premium amount this contract collects.
    pub fn premium_amount(&self) -> u64 {
        self.premium_amount
    }

    /// The escrowed asset amount.
    pub fn asset_amount(&self) -> u64 {
        self.asset_amount
    }

    fn reject(&self, reason: &str) -> ChainError {
        ChainError::StepRejected {
            contract: self.name.clone(),
            reason: reason.to_string(),
        }
    }

    /// Step: the premium payer deposits the premium.
    ///
    /// # Errors
    ///
    /// Rejected if already deposited or the payer lacks funds.
    pub fn deposit_premium(&mut self, chain: &mut MockChain) -> Result<(), ChainError> {
        if self.state.premium_deposited {
            return Err(self.reject("premium already deposited"));
        }
        chain.ledger_mut().transfer(
            self.premium_payer.as_str(),
            self.account(),
            self.premium_amount,
        )?;
        self.state.premium_deposited = true;
        chain.emit(
            "premium_deposited",
            &self.premium_payer,
            self.premium_amount,
        );
        Ok(())
    }

    /// Step: the asset owner escrows the asset. Requires the premium to have
    /// been deposited first (the contract enforces the protocol order).
    ///
    /// # Errors
    ///
    /// Rejected if the premium has not been deposited, the asset was already
    /// escrowed, or the owner lacks funds.
    pub fn escrow_asset(&mut self, chain: &mut MockChain) -> Result<(), ChainError> {
        if !self.state.premium_deposited {
            return Err(self.reject("premium not deposited"));
        }
        if self.state.asset_escrowed {
            return Err(self.reject("asset already escrowed"));
        }
        chain.ledger_mut().transfer(
            self.asset_owner.as_str(),
            self.account(),
            self.asset_amount,
        )?;
        self.state.asset_escrowed = true;
        chain.emit("asset_escrowed", &self.asset_owner, self.asset_amount);
        Ok(())
    }

    /// Step: the redeemer reveals the preimage and takes the escrowed asset;
    /// the premium is refunded to its payer.
    ///
    /// # Errors
    ///
    /// Rejected if the asset is not escrowed, was already redeemed or
    /// refunded, or the preimage does not open the hashlock.
    pub fn redeem_asset(
        &mut self,
        chain: &mut MockChain,
        preimage: Preimage,
    ) -> Result<(), ChainError> {
        if !self.state.asset_escrowed {
            return Err(self.reject("asset not escrowed"));
        }
        if self.state.asset_redeemed || self.state.asset_refunded {
            return Err(self.reject("asset already settled"));
        }
        if !self.hashlock.opens(&preimage) {
            return Err(ChainError::WrongPreimage);
        }
        chain
            .ledger_mut()
            .transfer(self.account(), self.redeemer.as_str(), self.asset_amount)?;
        self.state.asset_redeemed = true;
        chain.emit("asset_redeemed", &self.redeemer, self.asset_amount);
        self.refund_premium(chain)?;
        Ok(())
    }

    /// Refunds the premium to its payer (successful swap).
    fn refund_premium(&mut self, chain: &mut MockChain) -> Result<(), ChainError> {
        if self.state.premium_deposited
            && !self.state.premium_refunded
            && !self.state.premium_redeemed
        {
            chain.ledger_mut().transfer(
                self.account(),
                self.premium_payer.as_str(),
                self.premium_amount,
            )?;
            self.state.premium_refunded = true;
            chain.emit("premium_refunded", &self.premium_payer, self.premium_amount);
        }
        Ok(())
    }

    /// Pays the premium to the asset owner as compensation (sore-loser
    /// hedging).
    fn redeem_premium(&mut self, chain: &mut MockChain) -> Result<(), ChainError> {
        if self.state.premium_deposited
            && !self.state.premium_refunded
            && !self.state.premium_redeemed
        {
            chain.ledger_mut().transfer(
                self.account(),
                self.asset_owner.as_str(),
                self.premium_amount,
            )?;
            self.state.premium_redeemed = true;
            chain.emit("premium_redeemed", &self.asset_owner, self.premium_amount);
        }
        Ok(())
    }

    /// Timeout settlement, called after the last deadline: refunds an
    /// unredeemed escrow to its owner (compensating the owner with the
    /// premium), refunds the premium if the swap never progressed, and emits
    /// `all_asset_settled`.
    ///
    /// # Errors
    ///
    /// Propagates ledger failures (which indicate a bug in the driver).
    pub fn settle(&mut self, chain: &mut MockChain) -> Result<(), ChainError> {
        if self.state.settled {
            return Ok(());
        }
        if self.state.asset_escrowed && !self.state.asset_redeemed && !self.state.asset_refunded {
            // Sore-loser case: the owner escrowed but the counterparty walked
            // away. Refund the asset and hand the premium to the owner.
            chain.ledger_mut().transfer(
                self.account(),
                self.asset_owner.as_str(),
                self.asset_amount,
            )?;
            self.state.asset_refunded = true;
            chain.emit("asset_refunded", &self.asset_owner, self.asset_amount);
            self.redeem_premium(chain)?;
        } else if !self.state.asset_escrowed {
            // Nothing was ever at risk: return the premium to its payer.
            self.refund_premium(chain)?;
        }
        self.state.settled = true;
        chain.emit("all_asset_settled", "any", 0);
        Ok(())
    }

    /// The deadline (absolute local time) for the given step index
    /// (0 = premium, 1 = escrow, 2 = redeem).
    pub fn deadline(&self, step: usize) -> u64 {
        match step {
            0 => self.deadlines.0,
            1 => self.deadlines.1,
            _ => self.deadlines.2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MockChain, SwapContract, Preimage) {
        let mut chain = MockChain::new("apr");
        chain.fund("alice", 200);
        chain.fund("bob", 50);
        let secret = Preimage(7);
        let contract = SwapContract::new(
            "ApricotSwap",
            "alice",
            "bob",
            "bob",
            100,
            1,
            secret.lock(),
            (1000, 1500, 3000),
        );
        (chain, contract, secret)
    }

    #[test]
    fn happy_path_transfers_asset_and_refunds_premium() {
        let (mut chain, mut c, secret) = setup();
        c.deposit_premium(&mut chain).unwrap();
        c.escrow_asset(&mut chain).unwrap();
        c.redeem_asset(&mut chain, secret).unwrap();
        c.settle(&mut chain).unwrap();
        assert_eq!(chain.balance(&"bob".into()), 150); // 50 - 1 premium + 100 asset + 1 refund
        assert_eq!(chain.balance(&"alice".into()), 100); // 200 - 100 escrowed
        assert_eq!(chain.balance(&c.account()), 0);
        let names: Vec<_> = chain.log().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "premium_deposited",
                "asset_escrowed",
                "asset_redeemed",
                "premium_refunded",
                "all_asset_settled"
            ]
        );
    }

    #[test]
    fn ordering_is_enforced() {
        let (mut chain, mut c, secret) = setup();
        assert!(matches!(
            c.escrow_asset(&mut chain),
            Err(ChainError::StepRejected { .. })
        ));
        assert!(matches!(
            c.redeem_asset(&mut chain, secret),
            Err(ChainError::StepRejected { .. })
        ));
        c.deposit_premium(&mut chain).unwrap();
        assert!(matches!(
            c.deposit_premium(&mut chain),
            Err(ChainError::StepRejected { .. })
        ));
    }

    #[test]
    fn wrong_preimage_rejected() {
        let (mut chain, mut c, _secret) = setup();
        c.deposit_premium(&mut chain).unwrap();
        c.escrow_asset(&mut chain).unwrap();
        assert_eq!(
            c.redeem_asset(&mut chain, Preimage(999)),
            Err(ChainError::WrongPreimage)
        );
        assert!(!c.state().asset_redeemed);
    }

    #[test]
    fn sore_loser_settlement_compensates_owner() {
        let (mut chain, mut c, _secret) = setup();
        c.deposit_premium(&mut chain).unwrap();
        c.escrow_asset(&mut chain).unwrap();
        // Bob never redeems; after the timeout the asset returns to Alice and
        // she keeps Bob's premium.
        c.settle(&mut chain).unwrap();
        assert_eq!(chain.balance(&"alice".into()), 201);
        assert_eq!(chain.balance(&"bob".into()), 49);
        let names: Vec<_> = chain.log().iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"asset_refunded"));
        assert!(names.contains(&"premium_redeemed"));
    }

    #[test]
    fn abandoned_protocol_refunds_premium() {
        let (mut chain, mut c, _secret) = setup();
        c.deposit_premium(&mut chain).unwrap();
        // Alice never escrows.
        c.settle(&mut chain).unwrap();
        assert_eq!(chain.balance(&"bob".into()), 50);
        assert_eq!(chain.balance(&"alice".into()), 200);
        assert!(c.state().settled);
        // Settle is idempotent.
        let events_before = chain.log().len();
        c.settle(&mut chain).unwrap();
        assert_eq!(chain.log().len(), events_before);
    }

    #[test]
    fn token_conservation_through_full_protocol() {
        let (mut chain, mut c, secret) = setup();
        let supply = chain.ledger().total_supply();
        c.deposit_premium(&mut chain).unwrap();
        c.escrow_asset(&mut chain).unwrap();
        c.redeem_asset(&mut chain, secret).unwrap();
        c.settle(&mut chain).unwrap();
        assert_eq!(chain.ledger().total_supply(), supply);
    }
}
