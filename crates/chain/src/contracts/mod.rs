//! Per-chain contracts used by the cross-chain protocols.

pub mod swap;
