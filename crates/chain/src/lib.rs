//! Mocked multi-blockchain substrate and the cross-chain protocols of the
//! paper's evaluation (Sec. VI-B): hedged two-party swap, hedged three-party
//! swap, and the cross-chain auction.
//!
//! The paper runs Solidity contracts on Ganache-mocked Ethereum chains and
//! captures the emitted events; this crate provides the equivalent in Rust:
//!
//! * [`MockChain`] — a chain with its own [`TokenLedger`], local clock
//!   (optionally skewed) and append-only event log;
//! * [`SwapContract`] and the protocol drivers [`TwoPartySwap`],
//!   [`ThreePartySwap`], [`Auction`] — the contracts, their step ordering and
//!   deadline rules, premiums and hashlocks;
//! * scenario generators ([`TwoPartyScenario::enumerate`] and friends)
//!   reproducing the paper's 1024 / 4096 / 3888 log sets;
//! * [`ProtocolExecution`] — the captured logs, payoffs, and the conversion
//!   into a partially synchronous [`rvmtl_distrib::DistributedComputation`]
//!   ready for monitoring;
//! * [`specs`] — the monitored MTL formulas (liveness, conformance) and the
//!   arithmetic safety/hedging checks.
//!
//! # Example
//!
//! ```
//! use rvmtl_chain::{specs, TwoPartyScenario, TwoPartySwap};
//! use rvmtl_monitor::Monitor;
//!
//! let exec = TwoPartySwap::new(500).execute(&TwoPartyScenario::conforming());
//! let computation = exec.to_computation(50);
//! let report = Monitor::with_defaults().run(&computation, &specs::two_party::liveness(500));
//! assert!(report.verdicts.definitely_satisfied());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chain;
mod contracts;
mod execution;
mod hashlock;
mod protocols;
pub mod specs;
mod token;

pub use chain::{ChainError, ChainEvent, MockChain};
pub use contracts::swap::{SwapContract, SwapState};
pub use execution::ProtocolExecution;
pub use hashlock::{Hashlock, Preimage};
pub use protocols::auction::{ActionChoice, Auction, AuctionScenario};
pub use protocols::three_party::{ThreePartyScenario, ThreePartySwap};
pub use protocols::two_party::{StepChoice, TwoPartyScenario, TwoPartySwap};
pub use token::{Account, TokenError, TokenLedger};
