//! The MTL specifications monitored over the cross-chain protocols
//! (Sec. VI-B and Appendix IX-B): liveness, conformance, safety and hedging,
//! parameterised by the step deadline Δ.
//!
//! Safety and hedging compare token payoffs (a sum over ledger transfers);
//! following the paper's remark that the labelling function µ extends to
//! non-boolean data, the arithmetic part is evaluated directly on the
//! execution's ledgers ([`payoff_nonnegative`], [`hedged_compensation_holds`])
//! and combined with the monitor's verdict for the conformance formula.

use rvmtl_mtl::{Formula, Interval};

fn ev(lo: u64, hi: Option<u64>, prop: &str) -> Formula {
    Formula::eventually(Interval::new(lo, hi), Formula::atom(prop))
}

/// Specifications of the hedged two-party swap.
pub mod two_party {
    use super::*;

    /// ϕ_liveness: every step happens before its deadline and all assets are
    /// eventually settled.
    pub fn liveness(delta: u64) -> Formula {
        Formula::and_all([
            ev(0, Some(delta), "ban.premium_deposited(alice)"),
            ev(0, Some(2 * delta), "apr.premium_deposited(bob)"),
            ev(0, Some(3 * delta), "apr.asset_escrowed(alice)"),
            ev(0, Some(4 * delta), "ban.asset_escrowed(bob)"),
            ev(0, Some(5 * delta), "ban.asset_redeemed(alice)"),
            ev(0, Some(6 * delta), "apr.asset_redeemed(bob)"),
            ev(0, Some(5 * delta), "ban.premium_refunded(alice)"),
            ev(0, Some(6 * delta), "apr.premium_refunded(bob)"),
            ev(6 * delta, None, "apr.all_asset_settled(any)"),
            ev(5 * delta, None, "ban.all_asset_settled(any)"),
        ])
    }

    /// ϕ_alice_conform: Alice starts the protocol and keeps pace with Bob, and
    /// never lets Bob redeem before she does.
    pub fn alice_conform(delta: u64) -> Formula {
        Formula::and_all([
            ev(0, Some(delta), "ban.premium_deposited(alice)"),
            Formula::implies(
                ev(0, Some(2 * delta), "apr.premium_deposited(bob)"),
                ev(0, Some(3 * delta), "apr.asset_escrowed(alice)"),
            ),
            Formula::implies(
                ev(0, Some(4 * delta), "ban.asset_escrowed(bob)"),
                ev(0, Some(5 * delta), "ban.asset_redeemed(alice)"),
            ),
            Formula::until_untimed(
                Formula::not(Formula::atom("apr.asset_redeemed(bob)")),
                Formula::atom("ban.asset_redeemed(alice)"),
            ),
        ])
    }

    /// ϕ_bob_conform: the symmetric conditions for Bob.
    pub fn bob_conform(delta: u64) -> Formula {
        Formula::and_all([
            Formula::implies(
                ev(0, Some(delta), "ban.premium_deposited(alice)"),
                ev(0, Some(2 * delta), "apr.premium_deposited(bob)"),
            ),
            Formula::implies(
                ev(0, Some(3 * delta), "apr.asset_escrowed(alice)"),
                ev(0, Some(4 * delta), "ban.asset_escrowed(bob)"),
            ),
            Formula::implies(
                ev(0, Some(5 * delta), "ban.asset_redeemed(alice)"),
                ev(0, Some(6 * delta), "apr.asset_redeemed(bob)"),
            ),
            Formula::until_untimed(
                Formula::not(Formula::atom("ban.asset_redeemed(alice)")),
                Formula::atom("ban.asset_escrowed(bob)"),
            ),
        ])
    }

    /// The φ_spec of the paper's introduction: Alice must redeem before Bob
    /// within the given window.
    pub fn intro_spec(window: u64) -> Formula {
        Formula::until(
            Formula::not(Formula::atom("apr.asset_redeemed(bob)")),
            Interval::bounded(0, window),
            Formula::atom("ban.asset_redeemed(alice)"),
        )
    }
}

/// Specifications of the hedged three-party swap (Appendix IX-B1).
pub mod three_party {
    use super::*;

    /// ϕ_liveness for the three-party swap.
    pub fn liveness(delta: u64) -> Formula {
        Formula::and_all([
            ev(0, Some(delta), "apr.depositEscrowPr(alice)"),
            ev(0, Some(2 * delta), "ban.depositEscrowPr(bob)"),
            ev(0, Some(3 * delta), "che.depositEscrowPr(carol)"),
            ev(0, Some(4 * delta), "che.depositRedemptionPr(alice)"),
            ev(0, Some(5 * delta), "ban.depositRedemptionPr(carol)"),
            ev(0, Some(6 * delta), "apr.depositRedemptionPr(bob)"),
            ev(0, Some(7 * delta), "apr.assetEscrowed(alice)"),
            ev(0, Some(8 * delta), "ban.assetEscrowed(bob)"),
            ev(0, Some(9 * delta), "che.assetEscrowed(carol)"),
            ev(0, Some(10 * delta), "che.hashlockUnlocked(alice)"),
            ev(0, Some(11 * delta), "ban.hashlockUnlocked(carol)"),
            ev(0, Some(12 * delta), "apr.hashlockUnlocked(bob)"),
            ev(0, None, "apr.assetRedeemed(bob)"),
            ev(0, None, "ban.assetRedeemed(carol)"),
            ev(0, None, "che.assetRedeemed(alice)"),
            ev(0, None, "apr.EscrowPremiumRefunded(alice)"),
            ev(0, None, "ban.EscrowPremiumRefunded(bob)"),
            ev(0, None, "che.EscrowPremiumRefunded(carol)"),
            ev(0, None, "che.RedemptionPremiumRefunded(alice)"),
            ev(0, None, "ban.RedemptionPremiumRefunded(carol)"),
            ev(0, None, "apr.RedemptionPremiumRefunded(bob)"),
        ])
    }

    /// ϕ_alice_conform for the three-party swap: Alice initiates, follows up
    /// on each of her obligations, and releases her secret in the right order.
    pub fn alice_conform(delta: u64) -> Formula {
        Formula::and_all([
            ev(0, Some(delta), "apr.depositEscrowPr(alice)"),
            Formula::implies(
                ev(0, Some(3 * delta), "che.depositEscrowPr(carol)"),
                ev(0, Some(4 * delta), "che.depositRedemptionPr(alice)"),
            ),
            Formula::until_untimed(
                Formula::not(Formula::atom("che.depositRedemptionPr(alice)")),
                Formula::atom("che.depositEscrowPr(carol)"),
            ),
            Formula::implies(
                ev(0, Some(6 * delta), "apr.depositRedemptionPr(bob)"),
                ev(0, Some(7 * delta), "apr.assetEscrowed(alice)"),
            ),
            Formula::until_untimed(
                Formula::not(Formula::atom("apr.assetEscrowed(alice)")),
                Formula::atom("apr.depositRedemptionPr(bob)"),
            ),
            Formula::implies(
                ev(0, Some(9 * delta), "che.assetEscrowed(carol)"),
                ev(0, Some(10 * delta), "che.hashlockUnlocked(alice)"),
            ),
            Formula::until_untimed(
                Formula::not(Formula::atom("che.hashlockUnlocked(alice)")),
                Formula::atom("che.assetEscrowed(carol)"),
            ),
            Formula::until_untimed(
                Formula::not(Formula::atom("ban.hashlockUnlocked(carol)")),
                Formula::atom("che.hashlockUnlocked(alice)"),
            ),
            Formula::until_untimed(
                Formula::not(Formula::atom("apr.hashlockUnlocked(bob)")),
                Formula::atom("che.hashlockUnlocked(alice)"),
            ),
        ])
    }
}

/// Specifications of the auction protocol (Appendix IX-B2).
pub mod auction {
    use super::*;

    /// ϕ_liveness: if everyone conforms, the winner (Bob) gets the ticket, the
    /// auctioneer gets the winning bid, and nobody needs to challenge.
    pub fn liveness(delta: u64) -> Formula {
        Formula::and_all([
            ev(0, Some(delta), "coin.bid(bob)"),
            ev(0, Some(2 * delta), "coin.declaration(alice, sb)"),
            ev(0, Some(2 * delta), "tckt.declaration(alice, sb)"),
            ev(4 * delta, None, "coin.redeemBid(any)"),
            ev(4 * delta, None, "coin.refundPremium(any)"),
            Formula::implies(
                Formula::eventually_untimed(Formula::atom("coin.bid(carol)")),
                Formula::eventually_untimed(Formula::atom("coin.refundBid(carol)")),
            ),
            ev(0, None, "tckt.redeemTicket(bob)"),
            Formula::not(Formula::eventually_untimed(Formula::atom(
                "coin.challenge(any)",
            ))),
            Formula::not(Formula::eventually_untimed(Formula::atom(
                "tckt.challenge(any)",
            ))),
        ])
    }

    /// ϕ_bob_conform: Bob bids on time and forwards any secret he sees on one
    /// chain but not the other.
    pub fn bob_conform(delta: u64) -> Formula {
        let secret_consistency = |from: &str, to: &str, secret: &str| {
            Formula::implies(
                Formula::or(
                    Formula::eventually_untimed(Formula::atom(format!(
                        "{from}.declaration(alice, {secret})"
                    ))),
                    Formula::eventually_untimed(Formula::atom(format!(
                        "{from}.challenge(carol, {secret})"
                    ))),
                ),
                Formula::or_all([
                    Formula::eventually_untimed(Formula::atom(format!(
                        "{to}.declaration(alice, {secret})"
                    ))),
                    Formula::eventually_untimed(Formula::atom(format!(
                        "{to}.challenge(carol, {secret})"
                    ))),
                    Formula::eventually_untimed(Formula::atom(format!(
                        "{to}.challenge(bob, {secret})"
                    ))),
                ]),
            )
        };
        Formula::and_all([
            ev(0, Some(delta), "coin.bid(bob)"),
            secret_consistency("coin", "tckt", "sc"),
            secret_consistency("coin", "tckt", "sb"),
            secret_consistency("tckt", "coin", "sc"),
            secret_consistency("tckt", "coin", "sb"),
        ])
    }
}

/// The arithmetic half of the safety specification: a conforming party must
/// not end up with a negative payoff.
pub fn payoff_nonnegative(payoff: i64) -> bool {
    payoff >= 0
}

/// The safety implication `ϕ_conform → payoff ≥ 0`, evaluated for one verdict
/// of the conformance formula.
pub fn safety_holds(conform: bool, payoff: i64) -> bool {
    !conform || payoff_nonnegative(payoff)
}

/// The hedging implication: if a conforming party escrowed an asset that was
/// later refunded, its payoff must cover at least the compensating premium.
pub fn hedged_compensation_holds(
    conform: bool,
    escrowed_and_refunded: bool,
    payoff: i64,
    premium: u64,
) -> bool {
    !(conform && escrowed_and_refunded) || payoff >= premium as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_party_formulas_are_well_formed() {
        let liveness = two_party::liveness(500);
        assert_eq!(liveness.temporal_operator_count(), 10);
        assert_eq!(liveness.max_horizon(), Some(3000));
        let conform = two_party::alice_conform(500);
        assert!(conform.atoms().contains("ban.asset_redeemed(alice)"));
        assert_eq!(two_party::intro_spec(8).temporal_depth(), 1);
        let bob = two_party::bob_conform(500);
        assert!(bob.atoms().contains("apr.premium_deposited(bob)"));
    }

    #[test]
    fn three_party_formulas_cover_all_legs() {
        let liveness = three_party::liveness(500);
        let atoms = liveness.atoms();
        for chain in ["apr", "ban", "che"] {
            assert!(
                atoms.iter().any(|a| a.name().starts_with(chain)),
                "missing {chain} atoms"
            );
        }
        assert_eq!(liveness.max_horizon(), Some(12 * 500));
        let conform = three_party::alice_conform(500);
        assert!(conform.temporal_operator_count() >= 9);
    }

    #[test]
    fn auction_formulas_reference_both_chains() {
        let liveness = auction::liveness(500);
        let atoms = liveness.atoms();
        assert!(atoms.iter().any(|a| a.name().starts_with("coin")));
        assert!(atoms.iter().any(|a| a.name().starts_with("tckt")));
        let conform = auction::bob_conform(500);
        assert!(conform.atoms().len() >= 10);
    }

    #[test]
    fn safety_and_hedging_helpers() {
        assert!(safety_holds(true, 0));
        assert!(safety_holds(true, 5));
        assert!(!safety_holds(true, -1));
        assert!(safety_holds(false, -100));
        assert!(hedged_compensation_holds(true, true, 2, 1));
        assert!(!hedged_compensation_holds(true, true, 0, 1));
        assert!(hedged_compensation_holds(true, false, -5, 1));
        assert!(hedged_compensation_holds(false, true, -5, 1));
    }
}
