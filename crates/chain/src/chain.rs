//! Mock blockchains (the Ganache substitute).
//!
//! A [`MockChain`] has its own token ledger, its own clock (with an optional
//! bounded skew relative to true time), and an append-only event log — the
//! observable interface the runtime monitor consumes, mirroring how the
//! paper's experiments capture Solidity `event`s emitted by the contracts.

use crate::{Account, TokenError, TokenLedger};
use std::fmt;

/// Errors raised by chain or contract operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A token operation failed.
    Token(TokenError),
    /// A contract function was called out of order (the precondition step has
    /// not been taken).
    StepRejected {
        /// The contract rejecting the call.
        contract: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A hashlock preimage did not match.
    WrongPreimage,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::Token(e) => write!(f, "token operation failed: {e}"),
            ChainError::StepRejected { contract, reason } => {
                write!(f, "{contract} rejected the call: {reason}")
            }
            ChainError::WrongPreimage => write!(f, "hashlock preimage does not match"),
        }
    }
}

impl std::error::Error for ChainError {}

impl From<TokenError> for ChainError {
    fn from(e: TokenError) -> Self {
        ChainError::Token(e)
    }
}

/// An event emitted by a contract and recorded in the chain's log, analogous
/// to a Solidity `event` captured by the paper's test harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainEvent {
    /// The chain that emitted the event.
    pub chain: String,
    /// Event name (e.g. `premium_deposited`).
    pub name: String,
    /// The party the event refers to (e.g. `alice`), or `any`.
    pub party: String,
    /// Token amount involved, if any.
    pub amount: u64,
    /// The chain's local timestamp when the event was emitted.
    pub time: u64,
}

impl ChainEvent {
    /// The proposition name used by the monitor for this event:
    /// `chain.name(party)`.
    pub fn proposition(&self) -> String {
        format!("{}.{}({})", self.chain, self.name, self.party)
    }
}

impl fmt::Display for ChainEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} @{}ms] {}({}) amount={}",
            self.chain, self.time, self.name, self.party, self.amount
        )
    }
}

/// A mocked blockchain: ledger + clock + event log.
#[derive(Debug, Clone)]
pub struct MockChain {
    name: String,
    /// True (reference) time offset of this chain's local clock: the local
    /// clock shows `true_time + skew` (bounded by the system's ε).
    skew: i64,
    now: u64,
    ledger: TokenLedger,
    log: Vec<ChainEvent>,
}

impl MockChain {
    /// Creates a chain with the given name and a perfectly synchronised clock.
    pub fn new(name: impl Into<String>) -> Self {
        MockChain {
            name: name.into(),
            skew: 0,
            now: 0,
            ledger: TokenLedger::new(),
            log: Vec::new(),
        }
    }

    /// Creates a chain whose local clock is offset from true time by `skew`
    /// (positive = fast, negative = slow).
    pub fn with_skew(name: impl Into<String>, skew: i64) -> Self {
        MockChain {
            skew,
            ..MockChain::new(name)
        }
    }

    /// The chain's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the true (reference) time; the chain's local clock follows with
    /// its configured skew.
    pub fn set_true_time(&mut self, true_time: u64) {
        self.now = (true_time as i64 + self.skew).max(0) as u64;
    }

    /// The chain's current local timestamp.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The chain's token ledger.
    pub fn ledger(&self) -> &TokenLedger {
        &self.ledger
    }

    /// Mutable access to the ledger (used by contracts).
    pub fn ledger_mut(&mut self) -> &mut TokenLedger {
        &mut self.ledger
    }

    /// Mints tokens for an account (test/bootstrap helper).
    pub fn fund(&mut self, account: impl Into<Account>, amount: u64) {
        self.ledger.mint(account, amount);
    }

    /// Emits an event into the chain's log at the current local time.
    pub fn emit(&mut self, name: &str, party: &str, amount: u64) {
        self.log.push(ChainEvent {
            chain: self.name.clone(),
            name: name.to_string(),
            party: party.to_string(),
            amount,
            time: self.now,
        });
    }

    /// The events emitted so far, in emission order.
    pub fn log(&self) -> &[ChainEvent] {
        &self.log
    }

    /// Total tokens transferred *to* `account` according to the log-annotated
    /// ledger history is not tracked here; payoffs are computed from the
    /// ledger directly by the scenario driver.
    pub fn balance(&self, account: &Account) -> u64 {
        self.ledger.balance(account)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_follows_true_time_with_skew() {
        let mut fast = MockChain::with_skew("apr", 3);
        let mut slow = MockChain::with_skew("ban", -2);
        fast.set_true_time(100);
        slow.set_true_time(100);
        assert_eq!(fast.now(), 103);
        assert_eq!(slow.now(), 98);
        slow.set_true_time(1);
        assert_eq!(slow.now(), 0, "local clocks never go negative");
    }

    #[test]
    fn events_carry_local_time_and_proposition() {
        let mut chain = MockChain::new("apr");
        chain.set_true_time(500);
        chain.emit("asset_redeemed", "bob", 100);
        let e = &chain.log()[0];
        assert_eq!(e.time, 500);
        assert_eq!(e.proposition(), "apr.asset_redeemed(bob)");
        assert_eq!(e.amount, 100);
    }

    #[test]
    fn ledger_is_per_chain() {
        let mut chain = MockChain::new("ban");
        chain.fund("alice", 100);
        chain.ledger_mut().transfer("alice", "swap", 30).unwrap();
        assert_eq!(chain.balance(&"alice".into()), 70);
        assert_eq!(chain.balance(&"swap".into()), 30);
    }

    #[test]
    fn errors_convert_and_display() {
        let err: ChainError = TokenError::InsufficientBalance {
            account: "alice".into(),
            balance: 1,
            requested: 2,
        }
        .into();
        assert!(err.to_string().contains("alice"));
        let rejected = ChainError::StepRejected {
            contract: "ApricotSwap".into(),
            reason: "premium not deposited".into(),
        };
        assert!(rejected.to_string().contains("ApricotSwap"));
    }
}
