//! The cross-chain auction protocol (Appendix IX-B2).
//!
//! Alice auctions a ticket (managed by `TicketAuction` on the `tckt` chain) to
//! Bob and Carol, who bid coins (managed by `CoinAuction` on the `coin`
//! chain). Alice assigns each bidder a hashlock; she declares the winner by
//! releasing the winner's secret on both chains, bidders may challenge by
//! forwarding secrets, and after `4Δ` both contracts settle: the winner's bid
//! goes to Alice and the ticket to the winner unless Alice misbehaved, in
//! which case bids and ticket are refunded and premiums compensate the
//! bidders.

use crate::{MockChain, Preimage, ProtocolExecution};

/// A three-valued choice for an auction action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionChoice {
    /// The action is not taken.
    Skip,
    /// The action is taken before its deadline.
    OnTime,
    /// The action is taken after its deadline.
    Late,
}

impl ActionChoice {
    /// All three choices, used by the scenario enumerator.
    pub const ALL: [ActionChoice; 3] =
        [ActionChoice::Skip, ActionChoice::OnTime, ActionChoice::Late];

    fn attempted(self) -> bool {
        !matches!(self, ActionChoice::Skip)
    }

    fn late(self) -> bool {
        matches!(self, ActionChoice::Late)
    }
}

/// One simulated behaviour of the auction participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuctionScenario {
    /// Bob's bid, Carol's bid, Alice's declaration, Bob's challenge, Carol's
    /// challenge.
    pub actions: [ActionChoice; 5],
    /// Alice publishes her declaration on the coin chain.
    pub declare_on_coin: bool,
    /// Alice publishes her declaration on the ticket chain.
    pub declare_on_ticket: bool,
    /// Alice declares Bob (rather than Carol) the winner.
    pub declare_bob_winner: bool,
    /// Alice cheats by releasing both secrets.
    pub release_both_secrets: bool,
}

impl AuctionScenario {
    /// The conforming scenario: both bidders bid, Alice declares the highest
    /// bidder (Bob) on both chains, nobody needs to challenge.
    pub fn conforming() -> Self {
        AuctionScenario {
            actions: [
                ActionChoice::OnTime,
                ActionChoice::OnTime,
                ActionChoice::OnTime,
                ActionChoice::Skip,
                ActionChoice::Skip,
            ],
            declare_on_coin: true,
            declare_on_ticket: true,
            declare_bob_winner: true,
            release_both_secrets: false,
        }
    }

    /// Enumerates all 3888 scenarios (3⁵ action choices × 2⁴ declaration
    /// variations), the size of the paper's auction log set.
    pub fn enumerate() -> Vec<Self> {
        let mut out = Vec::with_capacity(3888);
        let bools = [false, true];
        for a0 in ActionChoice::ALL {
            for a1 in ActionChoice::ALL {
                for a2 in ActionChoice::ALL {
                    for a3 in ActionChoice::ALL {
                        for a4 in ActionChoice::ALL {
                            for &coin in &bools {
                                for &ticket in &bools {
                                    for &bob in &bools {
                                        for &both in &bools {
                                            out.push(AuctionScenario {
                                                actions: [a0, a1, a2, a3, a4],
                                                declare_on_coin: coin,
                                                declare_on_ticket: ticket,
                                                declare_bob_winner: bob,
                                                release_both_secrets: both,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Parameters of the auction protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Auction {
    /// Step deadline Δ (milliseconds).
    pub delta: u64,
    /// Ticket value (ERC20 tokens on the ticket chain).
    pub ticket_value: u64,
    /// Bob's bid.
    pub bob_bid: u64,
    /// Carol's bid.
    pub carol_bid: u64,
}

impl Default for Auction {
    fn default() -> Self {
        Auction {
            delta: 500,
            ticket_value: 100,
            bob_bid: 100,
            carol_bid: 90,
        }
    }
}

impl Auction {
    /// Creates an auction with the given Δ.
    pub fn new(delta: u64) -> Self {
        Auction {
            delta,
            ..Auction::default()
        }
    }

    /// Executes the auction under the given scenario.
    pub fn execute(&self, scenario: &AuctionScenario) -> ProtocolExecution {
        let d = self.delta;
        let secret_bob = Preimage(0xB0B);
        let secret_carol = Preimage(0xCA201);

        let mut tckt = MockChain::new("tckt");
        let mut coin = MockChain::new("coin");
        tckt.fund("alice", self.ticket_value);
        coin.fund("alice", 2);
        coin.fund("bob", self.bob_bid);
        coin.fund("carol", self.carol_bid);

        let mut exec = ProtocolExecution::start(vec![tckt, coin], &["alice", "bob", "carol"], d);

        // Setup: Alice escrows the ticket and deposits premiums.
        exec.chains[0].set_true_time(10);
        exec.chains[1].set_true_time(10);
        exec.chains[0]
            .ledger_mut()
            .transfer("alice", "TicketAuction", self.ticket_value)
            .expect("alice funded");
        exec.chains[0].emit("ticketEscrowed", "alice", self.ticket_value);
        exec.chains[1]
            .ledger_mut()
            .transfer("alice", "CoinAuction", 2)
            .expect("alice funded");
        exec.chains[1].emit("premiumDeposited", "alice", 2);

        let mut bob_bid_placed = false;
        let mut carol_bid_placed = false;
        // Which secrets end up released on each chain (bob, carol).
        let mut coin_released = [false, false];
        let mut tckt_released = [false, false];

        // Step 1: bidding (deadline Δ).
        for (bidder, amount, choice, placed) in [
            (
                "bob",
                self.bob_bid,
                scenario.actions[0],
                &mut bob_bid_placed,
            ),
            (
                "carol",
                self.carol_bid,
                scenario.actions[1],
                &mut carol_bid_placed,
            ),
        ] {
            if !choice.attempted() {
                continue;
            }
            let t = if choice.late() { d + d / 2 } else { d - d / 2 };
            exec.chains[1].set_true_time(t);
            exec.chains[1]
                .ledger_mut()
                .transfer(bidder, "CoinAuction", amount)
                .expect("bidder funded");
            exec.chains[1].emit("bid", bidder, amount);
            *placed = true;
        }

        // Step 2: declaration (deadline 2Δ). Alice releases the winner's
        // secret (or both, if she cheats) on the chains she chooses.
        let declare = scenario.actions[2];
        if declare.attempted() {
            let t = if declare.late() {
                2 * d + d / 2
            } else {
                2 * d - d / 2
            };
            let winner_secret = if scenario.declare_bob_winner {
                "sb"
            } else {
                "sc"
            };
            let winner_idx = usize::from(!scenario.declare_bob_winner);
            if scenario.declare_on_coin {
                exec.chains[1].set_true_time(t);
                exec.chains[1].emit("declaration", &format!("alice, {winner_secret}"), 0);
                coin_released[winner_idx] = true;
                if scenario.release_both_secrets {
                    exec.chains[1].emit(
                        "declaration",
                        &format!("alice, {}", if winner_idx == 0 { "sc" } else { "sb" }),
                        0,
                    );
                    coin_released[1 - winner_idx] = true;
                }
            }
            if scenario.declare_on_ticket {
                exec.chains[0].set_true_time(t);
                exec.chains[0].emit("declaration", &format!("alice, {winner_secret}"), 0);
                tckt_released[winner_idx] = true;
                if scenario.release_both_secrets {
                    exec.chains[0].emit(
                        "declaration",
                        &format!("alice, {}", if winner_idx == 0 { "sc" } else { "sb" }),
                        0,
                    );
                    tckt_released[1 - winner_idx] = true;
                }
            }
        }

        // Step 3: challenges (deadline 4Δ). A bidder who sees a secret on one
        // chain but not the other forwards it.
        for (bidder, choice) in [("bob", scenario.actions[3]), ("carol", scenario.actions[4])] {
            if !choice.attempted() {
                continue;
            }
            let t = if choice.late() {
                4 * d + d / 2
            } else {
                4 * d - d / 2
            };
            for idx in 0..2 {
                let secret_name = if idx == 0 { "sb" } else { "sc" };
                if coin_released[idx] && !tckt_released[idx] {
                    exec.chains[0].set_true_time(t);
                    exec.chains[0].emit("challenge", &format!("{bidder}, {secret_name}"), 0);
                    if !choice.late() {
                        tckt_released[idx] = true;
                    }
                }
                if tckt_released[idx] && !coin_released[idx] {
                    exec.chains[1].set_true_time(t);
                    exec.chains[1].emit("challenge", &format!("{bidder}, {secret_name}"), 0);
                    if !choice.late() {
                        coin_released[idx] = true;
                    }
                }
            }
        }

        // Step 4: settlement after 4Δ.
        let settle = 4 * d + d;
        exec.chains[0].set_true_time(settle);
        exec.chains[1].set_true_time(settle);
        let actual_winner = if bob_bid_placed {
            "bob"
        } else if carol_bid_placed {
            "carol"
        } else {
            ""
        };
        let actual_winner_idx = usize::from(actual_winner == "carol");
        let winner_bid = if actual_winner == "bob" {
            self.bob_bid
        } else {
            self.carol_bid
        };

        // CoinAuction settlement.
        {
            let coin = &mut exec.chains[1];
            let only_winner_released = !actual_winner.is_empty()
                && coin_released[actual_winner_idx]
                && !coin_released[1 - actual_winner_idx];
            if !actual_winner.is_empty() {
                if only_winner_released {
                    coin.ledger_mut()
                        .transfer("CoinAuction", "alice", winner_bid)
                        .expect("bid escrowed");
                    coin.emit("redeemBid", "any", winner_bid);
                    coin.ledger_mut()
                        .transfer("CoinAuction", "alice", 2)
                        .expect("premium escrowed");
                    coin.emit("refundPremium", "any", 2);
                } else {
                    coin.ledger_mut()
                        .transfer("CoinAuction", actual_winner, winner_bid)
                        .expect("bid escrowed");
                    coin.emit("refundBid", actual_winner, winner_bid);
                    // Premiums compensate the bidders for Alice's misbehaviour.
                    for bidder in ["bob", "carol"] {
                        coin.ledger_mut()
                            .transfer("CoinAuction", bidder, 1)
                            .expect("premium escrowed");
                        coin.emit("redeemPremium", bidder, 1);
                    }
                }
            }
            // The losing bid is always refunded.
            let loser = if actual_winner == "bob" && carol_bid_placed {
                Some(("carol", self.carol_bid))
            } else {
                None
            };
            if let Some((loser, amount)) = loser {
                coin.ledger_mut()
                    .transfer("CoinAuction", loser, amount)
                    .expect("bid escrowed");
                coin.emit("refundBid", loser, amount);
            }
        }

        // TicketAuction settlement.
        {
            let tckt = &mut exec.chains[0];
            let released: Vec<usize> = (0..2).filter(|&i| tckt_released[i]).collect();
            if released.len() == 1 {
                let receiver = if released[0] == 0 { "bob" } else { "carol" };
                tckt.ledger_mut()
                    .transfer("TicketAuction", receiver, self.ticket_value)
                    .expect("ticket escrowed");
                tckt.emit("redeemTicket", receiver, self.ticket_value);
            } else {
                tckt.ledger_mut()
                    .transfer("TicketAuction", "alice", self.ticket_value)
                    .expect("ticket escrowed");
                tckt.emit("refundTicket", "alice", self.ticket_value);
            }
        }
        let _ = (secret_bob, secret_carol);
        exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_matches_paper_count() {
        assert_eq!(AuctionScenario::enumerate().len(), 3888);
    }

    #[test]
    fn conforming_auction_pays_alice_and_delivers_ticket() {
        let exec = Auction::default().execute(&AuctionScenario::conforming());
        assert!(exec.has_event("coin", "bid", "bob"));
        assert!(exec.has_event("coin", "redeemBid", "any"));
        assert!(exec.has_event("tckt", "redeemTicket", "bob"));
        // Alice traded a 100-token ticket for a 100-token bid: payoff 0.
        assert_eq!(exec.payoff("alice"), 0);
        // Bob paid his bid and received the ticket: payoff 0.
        assert_eq!(exec.payoff("bob"), 0);
        // Carol's bid was refunded.
        assert_eq!(exec.payoff("carol"), 0);
    }

    #[test]
    fn cheating_alice_is_punished() {
        let mut scenario = AuctionScenario::conforming();
        scenario.release_both_secrets = true;
        let exec = Auction::default().execute(&scenario);
        // Both secrets released: the winner's bid is refunded, bidders are
        // compensated, and the ticket is refunded to Alice.
        assert!(exec.has_event("coin", "refundBid", "bob"));
        assert!(exec.has_event("tckt", "refundTicket", "alice"));
        assert!(exec.payoff("alice") <= 0);
        assert!(exec.payoff("bob") >= 0);
        assert!(exec.payoff("carol") >= 0);
    }

    #[test]
    fn missing_declaration_triggers_refunds() {
        let mut scenario = AuctionScenario::conforming();
        scenario.actions[2] = ActionChoice::Skip;
        let exec = Auction::default().execute(&scenario);
        assert!(!exec.has_event("coin", "declaration", "any"));
        assert!(exec.has_event("tckt", "refundTicket", "alice"));
        assert!(exec.payoff("bob") >= 0);
    }

    #[test]
    fn challenge_forwards_missing_secret() {
        let mut scenario = AuctionScenario::conforming();
        scenario.declare_on_ticket = false;
        scenario.actions[3] = ActionChoice::OnTime; // Bob challenges
        let exec = Auction::default().execute(&scenario);
        assert!(exec.has_event("tckt", "challenge", "bob, sb"));
        // The forwarded secret lets the ticket reach the winner after all.
        assert!(exec.has_event("tckt", "redeemTicket", "bob"));
    }

    #[test]
    fn token_conservation() {
        for scenario in [
            AuctionScenario::conforming(),
            AuctionScenario {
                actions: [
                    ActionChoice::Late,
                    ActionChoice::OnTime,
                    ActionChoice::OnTime,
                    ActionChoice::OnTime,
                    ActionChoice::Skip,
                ],
                declare_on_coin: true,
                declare_on_ticket: false,
                declare_bob_winner: false,
                release_both_secrets: true,
            },
        ] {
            let exec = Auction::default().execute(&scenario);
            let total: u64 = exec.chains.iter().map(|c| c.ledger().total_supply()).sum();
            assert_eq!(total, 100 + 2 + 100 + 90);
        }
    }
}
