//! Protocol drivers and scenario generators.

pub mod auction;
pub mod three_party;
pub mod two_party;
