//! The hedged two-party swap protocol (Fig. 1) and its scenario generator.
//!
//! Alice swaps 100 apricot tokens for Bob's 100 banana tokens. Each chain
//! hosts one [`SwapContract`]; the six protocol steps alternate between the
//! parties with deadlines `Δ, 2Δ, …, 6Δ`. The scenario generator reproduces
//! the paper's 1024 distinct log sets: 4 per-contract step prefixes on each
//! chain × 2⁶ on-time/late flags.

use crate::{MockChain, Preimage, ProtocolExecution, SwapContract};

/// Whether a protocol step is attempted, and if so whether it is on time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepChoice {
    /// The step is attempted by its party.
    pub attempted: bool,
    /// The step is attempted after its deadline.
    pub late: bool,
}

impl StepChoice {
    /// A step taken on time.
    pub fn on_time() -> Self {
        StepChoice {
            attempted: true,
            late: false,
        }
    }

    /// A step taken after its deadline.
    pub fn late() -> Self {
        StepChoice {
            attempted: true,
            late: true,
        }
    }

    /// A skipped step.
    pub fn skipped() -> Self {
        StepChoice {
            attempted: false,
            late: false,
        }
    }
}

/// One simulated behaviour of the two parties: a choice for each of the six
/// protocol steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoPartyScenario {
    /// Choices for steps 1–6 (index 0 = step 1).
    pub steps: [StepChoice; 6],
}

impl TwoPartyScenario {
    /// The conforming scenario: every step attempted on time.
    pub fn conforming() -> Self {
        TwoPartyScenario {
            steps: [StepChoice::on_time(); 6],
        }
    }

    /// Builds a scenario from the paper's encoding: how many of each
    /// contract's three steps are attempted (a prefix, 0–3), plus an on-time /
    /// late bit for each of the six global steps.
    ///
    /// Apricot's steps are the global steps 2, 3 and 6; Banana's are 1, 4
    /// and 5.
    ///
    /// # Panics
    ///
    /// Panics if a prefix exceeds 3.
    pub fn from_encoding(apricot_prefix: usize, banana_prefix: usize, late_bits: u8) -> Self {
        assert!(
            apricot_prefix <= 3 && banana_prefix <= 3,
            "prefixes are 0..=3"
        );
        const APRICOT_STEPS: [usize; 3] = [1, 2, 5]; // 0-based global indices
        const BANANA_STEPS: [usize; 3] = [0, 3, 4];
        let mut steps = [StepChoice::skipped(); 6];
        for (i, &global) in APRICOT_STEPS.iter().enumerate() {
            steps[global].attempted = i < apricot_prefix;
        }
        for (i, &global) in BANANA_STEPS.iter().enumerate() {
            steps[global].attempted = i < banana_prefix;
        }
        for (global, step) in steps.iter_mut().enumerate() {
            step.late = late_bits & (1 << global) != 0;
        }
        TwoPartyScenario { steps }
    }

    /// Enumerates all 1024 scenarios of the paper's experiment
    /// (4 apricot prefixes × 4 banana prefixes × 2⁶ late flags).
    pub fn enumerate() -> Vec<Self> {
        let mut out = Vec::with_capacity(1024);
        for apricot in 0..=3 {
            for banana in 0..=3 {
                for bits in 0u8..64 {
                    out.push(Self::from_encoding(apricot, banana, bits));
                }
            }
        }
        out
    }
}

/// Parameters of the hedged two-party swap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoPartySwap {
    /// The step deadline Δ in milliseconds (500 in the paper's experiments).
    pub delta: u64,
    /// Amount of ERC20 tokens swapped in each direction.
    pub asset: u64,
    /// Alice's premium `p_a`.
    pub premium_a: u64,
    /// Bob's premium `p_b`.
    pub premium_b: u64,
    /// Local-clock skew of the Apricot chain relative to true time.
    pub apricot_skew: i64,
    /// Local-clock skew of the Banana chain relative to true time.
    pub banana_skew: i64,
}

impl Default for TwoPartySwap {
    fn default() -> Self {
        TwoPartySwap {
            delta: 500,
            asset: 100,
            premium_a: 1,
            premium_b: 1,
            apricot_skew: 0,
            banana_skew: 0,
        }
    }
}

impl TwoPartySwap {
    /// Creates a protocol instance with the given Δ and default amounts.
    pub fn new(delta: u64) -> Self {
        TwoPartySwap {
            delta,
            ..TwoPartySwap::default()
        }
    }

    /// Sets the per-chain clock skews (used by the Δ-vs-ε experiment).
    pub fn with_skews(mut self, apricot: i64, banana: i64) -> Self {
        self.apricot_skew = apricot;
        self.banana_skew = banana;
        self
    }

    /// Executes the protocol under the given scenario and returns the
    /// resulting per-chain logs and ledgers.
    pub fn execute(&self, scenario: &TwoPartyScenario) -> ProtocolExecution {
        let d = self.delta;
        let secret = Preimage(0xA11CE);
        let lock = secret.lock();

        let mut apr = MockChain::with_skew("apr", self.apricot_skew);
        let mut ban = MockChain::with_skew("ban", self.banana_skew);
        apr.fund("alice", self.asset);
        apr.fund("bob", self.premium_b);
        ban.fund("bob", self.asset);
        ban.fund("alice", self.premium_a + self.premium_b);

        // ApricotSwap: Alice escrows apricot tokens for Bob; Bob pays the
        // premium p_b. BananaSwap: Bob escrows banana tokens for Alice; Alice
        // pays p_a + p_b.
        let mut apricot_swap = SwapContract::new(
            "ApricotSwap",
            "alice",
            "bob",
            "bob",
            self.asset,
            self.premium_b,
            lock,
            (2 * d, 3 * d, 6 * d),
        );
        let mut banana_swap = SwapContract::new(
            "BananaSwap",
            "bob",
            "alice",
            "alice",
            self.asset,
            self.premium_a + self.premium_b,
            lock,
            (d, 4 * d, 5 * d),
        );

        let execution_parties = ["alice", "bob"];
        let mut exec = ProtocolExecution::start(vec![apr, ban], &execution_parties, d);

        for (index, choice) in scenario.steps.iter().enumerate() {
            let step = index + 1;
            if !choice.attempted {
                continue;
            }
            // On-time steps land half a deadline before `step · Δ`, late ones
            // half a deadline after.
            let true_time = if choice.late {
                step as u64 * d + d / 2
            } else {
                step as u64 * d - d / 2
            };
            exec.chains[0].set_true_time(true_time);
            exec.chains[1].set_true_time(true_time);
            let (apr_chain, ban_chain) = {
                let (a, b) = exec.chains.split_at_mut(1);
                (&mut a[0], &mut b[0])
            };
            // Rejected calls (missing prerequisite) are simply dropped, as in
            // the paper's harness: the contract refuses and no event is
            // emitted.
            let _ = match step {
                1 => banana_swap.deposit_premium(ban_chain),
                2 => apricot_swap.deposit_premium(apr_chain),
                3 => apricot_swap.escrow_asset(apr_chain),
                4 => banana_swap.escrow_asset(ban_chain),
                5 => banana_swap.redeem_asset(ban_chain, secret),
                _ => apricot_swap.redeem_asset(apr_chain, secret),
            };
        }

        // Timeout settlement after the last deadline.
        let settle_time = 7 * d;
        exec.chains[0].set_true_time(settle_time);
        exec.chains[1].set_true_time(settle_time);
        let _ = apricot_swap.settle(&mut exec.chains[0]);
        let _ = banana_swap.settle(&mut exec.chains[1]);
        exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_enumeration_matches_paper_count() {
        let all = TwoPartyScenario::enumerate();
        assert_eq!(all.len(), 1024);
        // All scenarios are distinct.
        let mut unique = all.clone();
        unique.sort_by_key(|s| format!("{s:?}"));
        unique.dedup();
        assert_eq!(unique.len(), 1024);
    }

    #[test]
    fn conforming_run_swaps_assets_and_refunds_premiums() {
        let exec = TwoPartySwap::default().execute(&TwoPartyScenario::conforming());
        // Both parties end with the same total value they started with: the
        // swapped assets are of equal amount, and premiums are refunded.
        assert_eq!(exec.payoff("alice"), 0);
        assert_eq!(exec.payoff("bob"), 0);
        assert!(exec.has_event("apr", "asset_redeemed", "bob"));
        assert!(exec.has_event("ban", "asset_redeemed", "alice"));
        assert!(exec.has_event("ban", "premium_refunded", "alice"));
        assert!(exec.has_event("apr", "premium_refunded", "bob"));
        assert!(exec.has_event("apr", "all_asset_settled", "any"));
    }

    #[test]
    fn sore_loser_bob_leaves_alice_compensated() {
        // Bob stops after Alice escrowed on Apricot: he never escrows on
        // Banana and never redeems. Alice's escrow is refunded and she keeps
        // Bob's premium (the hedge), so her payoff is non-negative.
        let scenario = TwoPartyScenario {
            steps: [
                StepChoice::on_time(), // Alice premium on Banana
                StepChoice::on_time(), // Bob premium on Apricot
                StepChoice::on_time(), // Alice escrow on Apricot
                StepChoice::skipped(), // Bob escrow on Banana
                StepChoice::skipped(), // Alice redeem
                StepChoice::skipped(), // Bob redeem
            ],
        };
        let exec = TwoPartySwap::default().execute(&scenario);
        assert!(exec.has_event("apr", "asset_refunded", "alice"));
        assert!(exec.has_event("apr", "premium_redeemed", "alice"));
        assert!(
            exec.payoff("alice") >= 0,
            "hedged party must not lose: {}",
            exec.payoff("alice")
        );
        assert!(exec.payoff("bob") <= 0);
    }

    #[test]
    fn skipped_prerequisites_suppress_later_events() {
        // Bob never deposits his premium on Apricot, so Alice's escrow there
        // is rejected and no apricot escrow event exists.
        let scenario = TwoPartyScenario::from_encoding(0, 3, 0);
        let exec = TwoPartySwap::default().execute(&scenario);
        assert!(!exec.has_event("apr", "premium_deposited", "bob"));
        assert!(!exec.has_event("apr", "asset_escrowed", "alice"));
        assert!(!exec.has_event("apr", "asset_redeemed", "bob"));
    }

    #[test]
    fn late_steps_carry_late_timestamps() {
        let mut steps = [StepChoice::on_time(); 6];
        steps[0] = StepChoice::late();
        let exec = TwoPartySwap::new(500).execute(&TwoPartyScenario { steps });
        let premium_event = exec
            .chains
            .iter()
            .flat_map(|c| c.log())
            .find(|e| e.name == "premium_deposited" && e.party == "alice")
            .expect("event exists");
        assert!(
            premium_event.time > 500,
            "late step must miss the Δ deadline"
        );
    }

    #[test]
    fn clock_skew_shifts_local_timestamps() {
        let skewed = TwoPartySwap::default()
            .with_skews(40, -40)
            .execute(&TwoPartyScenario::conforming());
        let reference = TwoPartySwap::default().execute(&TwoPartyScenario::conforming());
        let first = |exec: &ProtocolExecution, chain: usize| exec.chains[chain].log()[0].time;
        assert_eq!(first(&skewed, 0), first(&reference, 0) + 40);
        assert_eq!(first(&skewed, 1), first(&reference, 1) - 40);
    }

    #[test]
    fn token_conservation_across_all_scenarios_sample() {
        for (i, scenario) in TwoPartyScenario::enumerate().into_iter().enumerate() {
            if i % 97 != 0 {
                continue; // sample for speed; the full sweep runs in the experiment binary
            }
            let exec = TwoPartySwap::default().execute(&scenario);
            let total: u64 = exec.chains.iter().map(|c| c.ledger().total_supply()).sum();
            assert_eq!(total, 100 + 1 + 100 + 2, "scenario {i} lost tokens");
        }
    }
}
