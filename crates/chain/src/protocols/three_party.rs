//! The hedged three-party swap protocol (Appendix IX-B1).
//!
//! Alice, Bob and Carol form a cycle: Alice transfers apricot tokens to Bob
//! (`ApricotSwap`), Bob transfers banana tokens to Carol (`BananaSwap`), Carol
//! transfers cherry tokens to Alice (`CherrySwap`). Each contract collects an
//! *escrow premium* from the asset owner and a *redemption premium* from the
//! receiver before the asset itself is escrowed and redeemed via the shared
//! hashlock, twelve steps in total with deadlines `Δ … 12Δ`.

use crate::{ChainError, Hashlock};
use crate::{MockChain, Preimage, ProtocolExecution};

/// One leg of the three-party swap (one contract on one chain).
#[derive(Debug, Clone)]
struct LegContract {
    name: String,
    owner: String,
    redeemer: String,
    asset: u64,
    escrow_premium: u64,
    redemption_premium: u64,
    hashlock: Hashlock,
    escrow_premium_deposited: bool,
    redemption_premium_deposited: bool,
    asset_escrowed: bool,
    asset_redeemed: bool,
    settled: bool,
}

impl LegContract {
    fn account(&self) -> crate::Account {
        crate::Account::new(self.name.clone())
    }

    fn reject(&self, reason: &str) -> ChainError {
        ChainError::StepRejected {
            contract: self.name.clone(),
            reason: reason.into(),
        }
    }

    fn deposit_escrow_premium(&mut self, chain: &mut MockChain) -> Result<(), ChainError> {
        if self.escrow_premium_deposited {
            return Err(self.reject("escrow premium already deposited"));
        }
        chain
            .ledger_mut()
            .transfer(self.owner.as_str(), self.account(), self.escrow_premium)?;
        self.escrow_premium_deposited = true;
        chain.emit("depositEscrowPr", &self.owner, self.escrow_premium);
        Ok(())
    }

    fn deposit_redemption_premium(&mut self, chain: &mut MockChain) -> Result<(), ChainError> {
        if !self.escrow_premium_deposited {
            return Err(self.reject("escrow premium missing"));
        }
        if self.redemption_premium_deposited {
            return Err(self.reject("redemption premium already deposited"));
        }
        chain.ledger_mut().transfer(
            self.redeemer.as_str(),
            self.account(),
            self.redemption_premium,
        )?;
        self.redemption_premium_deposited = true;
        chain.emit(
            "depositRedemptionPr",
            &self.redeemer,
            self.redemption_premium,
        );
        Ok(())
    }

    fn escrow_asset(&mut self, chain: &mut MockChain) -> Result<(), ChainError> {
        if !self.redemption_premium_deposited {
            return Err(self.reject("redemption premium missing"));
        }
        if self.asset_escrowed {
            return Err(self.reject("asset already escrowed"));
        }
        chain
            .ledger_mut()
            .transfer(self.owner.as_str(), self.account(), self.asset)?;
        self.asset_escrowed = true;
        chain.emit("assetEscrowed", &self.owner, self.asset);
        Ok(())
    }

    fn redeem(&mut self, chain: &mut MockChain, preimage: Preimage) -> Result<(), ChainError> {
        if !self.asset_escrowed {
            return Err(self.reject("asset not escrowed"));
        }
        if self.asset_redeemed {
            return Err(self.reject("asset already redeemed"));
        }
        if !self.hashlock.opens(&preimage) {
            return Err(ChainError::WrongPreimage);
        }
        chain.emit("hashlockUnlocked", &self.redeemer, 0);
        chain
            .ledger_mut()
            .transfer(self.account(), self.redeemer.as_str(), self.asset)?;
        self.asset_redeemed = true;
        chain.emit("assetRedeemed", &self.redeemer, self.asset);
        // Premiums go back to their payers on success.
        chain
            .ledger_mut()
            .transfer(self.account(), self.owner.as_str(), self.escrow_premium)?;
        chain.emit("EscrowPremiumRefunded", &self.owner, self.escrow_premium);
        chain.ledger_mut().transfer(
            self.account(),
            self.redeemer.as_str(),
            self.redemption_premium,
        )?;
        chain.emit(
            "RedemptionPremiumRefunded",
            &self.redeemer,
            self.redemption_premium,
        );
        Ok(())
    }

    fn settle(&mut self, chain: &mut MockChain) -> Result<(), ChainError> {
        if self.settled {
            return Ok(());
        }
        if self.asset_escrowed && !self.asset_redeemed {
            // Sore-loser: refund the asset, compensate the owner with the
            // redemption premium, refund the escrow premium.
            chain
                .ledger_mut()
                .transfer(self.account(), self.owner.as_str(), self.asset)?;
            chain.emit("assetRefunded", &self.owner, self.asset);
            if self.redemption_premium_deposited {
                chain.ledger_mut().transfer(
                    self.account(),
                    self.owner.as_str(),
                    self.redemption_premium,
                )?;
                chain.emit(
                    "RedemptionPremiumRedeemed",
                    &self.owner,
                    self.redemption_premium,
                );
            }
            if self.escrow_premium_deposited {
                chain.ledger_mut().transfer(
                    self.account(),
                    self.owner.as_str(),
                    self.escrow_premium,
                )?;
                chain.emit("EscrowPremiumRefunded", &self.owner, self.escrow_premium);
            }
        } else if !self.asset_escrowed {
            if self.redemption_premium_deposited {
                chain.ledger_mut().transfer(
                    self.account(),
                    self.redeemer.as_str(),
                    self.redemption_premium,
                )?;
                chain.emit(
                    "RedemptionPremiumRefunded",
                    &self.redeemer,
                    self.redemption_premium,
                );
            }
            if self.escrow_premium_deposited {
                chain.ledger_mut().transfer(
                    self.account(),
                    self.owner.as_str(),
                    self.escrow_premium,
                )?;
                chain.emit("EscrowPremiumRefunded", &self.owner, self.escrow_premium);
            }
        }
        self.settled = true;
        chain.emit("all_asset_settled", "any", 0);
        Ok(())
    }
}

/// Scenario of a three-party run: a per-contract progress level plus late
/// flags for the six escrow/redeem steps (global steps 7–12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreePartyScenario {
    /// Progress level 0–3 of the Apricot, Banana and Cherry contracts:
    /// 0 = nothing, 1 = escrow premium only, 2 = both premiums,
    /// 3 = premiums + escrow + redeem.
    pub progress: [u8; 3],
    /// Late flags for global steps 7–12 (bit 0 = step 7).
    pub late_bits: u8,
}

impl ThreePartyScenario {
    /// The conforming scenario.
    pub fn conforming() -> Self {
        ThreePartyScenario {
            progress: [3, 3, 3],
            late_bits: 0,
        }
    }

    /// Enumerates all 4096 scenarios (4³ progress combinations × 2⁶ late
    /// flags), the size of the paper's three-party log set.
    pub fn enumerate() -> Vec<Self> {
        let mut out = Vec::with_capacity(4096);
        for a in 0..4u8 {
            for b in 0..4u8 {
                for c in 0..4u8 {
                    for bits in 0u8..64 {
                        out.push(ThreePartyScenario {
                            progress: [a, b, c],
                            late_bits: bits,
                        });
                    }
                }
            }
        }
        out
    }

    fn step_attempted(&self, global_step: usize) -> bool {
        // Contract index and how far into that contract's own 4-step sequence
        // the global step is.
        let (contract, local) = match global_step {
            1 => (0, 0),
            2 => (1, 0),
            3 => (2, 0),
            4 => (2, 1),
            5 => (1, 1),
            6 => (0, 1),
            7 => (0, 2),
            8 => (1, 2),
            9 => (2, 2),
            10 => (2, 3),
            11 => (1, 3),
            _ => (0, 3),
        };
        let progress = self.progress[contract];
        match progress {
            0 => false,
            1 => local == 0,
            2 => local <= 1,
            _ => true,
        }
    }

    fn step_late(&self, global_step: usize) -> bool {
        if global_step < 7 {
            false
        } else {
            self.late_bits & (1 << (global_step - 7)) != 0
        }
    }
}

/// Parameters of the hedged three-party swap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreePartySwap {
    /// Step deadline Δ (milliseconds).
    pub delta: u64,
    /// Asset amount transferred on each leg.
    pub asset: u64,
}

impl Default for ThreePartySwap {
    fn default() -> Self {
        ThreePartySwap {
            delta: 500,
            asset: 100,
        }
    }
}

impl ThreePartySwap {
    /// Creates a protocol instance with the given Δ.
    pub fn new(delta: u64) -> Self {
        ThreePartySwap {
            delta,
            ..ThreePartySwap::default()
        }
    }

    /// Executes the protocol under the given scenario.
    pub fn execute(&self, scenario: &ThreePartyScenario) -> ProtocolExecution {
        let d = self.delta;
        let secret = Preimage(0x3CA5);
        let lock = secret.lock();
        let mut apr = MockChain::new("apr");
        let mut ban = MockChain::new("ban");
        let mut che = MockChain::new("che");
        // Owners need the asset plus their escrow premium; redeemers need
        // their redemption premium.
        apr.fund("alice", self.asset + 3);
        apr.fund("bob", 1);
        ban.fund("bob", self.asset + 3);
        ban.fund("carol", 2);
        che.fund("carol", self.asset + 3);
        che.fund("alice", 3);

        let mut legs = [
            LegContract {
                name: "ApricotSwap".into(),
                owner: "alice".into(),
                redeemer: "bob".into(),
                asset: self.asset,
                escrow_premium: 3,
                redemption_premium: 1,
                hashlock: lock,
                escrow_premium_deposited: false,
                redemption_premium_deposited: false,
                asset_escrowed: false,
                asset_redeemed: false,
                settled: false,
            },
            LegContract {
                name: "BananaSwap".into(),
                owner: "bob".into(),
                redeemer: "carol".into(),
                asset: self.asset,
                escrow_premium: 3,
                redemption_premium: 2,
                hashlock: lock,
                escrow_premium_deposited: false,
                redemption_premium_deposited: false,
                asset_escrowed: false,
                asset_redeemed: false,
                settled: false,
            },
            LegContract {
                name: "CherrySwap".into(),
                owner: "carol".into(),
                redeemer: "alice".into(),
                asset: self.asset,
                escrow_premium: 3,
                redemption_premium: 3,
                hashlock: lock,
                escrow_premium_deposited: false,
                redemption_premium_deposited: false,
                asset_escrowed: false,
                asset_redeemed: false,
                settled: false,
            },
        ];

        let mut exec = ProtocolExecution::start(vec![apr, ban, che], &["alice", "bob", "carol"], d);

        for step in 1..=12usize {
            if !scenario.step_attempted(step) {
                continue;
            }
            let true_time = if scenario.step_late(step) {
                step as u64 * d + d / 2
            } else {
                step as u64 * d - d / 2
            };
            for chain in exec.chains.iter_mut() {
                chain.set_true_time(true_time);
            }
            // Which contract/action each global step corresponds to.
            let (contract, action): (usize, u8) = match step {
                1 => (0, 0),
                2 => (1, 0),
                3 => (2, 0),
                4 => (2, 1),
                5 => (1, 1),
                6 => (0, 1),
                7 => (0, 2),
                8 => (1, 2),
                9 => (2, 2),
                10 => (2, 3),
                11 => (1, 3),
                _ => (0, 3),
            };
            let chain = &mut exec.chains[contract];
            let leg = &mut legs[contract];
            let _ = match action {
                0 => leg.deposit_escrow_premium(chain),
                1 => leg.deposit_redemption_premium(chain),
                2 => leg.escrow_asset(chain),
                _ => leg.redeem(chain, secret),
            };
        }

        let settle_time = 13 * d;
        for (i, leg) in legs.iter_mut().enumerate() {
            exec.chains[i].set_true_time(settle_time);
            let _ = leg.settle(&mut exec.chains[i]);
        }
        exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_matches_paper_count() {
        assert_eq!(ThreePartyScenario::enumerate().len(), 4096);
    }

    #[test]
    fn conforming_run_swaps_all_three_legs() {
        let exec = ThreePartySwap::default().execute(&ThreePartyScenario::conforming());
        assert!(exec.has_event("apr", "hashlockUnlocked", "bob"));
        assert!(exec.has_event("ban", "hashlockUnlocked", "carol"));
        assert!(exec.has_event("che", "hashlockUnlocked", "alice"));
        for party in ["alice", "bob", "carol"] {
            assert_eq!(exec.payoff(party), 0, "{party} should break even");
        }
        assert!(exec.event_count() > 20);
    }

    #[test]
    fn conforming_party_is_hedged_when_counterparty_defects() {
        // Carol completes her premiums and escrow but Alice never reveals the
        // secret (no redeems happen anywhere): everyone who escrowed gets a
        // refund plus the counterparty's redemption premium.
        let scenario = ThreePartyScenario {
            progress: [2, 2, 2],
            late_bits: 0,
        };
        let exec = ThreePartySwap::default().execute(&scenario);
        for party in ["alice", "bob", "carol"] {
            assert!(
                exec.payoff(party) >= 0,
                "{party} ended negative: {}",
                exec.payoff(party)
            );
        }
        assert!(!exec.has_event("apr", "assetEscrowed", "alice"));
    }

    #[test]
    fn token_conservation() {
        for scenario in [
            ThreePartyScenario::conforming(),
            ThreePartyScenario {
                progress: [3, 1, 0],
                late_bits: 0b10_1010,
            },
            ThreePartyScenario {
                progress: [2, 3, 1],
                late_bits: 0b11_1111,
            },
        ] {
            let exec = ThreePartySwap::default().execute(&scenario);
            let total: u64 = exec.chains.iter().map(|c| c.ledger().total_supply()).sum();
            assert_eq!(total, 3 * (100 + 3) + 1 + 2 + 3);
        }
    }

    #[test]
    fn partial_progress_emits_prefix_of_events() {
        let scenario = ThreePartyScenario {
            progress: [1, 0, 0],
            late_bits: 0,
        };
        let exec = ThreePartySwap::default().execute(&scenario);
        assert!(exec.has_event("apr", "depositEscrowPr", "alice"));
        assert!(!exec.has_event("apr", "depositRedemptionPr", "bob"));
        assert!(!exec.has_event("ban", "depositEscrowPr", "bob"));
    }
}
