//! The outcome of running a cross-chain protocol scenario: the per-chain event
//! logs, the final ledgers, and the derived quantities (payoffs) the safety
//! and hedging specifications refer to.

use crate::{Account, ChainEvent, MockChain};
use rvmtl_distrib::{ComputationBuilder, DistributedComputation};
use rvmtl_mtl::State;
use std::collections::BTreeMap;

/// A completed protocol run across several mocked chains.
#[derive(Debug, Clone)]
pub struct ProtocolExecution {
    /// The chains after the run, including their event logs and ledgers.
    pub chains: Vec<MockChain>,
    /// The parties participating in the protocol.
    pub parties: Vec<String>,
    /// Initial total balance of each party summed across chains (used to
    /// compute payoffs).
    pub initial_balances: BTreeMap<String, u64>,
    /// The protocol's step deadline Δ (milliseconds of local time).
    pub delta: u64,
}

impl ProtocolExecution {
    /// Records the initial balances of `parties` across `chains`.
    pub fn start(chains: Vec<MockChain>, parties: &[&str], delta: u64) -> Self {
        let parties: Vec<String> = parties.iter().map(|p| p.to_string()).collect();
        let initial_balances = parties
            .iter()
            .map(|p| {
                let account = Account::new(p.clone());
                let total = chains.iter().map(|c| c.balance(&account)).sum();
                (p.clone(), total)
            })
            .collect();
        ProtocolExecution {
            chains,
            parties,
            initial_balances,
            delta,
        }
    }

    /// The current total balance of `party` across all chains.
    pub fn balance(&self, party: &str) -> u64 {
        let account = Account::new(party);
        self.chains.iter().map(|c| c.balance(&account)).sum()
    }

    /// The party's payoff: tokens held now minus tokens held before the
    /// protocol started (negative means the party lost assets).
    pub fn payoff(&self, party: &str) -> i64 {
        self.balance(party) as i64 - *self.initial_balances.get(party).unwrap_or(&0) as i64
    }

    /// All events of all chains, in (chain, emission) order.
    pub fn events(&self) -> impl Iterator<Item = &ChainEvent> {
        self.chains.iter().flat_map(|c| c.log().iter())
    }

    /// Total number of emitted events (the x-axis of Fig. 6).
    pub fn event_count(&self) -> usize {
        self.chains.iter().map(|c| c.log().len()).sum()
    }

    /// Returns `true` if some chain emitted `name` for `party`.
    pub fn has_event(&self, chain: &str, name: &str, party: &str) -> bool {
        self.chains.iter().any(|c| {
            c.name() == chain
                && c.log()
                    .iter()
                    .any(|e| e.name == name && (e.party == party || party == "any"))
        })
    }

    /// Converts the per-chain event logs into a partially synchronous
    /// distributed computation: each chain is a process, each emitted event an
    /// event with the proposition `chain.name(party)`, timestamped with the
    /// chain's local clock, under maximum clock skew `epsilon`.
    pub fn to_computation(&self, epsilon: u64) -> DistributedComputation {
        let mut builder = ComputationBuilder::new(self.chains.len(), epsilon);
        for (p, chain) in self.chains.iter().enumerate() {
            for event in chain.log() {
                let mut state = State::empty();
                state.insert(event.proposition());
                builder.event(p, event.time, state);
            }
        }
        builder
            .build()
            .expect("chain logs are totally ordered per chain")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProtocolExecution {
        let mut apr = MockChain::new("apr");
        let mut ban = MockChain::new("ban");
        apr.fund("alice", 100);
        ban.fund("bob", 50);
        let mut exec = ProtocolExecution::start(vec![apr, ban], &["alice", "bob"], 500);
        exec.chains[0].set_true_time(100);
        exec.chains[0].emit("asset_escrowed", "alice", 100);
        exec.chains[0]
            .ledger_mut()
            .transfer("alice", "swap", 100)
            .unwrap();
        exec.chains[1].set_true_time(200);
        exec.chains[1].emit("asset_redeemed", "alice", 50);
        exec.chains[1]
            .ledger_mut()
            .transfer("bob", "alice", 50)
            .unwrap();
        exec
    }

    #[test]
    fn payoffs_reflect_ledger_changes() {
        let exec = sample();
        assert_eq!(exec.payoff("alice"), -50); // escrowed 100, received 50
        assert_eq!(exec.payoff("bob"), -50);
        assert_eq!(exec.event_count(), 2);
    }

    #[test]
    fn event_queries() {
        let exec = sample();
        assert!(exec.has_event("apr", "asset_escrowed", "alice"));
        assert!(exec.has_event("ban", "asset_redeemed", "any"));
        assert!(!exec.has_event("apr", "asset_redeemed", "alice"));
    }

    #[test]
    fn conversion_to_computation() {
        let exec = sample();
        let comp = exec.to_computation(3);
        assert_eq!(comp.process_count(), 2);
        assert_eq!(comp.event_count(), 2);
        assert_eq!(comp.epsilon(), 3);
        let e = comp.event(rvmtl_distrib::EventId(0));
        assert!(e.state.holds("apr.asset_escrowed(alice)"));
        assert_eq!(e.local_time, 100);
    }
}
