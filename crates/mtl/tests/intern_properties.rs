//! Property tests for the hash-consed formula interner (seeded local PRNG,
//! shared case generators in [`rvmtl_mtl::testgen`]): interning must preserve
//! the structural equality, ordering and semantics of [`Formula`], and the
//! arena must actually cons — structurally equal formulas share one id.

use rvmtl_mtl::testgen::{gen_formula, gen_state, gen_trace, GenConfig};
use rvmtl_mtl::{evaluate, simplify, ArenaOps, Formula, Interner, ShardedInterner, TimedTrace};
use rvmtl_prng::StdRng;

const CASES: usize = 256;

fn gen_phi(rng: &mut StdRng) -> Formula {
    gen_formula(rng, &GenConfig::default())
}

/// Intern → resolve is exactly `simplify`: the canonical tree survives the
/// round trip syntactically.
#[test]
fn intern_resolve_roundtrips_to_simplify() {
    let mut rng = StdRng::seed_from_u64(0x1067);
    let mut interner = Interner::new();
    for _ in 0..CASES {
        let phi = gen_phi(&mut rng);
        let id = interner.intern(&phi);
        assert_eq!(interner.resolve(id), simplify(&phi), "phi = {phi}");
    }
}

/// Id equality coincides with structural equality of the canonical forms:
/// `intern(φ) == intern(ψ)` iff `simplify(φ) == simplify(ψ)`.
#[test]
fn id_equality_is_structural_equality() {
    let mut rng = StdRng::seed_from_u64(0xEC41);
    let mut interner = Interner::new();
    for _ in 0..CASES {
        let phi = gen_phi(&mut rng);
        let psi = gen_phi(&mut rng);
        let phi_id = interner.intern(&phi);
        let psi_id = interner.intern(&psi);
        assert_eq!(
            phi_id == psi_id,
            simplify(&phi) == simplify(&psi),
            "phi = {phi}, psi = {psi}"
        );
        // Hash-consing: re-interning an already canonical formula is a no-op
        // on the arena and yields the same id.
        let before = interner.len();
        assert_eq!(interner.intern(&phi), phi_id);
        assert_eq!(interner.len(), before);
    }
}

/// Resolving a set of interned formulas reproduces the structural ordering of
/// the simplified originals — the solver's `BTreeSet<Formula>` results are
/// ordered identically whether or not the engine interned along the way.
#[test]
fn resolution_preserves_structural_ordering() {
    let mut rng = StdRng::seed_from_u64(0x04D3);
    for _ in 0..CASES / 8 {
        let mut interner = Interner::new();
        let formulas: Vec<Formula> = (0..8).map(|_| gen_phi(&mut rng)).collect();
        let ids: Vec<_> = formulas.iter().map(|phi| interner.intern(phi)).collect();
        let via_interner: std::collections::BTreeSet<Formula> =
            ids.iter().map(|&id| interner.resolve(id)).collect();
        let via_simplify: std::collections::BTreeSet<Formula> =
            formulas.iter().map(simplify).collect();
        assert_eq!(via_interner, via_simplify);
        // Pairwise comparisons agree as well (ordering, not just set shape).
        let resolved: Vec<Formula> = formulas
            .iter()
            .map(|phi| {
                let id = interner.intern(phi);
                interner.resolve(id)
            })
            .collect();
        for i in 0..formulas.len() {
            for j in 0..formulas.len() {
                assert_eq!(
                    resolved[i].cmp(&resolved[j]),
                    simplify(&formulas[i]).cmp(&simplify(&formulas[j])),
                    "i = {}, j = {}",
                    formulas[i],
                    formulas[j]
                );
            }
        }
    }
}

/// Canonicalisation through the interner never changes the finite-trace
/// semantics.
#[test]
fn interning_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(0x5E4A);
    let mut interner = Interner::new();
    for _ in 0..CASES {
        let phi = gen_phi(&mut rng);
        let trace = gen_trace(&mut rng, 8);
        let id = interner.intern(&phi);
        let resolved = interner.resolve(id);
        assert_eq!(
            evaluate(&trace, &phi),
            evaluate(&trace, &resolved),
            "phi = {phi}, resolved = {resolved}"
        );
    }
}

/// The interned single-observation progression agrees with the general
/// segment progression on one-element traces for random formulas.
#[test]
fn progress_one_agrees_with_progress() {
    let mut rng = StdRng::seed_from_u64(0x9407);
    let mut interner = Interner::new();
    for _ in 0..CASES {
        let phi = gen_phi(&mut rng);
        let state = gen_state(&mut rng);
        let time = rng.gen_range(0u64..6);
        let next = time + rng.gen_range(0u64..8);
        let id = interner.intern(&phi);
        let one = interner.progress_one(&state, time, id, next);
        let trace = TimedTrace::new(vec![state.clone()], vec![time]).unwrap();
        let full = interner.progress(&trace, id, next);
        assert_eq!(
            one, full,
            "phi = {phi}, state = {state}, t = {time}, next = {next}"
        );
    }
}

/// The memoised progressions (per-node caches keyed by
/// `(state, formula, min(elapsed, temporal_horizon))`) agree with the
/// uncached walks for random formulas — i.e. the horizon clamp and the
/// recursion-level memoisation never change a result, only its cost.
#[test]
fn cached_progressions_agree_with_uncached() {
    let mut rng = StdRng::seed_from_u64(0xCAC4);
    let mut interner = Interner::new();
    for _ in 0..CASES {
        let phi = gen_phi(&mut rng);
        let state = gen_state(&mut rng);
        let elapsed = rng.gen_range(0u64..24);
        let id = interner.intern(&phi);
        let key = interner.intern_state(&state);
        assert_eq!(
            interner.progress_one_cached(key, id, elapsed),
            interner.progress_one(&state, 0, id, elapsed),
            "phi = {phi}, state = {state}, elapsed = {elapsed}"
        );
        assert_eq!(
            interner.progress_gap_cached(id, elapsed),
            interner.progress_gap(id, elapsed),
            "phi = {phi}, elapsed = {elapsed}"
        );
    }
}

/// The interval-splitting progression tiles the window exactly, and every
/// point of every range progresses to the residual the range's kind asserts
/// for it — the range's own residual for `Uniform` ranges, its per-tick
/// downward translate for `Translated` ones (the contract the solver's range
/// collapse is built on) — for random formulas, states and windows.
#[test]
fn progress_one_over_tiles_windows_for_random_formulas() {
    let mut rng = StdRng::seed_from_u64(0x0E12);
    let mut interner = Interner::new();
    for _ in 0..CASES {
        let phi = gen_phi(&mut rng);
        let state = gen_state(&mut rng);
        let time = rng.gen_range(0u64..4);
        let lo = time + rng.gen_range(0u64..4);
        let hi = lo + rng.gen_range(0u64..30);
        let id = interner.intern(&phi);
        let splits = interner.progress_one_over(&state, time, id, lo, hi);
        let mut expected = lo;
        for r in &splits {
            assert_eq!(r.lo, expected, "phi = {phi}");
            assert!(r.hi >= r.lo && r.hi <= hi, "phi = {phi}");
            expected = r.hi + 1;
            for t in r.lo..=r.hi {
                let asserted = match r.kind {
                    rvmtl_mtl::RangeKind::Uniform => r.residual,
                    rvmtl_mtl::RangeKind::Translated => {
                        ArenaOps::translate_down(&mut interner, r.residual, t - r.lo)
                    }
                };
                assert_eq!(
                    interner.progress_one(&state, time, id, t),
                    asserted,
                    "phi = {phi}, state = {state}, time = {time}, t = {t}, {r:?}"
                );
            }
        }
        assert_eq!(expected, hi + 1, "phi = {phi}: ranges must tile [lo, hi]");
    }
}

/// Shift-normal decomposition properties on random formulas: materialize
/// inverts normalize, translates of a formula share its canonical residual,
/// translation commutes with gap progression inside the slack, and
/// `resolve_shifted` agrees with materialising then resolving.
#[test]
fn shift_normal_decomposition_roundtrips_for_random_formulas() {
    let mut rng = StdRng::seed_from_u64(0x5417);
    let mut interner = Interner::new();
    for _ in 0..CASES {
        let phi = gen_phi(&mut rng);
        let id = interner.intern(&phi);
        let s = interner.normalize(id);
        assert_eq!(
            ArenaOps::materialize(&mut interner, s),
            id,
            "phi = {phi}: materialize must invert normalize"
        );
        assert_eq!(
            interner.resolve_shifted(s),
            interner.resolve(id),
            "phi = {phi}"
        );
        assert_eq!(
            interner.eval_empty(s.id),
            interner.eval_empty(id),
            "phi = {phi}: eval_empty resolves through the shift"
        );
        let slack = interner.shift_slack(id);
        if slack > 0 && slack != u64::MAX {
            // The canonical residual is a gap progression by the slack, and
            // every shorter gap is the corresponding exact translate sharing
            // the same canonical residual.
            assert_eq!(
                interner.progress_gap(id, slack),
                s.id,
                "phi = {phi}: canon must equal the slack-length gap"
            );
            let delta = rng.gen_range(0u64..slack.min(8) + 1).min(slack);
            let translated = interner.progress_gap(id, delta);
            assert_eq!(
                ArenaOps::translate_down(&mut interner, id, delta),
                translated,
                "phi = {phi}, delta = {delta}"
            );
            if delta < slack {
                assert_eq!(
                    interner.shift_canon(translated),
                    s.id,
                    "phi = {phi}, delta = {delta}: translates share one canonical residual"
                );
                assert_eq!(
                    interner.shift_slack(translated),
                    slack - delta,
                    "phi = {phi}"
                );
            }
        }
    }
}

/// The sharded concurrent arena and the sequential interner agree on every
/// observable: canonical resolution, temporal horizons, empty-future
/// evaluation, and memoised progressions (resolved structurally, since the
/// two arenas assign different raw ids). This is the divergence guard for
/// the independently implemented canonicalising constructors of
/// `ShardedInterner`.
#[test]
fn sharded_arena_agrees_with_sequential_interner() {
    let mut rng = StdRng::seed_from_u64(0x54A2);
    let mut plain = Interner::new();
    let sharded = ShardedInterner::new();
    for _ in 0..CASES {
        let phi = gen_phi(&mut rng);
        let plain_id = plain.intern(&phi);
        let sharded_id = sharded.intern(&phi);
        assert_eq!(
            plain.resolve(plain_id),
            sharded.resolve(sharded_id),
            "phi = {phi}"
        );
        assert_eq!(
            plain.temporal_horizon(plain_id),
            ArenaOps::temporal_horizon(&&sharded, sharded_id),
            "phi = {phi}"
        );
        assert_eq!(
            plain.eval_empty(plain_id),
            sharded.eval_empty(sharded_id),
            "phi = {phi}"
        );
        let state = gen_state(&mut rng);
        let elapsed = rng.gen_range(0u64..16);
        let plain_key = plain.intern_state(&state);
        let mut handle = &sharded;
        let sharded_key = ArenaOps::intern_state(&mut handle, &state);
        let via_plain = plain.progress_one_cached(plain_key, plain_id, elapsed);
        let via_sharded =
            ArenaOps::progress_one_cached(&mut handle, sharded_key, sharded_id, elapsed);
        assert_eq!(
            plain.resolve(via_plain),
            sharded.resolve(via_sharded),
            "progress_one: phi = {phi}, state = {state}, elapsed = {elapsed}"
        );
        let gap_plain = plain.progress_gap_cached(plain_id, elapsed);
        let gap_sharded = ArenaOps::progress_gap_cached(&mut handle, sharded_id, elapsed);
        assert_eq!(
            plain.resolve(gap_plain),
            sharded.resolve(gap_sharded),
            "progress_gap: phi = {phi}, elapsed = {elapsed}"
        );
    }
}

/// The interned gap progression agrees with the `Formula`-level one.
#[test]
fn progress_gap_agrees_with_formula_level() {
    let mut rng = StdRng::seed_from_u64(0x6A90);
    let mut interner = Interner::new();
    for _ in 0..CASES {
        let phi = gen_phi(&mut rng);
        let elapsed = rng.gen_range(0u64..12);
        let id = interner.intern(&phi);
        let interned = interner.progress_gap(id, elapsed);
        assert_eq!(
            interner.resolve(interned),
            rvmtl_mtl::progress_gap(&simplify(&phi), elapsed),
            "phi = {phi}, elapsed = {elapsed}"
        );
    }
}

/// Compaction under shift-normal decompositions: for random live sets, after
/// a `compact` (1) every live id's canonical residual survived and remapped
/// consistently (the canon of the remapped id is the remapped canon), (2)
/// shift-relative cache entries survived exactly when their canonical
/// endpoints did — warmed progressions replay identically through the
/// compacted arena, and (3) a shifted pending set roots the GC at canonical
/// residuals only and still materialises/resolves correctly afterwards.
#[test]
fn compact_is_sound_under_shift_decompositions() {
    let mut rng = StdRng::seed_from_u64(0xC04C);
    for _ in 0..CASES / 8 {
        let mut interner = Interner::new();
        // A mix of live and garbage formulas, biased toward delayed windows
        // so nontrivial (shift, canon) pairs arise.
        let live: Vec<rvmtl_mtl::FormulaId> = (0..6)
            .map(|_| {
                let phi = gen_phi(&mut rng);
                let shift = rng.gen_range(0u64..7);
                let id = interner.intern(&phi);
                // Translate up: a delayed-window variant of the formula.
                ArenaOps::translate_up(&mut interner, id, shift)
            })
            .collect();
        for _ in 0..6 {
            let garbage = gen_phi(&mut rng);
            let _ = interner.intern(&garbage);
        }
        // Warm the shift-relative caches.
        let state = gen_state(&mut rng);
        let key = interner.intern_state(&state);
        let warmed: Vec<(
            rvmtl_mtl::FormulaId,
            u64,
            rvmtl_mtl::FormulaId,
            rvmtl_mtl::FormulaId,
        )> = live
            .iter()
            .map(|&id| {
                let elapsed = rng.gen_range(0u64..16);
                let one = interner.progress_one_cached(key, id, elapsed);
                let gap = interner.progress_gap_cached(id, elapsed);
                (id, elapsed, one, gap)
            })
            .collect();
        // Root the GC the way the monitors do: canonical residuals of the
        // live decompositions plus the warmed results.
        let decomps: Vec<rvmtl_mtl::ShiftedId> =
            live.iter().map(|&id| interner.normalize(id)).collect();
        let mut roots: Vec<rvmtl_mtl::FormulaId> = decomps.iter().map(|s| s.id).collect();
        roots.extend(warmed.iter().flat_map(|&(_, _, one, gap)| [one, gap]));
        let remap = interner.compact(roots);
        for (s, &old_id) in decomps.iter().zip(&live) {
            let new_canon = remap.remap(s.id).unwrap();
            // Materialising the remapped decomposition reproduces the
            // formula, and its tables are consistent.
            let rebuilt = ArenaOps::materialize(
                &mut interner,
                rvmtl_mtl::ShiftedId {
                    shift: s.shift,
                    id: new_canon,
                },
            );
            assert_eq!(
                interner.resolve(rebuilt),
                interner.resolve_shifted(rvmtl_mtl::ShiftedId {
                    shift: s.shift,
                    id: new_canon,
                }),
            );
            assert_eq!(interner.shift_canon(rebuilt), new_canon);
            if let Some(new_id) = remap.get(old_id) {
                // If the translate itself survived, its canon remapped with
                // it — the decomposition tables never dangle.
                assert_eq!(interner.shift_canon(new_id), new_canon);
                assert_eq!(rebuilt, new_id);
            }
        }
        // Warmed progressions replay identically through the compacted
        // arena (surviving cache entries must agree with recomputation).
        let key2 = interner.intern_state(&state);
        for (old_id, elapsed, one, gap) in warmed {
            let Some(new_id) = remap.get(old_id) else {
                continue;
            };
            assert_eq!(
                interner.progress_one_cached(key2, new_id, elapsed),
                remap.remap(one).unwrap(),
                "elapsed = {elapsed}"
            );
            assert_eq!(
                interner.progress_gap_cached(new_id, elapsed),
                remap.remap(gap).unwrap(),
                "elapsed = {elapsed}"
            );
        }
    }
}

/// The arena-level shift watermark (`ever_shifted`): down on a fresh arena,
/// unmoved by shift-free interning (every window starting at zero — where
/// `normalize` must be the identity), raised by the *first* nonzero-slack
/// node, and recomputed soundly by `compact` — it stays up while a shifted
/// node survives and re-arms (drops) once GC collects the last one, after
/// which decomposition is the identity again.
#[test]
fn shift_watermark_flips_once_and_tracks_compaction() {
    let mut interner = Interner::new();
    assert!(!interner.ever_shifted(), "fresh arena");
    let shift_free = [
        "a U[0,8) b",
        "G[0,4) (a | b)",
        "F[0,6) (p & q)",
        "p -> (q U[0,3) r)",
        "G[0,inf) p",
        "!p & q",
    ];
    let mut free_ids = Vec::new();
    for text in shift_free {
        free_ids.push(interner.intern(&rvmtl_mtl::parse(text).unwrap()));
        assert!(
            !interner.ever_shifted(),
            "{text} must not trip the watermark"
        );
    }
    // While the watermark is down every decomposition is the identity.
    for &id in &free_ids {
        let s = interner.normalize(id);
        assert_eq!((s.shift, s.id), (0, id));
    }
    // The first delayed window flips it …
    let shifted = interner.intern(&rvmtl_mtl::parse("F[6,12) b").unwrap());
    assert!(interner.ever_shifted());
    let s = interner.normalize(shifted);
    assert_eq!(s.shift, 6);
    // … and it is monotone under further interning of either kind.
    let _ = interner.intern(&rvmtl_mtl::parse("x U[0,2) y").unwrap());
    assert!(interner.ever_shifted());

    // Compaction keeping the shifted node keeps the watermark up (its canon
    // survives with it and the decomposition still works).
    let remap = interner.compact([shifted, free_ids[0]]);
    assert!(interner.ever_shifted());
    let shifted2 = remap.remap(shifted).unwrap();
    let s2 = interner.normalize(shifted2);
    assert_eq!(s2.shift, 6);
    assert_eq!(
        interner.resolve_shifted(s2),
        rvmtl_mtl::parse("F[6,12) b").map(|f| simplify(&f)).unwrap()
    );

    // Compaction dropping every shifted node re-arms the fast path: the
    // watermark drops and normalisation is the identity again.
    let keep = remap.remap(free_ids[0]).unwrap();
    let remap2 = interner.compact([keep]);
    assert!(
        !interner.ever_shifted(),
        "GC collected the last shifted node"
    );
    let keep2 = remap2.remap(keep).unwrap();
    let s3 = interner.normalize(keep2);
    assert_eq!((s3.shift, s3.id), (0, keep2));
    // The re-armed arena still progresses correctly and can trip again.
    let key = interner.intern_state(&gen_state(&mut StdRng::seed_from_u64(7)));
    let _ = interner.progress_one_cached(key, keep2, 3);
    let again = interner.intern(&rvmtl_mtl::parse("G[2,9) z").unwrap());
    assert!(interner.ever_shifted());
    assert_eq!(interner.normalize(again).shift, 2);
}

/// The sharded arena's watermark mirrors the sequential one: down on a fresh
/// arena, unmoved by shift-free interning, raised by the first nonzero-slack
/// node — including under concurrent interning from several threads — and
/// reset by `clear` (the sharded epoch GC), after which the fast path
/// re-arms.
#[test]
fn sharded_watermark_is_monotone_and_resets_with_clear() {
    let mut arena = ShardedInterner::new();
    assert!(!arena.ever_shifted());
    let free = arena.intern(&rvmtl_mtl::parse("a U[0,8) b").unwrap());
    assert!(!arena.ever_shifted());
    let s = ArenaOps::normalize(&&arena, free);
    assert_eq!((s.shift, s.id), (0, free));

    // Concurrent interning: every thread interning a delayed-window formula
    // observes the watermark up on its own id immediately afterwards
    // (raise-before-publish).
    std::thread::scope(|scope| {
        for k in 0..4u64 {
            let arena = &arena;
            scope.spawn(move || {
                let text = format!("F[{},{}) p{k}", 3 + k, 9 + k);
                let id = arena.intern(&rvmtl_mtl::parse(&text).unwrap());
                assert!(arena.ever_shifted(), "{text}");
                let s = ArenaOps::normalize(&arena, id);
                assert_eq!(s.shift, 3 + k, "{text}");
                assert_eq!(
                    arena.resolve(ArenaOps::materialize(&mut &*arena, s)),
                    arena.resolve(id),
                    "{text}"
                );
            });
        }
    });
    assert!(arena.ever_shifted());

    // The epoch reset drops everything, including the watermark.
    arena.clear();
    assert!(!arena.ever_shifted());
    let free2 = arena.intern(&rvmtl_mtl::parse("a U[0,8) b").unwrap());
    assert_eq!(ArenaOps::normalize(&&arena, free2).shift, 0);
    let tripped = arena.intern(&rvmtl_mtl::parse("F[4,7) q").unwrap());
    assert!(arena.ever_shifted());
    assert_eq!(ArenaOps::normalize(&&arena, tripped).shift, 4);
}
