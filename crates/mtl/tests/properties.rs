//! Property-based tests for the MTL layer, driven by a deterministic local
//! PRNG (the build environment is offline, so `proptest` is unavailable; each
//! test runs a fixed number of seeded random cases instead). Case generators
//! are shared across suites in [`rvmtl_mtl::testgen`].
//!
//! The central property is the defining equation of formula progression
//! (Def. 3 of the paper): evaluating a formula on a full trace is the same as
//! evaluating the progressed formula on the unobserved suffix.

use rvmtl_mtl::testgen::{gen_formula, gen_trace, GenConfig};
use rvmtl_mtl::{evaluate, parse, progress, simplify, Formula, Interval};
use rvmtl_prng::StdRng;

const CASES: usize = 256;

fn gen_phi(rng: &mut StdRng) -> Formula {
    gen_formula(rng, &GenConfig::default())
}

/// Def. 3: (α.α′, τ̄.τ̄′) ⊨F φ  ⟺  (α′, τ̄′) ⊨F Pr(α, τ̄, φ) when the
/// residuals are anchored at the suffix's first timestamp.
#[test]
fn progression_is_sound_and_complete() {
    let mut rng = StdRng::seed_from_u64(0xDEF3);
    for _ in 0..CASES {
        let full = gen_trace(&mut rng, 8);
        let phi = gen_phi(&mut rng);
        if full.len() < 2 {
            continue;
        }
        let split = rng.gen_range(1usize..full.len());
        let prefix = full.prefix(split);
        let suffix = full.suffix(split);
        let anchor = suffix.first_time().unwrap();
        let rewritten = progress(&prefix, &phi, anchor);
        assert_eq!(
            evaluate(&full, &phi),
            evaluate(&suffix, &rewritten),
            "phi = {phi}, rewritten = {rewritten}, prefix = {prefix}, suffix = {suffix}"
        );
    }
}

/// Progressing over the whole trace with the residual anchored past the last
/// timestamp yields a constant verdict for formulas whose temporal horizon is
/// bounded, and that verdict agrees with direct evaluation when constant.
#[test]
fn progression_over_full_trace_agrees_with_evaluation() {
    let mut rng = StdRng::seed_from_u64(0xF0F0);
    for _ in 0..CASES {
        let trace = gen_trace(&mut rng, 8);
        let phi = gen_phi(&mut rng);
        let anchor = trace.last_time().unwrap();
        let result = progress(&trace, &phi, anchor);
        if let Some(verdict) = result.as_bool() {
            assert_eq!(verdict, evaluate(&trace, &phi), "phi = {phi}");
        }
    }
}

/// Simplification preserves the finite-trace semantics and never grows the
/// formula.
#[test]
fn simplification_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(0x51A1);
    for _ in 0..CASES {
        let trace = gen_trace(&mut rng, 8);
        let phi = gen_phi(&mut rng);
        let simplified = simplify(&phi);
        assert_eq!(
            evaluate(&trace, &phi),
            evaluate(&trace, &simplified),
            "phi = {phi}, simplified = {simplified}"
        );
        assert!(simplified.size() <= phi.size());
    }
}

/// Simplification is idempotent (canonical forms stay canonical).
#[test]
fn simplification_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x1DE4);
    for _ in 0..CASES {
        let phi = gen_phi(&mut rng);
        let once = simplify(&phi);
        let twice = simplify(&once);
        assert_eq!(once, twice, "phi = {phi}");
    }
}

/// The core-grammar translation (∧, →, ◇, □ eliminated) preserves the
/// finite-trace semantics.
#[test]
fn core_translation_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(0xC04E);
    for _ in 0..CASES {
        let trace = gen_trace(&mut rng, 6);
        let phi = gen_phi(&mut rng);
        assert_eq!(
            evaluate(&trace, &phi),
            evaluate(&trace, &phi.to_core()),
            "phi = {phi}"
        );
    }
}

/// Display → parse round-trips syntactically.
#[test]
fn display_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x9A45);
    for _ in 0..CASES {
        let phi = gen_phi(&mut rng);
        let text = phi.to_string();
        let reparsed = parse(&text).unwrap();
        assert_eq!(phi, reparsed, "text = {text}");
    }
}

/// Interval algebra: membership after shifting down corresponds to membership
/// before.
#[test]
fn interval_shift_down_membership() {
    let mut rng = StdRng::seed_from_u64(0x1247);
    for _ in 0..CASES {
        let start = rng.gen_range(0u64..20);
        let len = rng.gen_range(0u64..20);
        let delay = rng.gen_range(0u64..30);
        let t = rng.gen_range(0u64..60);
        let i = Interval::bounded(start, start + len);
        let shifted = i.shift_down(delay);
        if i.contains(t + delay) {
            assert!(shifted.contains(t));
        }
        if shifted.contains(t) && t + delay >= start {
            assert!(i.contains(t + delay) || i.start() > t + delay);
        }
    }
}

/// Evaluation at a later position only depends on the suffix.
#[test]
fn evaluation_is_suffix_local() {
    let mut rng = StdRng::seed_from_u64(0x5FF1);
    for _ in 0..CASES {
        let trace = gen_trace(&mut rng, 8);
        let phi = gen_phi(&mut rng);
        let i = rng.gen_range(0usize..trace.len());
        let suffix = trace.suffix(i);
        assert_eq!(
            rvmtl_mtl::evaluate_at(&trace, i, &phi),
            evaluate(&suffix, &phi)
        );
    }
}
