//! Property-based tests for the MTL layer.
//!
//! The central property is the defining equation of formula progression
//! (Def. 3 of the paper): evaluating a formula on a full trace is the same as
//! evaluating the progressed formula on the unobserved suffix.

use proptest::prelude::*;
use rvmtl_mtl::{evaluate, parse, progress, simplify, Formula, Interval, State, TimedTrace};

const PROPS: [&str; 3] = ["p", "q", "r"];

fn arb_state() -> impl Strategy<Value = State> {
    proptest::collection::vec(proptest::bool::ANY, PROPS.len()).prop_map(|bits| {
        PROPS
            .iter()
            .zip(bits)
            .filter(|(_, b)| *b)
            .map(|(p, _)| *p)
            .collect()
    })
}

fn arb_trace(max_len: usize) -> impl Strategy<Value = TimedTrace> {
    proptest::collection::vec((arb_state(), 0u64..4), 1..=max_len).prop_map(|steps| {
        let mut trace = TimedTrace::empty();
        let mut t = 0;
        for (state, gap) in steps {
            t += gap;
            trace.push(state, t).expect("monotone by construction");
        }
        trace
    })
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0u64..6, 1u64..10, proptest::bool::ANY).prop_map(|(start, len, unbounded)| {
        if unbounded {
            Interval::unbounded(start)
        } else {
            Interval::bounded(start, start + len)
        }
    })
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        (0..PROPS.len()).prop_map(|i| Formula::atom(PROPS[i])),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (arb_interval(), inner.clone()).prop_map(|(i, a)| Formula::eventually(i, a)),
            (arb_interval(), inner.clone()).prop_map(|(i, a)| Formula::always(i, a)),
            (inner.clone(), arb_interval(), inner).prop_map(|(a, i, b)| Formula::until(a, i, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Def. 3: (α.α′, τ̄.τ̄′) ⊨F φ  ⟺  (α′, τ̄′) ⊨F Pr(α, τ̄, φ) when the
    /// residuals are anchored at the suffix's first timestamp.
    #[test]
    fn progression_is_sound_and_complete(
        full in arb_trace(8),
        phi in arb_formula(),
        split_frac in 0.0f64..1.0,
    ) {
        let split = 1 + ((full.len() - 1) as f64 * split_frac) as usize;
        prop_assume!(split < full.len());
        let prefix = full.prefix(split);
        let suffix = full.suffix(split);
        let anchor = suffix.first_time().unwrap();
        let rewritten = progress(&prefix, &phi, anchor);
        prop_assert_eq!(
            evaluate(&full, &phi),
            evaluate(&suffix, &rewritten),
            "phi = {}, rewritten = {}, prefix = {}, suffix = {}",
            phi, rewritten, prefix, suffix
        );
    }

    /// Progressing over the whole trace with the residual anchored past the
    /// last timestamp yields a constant verdict for formulas whose temporal
    /// horizon is bounded, and that verdict agrees with direct evaluation
    /// whenever it is constant.
    #[test]
    fn progression_over_full_trace_agrees_with_evaluation(
        trace in arb_trace(8),
        phi in arb_formula(),
    ) {
        let anchor = trace.last_time().unwrap();
        let result = progress(&trace, &phi, anchor);
        if let Some(verdict) = result.as_bool() {
            prop_assert_eq!(verdict, evaluate(&trace, &phi), "phi = {}", phi);
        }
    }

    /// Simplification preserves the finite-trace semantics.
    #[test]
    fn simplification_preserves_semantics(
        trace in arb_trace(8),
        phi in arb_formula(),
    ) {
        let simplified = simplify(&phi);
        prop_assert_eq!(
            evaluate(&trace, &phi),
            evaluate(&trace, &simplified),
            "phi = {}, simplified = {}", phi, simplified
        );
        prop_assert!(simplified.size() <= phi.size());
    }

    /// Simplification is idempotent (canonical forms stay canonical).
    #[test]
    fn simplification_is_idempotent(phi in arb_formula()) {
        let once = simplify(&phi);
        let twice = simplify(&once);
        prop_assert_eq!(once, twice);
    }

    /// The core-grammar translation (∧, →, ◇, □ eliminated) preserves the
    /// finite-trace semantics.
    #[test]
    fn core_translation_preserves_semantics(
        trace in arb_trace(6),
        phi in arb_formula(),
    ) {
        prop_assert_eq!(evaluate(&trace, &phi), evaluate(&trace, &phi.to_core()));
    }

    /// Display → parse round-trips syntactically.
    #[test]
    fn display_parse_roundtrip(phi in arb_formula()) {
        let text = phi.to_string();
        let reparsed = parse(&text).unwrap();
        prop_assert_eq!(phi, reparsed, "text = {}", text);
    }

    /// Interval algebra: shifting down never grows the interval, and
    /// membership after shifting corresponds to membership before.
    #[test]
    fn interval_shift_down_membership(
        start in 0u64..20,
        len in 0u64..20,
        delay in 0u64..30,
        t in 0u64..60,
    ) {
        let i = Interval::bounded(start, start + len);
        let shifted = i.shift_down(delay);
        // Points reachable in the future (t ≥ 0 after the delay) correspond.
        if i.contains(t + delay) {
            prop_assert!(shifted.contains(t));
        }
        if shifted.contains(t) && t + delay >= start {
            prop_assert!(i.contains(t + delay) || i.start() > t + delay);
        }
    }

    /// Evaluation at a later position only depends on the suffix.
    #[test]
    fn evaluation_is_suffix_local(
        trace in arb_trace(8),
        phi in arb_formula(),
        idx_frac in 0.0f64..1.0,
    ) {
        let i = ((trace.len() - 1) as f64 * idx_frac) as usize;
        let suffix = trace.suffix(i);
        prop_assert_eq!(
            rvmtl_mtl::evaluate_at(&trace, i, &phi),
            evaluate(&suffix, &phi)
        );
    }
}
