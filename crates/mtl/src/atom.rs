//! Atomic propositions.
//!
//! Propositions name observable facts about a system under monitoring, such as
//! `apr.asset_redeemed(bob)` (an event on the Apricot chain) or
//! `Train1.Cross` (a location of a timed automaton). They are cheap to clone
//! (reference-counted strings) and totally ordered so that states and formulas
//! can be canonicalised and deduplicated.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An atomic proposition.
///
/// # Examples
///
/// ```
/// use rvmtl_mtl::Prop;
///
/// let p = Prop::new("apr.asset_redeemed(bob)");
/// assert_eq!(p.name(), "apr.asset_redeemed(bob)");
/// assert_eq!(p, Prop::new("apr.asset_redeemed(bob)"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prop(Arc<str>);

impl Prop {
    /// Creates a proposition with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Prop(Arc::from(name.as_ref()))
    }

    /// Creates a proposition of the form `scope.event(party)`, the naming
    /// convention used for blockchain events in the paper
    /// (e.g. `ban.premium_deposited(alice)`).
    pub fn scoped(scope: &str, event: &str, party: &str) -> Self {
        Prop::new(format!("{scope}.{event}({party})"))
    }

    /// Creates an indexed proposition of the form `name[i].field`, the naming
    /// convention used for the UPPAAL benchmark models
    /// (e.g. `Train[1].Cross`).
    pub fn indexed(name: &str, index: usize, field: &str) -> Self {
        Prop::new(format!("{name}[{index}].{field}"))
    }

    /// The proposition's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Prop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Prop {
    fn from(s: &str) -> Self {
        Prop::new(s)
    }
}

impl From<String> for Prop {
    fn from(s: String) -> Self {
        Prop::new(s)
    }
}

impl Borrow<str> for Prop {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Prop {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn equality_is_by_name() {
        assert_eq!(Prop::new("a"), Prop::new("a"));
        assert_ne!(Prop::new("a"), Prop::new("b"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut set = BTreeSet::new();
        set.insert(Prop::new("b"));
        set.insert(Prop::new("a"));
        set.insert(Prop::new("c"));
        let names: Vec<_> = set.iter().map(|p| p.name().to_string()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn scoped_and_indexed_constructors() {
        assert_eq!(
            Prop::scoped("ban", "premium_deposited", "alice").name(),
            "ban.premium_deposited(alice)"
        );
        assert_eq!(Prop::indexed("Train", 1, "Cross").name(), "Train[1].Cross");
    }

    #[test]
    fn borrow_str_lookup() {
        let mut set = BTreeSet::new();
        set.insert(Prop::new("x"));
        assert!(set.contains("x"));
        assert!(!set.contains("y"));
    }

    #[test]
    fn display_matches_name() {
        let p = Prop::new("Gate.Occ");
        assert_eq!(p.to_string(), "Gate.Occ");
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let p = Prop::new("long.proposition.name(with_party)");
        let q = p.clone();
        assert_eq!(p, q);
    }
}
