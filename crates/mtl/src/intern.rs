//! Hash-consed formula storage: an arena/interner in which every distinct
//! (canonicalised) formula is stored exactly once and named by a small
//! [`FormulaId`].
//!
//! The solver's progression search (`rvmtl-solver`) memoises on
//! `(cut, time, pending formula)` millions of times per query. With the plain
//! [`Formula`] tree that means deep clones, deep structural hashing and deep
//! equality on every lookup. Interning collapses all three to `u32` copies and
//! compares:
//!
//! * **clone** — [`FormulaId`] is `Copy`;
//! * **eq** — ids are equal iff the canonical formulas are structurally equal
//!   (hash-consing invariant: one node per distinct formula);
//! * **hash** — the id is its own perfect hash; no tree walk.
//!
//! Construction goes through *smart constructors* ([`Interner::mk_and_all`],
//! [`Interner::mk_not`], …) that apply the same canonicalising rewrites as
//! [`crate::simplify`] — constant folding, double-negation elimination,
//! flattening/sorting/deduplication of `∧`/`∨` operands, complementary-literal
//! collapse, empty-interval collapse — so structurally different but
//! simplification-equivalent formulas receive the same id. The progression
//! engine ([`Interner::progress`], [`Interner::progress_one`],
//! [`Interner::progress_gap`]) builds its results exclusively through these
//! constructors.
//!
//! An [`Interner`] is a plain value, not a global: the solver keeps one per
//! query, and the `Formula`-level entry points of this crate create a
//! short-lived one per call. Memory grows with the number of distinct
//! formulas ever interned and is released when the interner is dropped.

use crate::hashing::FxHashMap;
use crate::{Formula, Interval, Prop, State, TimedTrace};

/// A reference to an interned formula. Cheap to copy, compare and hash;
/// meaningful only together with the [`Interner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FormulaId(u32);

impl FormulaId {
    /// The id of the constant `true` (the same in every interner).
    pub const TRUE: FormulaId = FormulaId(0);
    /// The id of the constant `false` (the same in every interner).
    pub const FALSE: FormulaId = FormulaId(1);

    /// Returns `true` if this id names the constant `true` or `false`.
    pub fn is_constant(self) -> bool {
        self == FormulaId::TRUE || self == FormulaId::FALSE
    }

    /// Returns `Some(b)` if this id names the boolean constant `b`.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            FormulaId::TRUE => Some(true),
            FormulaId::FALSE => Some(false),
            _ => None,
        }
    }

    /// The raw index (useful for dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned formula node. Children are [`FormulaId`]s, so equality and
/// hashing of a node touch only one level of the tree.
///
/// `And`/`Or` are n-ary with operands sorted by id and deduplicated — the
/// interned counterpart of the sorted operand sets `crate::simplify` builds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// An atomic proposition.
    Atom(Prop),
    /// Negation `¬φ`.
    Not(FormulaId),
    /// N-ary conjunction (≥ 2 operands, sorted by id, deduplicated).
    And(Box<[FormulaId]>),
    /// N-ary disjunction (≥ 2 operands, sorted by id, deduplicated).
    Or(Box<[FormulaId]>),
    /// Implication `φ₁ → φ₂`.
    Implies(FormulaId, FormulaId),
    /// Timed until `φ₁ U_I φ₂`.
    Until(FormulaId, Interval, FormulaId),
    /// Timed eventually `◇_I φ`.
    Eventually(Interval, FormulaId),
    /// Timed always `□_I φ`.
    Always(Interval, FormulaId),
}

/// The formula arena. See the module documentation.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    nodes: Vec<Node>,
    ids: FxHashMap<Node, FormulaId>,
}

impl Interner {
    /// Creates an interner holding only the two boolean constants.
    pub fn new() -> Self {
        let mut interner = Interner {
            nodes: Vec::with_capacity(64),
            ids: FxHashMap::default(),
        };
        let t = interner.insert(Node::True);
        let f = interner.insert(Node::False);
        debug_assert_eq!(t, FormulaId::TRUE);
        debug_assert_eq!(f, FormulaId::FALSE);
        interner
    }

    /// Number of distinct formulas interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always `false`: a fresh interner already holds the two boolean
    /// constants, so `len() >= 2`. Provided for `len`/`is_empty` consistency.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node named by `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not come from this interner.
    pub fn node(&self, id: FormulaId) -> &Node {
        &self.nodes[id.index()]
    }

    fn insert(&mut self, node: Node) -> FormulaId {
        if let Some(&id) = self.ids.get(&node) {
            return id;
        }
        let id = FormulaId(u32::try_from(self.nodes.len()).expect("interner overflow"));
        self.nodes.push(node.clone());
        self.ids.insert(node, id);
        id
    }

    // ------------------------------------------------------------------
    // Smart constructors (the interned mirror of `crate::simplify`).
    // ------------------------------------------------------------------

    /// Interns an atomic proposition.
    pub fn mk_atom(&mut self, p: Prop) -> FormulaId {
        self.insert(Node::Atom(p))
    }

    /// Smart negation: folds constants, removes double negations.
    pub fn mk_not(&mut self, a: FormulaId) -> FormulaId {
        match self.node(a) {
            Node::True => FormulaId::FALSE,
            Node::False => FormulaId::TRUE,
            Node::Not(inner) => *inner,
            _ => self.insert(Node::Not(a)),
        }
    }

    /// Smart binary conjunction.
    pub fn mk_and(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        self.mk_and_all([a, b])
    }

    /// Smart binary disjunction.
    pub fn mk_or(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        self.mk_or_all([a, b])
    }

    /// Smart n-ary conjunction: flattens nested conjunctions, sorts and
    /// deduplicates operands, folds constants and complementary pairs.
    /// Returns `true` for an empty operand list.
    pub fn mk_and_all(&mut self, parts: impl IntoIterator<Item = FormulaId>) -> FormulaId {
        self.mk_nary(parts, true)
    }

    /// Smart n-ary disjunction (dual of [`Interner::mk_and_all`]). Returns
    /// `false` for an empty operand list.
    pub fn mk_or_all(&mut self, parts: impl IntoIterator<Item = FormulaId>) -> FormulaId {
        self.mk_nary(parts, false)
    }

    fn mk_nary(
        &mut self,
        parts: impl IntoIterator<Item = FormulaId>,
        conjunction: bool,
    ) -> FormulaId {
        let (absorbing, neutral) = if conjunction {
            (FormulaId::FALSE, FormulaId::TRUE)
        } else {
            (FormulaId::TRUE, FormulaId::FALSE)
        };
        let mut operands: Vec<FormulaId> = Vec::new();
        for part in parts {
            if part == absorbing {
                return absorbing;
            }
            if part == neutral {
                continue;
            }
            // Flatten one level: nested n-ary nodes of the same kind cannot
            // occur as children of each other, so this keeps the set flat.
            match (conjunction, self.node(part)) {
                (true, Node::And(children)) | (false, Node::Or(children)) => {
                    operands.extend(children.iter().copied());
                }
                _ => operands.push(part),
            }
        }
        operands.sort_unstable();
        operands.dedup();
        // Complementary-literal collapse: φ and ¬φ together absorb.
        for &op in &operands {
            if let Node::Not(inner) = self.node(op) {
                if operands.binary_search(inner).is_ok() {
                    return absorbing;
                }
            }
        }
        match operands.len() {
            0 => neutral,
            1 => operands[0],
            _ => {
                let node = if conjunction {
                    Node::And(operands.into_boxed_slice())
                } else {
                    Node::Or(operands.into_boxed_slice())
                };
                self.insert(node)
            }
        }
    }

    /// Smart implication.
    pub fn mk_implies(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        match (a, b) {
            (FormulaId::TRUE, _) => b,
            (FormulaId::FALSE, _) => FormulaId::TRUE,
            (_, FormulaId::TRUE) => FormulaId::TRUE,
            (_, FormulaId::FALSE) => self.mk_not(a),
            _ if a == b => FormulaId::TRUE,
            _ => self.insert(Node::Implies(a, b)),
        }
    }

    /// Smart timed until.
    pub fn mk_until(&mut self, a: FormulaId, i: Interval, b: FormulaId) -> FormulaId {
        if i.is_empty() || b == FormulaId::FALSE {
            return FormulaId::FALSE;
        }
        self.insert(Node::Until(a, i, b))
    }

    /// Smart timed eventually.
    pub fn mk_eventually(&mut self, i: Interval, a: FormulaId) -> FormulaId {
        if i.is_empty() || a == FormulaId::FALSE {
            return FormulaId::FALSE;
        }
        self.insert(Node::Eventually(i, a))
    }

    /// Smart timed always.
    pub fn mk_always(&mut self, i: Interval, a: FormulaId) -> FormulaId {
        if i.is_empty() || a == FormulaId::TRUE {
            return FormulaId::TRUE;
        }
        self.insert(Node::Always(i, a))
    }

    // ------------------------------------------------------------------
    // Conversion to and from the plain `Formula` tree.
    // ------------------------------------------------------------------

    /// Interns a formula tree, canonicalising it through the smart
    /// constructors (so `intern` also *simplifies*: the id of `a ∧ a` is the
    /// id of `a`).
    pub fn intern(&mut self, phi: &Formula) -> FormulaId {
        match phi {
            Formula::True => FormulaId::TRUE,
            Formula::False => FormulaId::FALSE,
            Formula::Atom(p) => self.mk_atom(p.clone()),
            Formula::Not(a) => {
                let a = self.intern(a);
                self.mk_not(a)
            }
            Formula::And(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_and(a, b)
            }
            Formula::Or(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_or(a, b)
            }
            Formula::Implies(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_implies(a, b)
            }
            Formula::Until(a, i, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_until(a, *i, b)
            }
            Formula::Eventually(i, a) => {
                let a = self.intern(a);
                self.mk_eventually(*i, a)
            }
            Formula::Always(i, a) => {
                let a = self.intern(a);
                self.mk_always(*i, a)
            }
        }
    }

    /// Rebuilds the plain formula tree named by `id`.
    ///
    /// N-ary conjunctions/disjunctions are rebuilt as left-associated binary
    /// trees over *structurally* sorted operands, which is exactly the shape
    /// [`crate::simplify`] has always produced — so resolving an interned
    /// formula and simplifying a plain one agree syntactically.
    pub fn resolve(&self, id: FormulaId) -> Formula {
        match self.node(id) {
            Node::True => Formula::True,
            Node::False => Formula::False,
            Node::Atom(p) => Formula::Atom(p.clone()),
            Node::Not(a) => Formula::not(self.resolve(*a)),
            Node::And(children) => self.resolve_nary(children, true),
            Node::Or(children) => self.resolve_nary(children, false),
            Node::Implies(a, b) => Formula::implies(self.resolve(*a), self.resolve(*b)),
            Node::Until(a, i, b) => Formula::until(self.resolve(*a), *i, self.resolve(*b)),
            Node::Eventually(i, a) => Formula::eventually(*i, self.resolve(*a)),
            Node::Always(i, a) => Formula::always(*i, self.resolve(*a)),
        }
    }

    fn resolve_nary(&self, children: &[FormulaId], conjunction: bool) -> Formula {
        let mut resolved: Vec<Formula> = children.iter().map(|&c| self.resolve(c)).collect();
        resolved.sort();
        let mut iter = resolved.into_iter();
        let first = iter.next().expect("n-ary nodes have at least two operands");
        iter.fold(first, |acc, f| {
            if conjunction {
                Formula::and(acc, f)
            } else {
                Formula::or(acc, f)
            }
        })
    }

    // ------------------------------------------------------------------
    // Interned progression (Sec. IV of the paper).
    // ------------------------------------------------------------------

    /// Progresses `id` over the observed segment `trace`, anchoring residual
    /// obligations at `next_base` — the interned counterpart of
    /// [`crate::progress`].
    pub fn progress(&mut self, trace: &TimedTrace, id: FormulaId, next_base: u64) -> FormulaId {
        if trace.is_empty() {
            return id;
        }
        self.progress_at(trace, 0, id, next_base)
    }

    fn progress_at(
        &mut self,
        trace: &TimedTrace,
        i: usize,
        id: FormulaId,
        next_base: u64,
    ) -> FormulaId {
        let n = trace.len();
        debug_assert!(i < n, "progress_at called past the end of the segment");
        match self.node(id).clone() {
            Node::True => FormulaId::TRUE,
            Node::False => FormulaId::FALSE,
            Node::Atom(p) => {
                if trace.state(i).holds_prop(&p) {
                    FormulaId::TRUE
                } else {
                    FormulaId::FALSE
                }
            }
            Node::Not(a) => {
                let a = self.progress_at(trace, i, a, next_base);
                self.mk_not(a)
            }
            Node::And(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_at(trace, i, c, next_base))
                    .collect();
                self.mk_and_all(parts)
            }
            Node::Or(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_at(trace, i, c, next_base))
                    .collect();
                self.mk_or_all(parts)
            }
            Node::Implies(a, b) => {
                let a = self.progress_at(trace, i, a, next_base);
                let b = self.progress_at(trace, i, b, next_base);
                self.mk_implies(a, b)
            }
            // Algorithm 2 (Eventually): disjunction over the in-interval
            // positions plus a residual if the interval outlives the segment.
            Node::Eventually(interval, a) => {
                let base = trace.time(i);
                let elapsed = next_base.saturating_sub(base);
                let parts: Vec<FormulaId> = (i..n)
                    .filter(|&j| interval.contains(trace.time(j) - base))
                    .map(|j| self.progress_at(trace, j, a, next_base))
                    .collect();
                let observed = self.mk_or_all(parts);
                if interval.elapsed_by(elapsed) {
                    observed
                } else {
                    let residual = self.mk_eventually(interval.shift_down(elapsed), a);
                    self.mk_or(observed, residual)
                }
            }
            // Algorithm 1 (Always): conjunction over the in-interval positions
            // plus a residual if the interval outlives the segment.
            Node::Always(interval, a) => {
                let base = trace.time(i);
                let elapsed = next_base.saturating_sub(base);
                let parts: Vec<FormulaId> = (i..n)
                    .filter(|&j| interval.contains(trace.time(j) - base))
                    .map(|j| self.progress_at(trace, j, a, next_base))
                    .collect();
                let observed = self.mk_and_all(parts);
                if interval.elapsed_by(elapsed) {
                    observed
                } else {
                    let residual = self.mk_always(interval.shift_down(elapsed), a);
                    self.mk_and(observed, residual)
                }
            }
            // Algorithm 3 (Until).
            Node::Until(a, interval, b) => {
                let base = trace.time(i);
                let elapsed = next_base.saturating_sub(base);
                // A: φ1 at every position strictly before the interval opens.
                let parts: Vec<FormulaId> = (i..n)
                    .filter(|&j| trace.time(j) - base < interval.start())
                    .map(|j| self.progress_at(trace, j, a, next_base))
                    .collect();
                let pre = self.mk_and_all(parts);
                // B: an observed witness for φ2 within the interval, φ1 at
                // every earlier position of the segment.
                let witnesses: Vec<FormulaId> = (i..n)
                    .filter(|&j| interval.contains(trace.time(j) - base))
                    .map(|j| {
                        let up: Vec<FormulaId> = (i..j)
                            .map(|k| self.progress_at(trace, k, a, next_base))
                            .collect();
                        let up_to_j = self.mk_and_all(up);
                        let at_j = self.progress_at(trace, j, b, next_base);
                        self.mk_and(up_to_j, at_j)
                    })
                    .collect();
                let observed_witness = self.mk_or_all(witnesses);
                // Residual: the witness lies beyond the segment.
                let future_witness = if interval.elapsed_by(elapsed) {
                    FormulaId::FALSE
                } else {
                    let all: Vec<FormulaId> = (i..n)
                        .map(|k| self.progress_at(trace, k, a, next_base))
                        .collect();
                    let all_a = self.mk_and_all(all);
                    let residual = self.mk_until(a, interval.shift_down(elapsed), b);
                    self.mk_and(all_a, residual)
                };
                let witness = self.mk_or(observed_witness, future_witness);
                self.mk_and(pre, witness)
            }
        }
    }

    /// Progression over a segment consisting of a *single* observation
    /// (`state` at `time`) — the shape the solver's search steps through, kept
    /// allocation-free on the hot path.
    pub fn progress_one(
        &mut self,
        state: &State,
        time: u64,
        id: FormulaId,
        next_base: u64,
    ) -> FormulaId {
        match self.node(id).clone() {
            Node::True => FormulaId::TRUE,
            Node::False => FormulaId::FALSE,
            Node::Atom(p) => {
                if state.holds_prop(&p) {
                    FormulaId::TRUE
                } else {
                    FormulaId::FALSE
                }
            }
            Node::Not(a) => {
                let a = self.progress_one(state, time, a, next_base);
                self.mk_not(a)
            }
            Node::And(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_one(state, time, c, next_base))
                    .collect();
                self.mk_and_all(parts)
            }
            Node::Or(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_one(state, time, c, next_base))
                    .collect();
                self.mk_or_all(parts)
            }
            Node::Implies(a, b) => {
                let a = self.progress_one(state, time, a, next_base);
                let b = self.progress_one(state, time, b, next_base);
                self.mk_implies(a, b)
            }
            Node::Eventually(interval, a) => {
                let elapsed = next_base.saturating_sub(time);
                let observed = if interval.contains(0) {
                    self.progress_one(state, time, a, next_base)
                } else {
                    FormulaId::FALSE
                };
                if interval.elapsed_by(elapsed) {
                    observed
                } else {
                    let residual = self.mk_eventually(interval.shift_down(elapsed), a);
                    self.mk_or(observed, residual)
                }
            }
            Node::Always(interval, a) => {
                let elapsed = next_base.saturating_sub(time);
                let observed = if interval.contains(0) {
                    self.progress_one(state, time, a, next_base)
                } else {
                    FormulaId::TRUE
                };
                if interval.elapsed_by(elapsed) {
                    observed
                } else {
                    let residual = self.mk_always(interval.shift_down(elapsed), a);
                    self.mk_and(observed, residual)
                }
            }
            Node::Until(a, interval, b) => {
                let elapsed = next_base.saturating_sub(time);
                // The single position is either before the interval opens
                // (φ1 must hold there) or inside it (it may witness φ2).
                let pre = if interval.start() > 0 {
                    self.progress_one(state, time, a, next_base)
                } else {
                    FormulaId::TRUE
                };
                let observed_witness = if interval.contains(0) {
                    self.progress_one(state, time, b, next_base)
                } else {
                    FormulaId::FALSE
                };
                let future_witness = if interval.elapsed_by(elapsed) {
                    FormulaId::FALSE
                } else {
                    let all_a = self.progress_one(state, time, a, next_base);
                    let residual = self.mk_until(a, interval.shift_down(elapsed), b);
                    self.mk_and(all_a, residual)
                };
                let witness = self.mk_or(observed_witness, future_witness);
                self.mk_and(pre, witness)
            }
        }
    }

    /// Progression over an observation gap of `elapsed` time units — the
    /// interned counterpart of [`crate::progress_gap`].
    pub fn progress_gap(&mut self, id: FormulaId, elapsed: u64) -> FormulaId {
        if elapsed == 0 {
            return id;
        }
        match self.node(id).clone() {
            Node::True | Node::False | Node::Atom(_) => id,
            Node::Not(a) => {
                let a = self.progress_gap(a, elapsed);
                self.mk_not(a)
            }
            Node::And(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_gap(c, elapsed))
                    .collect();
                self.mk_and_all(parts)
            }
            Node::Or(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_gap(c, elapsed))
                    .collect();
                self.mk_or_all(parts)
            }
            Node::Implies(a, b) => {
                let a = self.progress_gap(a, elapsed);
                let b = self.progress_gap(b, elapsed);
                self.mk_implies(a, b)
            }
            Node::Eventually(i, a) => {
                if i.elapsed_by(elapsed) {
                    FormulaId::FALSE
                } else {
                    self.mk_eventually(i.shift_down(elapsed), a)
                }
            }
            Node::Always(i, a) => {
                if i.elapsed_by(elapsed) {
                    FormulaId::TRUE
                } else {
                    self.mk_always(i.shift_down(elapsed), a)
                }
            }
            Node::Until(a, i, b) => {
                if i.elapsed_by(elapsed) {
                    FormulaId::FALSE
                } else {
                    self.mk_until(a, i.shift_down(elapsed), b)
                }
            }
        }
    }

    /// Closes a formula against the empty future: the finite-trace verdict of
    /// `id` on an empty remainder (`◇`/`U` obligations fail, `□` obligations
    /// hold vacuously). Agrees with evaluating the resolved formula on an
    /// empty [`TimedTrace`].
    pub fn eval_empty(&self, id: FormulaId) -> bool {
        match self.node(id) {
            Node::True => true,
            Node::False => false,
            Node::Atom(_) => false,
            Node::Not(a) => !self.eval_empty(*a),
            Node::And(children) => children.iter().all(|&c| self.eval_empty(c)),
            Node::Or(children) => children.iter().any(|&c| self.eval_empty(c)),
            Node::Implies(a, b) => !self.eval_empty(*a) || self.eval_empty(*b),
            Node::Eventually(..) | Node::Until(..) => false,
            Node::Always(..) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, simplify, state};

    #[test]
    fn constants_have_fixed_ids() {
        let mut interner = Interner::new();
        assert_eq!(interner.intern(&Formula::True), FormulaId::TRUE);
        assert_eq!(interner.intern(&Formula::False), FormulaId::FALSE);
        assert!(FormulaId::TRUE.is_constant());
        assert_eq!(FormulaId::TRUE.as_bool(), Some(true));
        assert_eq!(FormulaId::FALSE.as_bool(), Some(false));
    }

    #[test]
    fn interning_is_hash_consing() {
        let mut interner = Interner::new();
        let phi = Formula::until(
            Formula::not(Formula::atom("a")),
            Interval::bounded(0, 8),
            Formula::atom("b"),
        );
        let a = interner.intern(&phi);
        let b = interner.intern(&phi.clone());
        assert_eq!(a, b);
        let before = interner.len();
        let _ = interner.intern(&phi);
        assert_eq!(interner.len(), before, "re-interning allocates nothing");
    }

    #[test]
    fn intern_resolve_matches_simplify() {
        let mut interner = Interner::new();
        let samples = [
            Formula::and(
                Formula::atom("a"),
                Formula::and(Formula::True, Formula::atom("a")),
            ),
            Formula::or(
                Formula::not(Formula::not(Formula::atom("b"))),
                Formula::False,
            ),
            Formula::implies(Formula::atom("a"), Formula::atom("a")),
            Formula::until(
                Formula::atom("a"),
                Interval::bounded(0, 5),
                Formula::or(Formula::atom("b"), Formula::False),
            ),
            Formula::and(
                Formula::and(Formula::atom("c"), Formula::atom("a")),
                Formula::atom("b"),
            ),
        ];
        for phi in samples {
            let id = interner.intern(&phi);
            assert_eq!(interner.resolve(id), simplify(&phi), "phi = {phi}");
        }
    }

    #[test]
    fn complementary_operands_collapse() {
        let mut interner = Interner::new();
        let a = interner.intern(&Formula::atom("a"));
        let na = interner.mk_not(a);
        assert_eq!(interner.mk_and(a, na), FormulaId::FALSE);
        assert_eq!(interner.mk_or(a, na), FormulaId::TRUE);
        assert_eq!(interner.mk_not(na), a);
    }

    #[test]
    fn progress_one_matches_general_progress() {
        let mut interner = Interner::new();
        let formulas = [
            crate::parse("a U[0,8) b").unwrap(),
            crate::parse("F[2,6) a").unwrap(),
            crate::parse("G[0,4) (a | b)").unwrap(),
            crate::parse("!a U[2,9) (a & b)").unwrap(),
        ];
        let states = [state!["a"], state!["b"], state![], state!["a", "b"]];
        for phi in &formulas {
            for s in &states {
                for time in [0u64, 2, 5] {
                    for next in [time, time + 1, time + 4, time + 20] {
                        let id = interner.intern(phi);
                        let via_one = interner.progress_one(s, time, id, next);
                        let trace = TimedTrace::new(vec![s.clone()], vec![time]).unwrap();
                        let via_trace = interner.progress(&trace, id, next);
                        assert_eq!(
                            via_one, via_trace,
                            "phi = {phi}, state = {s}, time = {time}, next = {next}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn eval_empty_matches_empty_trace_evaluation() {
        let mut interner = Interner::new();
        let samples = [
            crate::parse("true").unwrap(),
            crate::parse("p").unwrap(),
            crate::parse("!p").unwrap(),
            crate::parse("F[0,5) p").unwrap(),
            crate::parse("G[0,5) p").unwrap(),
            crate::parse("p U[0,5) q").unwrap(),
            crate::parse("(G[0,5) p) & !q").unwrap(),
        ];
        for phi in samples {
            let id = interner.intern(&phi);
            assert_eq!(
                interner.eval_empty(id),
                evaluate(&TimedTrace::empty(), &phi),
                "phi = {phi}"
            );
        }
    }
}
