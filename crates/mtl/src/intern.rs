//! Hash-consed formula storage: an arena/interner in which every distinct
//! (canonicalised) formula is stored exactly once and named by a small
//! [`FormulaId`].
//!
//! The solver's progression search (`rvmtl-solver`) memoises on
//! `(cut, time, pending formula)` millions of times per query. With the plain
//! [`Formula`] tree that means deep clones, deep structural hashing and deep
//! equality on every lookup. Interning collapses all three to `u32` copies and
//! compares:
//!
//! * **clone** — [`FormulaId`] is `Copy`;
//! * **eq** — ids are equal iff the canonical formulas are structurally equal
//!   (hash-consing invariant: one node per distinct formula);
//! * **hash** — the id is its own perfect hash; no tree walk.
//!
//! Construction goes through *smart constructors* ([`Interner::mk_and_all`],
//! [`Interner::mk_not`], …) that apply the same canonicalising rewrites as
//! [`crate::simplify`] — constant folding, double-negation elimination,
//! flattening/sorting/deduplication of `∧`/`∨` operands, complementary-literal
//! collapse, empty-interval collapse — so structurally different but
//! simplification-equivalent formulas receive the same id. The progression
//! engine ([`Interner::progress`], [`Interner::progress_one`],
//! [`Interner::progress_gap`]) builds its results exclusively through these
//! constructors.
//!
//! An [`Interner`] is a plain value, not a global: the solver keeps one per
//! query, and the `Formula`-level entry points of this crate create a
//! short-lived one per call. Memory grows with the number of distinct
//! formulas ever interned and is released when the interner is dropped;
//! [`Interner::compact`] renumbers the live part.
//!
//! # Shift-normal form
//!
//! On top of hash-consing, the arena maintains a zone-style *shift-normal*
//! decomposition: alongside horizon tables, every node carries its
//! [shift slack](Interner::shift_slack) — the greatest common offset that
//! can be factored out of its top-level live intervals exactly — and its
//! [canonical residual](Interner::shift_canon), the node with that offset
//! removed. A formula thus resolves to a `(shift, canonical id)` pair
//! ([`ShiftedId`], via [`crate::ArenaOps::normalize`]), and two pending
//! obligations that are exact time-translates of each other share one arena
//! node. The invariant buys a memo-key contract used throughout the solver
//! and the runtime:
//!
//! * the progression caches are keyed *shift-relative* —
//!   `(state, canonical id, elapsed − shift)` — because a translate's
//!   progression at matching relative times is literally the same id while
//!   the first window has not opened (shift ≥ 1), so one entry serves the
//!   obligation at every absolute time it recurs;
//! * interval-splitting progression emits [`RangeKind::Translated`](crate::RangeKind)
//!   ranges sweeping one zone per tick, which a union-of-contributions
//!   search collapses to the earliest tick;
//! * [`Interner::compact`] keeps a live node's canonical residual alive with
//!   it, so decomposition tables never dangle and a cache entry survives
//!   exactly when its canonical endpoints do.
//!
//! The slack is deliberately conservative where translation would be
//! unsound: an `Until` whose left argument is not time-invariant gets slack
//! 0 (the left obligation is evaluated at observations before the window
//! opens, anchoring the node absolutely), as does any node whose window has
//! already opened.
//!
//! # Metadata layout and the shift-free fast path
//!
//! All per-node derived data lives in **one** dense side table of fused
//! [`NodeMeta`] records — kind tag, temporal horizon, shift slack and
//! canonical residual id in a single entry — so the hot-path sequence "read
//! the slack, branch, read the horizon, read the canon" costs one indexed
//! load instead of three parallel-`Vec` lookups ([`Interner::node_meta`]).
//! The progression caches are keyed by packed scalars ([`OneKey`],
//! [`GapKey`]): the logical `(state, canon, elapsed − shift, shifted?)` and
//! `(canon, elapsed − shift)` tuples are folded into one `u128` each, which
//! hashes as two words and compares as one integer.
//!
//! On top of that, the arena keeps a **shift watermark**
//! ([`Interner::ever_shifted`]): `false` until the first node with a nonzero
//! finite slack is interned. Formulas whose windows all start at zero (the
//! common phi4-style specifications) never trip it, and while it is down the
//! zone machinery is provably inert — every slack is 0 or `u64::MAX`, so
//! [`crate::ArenaOps::normalize`] short-circuits to the identity, cache keys
//! degrade to the direct `(state, id, min(elapsed, horizon))` form, and the
//! solver skips its pre-memo zone rewrite wholesale. The watermark is
//! monotone during forward operation and recomputed by [`Interner::compact`]
//! (it may drop back to `false` when GC collects the last shifted node).

use crate::hashing::FxHashMap;
use crate::{Formula, Interval, Prop, SplitRange, State, TimedTrace};
use std::cell::Cell;

/// A reference to an interned formula. Cheap to copy, compare and hash;
/// meaningful only together with the [`Interner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FormulaId(u32);

impl FormulaId {
    /// The id of the constant `true` (the same in every interner).
    pub const TRUE: FormulaId = FormulaId(0);
    /// The id of the constant `false` (the same in every interner).
    pub const FALSE: FormulaId = FormulaId(1);

    /// Returns `true` if this id names the constant `true` or `false`.
    pub fn is_constant(self) -> bool {
        self == FormulaId::TRUE || self == FormulaId::FALSE
    }

    /// Returns `Some(b)` if this id names the boolean constant `b`.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            FormulaId::TRUE => Some(true),
            FormulaId::FALSE => Some(false),
            _ => None,
        }
    }

    /// The raw index (useful for dense side tables).
    ///
    /// Only dense for ids produced by an [`Interner`]; the ids of a
    /// [`crate::ShardedInterner`] pack a shard number into the low bits and
    /// are sparse in this index space.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from its raw representation (crate-internal: used by the
    /// sharded arena's packed ids and by compaction).
    pub(crate) fn from_raw(raw: u32) -> Self {
        FormulaId(raw)
    }

    /// The raw representation (crate-internal).
    pub(crate) fn raw(self) -> u32 {
        self.0
    }
}

/// One interned formula node. Children are [`FormulaId`]s, so equality and
/// hashing of a node touch only one level of the tree.
///
/// `And`/`Or` are n-ary with operands sorted by id and deduplicated — the
/// interned counterpart of the sorted operand sets `crate::simplify` builds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// An atomic proposition.
    Atom(Prop),
    /// Negation `¬φ`.
    Not(FormulaId),
    /// N-ary conjunction (≥ 2 operands, sorted by id, deduplicated).
    And(Box<[FormulaId]>),
    /// N-ary disjunction (≥ 2 operands, sorted by id, deduplicated).
    Or(Box<[FormulaId]>),
    /// Implication `φ₁ → φ₂`.
    Implies(FormulaId, FormulaId),
    /// Timed until `φ₁ U_I φ₂`.
    Until(FormulaId, Interval, FormulaId),
    /// Timed eventually `◇_I φ`.
    Eventually(Interval, FormulaId),
    /// Timed always `□_I φ`.
    Always(Interval, FormulaId),
}

/// The operator kind of an interned [`Node`], stored in [`NodeMeta`] so hot
/// paths can classify a node from the fused metadata record without cloning
/// the node itself (an `And`/`Or` clone copies its boxed operand slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum NodeKind {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// An atomic proposition.
    Atom,
    /// Negation.
    Not,
    /// N-ary conjunction.
    And,
    /// N-ary disjunction.
    Or,
    /// Implication.
    Implies,
    /// Timed until.
    Until,
    /// Timed eventually.
    Eventually,
    /// Timed always.
    Always,
}

impl NodeKind {
    /// The kind tag of a node.
    pub fn of(node: &Node) -> NodeKind {
        match node {
            Node::True => NodeKind::True,
            Node::False => NodeKind::False,
            Node::Atom(_) => NodeKind::Atom,
            Node::Not(_) => NodeKind::Not,
            Node::And(_) => NodeKind::And,
            Node::Or(_) => NodeKind::Or,
            Node::Implies(..) => NodeKind::Implies,
            Node::Until(..) => NodeKind::Until,
            Node::Eventually(..) => NodeKind::Eventually,
            Node::Always(..) => NodeKind::Always,
        }
    }
}

/// The fused per-node metadata record: everything the progression and solver
/// hot paths need to know about a node *besides* its children, packed into
/// one dense table entry so classifying a node costs a single indexed read.
///
/// Before this record existed the arena kept three parallel `Vec`s
/// (`horizons`, `slacks`, `canons`) and the hot paths paid one bounds-checked
/// indexed load — usually a cache miss each — per queried property. Fusing
/// them means the common sequence "read the slack, branch, read the horizon,
/// read the canon" touches one table slot instead of three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeMeta {
    /// The temporal horizon (see [`Interner::temporal_horizon`]).
    pub horizon: u64,
    /// The shift slack (see [`Interner::shift_slack`]); `u64::MAX` for
    /// propositional (translation-invariant) formulas.
    pub slack: u64,
    /// The canonical shift-normal residual (see [`Interner::shift_canon`]);
    /// the node itself when the slack is 0 or `u64::MAX`.
    pub canon: FormulaId,
    /// The operator kind of the node.
    pub kind: NodeKind,
}

impl NodeMeta {
    /// Returns `true` if progression of the node is independent of elapsed
    /// time (horizon 0).
    pub fn is_time_invariant(self) -> bool {
        self.horizon == 0
    }

    /// Returns `true` if the node decomposes into a nonzero shift plus a
    /// canonical residual (slack in `1..u64::MAX`) — the only nodes for which
    /// `canon` differs from the node itself.
    pub fn is_translatable(self) -> bool {
        self.slack >= 1 && self.slack != u64::MAX
    }
}

/// Packed key of the memoised single-observation progressions
/// ([`crate::ArenaOps::progress_one_cached`]): the logical tuple
/// `(state, formula, relative elapsed, shifted-flag)` packed into one `u128`
/// scalar — `state` in bits 96..128, `formula` in bits 64..96, the flag in
/// bit 63 and the zig-zag-coded relative time in bits 0..63. One scalar
/// hashes as two words and compares as one integer, where the unpacked
/// 4-tuple hashed four fields and compared field by field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OneKey(u128);

/// Zig-zag encoding of a signed relative time (sign folded into bit 0 so
/// small magnitudes stay small).
#[inline]
fn zigzag(rel: i64) -> u64 {
    (rel.wrapping_shl(1) ^ (rel >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

impl OneKey {
    /// Packs a cache key.
    ///
    /// # Panics
    ///
    /// Panics if `rel ≥ 2^62` or `rel < −2^62` (the exact range of the
    /// 63-bit zig-zag payload; the asymmetry is the usual two's-complement
    /// one). Relative elapsed times are bounded by temporal horizons and
    /// shift slacks, i.e. by interval endpoints of the monitored formulas;
    /// endpoints near 2^62 time units are not meaningful inputs.
    pub fn pack(state: StateKey, formula: FormulaId, rel: i64, shifted: bool) -> OneKey {
        let z = zigzag(rel);
        assert!(
            z >> 63 == 0,
            "relative elapsed time {rel} overflows the packed progression-cache key"
        );
        OneKey(
            ((state.raw() as u128) << 96)
                | ((formula.raw() as u128) << 64)
                | ((shifted as u128) << 63)
                | z as u128,
        )
    }

    /// The interned observation state of the key.
    pub fn state(self) -> StateKey {
        StateKey::from_raw((self.0 >> 96) as u32)
    }

    /// The formula endpoint of the key (the canonical residual for shifted
    /// entries, the formula itself for direct ones).
    pub fn formula(self) -> FormulaId {
        FormulaId::from_raw((self.0 >> 64) as u32)
    }

    /// The relative elapsed time (`elapsed − shift` for shifted entries,
    /// horizon-clamped elapsed for direct ones).
    pub fn rel(self) -> i64 {
        unzigzag(self.0 as u64 & (u64::MAX >> 1))
    }

    /// Returns `true` for a shift-relative entry.
    pub fn shifted(self) -> bool {
        (self.0 >> 63) & 1 == 1
    }
}

/// Packed key of the memoised gap progressions
/// ([`crate::ArenaOps::progress_gap_cached`]): the logical pair
/// `(formula, relative elapsed)` as one `u128` — formula in bits 64..96,
/// zig-zag-coded relative time in bits 0..64 (the full 64-bit code, so no
/// range restriction applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GapKey(u128);

impl GapKey {
    /// Packs a cache key.
    pub fn pack(formula: FormulaId, rel: i64) -> GapKey {
        GapKey(((formula.raw() as u128) << 64) | zigzag(rel) as u128)
    }

    /// The formula endpoint of the key.
    pub fn formula(self) -> FormulaId {
        FormulaId::from_raw((self.0 >> 64) as u32)
    }

    /// The relative elapsed time.
    pub fn rel(self) -> i64 {
        unzigzag(self.0 as u64)
    }
}

/// A formula in *shift-normal* decomposition: the pair `(shift, id)` names
/// the formula obtained by shifting every top-level temporal interval of the
/// canonical residual `id` up by `shift` time units.
///
/// Two pending obligations that are exact time-translates of each other (the
/// same residual shape anchored at different absolute times — ubiquitous
/// under clock-skew windows, where one obligation is progressed against every
/// admissible delivery time) decompose to the *same* canonical `id` and
/// differ only in the `shift` word. The arena therefore stores one node per
/// translate class, the progression caches hit at every translate (see
/// [`crate::ArenaOps::progress_one_cached`]), and monitor pending sets /
/// GC root sets shrink to canonical residuals plus offsets.
///
/// Produced by [`crate::ArenaOps::normalize`]; turned back into a plain id by
/// [`crate::ArenaOps::materialize`]. For formulas that admit no exact
/// translation (`shift_slack` 0) and for time-invariant formulas the shift is
/// 0 and `id` is the formula itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShiftedId {
    /// Offset of the first live window: every top-level temporal interval of
    /// the denoted formula starts `shift` units after `id`'s.
    pub shift: u64,
    /// The canonical (shift-normal) residual.
    pub id: FormulaId,
}

impl ShiftedId {
    /// The decomposition of a formula that is its own canonical form.
    pub fn unshifted(id: FormulaId) -> Self {
        ShiftedId { shift: 0, id }
    }
}

/// A reference to an interned [`State`] (see [`Interner::intern_state`]).
/// Cheap to copy, compare and hash; meaningful only together with the
/// interner that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateKey(u32);

impl StateKey {
    /// The raw index (useful for dense side tables). Only dense for keys
    /// produced by an [`Interner`] (see [`FormulaId::index`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a key from its raw representation (crate-internal).
    pub(crate) fn from_raw(raw: u32) -> Self {
        StateKey(raw)
    }

    /// The raw representation (crate-internal).
    pub(crate) fn raw(self) -> u32 {
        self.0
    }
}

/// The formula arena. See the module documentation.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    nodes: Vec<Node>,
    ids: FxHashMap<Node, FormulaId>,
    /// The fused per-node metadata records ([`NodeMeta`]: kind tag, temporal
    /// horizon, shift slack, canonical residual), computed once at interning
    /// time — children are always interned before their parents, so one
    /// bottom-up step per node suffices. One indexed read serves every
    /// metadata query of the hot paths.
    metas: Vec<NodeMeta>,
    /// Arena-level shift watermark: `true` once any node with a nonzero
    /// finite shift slack has been interned. While `false` the whole zone
    /// machinery is provably inert — every slack is 0 or `u64::MAX`, so
    /// [`crate::ArenaOps::normalize`] is the identity, the progression
    /// caches use direct keys only, and the solver skips its pre-memo zone
    /// rewrite. Recomputed by [`Interner::compact`] from the surviving nodes
    /// (the watermark may drop back to `false` when GC collects the last
    /// shifted node).
    ever_shifted: bool,
    /// Interned observation states (see [`Interner::intern_state`]).
    states: Vec<State>,
    state_ids: FxHashMap<State, StateKey>,
    /// Memoised single-observation progressions, keyed *shift-relative*:
    /// `(state, canonical residual, elapsed − shift, shifted?)` packed into a
    /// [`OneKey`] scalar. A formula with shift slack σ ≥ 1 shares one entry
    /// with every exact translate of its canonical residual (the progression
    /// result is literally the same id at matching relative elapsed time —
    /// see [`crate::ArenaOps::progress_one_cached`]); formulas with slack 0
    /// keep direct `(state, formula, min(elapsed, horizon))` entries, flagged
    /// so they never collide with the shifted entries of the same canonical
    /// id (the observation participates in an open window only for the
    /// slack-0 member). The relative elapsed time is clamped at the canonical
    /// residual's horizon (progression is elapsed-independent beyond it).
    one_cache: FxHashMap<OneKey, FormulaId>,
    /// Cumulative hit/miss tallies of the two caches (telemetry; preserved
    /// across [`Interner::compact`]). `Cell` because lookups take `&self` —
    /// this makes the sequential arena `!Sync`, which it already was in
    /// spirit: concurrent paths use [`crate::ShardedInterner`].
    stats: CacheStatCells,
    /// Memoised gap progressions, keyed `(canonical residual, elapsed −
    /// shift)` packed into a [`GapKey`] scalar. Gap progression has no
    /// slack-0 asymmetry (no observation is consumed), so shifted and direct
    /// entries share one keyspace; negative relative times denote pure
    /// translations (`gap(S_σ c, Δ) = S_{σ−Δ} c` for `Δ ≤ σ`).
    gap_cache: FxHashMap<GapKey, FormulaId>,
}

impl Interner {
    /// Creates an interner holding only the two boolean constants.
    pub fn new() -> Self {
        let mut interner = Interner {
            nodes: Vec::with_capacity(64),
            ids: FxHashMap::default(),
            metas: Vec::with_capacity(64),
            ever_shifted: false,
            states: Vec::new(),
            state_ids: FxHashMap::default(),
            one_cache: FxHashMap::default(),
            gap_cache: FxHashMap::default(),
            stats: CacheStatCells::default(),
        };
        let t = interner.insert(Node::True);
        let f = interner.insert(Node::False);
        debug_assert_eq!(t, FormulaId::TRUE);
        debug_assert_eq!(f, FormulaId::FALSE);
        interner
    }

    /// Number of distinct formulas interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always `false`: a fresh interner already holds the two boolean
    /// constants, so `len() >= 2`. Provided for `len`/`is_empty` consistency.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node named by `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not come from this interner.
    pub fn node(&self, id: FormulaId) -> &Node {
        &self.nodes[id.index()]
    }

    // Overflowing 2^32 interned nodes is unrecoverable by design (ids are
    // u32 on the wire); aborting beats silently aliasing formulas.
    #[allow(clippy::expect_used)]
    fn insert(&mut self, node: Node) -> FormulaId {
        if let Some(&id) = self.ids.get(&node) {
            return id;
        }
        let id = FormulaId(u32::try_from(self.nodes.len()).expect("interner overflow"));
        let (horizon, slack) = self.meta_of(&node);
        // Every node starts as its own canonical form; a node with a positive
        // finite slack immediately factors the common offset out. The
        // canonical residual is interned through the same smart constructors
        // (recursively — its own slack is 0, so the recursion is one level
        // deep per distinct translate class).
        let kind = NodeKind::of(&node);
        self.nodes.push(node.clone());
        self.metas.push(NodeMeta {
            horizon,
            slack,
            canon: id,
            kind,
        });
        self.ids.insert(node, id);
        if slack > 0 && slack < u64::MAX {
            self.ever_shifted = true;
            let canon = <Self as crate::ArenaOps>::translate_down(self, id, slack);
            self.metas[id.index()].canon = canon;
        }
        id
    }

    /// The temporal horizon and shift slack of a node, from its (already
    /// interned) children, in one pass over their fused metadata records.
    ///
    /// Horizon: a bounded interval `[s, e)` contributes `e`; an unbounded
    /// `[s, ∞)` contributes `s` (the delay after which its start saturates at
    /// 0); boolean connectives take the maximum of their operands.
    ///
    /// Slack: the largest exact downward time-translation of all top-level
    /// intervals. `u64::MAX` means the node has no top-level temporal
    /// operator (it is translation-*invariant*, not translatable). An
    /// `Until` whose left argument is not time-invariant admits no
    /// translation at all: the left obligation is evaluated at every
    /// observation *before* the window opens, anchoring the node absolutely
    /// (see [`Interner::shift_slack`]); boolean connectives take the minimum
    /// of their operands.
    fn meta_of(&self, node: &Node) -> (u64, u64) {
        fn endpoint(i: &Interval) -> u64 {
            i.end().unwrap_or(i.start())
        }
        let meta = |id: &FormulaId| self.metas[id.index()];
        match node {
            Node::True | Node::False | Node::Atom(_) => (0, u64::MAX),
            Node::Not(a) => {
                let m = meta(a);
                (m.horizon, m.slack)
            }
            Node::And(children) | Node::Or(children) => {
                children.iter().fold((0, u64::MAX), |(h, s), c| {
                    let m = meta(c);
                    (h.max(m.horizon), s.min(m.slack))
                })
            }
            Node::Implies(a, b) => {
                let (ma, mb) = (meta(a), meta(b));
                (ma.horizon.max(mb.horizon), ma.slack.min(mb.slack))
            }
            Node::Eventually(i, a) | Node::Always(i, a) => {
                (endpoint(i).max(meta(a).horizon), i.translation_slack())
            }
            Node::Until(a, i, b) => {
                let (ma, mb) = (meta(a), meta(b));
                let slack = if ma.horizon == 0 {
                    i.translation_slack()
                } else {
                    0
                };
                (endpoint(i).max(ma.horizon).max(mb.horizon), slack)
            }
        }
    }

    /// The *temporal horizon* of `id`: the largest interval endpoint occurring
    /// anywhere in the formula (the exclusive end `e` of a bounded interval
    /// `[s, e)`, the start `s` of an unbounded `[s, ∞)`).
    ///
    /// Two facts about progression follow from the horizon `T`, and the
    /// interval-splitting entry points ([`Interner::progress_one_over`],
    /// [`Interner::progress_gap_over`]) are built on them:
    ///
    /// 1. **Stability.** For any elapsed time `Δ ≥ T`, the progressions
    ///    [`Interner::progress_one`] and [`Interner::progress_gap`] no longer
    ///    depend on `Δ`: every bounded interval has fully elapsed (the
    ///    operator resolves to its observed part) and every unbounded start
    ///    has saturated at 0.
    /// 2. **Time invariance.** `T == 0` means every live interval in the
    ///    formula is `[0, ∞)`, so progression never depends on elapsed time at
    ///    *any* depth, and the property is preserved by progression. A
    ///    time-invariant pending formula rewrites identically along a trace
    ///    regardless of when its observations occur — only their order
    ///    matters.
    pub fn temporal_horizon(&self, id: FormulaId) -> u64 {
        self.metas[id.index()].horizon
    }

    /// Returns `true` if progression of `id` is independent of elapsed time
    /// (see [`Interner::temporal_horizon`]; equivalent to
    /// `temporal_horizon(id) == 0`). Boolean constants are time-invariant.
    pub fn is_time_invariant(&self, id: FormulaId) -> bool {
        self.metas[id.index()].horizon == 0
    }

    /// The fused metadata record of `id` — kind tag, temporal horizon, shift
    /// slack and canonical residual in one indexed read (see [`NodeMeta`]).
    pub fn node_meta(&self, id: FormulaId) -> NodeMeta {
        self.metas[id.index()]
    }

    /// The arena-level shift watermark: `true` once any node with a nonzero
    /// finite shift slack has been interned. While `false`, shift-normal
    /// decomposition is the identity on every id of this arena and the
    /// zone machinery (normalisation, representative rewriting, shift-
    /// relative cache keys) is skipped wholesale by its consumers.
    /// [`Interner::compact`] recomputes the flag from the surviving nodes.
    pub fn ever_shifted(&self) -> bool {
        self.ever_shifted
    }

    /// The *shift slack* of `id`: the largest `δ` for which translating every
    /// top-level temporal interval down by `δ` is exact (no endpoint clamps at
    /// zero) **and** gap/single-observation progression commutes with the
    /// translation, so `id` and its translate do identical future work at
    /// matching relative times. Concretely:
    ///
    /// * propositional formulas (no temporal operator reachable through
    ///   boolean connectives) have slack `u64::MAX` — they are translation
    ///   *invariant*;
    /// * `◇_I`/`□_I` contribute `I.start()` (their subformula is only ever
    ///   evaluated once the window has opened, at which point all translates
    ///   of a zone have progressed to the same absolute residual);
    /// * `U_I` contributes `I.start()` when its left argument is
    ///   time-invariant and `0` otherwise — the left obligation is progressed
    ///   at every observation *before* the window opens, and a non-invariant
    ///   left argument would anchor those progressions at absolute times;
    /// * boolean connectives take the minimum of their operands.
    ///
    /// The slack is the `shift` of [`crate::ArenaOps::normalize`] and the
    /// soundness bound of every shift-relative memoisation in this crate and
    /// the solver: two formulas with the same [`Interner::shift_canon`] and
    /// slacks ≥ 1 are exact time-translates whose progressions coincide at
    /// matching relative elapsed times.
    pub fn shift_slack(&self, id: FormulaId) -> u64 {
        self.metas[id.index()].slack
    }

    /// The canonical shift-normal residual of `id`: `id` with
    /// [`Interner::shift_slack`] factored out of every top-level interval
    /// (`id` itself when the slack is 0 or `u64::MAX`). Two formulas are
    /// exact time-translates of each other iff they share a canonical
    /// residual.
    pub fn shift_canon(&self, id: FormulaId) -> FormulaId {
        self.metas[id.index()].canon
    }

    // ------------------------------------------------------------------
    // Smart constructors (the interned mirror of `crate::simplify`).
    // ------------------------------------------------------------------

    /// Interns an atomic proposition.
    pub fn mk_atom(&mut self, p: Prop) -> FormulaId {
        self.insert(Node::Atom(p))
    }

    /// Smart negation: folds constants, removes double negations.
    pub fn mk_not(&mut self, a: FormulaId) -> FormulaId {
        match self.node(a) {
            Node::True => FormulaId::FALSE,
            Node::False => FormulaId::TRUE,
            Node::Not(inner) => *inner,
            _ => self.insert(Node::Not(a)),
        }
    }

    /// Smart binary conjunction.
    pub fn mk_and(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        self.mk_and_all([a, b])
    }

    /// Smart binary disjunction.
    pub fn mk_or(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        self.mk_or_all([a, b])
    }

    /// Smart n-ary conjunction: flattens nested conjunctions, sorts and
    /// deduplicates operands, folds constants and complementary pairs.
    /// Returns `true` for an empty operand list.
    pub fn mk_and_all(&mut self, parts: impl IntoIterator<Item = FormulaId>) -> FormulaId {
        self.mk_nary(parts, true)
    }

    /// Smart n-ary disjunction (dual of [`Interner::mk_and_all`]). Returns
    /// `false` for an empty operand list.
    pub fn mk_or_all(&mut self, parts: impl IntoIterator<Item = FormulaId>) -> FormulaId {
        self.mk_nary(parts, false)
    }

    fn mk_nary(
        &mut self,
        parts: impl IntoIterator<Item = FormulaId>,
        conjunction: bool,
    ) -> FormulaId {
        let (absorbing, neutral) = if conjunction {
            (FormulaId::FALSE, FormulaId::TRUE)
        } else {
            (FormulaId::TRUE, FormulaId::FALSE)
        };
        let mut operands: Vec<FormulaId> = Vec::new();
        for part in parts {
            if part == absorbing {
                return absorbing;
            }
            if part == neutral {
                continue;
            }
            // Flatten one level: nested n-ary nodes of the same kind cannot
            // occur as children of each other, so this keeps the set flat.
            match (conjunction, self.node(part)) {
                (true, Node::And(children)) | (false, Node::Or(children)) => {
                    operands.extend(children.iter().copied());
                }
                _ => operands.push(part),
            }
        }
        operands.sort_unstable();
        operands.dedup();
        // Complementary-literal collapse: φ and ¬φ together absorb.
        for &op in &operands {
            if let Node::Not(inner) = self.node(op) {
                if operands.binary_search(inner).is_ok() {
                    return absorbing;
                }
            }
        }
        match operands.len() {
            0 => neutral,
            1 => operands[0],
            _ => {
                let node = if conjunction {
                    Node::And(operands.into_boxed_slice())
                } else {
                    Node::Or(operands.into_boxed_slice())
                };
                self.insert(node)
            }
        }
    }

    /// Smart implication.
    pub fn mk_implies(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        match (a, b) {
            (FormulaId::TRUE, _) => b,
            (FormulaId::FALSE, _) => FormulaId::TRUE,
            (_, FormulaId::TRUE) => FormulaId::TRUE,
            (_, FormulaId::FALSE) => self.mk_not(a),
            _ if a == b => FormulaId::TRUE,
            _ => self.insert(Node::Implies(a, b)),
        }
    }

    /// Smart timed until.
    pub fn mk_until(&mut self, a: FormulaId, i: Interval, b: FormulaId) -> FormulaId {
        if i.is_empty() || b == FormulaId::FALSE {
            return FormulaId::FALSE;
        }
        self.insert(Node::Until(a, i, b))
    }

    /// Smart timed eventually.
    pub fn mk_eventually(&mut self, i: Interval, a: FormulaId) -> FormulaId {
        if i.is_empty() || a == FormulaId::FALSE {
            return FormulaId::FALSE;
        }
        self.insert(Node::Eventually(i, a))
    }

    /// Smart timed always.
    pub fn mk_always(&mut self, i: Interval, a: FormulaId) -> FormulaId {
        if i.is_empty() || a == FormulaId::TRUE {
            return FormulaId::TRUE;
        }
        self.insert(Node::Always(i, a))
    }

    // ------------------------------------------------------------------
    // Conversion to and from the plain `Formula` tree.
    // ------------------------------------------------------------------

    /// Interns a formula tree, canonicalising it through the smart
    /// constructors (so `intern` also *simplifies*: the id of `a ∧ a` is the
    /// id of `a`).
    pub fn intern(&mut self, phi: &Formula) -> FormulaId {
        match phi {
            Formula::True => FormulaId::TRUE,
            Formula::False => FormulaId::FALSE,
            Formula::Atom(p) => self.mk_atom(p.clone()),
            Formula::Not(a) => {
                let a = self.intern(a);
                self.mk_not(a)
            }
            Formula::And(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_and(a, b)
            }
            Formula::Or(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_or(a, b)
            }
            Formula::Implies(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_implies(a, b)
            }
            Formula::Until(a, i, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_until(a, *i, b)
            }
            Formula::Eventually(i, a) => {
                let a = self.intern(a);
                self.mk_eventually(*i, a)
            }
            Formula::Always(i, a) => {
                let a = self.intern(a);
                self.mk_always(*i, a)
            }
        }
    }

    /// Rebuilds the plain formula tree named by `id`.
    ///
    /// N-ary conjunctions/disjunctions are rebuilt as left-associated binary
    /// trees over *structurally* sorted operands, which is exactly the shape
    /// [`crate::simplify`] has always produced — so resolving an interned
    /// formula and simplifying a plain one agree syntactically.
    pub fn resolve(&self, id: FormulaId) -> Formula {
        match self.node(id) {
            Node::True => Formula::True,
            Node::False => Formula::False,
            Node::Atom(p) => Formula::Atom(p.clone()),
            Node::Not(a) => Formula::not(self.resolve(*a)),
            Node::And(children) => self.resolve_nary(children, true),
            Node::Or(children) => self.resolve_nary(children, false),
            Node::Implies(a, b) => Formula::implies(self.resolve(*a), self.resolve(*b)),
            Node::Until(a, i, b) => Formula::until(self.resolve(*a), *i, self.resolve(*b)),
            Node::Eventually(i, a) => Formula::eventually(*i, self.resolve(*a)),
            Node::Always(i, a) => Formula::always(*i, self.resolve(*a)),
        }
    }

    // n-ary nodes hold >= 2 operands by the smart-constructor invariant.
    #[allow(clippy::expect_used)]
    fn resolve_nary(&self, children: &[FormulaId], conjunction: bool) -> Formula {
        let mut resolved: Vec<Formula> = children.iter().map(|&c| self.resolve(c)).collect();
        resolved.sort();
        let mut iter = resolved.into_iter();
        let first = iter.next().expect("n-ary nodes have at least two operands");
        iter.fold(first, |acc, f| {
            if conjunction {
                Formula::and(acc, f)
            } else {
                Formula::or(acc, f)
            }
        })
    }

    // ------------------------------------------------------------------
    // Interned progression (Sec. IV of the paper).
    // ------------------------------------------------------------------

    /// Progresses `id` over the observed segment `trace`, anchoring residual
    /// obligations at `next_base` — the interned counterpart of
    /// [`crate::progress`].
    pub fn progress(&mut self, trace: &TimedTrace, id: FormulaId, next_base: u64) -> FormulaId {
        if trace.is_empty() {
            return id;
        }
        self.progress_at(trace, 0, id, next_base)
    }

    fn progress_at(
        &mut self,
        trace: &TimedTrace,
        i: usize,
        id: FormulaId,
        next_base: u64,
    ) -> FormulaId {
        let n = trace.len();
        debug_assert!(i < n, "progress_at called past the end of the segment");
        match self.node(id).clone() {
            Node::True => FormulaId::TRUE,
            Node::False => FormulaId::FALSE,
            Node::Atom(p) => {
                if trace.state(i).holds_prop(&p) {
                    FormulaId::TRUE
                } else {
                    FormulaId::FALSE
                }
            }
            Node::Not(a) => {
                let a = self.progress_at(trace, i, a, next_base);
                self.mk_not(a)
            }
            Node::And(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_at(trace, i, c, next_base))
                    .collect();
                self.mk_and_all(parts)
            }
            Node::Or(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_at(trace, i, c, next_base))
                    .collect();
                self.mk_or_all(parts)
            }
            Node::Implies(a, b) => {
                let a = self.progress_at(trace, i, a, next_base);
                let b = self.progress_at(trace, i, b, next_base);
                self.mk_implies(a, b)
            }
            // Algorithm 2 (Eventually): disjunction over the in-interval
            // positions plus a residual if the interval outlives the segment.
            Node::Eventually(interval, a) => {
                let base = trace.time(i);
                let elapsed = next_base.saturating_sub(base);
                let parts: Vec<FormulaId> = (i..n)
                    .filter(|&j| interval.contains(trace.time(j) - base))
                    .map(|j| self.progress_at(trace, j, a, next_base))
                    .collect();
                let observed = self.mk_or_all(parts);
                if interval.elapsed_by(elapsed) {
                    observed
                } else {
                    let residual = self.mk_eventually(interval.shift_down(elapsed), a);
                    self.mk_or(observed, residual)
                }
            }
            // Algorithm 1 (Always): conjunction over the in-interval positions
            // plus a residual if the interval outlives the segment.
            Node::Always(interval, a) => {
                let base = trace.time(i);
                let elapsed = next_base.saturating_sub(base);
                let parts: Vec<FormulaId> = (i..n)
                    .filter(|&j| interval.contains(trace.time(j) - base))
                    .map(|j| self.progress_at(trace, j, a, next_base))
                    .collect();
                let observed = self.mk_and_all(parts);
                if interval.elapsed_by(elapsed) {
                    observed
                } else {
                    let residual = self.mk_always(interval.shift_down(elapsed), a);
                    self.mk_and(observed, residual)
                }
            }
            // Algorithm 3 (Until).
            Node::Until(a, interval, b) => {
                let base = trace.time(i);
                let elapsed = next_base.saturating_sub(base);
                // A: φ1 at every position strictly before the interval opens.
                let parts: Vec<FormulaId> = (i..n)
                    .filter(|&j| trace.time(j) - base < interval.start())
                    .map(|j| self.progress_at(trace, j, a, next_base))
                    .collect();
                let pre = self.mk_and_all(parts);
                // B: an observed witness for φ2 within the interval, φ1 at
                // every earlier position of the segment.
                let witnesses: Vec<FormulaId> = (i..n)
                    .filter(|&j| interval.contains(trace.time(j) - base))
                    .map(|j| {
                        let up: Vec<FormulaId> = (i..j)
                            .map(|k| self.progress_at(trace, k, a, next_base))
                            .collect();
                        let up_to_j = self.mk_and_all(up);
                        let at_j = self.progress_at(trace, j, b, next_base);
                        self.mk_and(up_to_j, at_j)
                    })
                    .collect();
                let observed_witness = self.mk_or_all(witnesses);
                // Residual: the witness lies beyond the segment.
                let future_witness = if interval.elapsed_by(elapsed) {
                    FormulaId::FALSE
                } else {
                    let all: Vec<FormulaId> = (i..n)
                        .map(|k| self.progress_at(trace, k, a, next_base))
                        .collect();
                    let all_a = self.mk_and_all(all);
                    let residual = self.mk_until(a, interval.shift_down(elapsed), b);
                    self.mk_and(all_a, residual)
                };
                let witness = self.mk_or(observed_witness, future_witness);
                self.mk_and(pre, witness)
            }
        }
    }

    /// Progression over a segment consisting of a *single* observation
    /// (`state` at `time`) — the shape the solver's search steps through, kept
    /// allocation-free on the hot path.
    pub fn progress_one(
        &mut self,
        state: &State,
        time: u64,
        id: FormulaId,
        next_base: u64,
    ) -> FormulaId {
        match self.node(id).clone() {
            Node::True => FormulaId::TRUE,
            Node::False => FormulaId::FALSE,
            Node::Atom(p) => {
                if state.holds_prop(&p) {
                    FormulaId::TRUE
                } else {
                    FormulaId::FALSE
                }
            }
            Node::Not(a) => {
                let a = self.progress_one(state, time, a, next_base);
                self.mk_not(a)
            }
            Node::And(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_one(state, time, c, next_base))
                    .collect();
                self.mk_and_all(parts)
            }
            Node::Or(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_one(state, time, c, next_base))
                    .collect();
                self.mk_or_all(parts)
            }
            Node::Implies(a, b) => {
                let a = self.progress_one(state, time, a, next_base);
                let b = self.progress_one(state, time, b, next_base);
                self.mk_implies(a, b)
            }
            Node::Eventually(interval, a) => {
                let elapsed = next_base.saturating_sub(time);
                let observed = if interval.contains(0) {
                    self.progress_one(state, time, a, next_base)
                } else {
                    FormulaId::FALSE
                };
                if interval.elapsed_by(elapsed) {
                    observed
                } else {
                    let residual = self.mk_eventually(interval.shift_down(elapsed), a);
                    self.mk_or(observed, residual)
                }
            }
            Node::Always(interval, a) => {
                let elapsed = next_base.saturating_sub(time);
                let observed = if interval.contains(0) {
                    self.progress_one(state, time, a, next_base)
                } else {
                    FormulaId::TRUE
                };
                if interval.elapsed_by(elapsed) {
                    observed
                } else {
                    let residual = self.mk_always(interval.shift_down(elapsed), a);
                    self.mk_and(observed, residual)
                }
            }
            Node::Until(a, interval, b) => {
                let elapsed = next_base.saturating_sub(time);
                // The single position is either before the interval opens
                // (φ1 must hold there) or inside it (it may witness φ2).
                let pre = if interval.start() > 0 {
                    self.progress_one(state, time, a, next_base)
                } else {
                    FormulaId::TRUE
                };
                let observed_witness = if interval.contains(0) {
                    self.progress_one(state, time, b, next_base)
                } else {
                    FormulaId::FALSE
                };
                let future_witness = if interval.elapsed_by(elapsed) {
                    FormulaId::FALSE
                } else {
                    let all_a = self.progress_one(state, time, a, next_base);
                    let residual = self.mk_until(a, interval.shift_down(elapsed), b);
                    self.mk_and(all_a, residual)
                };
                let witness = self.mk_or(observed_witness, future_witness);
                self.mk_and(pre, witness)
            }
        }
    }

    /// Interns an observation state, so repeated progressions against the
    /// same state can be memoised on a 4-byte key (the solver observes the
    /// same cut frontiers over and over across its search).
    // Overflowing 2^32 interned states is unrecoverable by design, as for
    // formula ids in `insert`.
    #[allow(clippy::expect_used)]
    pub fn intern_state(&mut self, state: &State) -> StateKey {
        if let Some(&key) = self.state_ids.get(state) {
            return key;
        }
        let key = StateKey(u32::try_from(self.states.len()).expect("state interner overflow"));
        self.states.push(state.clone());
        self.state_ids.insert(state.clone(), key);
        key
    }

    /// Memoised [`Interner::progress_one`] over an interned state: the result
    /// of progressing `id` across a single observation of state `key` with
    /// `elapsed` time units between the observation and the next anchor.
    ///
    /// `progress_one(state, time, id, next)` depends on its two time
    /// arguments only through `next − time`, and beyond the formula's
    /// [temporal horizon](Interner::temporal_horizon) not even on that — so
    /// the memo key clamps the elapsed time at the horizon and one cache
    /// entry serves every tick of the stable tail of any window, across all
    /// segments the interner lives through. The memoisation is applied at
    /// *every* recursion level, so structurally shared subformulas (e.g. the
    /// per-process obligations of a replicated specification, or the stable
    /// core of a `□`-residual) are progressed once per `(state, elapsed)`
    /// no matter how many pending formulas contain them.
    pub fn progress_one_cached(&mut self, key: StateKey, id: FormulaId, elapsed: u64) -> FormulaId {
        // The algorithm lives in `ArenaOps` so the sequential and sharded
        // arenas share one implementation.
        <Self as crate::ArenaOps>::progress_one_cached(self, key, id, elapsed)
    }

    /// Memoised [`Interner::progress_gap`] (same per-node elapsed-clamping
    /// memo as [`Interner::progress_one_cached`]).
    pub fn progress_gap_cached(&mut self, id: FormulaId, elapsed: u64) -> FormulaId {
        <Self as crate::ArenaOps>::progress_gap_cached(self, id, elapsed)
    }

    /// Interval-splitting progression: partitions the occurrence-time window
    /// `[lo, hi]` (inclusive) of the *next* observation into maximal
    /// [`SplitRange`]s — ranges whose residuals the caller may treat as one
    /// search node — and returns them in increasing time order.
    ///
    /// The pending formula `id` is anchored at `time` and the observation
    /// being consumed is `state` at `time`. Each returned range `[a, b]`
    /// carries the residual at its earliest point `a` and a
    /// [`crate::RangeKind`] describing the rest of the range:
    ///
    /// * [`crate::RangeKind::Uniform`] — `progress_one(state, time, id, t)` is the
    ///   same formula at every `t ∈ [a, b]`;
    /// * [`crate::RangeKind::Translated`] — the residual at `a + k` is the exact
    ///   time-translate `translate_down(residual, k)`: the range sweeps one
    ///   shift-normal zone ([`Interner::shift_canon`] constant, shift
    ///   decrementing per tick, never reaching 0 inside the range).
    ///
    /// Two mechanisms bound the number of progression calls by
    /// `min(hi − lo, temporal_horizon(id)) + 1` instead of `hi − lo + 1`:
    ///
    /// * beyond the stability threshold `time + temporal_horizon(id)` the
    ///   residual no longer depends on `t`, so the entire tail of the window
    ///   is resolved with a single progression call;
    /// * below the threshold, adjacent time points merge into one range when
    ///   the shared residual is *time-invariant*
    ///   ([`Interner::is_time_invariant`]) or when consecutive residuals are
    ///   exact unit translates of each other with shifts that stay ≥ 1. In
    ///   both cases the caller is entitled to collapse the range to its
    ///   earliest point: the reachable rewrite set from pending time `t`
    ///   within one zone shrinks monotonically in `t` (later members can only
    ///   schedule a subset of the event times available to earlier ones,
    ///   while the residuals produced at matching absolute times coincide),
    ///   so the union over the range equals the contribution of its infimum.
    ///   The shift-0 member of a zone (the tick at which the window opens) is
    ///   never merged into the translated range: from that tick on the
    ///   observation falls *inside* the window and the progression changes
    ///   shape.
    ///
    /// The invariant-only uniform rule still applies to the stable tail: a
    /// non-invariant tail residual (a bounded operator nested under an
    /// unbounded one) is returned as one multi-point `Uniform` range — saving
    /// the per-tick progression calls — and the caller must still treat each
    /// time point of that range as a distinct search state.
    pub fn progress_one_over(
        &mut self,
        state: &State,
        time: u64,
        id: FormulaId,
        lo: u64,
        hi: u64,
    ) -> Vec<SplitRange> {
        let key = self.intern_state(state);
        self.progress_one_over_keyed(key, time, id, lo, hi)
    }

    /// [`Interner::progress_one_over`] for a pre-interned observation state —
    /// the solver interns each cut frontier once and reuses the key across
    /// every window explored at that cut.
    pub fn progress_one_over_keyed(
        &mut self,
        key: StateKey,
        time: u64,
        id: FormulaId,
        lo: u64,
        hi: u64,
    ) -> Vec<SplitRange> {
        <Self as crate::ArenaOps>::progress_one_over_keyed(self, key, time, id, lo, hi)
    }

    /// Interval-splitting counterpart of [`Interner::progress_gap`]: partitions
    /// the window `[lo, hi]` of the next anchor time into maximal ranges on
    /// which `progress_gap(id, t − base)` is constant or translate-swept.
    /// `base` is the anchor time of `id`. Same contract and merge rules as
    /// [`Interner::progress_one_over`].
    pub fn progress_gap_over(
        &mut self,
        id: FormulaId,
        base: u64,
        lo: u64,
        hi: u64,
    ) -> Vec<SplitRange> {
        <Self as crate::ArenaOps>::progress_gap_over(self, id, base, lo, hi)
    }

    /// Progression over an observation gap of `elapsed` time units — the
    /// interned counterpart of [`crate::progress_gap`].
    pub fn progress_gap(&mut self, id: FormulaId, elapsed: u64) -> FormulaId {
        if elapsed == 0 {
            return id;
        }
        match self.node(id).clone() {
            Node::True | Node::False | Node::Atom(_) => id,
            Node::Not(a) => {
                let a = self.progress_gap(a, elapsed);
                self.mk_not(a)
            }
            Node::And(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_gap(c, elapsed))
                    .collect();
                self.mk_and_all(parts)
            }
            Node::Or(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_gap(c, elapsed))
                    .collect();
                self.mk_or_all(parts)
            }
            Node::Implies(a, b) => {
                let a = self.progress_gap(a, elapsed);
                let b = self.progress_gap(b, elapsed);
                self.mk_implies(a, b)
            }
            Node::Eventually(i, a) => {
                if i.elapsed_by(elapsed) {
                    FormulaId::FALSE
                } else {
                    self.mk_eventually(i.shift_down(elapsed), a)
                }
            }
            Node::Always(i, a) => {
                if i.elapsed_by(elapsed) {
                    FormulaId::TRUE
                } else {
                    self.mk_always(i.shift_down(elapsed), a)
                }
            }
            Node::Until(a, i, b) => {
                if i.elapsed_by(elapsed) {
                    FormulaId::FALSE
                } else {
                    self.mk_until(a, i.shift_down(elapsed), b)
                }
            }
        }
    }

    /// Closes a formula against the empty future: the finite-trace verdict of
    /// `id` on an empty remainder (`◇`/`U` obligations fail, `□` obligations
    /// hold vacuously). Agrees with evaluating the resolved formula on an
    /// empty [`TimedTrace`].
    pub fn eval_empty(&self, id: FormulaId) -> bool {
        match self.node(id) {
            Node::True => true,
            Node::False => false,
            Node::Atom(_) => false,
            Node::Not(a) => !self.eval_empty(*a),
            Node::And(children) => children.iter().all(|&c| self.eval_empty(c)),
            Node::Or(children) => children.iter().any(|&c| self.eval_empty(c)),
            Node::Implies(a, b) => !self.eval_empty(*a) || self.eval_empty(*b),
            Node::Eventually(..) | Node::Until(..) => false,
            Node::Always(..) => true,
        }
    }

    /// Cumulative progression-cache hit/miss tallies (monotone across
    /// [`Interner::compact`]; see [`CacheStats`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Current memory footprint of the arena, in table entries.
    pub fn memory(&self) -> ArenaMemory {
        ArenaMemory {
            nodes: self.nodes.len(),
            states: self.states.len(),
            one_cache_entries: self.one_cache.len(),
            gap_cache_entries: self.gap_cache.len(),
        }
    }

    /// Epoch compaction: mark-and-renumber garbage collection over the arena.
    ///
    /// Keeps exactly the nodes reachable from `roots` (plus the two boolean
    /// constants), renumbers them densely in their original order — so
    /// children keep smaller ids than parents and the sorted operand lists of
    /// n-ary nodes stay sorted — and drops everything else: dead nodes, the
    /// observation states no surviving cache entry refers to, and every
    /// `one_cache`/`gap_cache` entry whose key *or* value formula died (the
    /// caches are weak: they never keep a formula alive, and a dropped entry
    /// is simply recomputed on the next miss).
    ///
    /// Reachability includes the *shift-normal closure*: a live node keeps
    /// its canonical residual ([`Interner::shift_canon`]) alive, so the
    /// decomposition tables stay total and the shift-relative cache entries —
    /// which are keyed by canonical ids — survive exactly when their
    /// canonical endpoints do. Cache entries referring to canonical residuals
    /// of *dead* formulas are dropped with them.
    ///
    /// Returns the remapping from old to new ids; every id handed out before
    /// the call (pending sets, memo keys, …) is invalidated and must either
    /// be translated through the remap or discarded. [`FormulaId::TRUE`] and
    /// [`FormulaId::FALSE`] are stable across compactions.
    // Marking closes over children and canonical residuals, so every index
    // dereferenced during the sweep was marked by construction.
    #[allow(clippy::expect_used)]
    pub fn compact(&mut self, roots: impl IntoIterator<Item = FormulaId>) -> FormulaRemap {
        // Mark.
        let mut live = vec![false; self.nodes.len()];
        live[FormulaId::TRUE.index()] = true;
        live[FormulaId::FALSE.index()] = true;
        let mut stack: Vec<FormulaId> = roots.into_iter().collect();
        while let Some(id) = stack.pop() {
            if live[id.index()] {
                continue;
            }
            live[id.index()] = true;
            // Shift-normal closure: the canonical residual survives with its
            // translate (it is pushed, not just marked, so its own children
            // are marked too).
            stack.push(self.metas[id.index()].canon);
            match &self.nodes[id.index()] {
                Node::True | Node::False | Node::Atom(_) => {}
                Node::Not(a) => stack.push(*a),
                Node::And(children) | Node::Or(children) => stack.extend(children.iter().copied()),
                Node::Implies(a, b) | Node::Until(a, _, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Node::Eventually(_, a) | Node::Always(_, a) => stack.push(*a),
            }
        }

        // Renumber nodes in original order; children are always interned
        // before their parents, so one forward pass remaps every child.
        let mut map: Vec<Option<FormulaId>> = vec![None; self.nodes.len()];
        let mut nodes: Vec<Node> = Vec::with_capacity(live.iter().filter(|&&l| l).count());
        let mut meta_olds: Vec<NodeMeta> = Vec::with_capacity(nodes.capacity());
        let remap_children = |ids: &[FormulaId], map: &[Option<FormulaId>]| -> Box<[FormulaId]> {
            ids.iter()
                .map(|c| map[c.index()].expect("children are marked with their parents"))
                .collect()
        };
        for (index, node) in self.nodes.iter().enumerate() {
            if !live[index] {
                continue;
            }
            let new_id = FormulaId::from_raw(u32::try_from(nodes.len()).expect("shrinking"));
            let remapped = match node {
                Node::True => Node::True,
                Node::False => Node::False,
                Node::Atom(p) => Node::Atom(p.clone()),
                Node::Not(a) => Node::Not(map[a.index()].expect("marked")),
                Node::And(children) => Node::And(remap_children(children, &map)),
                Node::Or(children) => Node::Or(remap_children(children, &map)),
                Node::Implies(a, b) => Node::Implies(
                    map[a.index()].expect("marked"),
                    map[b.index()].expect("marked"),
                ),
                Node::Until(a, i, b) => Node::Until(
                    map[a.index()].expect("marked"),
                    *i,
                    map[b.index()].expect("marked"),
                ),
                Node::Eventually(i, a) => Node::Eventually(*i, map[a.index()].expect("marked")),
                Node::Always(i, a) => Node::Always(*i, map[a.index()].expect("marked")),
            };
            nodes.push(remapped);
            meta_olds.push(self.metas[index]);
            map[index] = Some(new_id);
        }
        let ids: FxHashMap<Node, FormulaId> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), FormulaId::from_raw(i as u32)))
            .collect();
        // Canonical residuals were marked with their translates, so the
        // decomposition table remaps totally.
        let metas: Vec<NodeMeta> = meta_olds
            .into_iter()
            .map(|m| NodeMeta {
                canon: map[m.canon.index()]
                    .expect("canonical residuals are marked with their translates"),
                ..m
            })
            .collect();

        // Surviving cache entries: both endpoints must have survived — for
        // the shift-relative keys the key endpoint *is* the canonical
        // residual, so an entry lives exactly as long as its canonical
        // endpoints. Collect the states those entries still refer to,
        // renumber them, drop the rest.
        let mut state_live = vec![false; self.states.len()];
        let retained_one: Vec<(OneKey, FormulaId, FormulaId)> = self
            .one_cache
            .iter()
            .filter_map(|(&k, &v)| {
                let f = map[k.formula().index()]?;
                let v = map[v.index()]?;
                state_live[k.state().index()] = true;
                Some((k, f, v))
            })
            .collect();
        let mut state_map: Vec<Option<StateKey>> = vec![None; self.states.len()];
        let mut states: Vec<State> = Vec::new();
        for (index, state) in self.states.iter().enumerate() {
            if state_live[index] {
                state_map[index] = Some(StateKey::from_raw(states.len() as u32));
                states.push(state.clone());
            }
        }
        let state_ids: FxHashMap<State, StateKey> = states
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), StateKey::from_raw(i as u32)))
            .collect();
        let one_cache: FxHashMap<OneKey, FormulaId> = retained_one
            .into_iter()
            .map(|(k, f, v)| {
                let s = state_map[k.state().index()].expect("marked above");
                (OneKey::pack(s, f, k.rel(), k.shifted()), v)
            })
            .collect();
        let gap_cache: FxHashMap<GapKey, FormulaId> = self
            .gap_cache
            .iter()
            .filter_map(|(&k, &v)| {
                Some((
                    GapKey::pack(map[k.formula().index()]?, k.rel()),
                    map[v.index()]?,
                ))
            })
            .collect();

        self.nodes = nodes;
        self.ids = ids;
        self.metas = metas;
        // The watermark may drop: if GC collected the last nonzero-slack
        // node, the arena is shift-free again and every fast path re-arms.
        self.ever_shifted = self.metas.iter().any(|m| m.is_translatable());
        self.states = states;
        self.state_ids = state_ids;
        self.one_cache = one_cache;
        self.gap_cache = gap_cache;
        FormulaRemap { map }
    }
}

/// Memory footprint of an arena, in table entries (see [`Interner::memory`]
/// and [`crate::ShardedInterner::memory`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaMemory {
    /// Number of interned formula nodes.
    pub nodes: usize,
    /// Number of interned observation states.
    pub states: usize,
    /// Number of memoised single-observation progressions.
    pub one_cache_entries: usize,
    /// Number of memoised gap progressions.
    pub gap_cache_entries: usize,
}

impl ArenaMemory {
    /// Total number of table entries (the figure the GC pin tests bound).
    pub fn total_entries(&self) -> usize {
        self.nodes + self.states + self.one_cache_entries + self.gap_cache_entries
    }
}

/// Cumulative hit/miss tallies of the two progression caches (see
/// [`Interner::cache_stats`] and [`crate::ShardedInterner::cache_stats`]).
///
/// The tallies are monotone over the arena's lifetime: [`Interner::compact`]
/// rebuilds the cache tables but leaves the counters in place, so a stream's
/// figures accumulate across GC epochs. Counting happens inside the four
/// [`crate::ArenaOps`] cache accessors — the only paths the progression
/// algorithms probe the caches through — so a lookup is counted exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Single-observation progression lookups that found an entry.
    pub one_hits: u64,
    /// Single-observation progression lookups that missed.
    pub one_misses: u64,
    /// Gap progression lookups that found an entry.
    pub gap_hits: u64,
    /// Gap progression lookups that missed.
    pub gap_misses: u64,
}

impl CacheStats {
    /// Total lookups that hit, across both caches.
    pub fn hits(&self) -> u64 {
        self.one_hits + self.gap_hits
    }

    /// Total lookups that missed, across both caches.
    pub fn misses(&self) -> u64 {
        self.one_misses + self.gap_misses
    }

    /// Total lookups, across both caches.
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses()
    }
}

/// Interior-mutable tally cells for [`CacheStats`] inside the sequential
/// [`Interner`] (`Cell` keeps the arena `Clone`; lookups take `&self`).
#[derive(Debug, Clone, Default)]
pub(crate) struct CacheStatCells {
    one_hits: Cell<u64>,
    one_misses: Cell<u64>,
    gap_hits: Cell<u64>,
    gap_misses: Cell<u64>,
}

impl CacheStatCells {
    fn tally(cell: &Cell<u64>) {
        cell.set(cell.get().wrapping_add(1));
    }

    /// Folds a batch's probes into one cell update (zero adds skipped).
    fn tally_n(cell: &Cell<u64>, n: u64) {
        if n > 0 {
            cell.set(cell.get().wrapping_add(n));
        }
    }

    fn snapshot(&self) -> CacheStats {
        CacheStats {
            one_hits: self.one_hits.get(),
            one_misses: self.one_misses.get(),
            gap_hits: self.gap_hits.get(),
            gap_misses: self.gap_misses.get(),
        }
    }
}

/// The old-id → new-id translation produced by [`Interner::compact`].
#[derive(Debug, Clone)]
pub struct FormulaRemap {
    map: Vec<Option<FormulaId>>,
}

/// Error returned by [`FormulaRemap::remap`] when the requested id did not
/// survive the compaction — it was garbage, not a root or a root's subterm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemapCollected {
    /// The pre-compaction id that was collected.
    pub id: FormulaId,
}

impl std::fmt::Display for RemapCollected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "formula id {:?} was collected — pass it as a root to compact()",
            self.id
        )
    }
}

impl std::error::Error for RemapCollected {}

impl FormulaRemap {
    /// The new id of `old`, or `None` if the node was collected.
    pub fn get(&self, old: FormulaId) -> Option<FormulaId> {
        self.map.get(old.index()).copied().flatten()
    }

    /// The new id of `old`, or [`RemapCollected`] if the node did not
    /// survive the compaction.
    pub fn remap(&self, old: FormulaId) -> Result<FormulaId, RemapCollected> {
        self.get(old).ok_or(RemapCollected { id: old })
    }

    /// The new id of a formula that was passed as a compaction root, for hot
    /// paths where liveness holds by construction.
    ///
    /// # Panics
    ///
    /// Panics if `old` was not live at compaction time — callers must have
    /// passed it (or an ancestor) as a root to [`Interner::compact`].
    pub fn remap_unchecked(&self, old: FormulaId) -> FormulaId {
        match self.get(old) {
            Some(new) => new,
            None => panic!(
                "FormulaRemap::remap_unchecked: {}",
                RemapCollected { id: old }
            ),
        }
    }

    /// Number of nodes that survived the compaction.
    pub fn retained(&self) -> usize {
        self.map.iter().filter(|m| m.is_some()).count()
    }
}

impl crate::ArenaOps for Interner {
    fn node(&self, id: FormulaId) -> Node {
        self.nodes[id.index()].clone()
    }

    fn state_holds(&self, key: StateKey, p: &crate::Prop) -> bool {
        self.states[key.index()].holds_prop(p)
    }

    fn node_meta(&self, id: FormulaId) -> NodeMeta {
        Interner::node_meta(self, id)
    }

    fn ever_shifted(&self) -> bool {
        Interner::ever_shifted(self)
    }

    fn intern_state(&mut self, state: &State) -> StateKey {
        Interner::intern_state(self, state)
    }

    fn mk_atom(&mut self, p: crate::Prop) -> FormulaId {
        Interner::mk_atom(self, p)
    }

    fn mk_not(&mut self, a: FormulaId) -> FormulaId {
        Interner::mk_not(self, a)
    }

    fn mk_and_all(&mut self, parts: Vec<FormulaId>) -> FormulaId {
        Interner::mk_and_all(self, parts)
    }

    fn mk_or_all(&mut self, parts: Vec<FormulaId>) -> FormulaId {
        Interner::mk_or_all(self, parts)
    }

    fn mk_implies(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        Interner::mk_implies(self, a, b)
    }

    fn mk_until(&mut self, a: FormulaId, i: Interval, b: FormulaId) -> FormulaId {
        Interner::mk_until(self, a, i, b)
    }

    fn mk_eventually(&mut self, i: Interval, a: FormulaId) -> FormulaId {
        Interner::mk_eventually(self, i, a)
    }

    fn mk_always(&mut self, i: Interval, a: FormulaId) -> FormulaId {
        Interner::mk_always(self, i, a)
    }

    fn one_cache_get(&self, key: OneKey) -> Option<FormulaId> {
        let found = self.one_cache.get(&key).copied();
        CacheStatCells::tally(if found.is_some() {
            &self.stats.one_hits
        } else {
            &self.stats.one_misses
        });
        found
    }

    fn one_cache_put(&mut self, key: OneKey, value: FormulaId) {
        self.one_cache.insert(key, value);
    }

    fn gap_cache_get(&self, key: GapKey) -> Option<FormulaId> {
        let found = self.gap_cache.get(&key).copied();
        CacheStatCells::tally(if found.is_some() {
            &self.stats.gap_hits
        } else {
            &self.stats.gap_misses
        });
        found
    }

    fn gap_cache_put(&mut self, key: GapKey, value: FormulaId) {
        self.gap_cache.insert(key, value);
    }

    fn one_cache_get_batch(&self, keys: &[OneKey], out: &mut Vec<Option<FormulaId>>) {
        out.clear();
        out.reserve(keys.len());
        let mut hits = 0u64;
        let mut misses = 0u64;
        for key in keys {
            let found = self.one_cache.get(key).copied();
            if found.is_some() {
                hits += 1;
            } else {
                misses += 1;
            }
            out.push(found);
        }
        CacheStatCells::tally_n(&self.stats.one_hits, hits);
        CacheStatCells::tally_n(&self.stats.one_misses, misses);
    }

    fn gap_cache_get_batch(&self, keys: &[GapKey], out: &mut Vec<Option<FormulaId>>) {
        out.clear();
        out.reserve(keys.len());
        let mut hits = 0u64;
        let mut misses = 0u64;
        for key in keys {
            let found = self.gap_cache.get(key).copied();
            if found.is_some() {
                hits += 1;
            } else {
                misses += 1;
            }
            out.push(found);
        }
        CacheStatCells::tally_n(&self.stats.gap_hits, hits);
        CacheStatCells::tally_n(&self.stats.gap_misses, misses);
    }

    // The inherent implementations of these two stay authoritative (they
    // avoid the per-node clone of the generic defaults).
    fn eval_empty(&self, id: FormulaId) -> bool {
        Interner::eval_empty(self, id)
    }

    fn resolve(&self, id: FormulaId) -> Formula {
        Interner::resolve(self, id)
    }

    fn intern(&mut self, phi: &Formula) -> FormulaId {
        Interner::intern(self, phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, simplify, state};

    #[test]
    fn constants_have_fixed_ids() {
        let mut interner = Interner::new();
        assert_eq!(interner.intern(&Formula::True), FormulaId::TRUE);
        assert_eq!(interner.intern(&Formula::False), FormulaId::FALSE);
        assert!(FormulaId::TRUE.is_constant());
        assert_eq!(FormulaId::TRUE.as_bool(), Some(true));
        assert_eq!(FormulaId::FALSE.as_bool(), Some(false));
    }

    #[test]
    fn interning_is_hash_consing() {
        let mut interner = Interner::new();
        let phi = Formula::until(
            Formula::not(Formula::atom("a")),
            Interval::bounded(0, 8),
            Formula::atom("b"),
        );
        let a = interner.intern(&phi);
        let b = interner.intern(&phi.clone());
        assert_eq!(a, b);
        let before = interner.len();
        let _ = interner.intern(&phi);
        assert_eq!(interner.len(), before, "re-interning allocates nothing");
    }

    #[test]
    fn intern_resolve_matches_simplify() {
        let mut interner = Interner::new();
        let samples = [
            Formula::and(
                Formula::atom("a"),
                Formula::and(Formula::True, Formula::atom("a")),
            ),
            Formula::or(
                Formula::not(Formula::not(Formula::atom("b"))),
                Formula::False,
            ),
            Formula::implies(Formula::atom("a"), Formula::atom("a")),
            Formula::until(
                Formula::atom("a"),
                Interval::bounded(0, 5),
                Formula::or(Formula::atom("b"), Formula::False),
            ),
            Formula::and(
                Formula::and(Formula::atom("c"), Formula::atom("a")),
                Formula::atom("b"),
            ),
        ];
        for phi in samples {
            let id = interner.intern(&phi);
            assert_eq!(interner.resolve(id), simplify(&phi), "phi = {phi}");
        }
    }

    #[test]
    fn complementary_operands_collapse() {
        let mut interner = Interner::new();
        let a = interner.intern(&Formula::atom("a"));
        let na = interner.mk_not(a);
        assert_eq!(interner.mk_and(a, na), FormulaId::FALSE);
        assert_eq!(interner.mk_or(a, na), FormulaId::TRUE);
        assert_eq!(interner.mk_not(na), a);
    }

    #[test]
    fn progress_one_matches_general_progress() {
        let mut interner = Interner::new();
        let formulas = [
            crate::parse("a U[0,8) b").unwrap(),
            crate::parse("F[2,6) a").unwrap(),
            crate::parse("G[0,4) (a | b)").unwrap(),
            crate::parse("!a U[2,9) (a & b)").unwrap(),
        ];
        let states = [state!["a"], state!["b"], state![], state!["a", "b"]];
        for phi in &formulas {
            for s in &states {
                for time in [0u64, 2, 5] {
                    for next in [time, time + 1, time + 4, time + 20] {
                        let id = interner.intern(phi);
                        let via_one = interner.progress_one(s, time, id, next);
                        let trace = TimedTrace::new(vec![s.clone()], vec![time]).unwrap();
                        let via_trace = interner.progress(&trace, id, next);
                        assert_eq!(
                            via_one, via_trace,
                            "phi = {phi}, state = {s}, time = {time}, next = {next}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn temporal_horizon_is_the_largest_interval_endpoint() {
        let mut interner = Interner::new();
        let cases = [
            ("true", 0),
            ("p", 0),
            ("!p & (q | r)", 0),
            ("F[0,5) p", 5),
            ("G[2,9) p", 9),
            ("p U[0,6) q", 6),
            ("(F[0,3) p) & (G[0,11) q)", 11),
            ("F[0,inf) p", 0),
            ("F[4,inf) p", 4),
            ("F[0,inf) (F[0,3) p)", 3),
            ("G[0,inf) (p U[1,7) q)", 7),
        ];
        for (text, expected) in cases {
            let id = interner.intern(&crate::parse(text).unwrap());
            assert_eq!(interner.temporal_horizon(id), expected, "horizon of {text}");
            assert_eq!(interner.is_time_invariant(id), expected == 0, "{text}");
        }
    }

    /// The residual a [`SplitRange`] asserts for time point `t`.
    fn residual_at(interner: &mut Interner, r: &crate::SplitRange, t: u64) -> FormulaId {
        match r.kind {
            crate::RangeKind::Uniform => r.residual,
            crate::RangeKind::Translated => {
                <Interner as crate::ArenaOps>::translate_down(interner, r.residual, t - r.lo)
            }
        }
    }

    #[test]
    fn progress_one_over_matches_per_tick_progression() {
        let mut interner = Interner::new();
        let formulas = [
            "a U[0,8) b",
            "F[2,6) a",
            "G[0,4) (a | b)",
            "!a U[2,9) (a & b)",
            "F[0,inf) (F[0,3) b)",
            "(F[0,5) a) | (G[1,inf) b)",
            "a U[6,12) b",
            "(F[3,7) a) & (F[5,11) b)",
        ];
        let states = [state!["a"], state!["b"], state![], state!["a", "b"]];
        for text in formulas {
            let phi = crate::parse(text).unwrap();
            for s in &states {
                for time in [0u64, 3] {
                    for (lo, hi) in [(time, time + 25), (time + 2, time + 14)] {
                        let id = interner.intern(&phi);
                        let splits = interner.progress_one_over(s, time, id, lo, hi);
                        // The ranges tile [lo, hi] exactly, in order.
                        let mut expected_start = lo;
                        for r in &splits {
                            assert_eq!(r.lo, expected_start, "{text} at {s}");
                            assert!(r.hi >= r.lo && r.hi <= hi);
                            expected_start = r.hi + 1;
                            // Every point of the range progresses to the
                            // residual the range's kind asserts for it.
                            for t in r.lo..=r.hi {
                                let expected = residual_at(&mut interner, r, t);
                                assert_eq!(
                                    interner.progress_one(s, time, id, t),
                                    expected,
                                    "{text}, state {s}, time {time}, t = {t}, {r:?}"
                                );
                            }
                            // Multi-point uniform ranges below the stability
                            // threshold must carry a time-invariant residual;
                            // translated ranges must sweep shifts ≥ 1 (the
                            // shift-0 member opens its own range).
                            match r.kind {
                                crate::RangeKind::Uniform => {
                                    if r.hi > r.lo && r.hi < time + interner.temporal_horizon(id) {
                                        assert!(
                                            interner.is_time_invariant(r.residual),
                                            "{text} range {r:?}"
                                        );
                                    }
                                }
                                crate::RangeKind::Translated => {
                                    assert!(r.hi > r.lo, "{text}: singleton translated range");
                                    assert!(
                                        interner.shift_slack(r.residual) > r.hi - r.lo,
                                        "{text} range {r:?}: members must keep shift ≥ 1"
                                    );
                                }
                            }
                        }
                        assert_eq!(
                            expected_start,
                            hi + 1,
                            "{text}: ranges must cover the window"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn progress_gap_over_matches_per_tick_gap() {
        let mut interner = Interner::new();
        for text in [
            "F[0,5) p",
            "p U[2,9) q",
            "G[0,inf) p",
            "F[3,inf) (G[0,4) q)",
            "p U[6,12) q",
        ] {
            let phi = crate::parse(text).unwrap();
            let id = interner.intern(&phi);
            let base = 4u64;
            let splits = interner.progress_gap_over(id, base, base, base + 20);
            let mut expected_start = base;
            for r in &splits {
                assert_eq!(r.lo, expected_start, "{text}");
                expected_start = r.hi + 1;
                for t in r.lo..=r.hi {
                    let expected = residual_at(&mut interner, r, t);
                    assert_eq!(
                        interner.progress_gap(id, t - base),
                        expected,
                        "{text}, t = {t}"
                    );
                }
            }
            assert_eq!(expected_start, base + 21, "{text}");
        }
    }

    #[test]
    fn stable_tail_collapses_to_one_range() {
        let mut interner = Interner::new();
        let id = interner.intern(&crate::parse("F[0,6) b").unwrap());
        // Anchored at 0, window [0, 100]: per-tick residuals up to the
        // horizon, then one range for the entire elapsed tail.
        let splits = interner.progress_one_over(&state![], 0, id, 0, 100);
        let r = *splits.last().unwrap();
        assert_eq!((r.lo, r.hi), (6, 100), "tail of {splits:?}");
        assert_eq!(r.residual, FormulaId::FALSE);
        assert!(splits.len() <= 7);
    }

    #[test]
    fn delayed_window_collapses_to_translated_range() {
        let mut interner = Interner::new();
        let id = interner.intern(&crate::parse("F[6,12) b").unwrap());
        // Anchored at 0: while the window has not opened (occurrence times
        // 1..=5) the residuals F[5,11), F[4,10), … are exact translates of
        // one canonical residual and merge into one translated range; the
        // shift-0 member (the window opening at 6) starts its own range.
        let splits = interner.progress_one_over(&state![], 0, id, 0, 20);
        let translated: Vec<_> = splits
            .iter()
            .filter(|r| r.kind == crate::RangeKind::Translated)
            .collect();
        assert_eq!(translated.len(), 1, "{splits:?}");
        assert_eq!((translated[0].lo, translated[0].hi), (0, 5), "{splits:?}");
        assert_eq!(
            interner.shift_canon(translated[0].residual),
            interner.intern(&crate::parse("F[0,6) b").unwrap()),
            "the zone's canonical residual is the unshifted window"
        );
        // In-window times (6..=11) split per tick (their residuals are not
        // translates — the window is open and shrinking), the elapsed tail
        // (12..) is one uniform range.
        assert!(splits.len() <= 2 + 6 + 1, "{splits:?}");
    }

    #[test]
    fn normalize_materialize_roundtrips() {
        let mut interner = Interner::new();
        use crate::ArenaOps;
        for text in [
            "F[6,12) b",
            "a U[3,9) b",
            "(F[2,6) a) & (F[4,10) b)",
            "p & (F[3,5) q)",
            "G[0,inf) p",
            "a | b",
            "F[0,4) x",
            "!(G[2,8) y)",
        ] {
            let id = interner.intern(&crate::parse(text).unwrap());
            let s = interner.normalize(id);
            assert_eq!(
                interner.materialize(s),
                id,
                "{text}: materialize must invert normalize"
            );
            assert_eq!(
                interner.resolve_shifted(s),
                interner.resolve(id),
                "{text}: resolve_shifted must agree with resolve"
            );
            assert_eq!(
                interner.eval_empty(s.id),
                interner.eval_empty(id),
                "{text}: eval_empty is translation-invariant"
            );
            // The canonical residual is a fixpoint of normalisation.
            let again = interner.normalize(s.id);
            assert_eq!(again.shift, 0, "{text}");
            assert_eq!(again.id, s.id, "{text}");
        }
        // Translates share one canonical residual.
        let a = interner.intern(&crate::parse("F[6,12) b").unwrap());
        let b = interner.intern(&crate::parse("F[2,8) b").unwrap());
        assert_eq!(interner.shift_canon(a), interner.shift_canon(b));
        assert_eq!(interner.shift_slack(a), 6);
        assert_eq!(interner.shift_slack(b), 2);
        // An until with a non-invariant left argument admits no translation:
        // its left obligation is progressed at observations before the
        // window opens, anchoring it absolutely.
        let anchored = interner.intern(&crate::parse("(F[0,4) a) U[3,9) b").unwrap());
        assert_eq!(interner.shift_slack(anchored), 0);
        assert_eq!(interner.shift_canon(anchored), anchored);
    }

    #[test]
    fn compact_keeps_roots_and_drops_garbage() {
        let mut interner = Interner::new();
        let keep = interner.intern(&crate::parse("a U[0,8) b").unwrap());
        let drop_me = interner.intern(&crate::parse("F[0,5) (c & d)").unwrap());
        let before = interner.memory();
        let remap = interner.compact([keep]);
        let after = interner.memory();
        assert!(after.nodes < before.nodes, "{before:?} -> {after:?}");
        let new_keep = remap.remap(keep).unwrap();
        assert_eq!(
            interner.resolve(new_keep),
            crate::parse("a U[0,8) b").map(|f| simplify(&f)).unwrap()
        );
        assert!(remap.get(drop_me).is_none() || drop_me.index() >= interner.len());
        // Constants survive with stable ids.
        assert_eq!(remap.remap(FormulaId::TRUE).unwrap(), FormulaId::TRUE);
        assert_eq!(remap.remap(FormulaId::FALSE).unwrap(), FormulaId::FALSE);
        // The arena still works after compaction: re-interning the kept
        // formula is a no-op, new formulas get fresh ids.
        assert_eq!(
            interner.intern(&crate::parse("a U[0,8) b").unwrap()),
            new_keep
        );
        let fresh = interner.intern(&crate::parse("G[0,3) z").unwrap());
        assert!(interner.len() > new_keep.index());
        assert!(fresh.index() < interner.len());
    }

    #[test]
    fn compact_preserves_progression_results() {
        let mut interner = Interner::new();
        let phi = crate::parse("!a U[2,9) (a & b)").unwrap();
        let id = interner.intern(&phi);
        // Warm the caches.
        let key = interner.intern_state(&state!["a"]);
        let warm = interner.progress_one_cached(key, id, 3);
        let remap = interner.compact([id, warm]);
        let id2 = remap.remap(id).unwrap();
        // Progressing through the compacted arena gives the same formula.
        let key2 = interner.intern_state(&state!["a"]);
        let after = interner.progress_one_cached(key2, id2, 3);
        let mut reference = Interner::new();
        let rid = reference.intern(&phi);
        let rkey = reference.intern_state(&state!["a"]);
        let rres = reference.progress_one_cached(rkey, rid, 3);
        assert_eq!(interner.resolve(after), reference.resolve(rres));
        // Cache entries whose endpoints survived were carried over.
        assert_eq!(
            interner.resolve(remap.remap(warm).unwrap()),
            interner.resolve(after)
        );
    }

    #[test]
    fn compact_bounds_memory_under_churn() {
        let mut interner = Interner::new();
        let root = interner.intern(&crate::parse("G[0,inf) (a -> F[0,6) b)").unwrap());
        let mut live = root;
        let mut peak_after_gc = 0usize;
        for round in 0..50u64 {
            // Churn: throwaway formulas plus cache warming.
            for k in 0..10u64 {
                let text = format!("F[0,{}) (p{} & q{})", 3 + (round + k) % 7, k, round % 5);
                let _ = interner.intern(&crate::parse(&text).unwrap());
            }
            let key = interner.intern_state(&state!["a"]);
            live = interner.progress_one_cached(key, live, 1 + round % 3);
            let remap = interner.compact([live]);
            live = remap.remap(live).unwrap();
            peak_after_gc = peak_after_gc.max(interner.memory().total_entries());
        }
        assert!(
            peak_after_gc < 200,
            "post-GC footprint must stay bounded, got {peak_after_gc}"
        );
    }

    #[test]
    fn packed_cache_keys_roundtrip() {
        for state in [0u32, 1, 7, u32::MAX] {
            for formula in [0u32, 2, 0x89AB_CDEF, u32::MAX] {
                for rel in [
                    0i64,
                    1,
                    -1,
                    63,
                    -64,
                    i32::MAX as i64,
                    -(1 << 40),
                    (1 << 62) - 1,
                    -(1 << 62),
                ] {
                    for shifted in [false, true] {
                        let key = OneKey::pack(
                            StateKey::from_raw(state),
                            FormulaId::from_raw(formula),
                            rel,
                            shifted,
                        );
                        assert_eq!(key.state().raw(), state);
                        assert_eq!(key.formula().raw(), formula);
                        assert_eq!(key.rel(), rel);
                        assert_eq!(key.shifted(), shifted);
                    }
                    let gap = GapKey::pack(FormulaId::from_raw(formula), rel);
                    assert_eq!(gap.formula().raw(), formula);
                    assert_eq!(gap.rel(), rel);
                }
            }
        }
        // The extreme 64-bit relative times stay representable in GapKey
        // (full zig-zag), and distinct tuples pack to distinct keys.
        for rel in [i64::MAX, i64::MIN] {
            let gap = GapKey::pack(FormulaId::TRUE, rel);
            assert_eq!(gap.rel(), rel);
        }
        let a = OneKey::pack(StateKey::from_raw(1), FormulaId::from_raw(2), 3, false);
        let b = OneKey::pack(StateKey::from_raw(1), FormulaId::from_raw(2), 3, true);
        let c = OneKey::pack(StateKey::from_raw(1), FormulaId::from_raw(2), -3, false);
        assert!(a != b && a != c && b != c);
    }

    #[test]
    #[should_panic(expected = "overflows the packed progression-cache key")]
    fn one_key_rejects_unrepresentable_relative_times() {
        let _ = OneKey::pack(StateKey::from_raw(0), FormulaId::TRUE, 1 << 62, false);
    }

    #[test]
    fn eval_empty_matches_empty_trace_evaluation() {
        let mut interner = Interner::new();
        let samples = [
            crate::parse("true").unwrap(),
            crate::parse("p").unwrap(),
            crate::parse("!p").unwrap(),
            crate::parse("F[0,5) p").unwrap(),
            crate::parse("G[0,5) p").unwrap(),
            crate::parse("p U[0,5) q").unwrap(),
            crate::parse("(G[0,5) p) & !q").unwrap(),
        ];
        for phi in samples {
            let id = interner.intern(&phi);
            assert_eq!(
                interner.eval_empty(id),
                evaluate(&TimedTrace::empty(), &phi),
                "phi = {phi}"
            );
        }
    }
}
