//! Formula progression (Sec. IV of the paper).
//!
//! The progression function `Pr(α, τ̄, φ)` rewrites a formula after observing a
//! finite trace segment, so that the original formula holds on the full
//! execution if and only if the rewritten formula holds on the remaining
//! (unobserved) suffix:
//!
//! ```text
//! (α.α′, τ̄.τ̄′) ⊨ φ   ⟺   (α′, τ̄′) ⊨ Pr(α, τ̄, φ)
//! ```
//!
//! Unlike the classic state-by-state rewriting of Havelund–Roşu, progression
//! here consumes a whole segment at once (Def. 3), which is what keeps the
//! number of solver queries small when monitoring distributed computations.
//!
//! ## Residual anchoring
//!
//! A rewritten temporal operator carries a *residual* interval `I − d` where
//! `d` is the elapsed time between the start of the observed segment and the
//! reference point at which the residual formula will be re-anchored. The
//! paper anchors residuals at `τ_{|α|}` (the last timestamp of the segment,
//! which is also where the next segment starts because segments overlap by
//! construction, Sec. V-C). [`progress`] takes that anchor explicitly as
//! `next_base`, and [`progress_default`] uses the segment's last timestamp.
//!
//! ## Implementation
//!
//! The functions here are thin wrappers over the hash-consed progression
//! engine of [`crate::Interner`]: the formula is interned, progressed through
//! the arena's canonicalising smart constructors, and resolved back to a
//! plain [`Formula`]. Long-lived callers that progress many formulas (the
//! solver) keep their own [`Interner`] and skip the conversion entirely.

use crate::{Formula, Interner, TimedTrace};

/// Progresses `phi` over the observed segment `trace`, anchoring residual
/// obligations at time `next_base` (the start time of the next segment).
///
/// Residual intervals are computed as `I − (next_base − τ_i)`. For the
/// progression identity to hold, every timestamp of the future suffix must be
/// `≥ next_base` and `next_base` must be `≥` every timestamp of `trace`.
///
/// An empty `trace` leaves the formula unchanged.
///
/// # Examples
///
/// ```
/// use rvmtl_mtl::{progress, state, Formula, Interval, TimedTrace};
///
/// // Fig. 2 of the paper: φ_spec = ¬Apr.Redeem(bob) U_[0,8) Ban.Redeem(alice).
/// // After a first segment covering 4 time units in which neither redeem
/// // happened, the obligation shrinks to an interval of length 4.
/// let phi = Formula::until(
///     Formula::not(Formula::atom("Apr.Redeem(bob)")),
///     Interval::bounded(0, 8),
///     Formula::atom("Ban.Redeem(alice)"),
/// );
/// let seg1 = TimedTrace::new(vec![state![], state![]], vec![1, 4])?;
/// let rewritten = progress(&seg1, &phi, 5);
/// assert_eq!(
///     rewritten,
///     Formula::until(
///         Formula::not(Formula::atom("Apr.Redeem(bob)")),
///         Interval::bounded(0, 4),
///         Formula::atom("Ban.Redeem(alice)"),
///     )
/// );
/// # Ok::<(), rvmtl_mtl::TraceError>(())
/// ```
pub fn progress(trace: &TimedTrace, phi: &Formula, next_base: u64) -> Formula {
    if trace.is_empty() {
        return phi.clone();
    }
    let mut interner = Interner::new();
    let id = interner.intern(phi);
    let progressed = interner.progress(trace, id, next_base);
    interner.resolve(progressed)
}

/// Progresses `phi` over `trace`, anchoring residuals at the segment's last
/// timestamp (the paper's `τ_{|α|}`).
pub fn progress_default(trace: &TimedTrace, phi: &Formula) -> Formula {
    match trace.last_time() {
        None => phi.clone(),
        Some(last) => progress(trace, phi, last),
    }
}

/// Progresses `phi` over an observation *gap*: `elapsed` time units during
/// which no event occurred.
///
/// This is what the monitor applies between the anchor of a pending formula
/// and the first observation of the next segment: outer temporal intervals
/// shrink by `elapsed` (yielding a constant verdict when they have fully
/// elapsed), while atoms and the operands of temporal operators are left
/// untouched because they refer to future observations.
pub fn progress_gap(phi: &Formula, elapsed: u64) -> Formula {
    if elapsed == 0 {
        return phi.clone();
    }
    let mut interner = Interner::new();
    let id = interner.intern(phi);
    let progressed = interner.progress_gap(id, elapsed);
    interner.resolve(progressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, state, Interval};

    fn tr(states: Vec<crate::State>, times: Vec<u64>) -> TimedTrace {
        TimedTrace::new(states, times).unwrap()
    }

    #[test]
    fn empty_trace_is_identity() {
        let phi = Formula::eventually(Interval::bounded(0, 5), Formula::atom("p"));
        assert_eq!(progress(&TimedTrace::empty(), &phi, 10), phi);
    }

    #[test]
    fn atoms_resolve_against_first_state() {
        let t = tr(vec![state!["p"], state![]], vec![0, 1]);
        assert_eq!(progress(&t, &Formula::atom("p"), 2), Formula::True);
        assert_eq!(progress(&t, &Formula::atom("q"), 2), Formula::False);
        assert_eq!(
            progress(&t, &Formula::not(Formula::atom("q")), 2),
            Formula::True
        );
    }

    #[test]
    fn eventually_satisfied_within_segment() {
        let t = tr(vec![state![], state!["p"]], vec![0, 3]);
        let phi = Formula::eventually(Interval::bounded(0, 5), Formula::atom("p"));
        assert_eq!(progress(&t, &phi, 4), Formula::True);
    }

    #[test]
    fn eventually_residual_interval_shrinks() {
        let t = tr(vec![state![], state![]], vec![0, 2]);
        let phi = Formula::eventually(Interval::bounded(0, 10), Formula::atom("p"));
        // Anchor the residual at time 4: 4 time units of the interval elapsed.
        assert_eq!(
            progress(&t, &phi, 4),
            Formula::eventually(Interval::bounded(0, 6), Formula::atom("p"))
        );
    }

    #[test]
    fn eventually_interval_fully_elapsed_gives_verdict() {
        let t = tr(vec![state![], state![]], vec![0, 2]);
        let phi = Formula::eventually(Interval::bounded(0, 2), Formula::atom("p"));
        assert_eq!(progress(&t, &phi, 5), Formula::False);
        let phi_sat =
            Formula::eventually(Interval::bounded(0, 2), Formula::not(Formula::atom("p")));
        assert_eq!(progress(&t, &phi_sat, 5), Formula::True);
    }

    #[test]
    fn always_violated_within_segment() {
        let t = tr(vec![state!["p"], state![]], vec![0, 1]);
        let phi = Formula::always(Interval::bounded(0, 3), Formula::atom("p"));
        assert_eq!(progress(&t, &phi, 2), Formula::False);
    }

    #[test]
    fn always_residual_carries_over() {
        let t = tr(vec![state!["p"], state!["p"]], vec![0, 1]);
        let phi = Formula::always(Interval::bounded(0, 6), Formula::atom("p"));
        assert_eq!(
            progress(&t, &phi, 2),
            Formula::always(Interval::bounded(0, 4), Formula::atom("p"))
        );
    }

    #[test]
    fn fig2_until_progression_shrinks_interval() {
        // Fig. 2 / Sec. I: φ_spec over seg1 where neither redeem event occurred.
        // With the events of seg1 consuming 4 (resp. 5) time units, the
        // rewritten formulas are φ_spec1 (interval [0,4)) and φ_spec2
        // (interval [0,3)).
        let not_bob = Formula::not(Formula::atom("Apr.Redeem(bob)"));
        let alice = Formula::atom("Ban.Redeem(alice)");
        let phi = Formula::until(not_bob.clone(), Interval::bounded(0, 8), alice.clone());
        let seg1 = tr(
            vec![state![], state![], state![], state![]],
            vec![1, 1, 3, 4],
        );
        assert_eq!(
            progress(&seg1, &phi, 5),
            Formula::until(not_bob.clone(), Interval::bounded(0, 4), alice.clone())
        );
        assert_eq!(
            progress(&seg1, &phi, 6),
            Formula::until(not_bob, Interval::bounded(0, 3), alice)
        );
    }

    #[test]
    fn until_witness_in_segment_resolves_to_true() {
        let not_bob = Formula::not(Formula::atom("bob"));
        let phi = Formula::until(not_bob, Interval::bounded(0, 8), Formula::atom("alice"));
        let seg = tr(
            vec![state![], state!["alice"], state!["bob"]],
            vec![0, 3, 5],
        );
        assert_eq!(progress(&seg, &phi, 6), Formula::True);
    }

    #[test]
    fn until_violation_before_witness_resolves_to_false() {
        let not_bob = Formula::not(Formula::atom("bob"));
        let phi = Formula::until(not_bob, Interval::bounded(0, 8), Formula::atom("alice"));
        // bob redeems first, alice never does within the segment, and the
        // interval has fully elapsed by the anchor.
        let seg = tr(vec![state![], state!["bob"], state![]], vec![0, 3, 7]);
        assert_eq!(progress(&seg, &phi, 9), Formula::False);
    }

    #[test]
    fn until_pending_when_interval_open() {
        let not_bob = Formula::not(Formula::atom("bob"));
        let phi = Formula::until(
            not_bob.clone(),
            Interval::bounded(0, 8),
            Formula::atom("alice"),
        );
        // Nothing happened; obligation survives with a shrunk interval.
        let seg = tr(vec![state![], state![]], vec![0, 2]);
        let out = progress(&seg, &phi, 3);
        assert_eq!(
            out,
            Formula::until(not_bob, Interval::bounded(0, 5), Formula::atom("alice"))
        );
    }

    #[test]
    fn fig4_three_segment_worked_example() {
        // Fig. 4: φ = ◇_[0,6) r → (¬p U_[2,9) q), three segments.
        let phi = Formula::implies(
            Formula::eventually(Interval::bounded(0, 6), Formula::atom("r")),
            Formula::until(
                Formula::not(Formula::atom("p")),
                Interval::bounded(2, 9),
                Formula::atom("q"),
            ),
        );
        // Segment 1: (∅,1)(∅,2)(∅,3); next segment starts at 3.
        let seg1 = tr(vec![state![], state![], state![]], vec![1, 2, 3]);
        let after1 = progress(&seg1, &phi, 3);
        // r not seen yet and q not seen yet: both obligations survive with
        // shrunk intervals (shift 2).
        assert!(after1 != Formula::True && after1 != Formula::False);
        // Segment 2: ({r},3)(∅,4)(∅,5); next segment starts at 6.
        let seg2 = tr(vec![state!["r"], state![], state![]], vec![3, 4, 5]);
        let after2 = progress(&seg2, &after1, 6);
        assert!(after2 != Formula::True && after2 != Formula::False);
        // Segment 3: (∅,6)({q},7)({p},7): the pending until is discharged by q.
        let seg3 = tr(vec![state![], state!["q"], state!["p"]], vec![6, 7, 7]);
        let after3 = progress(&seg3, &after2, 8);
        assert_eq!(after3, Formula::True);
        // Cross-check against direct evaluation of the full trace.
        let full = seg1.concat(&seg2).unwrap().concat(&seg3).unwrap();
        assert!(evaluate(&full, &phi));
    }

    #[test]
    fn progression_matches_direct_evaluation_when_split() {
        // The defining property of progression (Def. 3), checked on a handful
        // of deterministic cases (the property test in tests/ covers random
        // cases).
        let full = tr(
            vec![
                state!["a"],
                state!["a"],
                state!["b"],
                state![],
                state!["a", "b"],
            ],
            vec![0, 2, 3, 5, 8],
        );
        let formulas = vec![
            Formula::eventually(Interval::bounded(0, 6), Formula::atom("b")),
            Formula::always(
                Interval::bounded(0, 9),
                Formula::or(Formula::atom("a"), Formula::atom("b")),
            ),
            Formula::until(
                Formula::atom("a"),
                Interval::bounded(0, 4),
                Formula::atom("b"),
            ),
            Formula::until(
                Formula::atom("a"),
                Interval::bounded(2, 9),
                Formula::atom("b"),
            ),
            Formula::implies(
                Formula::atom("a"),
                Formula::eventually(Interval::bounded(0, 10), Formula::atom("b")),
            ),
        ];
        for split in 1..full.len() {
            let prefix = full.prefix(split);
            let suffix = full.suffix(split);
            let anchor = suffix.first_time().unwrap();
            for phi in &formulas {
                let rewritten = progress(&prefix, phi, anchor);
                assert_eq!(
                    evaluate(&full, phi),
                    evaluate(&suffix, &rewritten),
                    "split {split}, formula {phi}: rewritten = {rewritten}"
                );
            }
        }
    }

    #[test]
    fn gap_progression_shrinks_outer_intervals_only() {
        let phi = Formula::implies(
            Formula::atom("start"),
            Formula::eventually(
                Interval::bounded(0, 10),
                Formula::always(Interval::bounded(0, 3), Formula::atom("p")),
            ),
        );
        let shifted = super::progress_gap(&phi, 4);
        assert_eq!(
            shifted,
            Formula::implies(
                Formula::atom("start"),
                Formula::eventually(
                    Interval::bounded(0, 6),
                    Formula::always(Interval::bounded(0, 3), Formula::atom("p"))
                ),
            )
        );
        assert_eq!(super::progress_gap(&phi, 0), phi);
    }

    #[test]
    fn gap_progression_resolves_elapsed_intervals() {
        let ev = Formula::eventually(Interval::bounded(0, 3), Formula::atom("p"));
        let al = Formula::always(Interval::bounded(0, 3), Formula::atom("p"));
        let un = Formula::until(
            Formula::atom("a"),
            Interval::bounded(2, 3),
            Formula::atom("b"),
        );
        assert_eq!(super::progress_gap(&ev, 5), Formula::False);
        assert_eq!(super::progress_gap(&al, 5), Formula::True);
        assert_eq!(super::progress_gap(&un, 5), Formula::False);
    }

    #[test]
    fn gap_progression_matches_segment_composition() {
        // Splitting a trace and accounting for the idle time between the
        // anchor and the first observation of the suffix must agree with
        // direct evaluation.
        let full = tr(vec![state!["a"], state![], state!["b"]], vec![0, 2, 7]);
        let phi = Formula::eventually(Interval::bounded(0, 9), Formula::atom("b"));
        let prefix = full.prefix(2);
        let suffix = full.suffix(2);
        // Progress over the prefix anchored at time 3 (a segment boundary),
        // then bridge the gap from 3 to the suffix's first observation at 7.
        let pending = progress(&prefix, &phi, 3);
        let bridged = super::progress_gap(&pending, suffix.first_time().unwrap() - 3);
        assert_eq!(evaluate(&suffix, &bridged), evaluate(&full, &phi));
    }

    #[test]
    fn progress_default_anchors_at_last_time() {
        let t = tr(vec![state![], state![]], vec![0, 3]);
        let phi = Formula::eventually(Interval::bounded(0, 10), Formula::atom("p"));
        assert_eq!(
            progress_default(&t, &phi),
            Formula::eventually(Interval::bounded(0, 7), Formula::atom("p"))
        );
    }
}
