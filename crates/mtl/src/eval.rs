//! Finite-trace MTL semantics (`⊨F`) as defined in Sec. II-B of the paper.
//!
//! The truth values are the two-valued set `{⊤, ⊥}`: a formula either is
//! satisfied by the finite trace or it is not. The only operator whose
//! semantics differs from the infinite-trace case is `U_I` (and, derived from
//! it, `◇_I` and `□_I`): existential obligations that are not discharged
//! within the trace evaluate to `⊥`, universal obligations that are never
//! challenged within the trace evaluate to `⊤`.

use crate::{Formula, TimedTrace};

/// Evaluates `(α, τ̄, i) ⊨F φ` — the finite-trace semantics at position `i`.
///
/// # Panics
///
/// Panics if `i >= trace.len()` on a non-empty trace access. For an empty
/// trace, every existential obligation is `false` and every universal one is
/// `true`.
pub fn evaluate_at(trace: &TimedTrace, i: usize, phi: &Formula) -> bool {
    let n = trace.len();
    match phi {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom(p) => i < n && trace.state(i).holds_prop(p),
        Formula::Not(a) => !evaluate_at(trace, i, a),
        Formula::And(a, b) => evaluate_at(trace, i, a) && evaluate_at(trace, i, b),
        Formula::Or(a, b) => evaluate_at(trace, i, a) || evaluate_at(trace, i, b),
        Formula::Implies(a, b) => !evaluate_at(trace, i, a) || evaluate_at(trace, i, b),
        Formula::Eventually(interval, a) => {
            if i >= n {
                return false;
            }
            let base = trace.time(i);
            (i..n).any(|j| interval.contains(trace.time(j) - base) && evaluate_at(trace, j, a))
        }
        Formula::Always(interval, a) => {
            if i >= n {
                return true;
            }
            let base = trace.time(i);
            (i..n).all(|j| !interval.contains(trace.time(j) - base) || evaluate_at(trace, j, a))
        }
        Formula::Until(a, interval, b) => {
            if i >= n {
                return false;
            }
            let base = trace.time(i);
            (i..n).any(|j| {
                interval.contains(trace.time(j) - base)
                    && evaluate_at(trace, j, b)
                    && (i..j).all(|k| evaluate_at(trace, k, a))
            })
        }
    }
}

/// Evaluates `(α, τ̄) ⊨F φ`, i.e. [`evaluate_at`] at position 0.
///
/// # Examples
///
/// ```
/// use rvmtl_mtl::{evaluate, state, Formula, Interval, TimedTrace};
///
/// // Fig. 3 of the paper: φ = a U_[0,6) b over one of the two possible
/// // orderings, (a,1)(a,2)(b,4)(¬a,5), which satisfies φ.
/// let trace = TimedTrace::new(
///     vec![state!["a"], state!["a"], state!["b"], state![]],
///     vec![1, 2, 4, 5],
/// )?;
/// let phi = Formula::until(
///     Formula::atom("a"),
///     Interval::bounded(0, 6),
///     Formula::atom("b"),
/// );
/// assert!(evaluate(&trace, &phi));
/// # Ok::<(), rvmtl_mtl::TraceError>(())
/// ```
pub fn evaluate(trace: &TimedTrace, phi: &Formula) -> bool {
    evaluate_at(trace, 0, phi)
}

/// Evaluates `phi` on `trace` with the top-level time reference anchored at
/// `origin` instead of the trace's first timestamp.
///
/// This is the semantics used for whole distributed computations, where the
/// paper anchors the time sequence at the global start (`π₀ = 0`) rather than
/// at the first observed event. Inner temporal operators still anchor at the
/// trace position from which they are evaluated; atomic propositions at the
/// top level refer to the first observation.
///
/// For `origin == trace.time(0)` this coincides with [`evaluate`].
pub fn evaluate_from(trace: &TimedTrace, phi: &Formula, origin: u64) -> bool {
    let n = trace.len();
    match phi {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom(p) => n > 0 && trace.state(0).holds_prop(p),
        Formula::Not(a) => !evaluate_from(trace, a, origin),
        Formula::And(a, b) => evaluate_from(trace, a, origin) && evaluate_from(trace, b, origin),
        Formula::Or(a, b) => evaluate_from(trace, a, origin) || evaluate_from(trace, b, origin),
        Formula::Implies(a, b) => {
            !evaluate_from(trace, a, origin) || evaluate_from(trace, b, origin)
        }
        Formula::Eventually(interval, a) => (0..n).any(|j| {
            trace.time(j) >= origin
                && interval.contains(trace.time(j) - origin)
                && evaluate_at(trace, j, a)
        }),
        Formula::Always(interval, a) => (0..n).all(|j| {
            trace.time(j) < origin
                || !interval.contains(trace.time(j) - origin)
                || evaluate_at(trace, j, a)
        }),
        Formula::Until(a, interval, b) => (0..n).any(|j| {
            trace.time(j) >= origin
                && interval.contains(trace.time(j) - origin)
                && evaluate_at(trace, j, b)
                && (0..j).all(|k| evaluate_at(trace, k, a))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{state, Interval};

    fn trace(states: Vec<crate::State>, times: Vec<u64>) -> TimedTrace {
        TimedTrace::new(states, times).unwrap()
    }

    #[test]
    fn atoms_and_boolean_connectives() {
        let t = trace(vec![state!["a", "b"], state!["b"]], vec![0, 1]);
        assert!(evaluate(&t, &Formula::atom("a")));
        assert!(!evaluate(&t, &Formula::atom("c")));
        assert!(evaluate(
            &t,
            &Formula::and(Formula::atom("a"), Formula::atom("b"))
        ));
        assert!(!evaluate(
            &t,
            &Formula::and(Formula::atom("a"), Formula::atom("c"))
        ));
        assert!(evaluate(
            &t,
            &Formula::or(Formula::atom("c"), Formula::atom("b"))
        ));
        assert!(evaluate(
            &t,
            &Formula::implies(Formula::atom("c"), Formula::atom("z"))
        ));
        assert!(evaluate(&t, &Formula::not(Formula::atom("z"))));
        assert!(evaluate(&t, &Formula::True));
        assert!(!evaluate(&t, &Formula::False));
    }

    #[test]
    fn fig3_until_both_orderings() {
        // Fig. 3: P1 has (a,1),(¬a,4); P2 has (a,2),(b,5). With ε = 2 the two
        // orderings of the middle events give contradictory verdicts.
        let phi = Formula::until(
            Formula::atom("a"),
            Interval::bounded(0, 6),
            Formula::atom("b"),
        );
        let satisfying = trace(
            vec![state!["a"], state!["a"], state!["b"], state![]],
            vec![1, 2, 4, 5],
        );
        assert!(evaluate(&satisfying, &phi));
        let violating = trace(
            vec![state!["a"], state!["a"], state![], state!["b"]],
            vec![1, 2, 4, 5],
        );
        assert!(!evaluate(&violating, &phi));
    }

    #[test]
    fn eventually_finite_semantics() {
        // From Sec. II-B: ◇_I p is ⊤ iff some state within I satisfies p.
        let t = trace(vec![state![], state![], state!["p"]], vec![0, 2, 5]);
        assert!(evaluate(
            &t,
            &Formula::eventually(Interval::bounded(0, 6), Formula::atom("p"))
        ));
        assert!(!evaluate(
            &t,
            &Formula::eventually(Interval::bounded(0, 5), Formula::atom("p"))
        ));
        assert!(!evaluate(
            &t,
            &Formula::eventually(Interval::bounded(0, 2), Formula::atom("p"))
        ));
    }

    #[test]
    fn always_finite_semantics_vacuous_truth() {
        // □_I p is ⊥ only if some state within I violates p; if the interval
        // is never reached within the trace the verdict is ⊤.
        let t = trace(vec![state!["p"], state!["p"]], vec![0, 1]);
        assert!(evaluate(
            &t,
            &Formula::always(Interval::bounded(0, 2), Formula::atom("p"))
        ));
        assert!(evaluate(
            &t,
            &Formula::always(Interval::bounded(10, 20), Formula::atom("q"))
        ));
        let t2 = trace(vec![state!["p"], state![]], vec![0, 1]);
        assert!(!evaluate(
            &t2,
            &Formula::always(Interval::bounded(0, 2), Formula::atom("p"))
        ));
    }

    #[test]
    fn until_requires_phi1_up_to_witness() {
        let phi = Formula::until(
            Formula::atom("a"),
            Interval::bounded(0, 10),
            Formula::atom("b"),
        );
        // a fails before b is reached.
        let t = trace(vec![state!["a"], state![], state!["b"]], vec![0, 1, 2]);
        assert!(!evaluate(&t, &phi));
        // b holds immediately: φ1 need not hold at all.
        let t2 = trace(vec![state!["b"], state![]], vec![0, 1]);
        assert!(evaluate(&t2, &phi));
    }

    #[test]
    fn until_respects_interval_lower_bound() {
        let phi = Formula::until(
            Formula::atom("a"),
            Interval::bounded(2, 9),
            Formula::atom("b"),
        );
        // b occurs too early (before the interval opens) and never again.
        let t = trace(vec![state!["a", "b"], state!["a"]], vec![0, 1]);
        assert!(!evaluate(&t, &phi));
        // b occurs within the interval.
        let t2 = trace(vec![state!["a"], state!["a"], state!["b"]], vec![0, 1, 3]);
        assert!(evaluate(&t2, &phi));
    }

    #[test]
    fn evaluation_at_inner_positions() {
        let t = trace(vec![state![], state!["p"], state![]], vec![0, 3, 6]);
        let phi = Formula::eventually(Interval::bounded(0, 2), Formula::atom("p"));
        assert!(!evaluate_at(&t, 0, &phi));
        assert!(evaluate_at(&t, 1, &phi));
        assert!(!evaluate_at(&t, 2, &phi));
    }

    #[test]
    fn empty_trace_semantics() {
        let t = TimedTrace::empty();
        assert!(!evaluate(&t, &Formula::atom("p")));
        assert!(!evaluate(
            &t,
            &Formula::eventually_untimed(Formula::atom("p"))
        ));
        assert!(evaluate(&t, &Formula::always_untimed(Formula::atom("p"))));
        assert!(evaluate(&t, &Formula::True));
    }

    #[test]
    fn nested_temporal_operators() {
        // □_[0,4) ◇_[0,3) p — every state in the first 4 time units sees p
        // within 3 time units.
        let phi = Formula::always(
            Interval::bounded(0, 4),
            Formula::eventually(Interval::bounded(0, 3), Formula::atom("p")),
        );
        let good = trace(
            vec![state!["p"], state![], state!["p"], state![], state!["p"]],
            vec![0, 1, 2, 3, 4],
        );
        assert!(evaluate(&good, &phi));
        let bad = trace(
            vec![state!["p"], state![], state![], state![], state![]],
            vec![0, 1, 2, 3, 4],
        );
        assert!(!evaluate(&bad, &phi));
    }

    #[test]
    fn evaluate_from_anchors_at_origin() {
        // An event at time 5 satisfies ◇_[0,6) p when anchored at 0, but not
        // when anchored at... it also satisfies it when anchored at its own
        // time; an event at time 7 satisfies it only from a later origin.
        let t = trace(vec![state!["p"]], vec![7]);
        let phi = Formula::eventually(Interval::bounded(0, 6), Formula::atom("p"));
        assert!(!evaluate_from(&t, &phi, 0));
        assert!(evaluate_from(&t, &phi, 2));
        assert!(evaluate_from(&t, &phi, 7));
        // Anchoring at the first timestamp coincides with `evaluate`.
        let t2 = trace(vec![state![], state!["p"]], vec![3, 5]);
        assert_eq!(evaluate_from(&t2, &phi, 3), evaluate(&t2, &phi));
        // Until anchored at the global start.
        let swap = trace(vec![state!["a"], state!["b"]], vec![4, 6]);
        let until = Formula::until(
            Formula::atom("a"),
            Interval::bounded(0, 6),
            Formula::atom("b"),
        );
        assert!(
            !evaluate_from(&swap, &until, 0),
            "witness at 6 is outside [0,6) from origin 0"
        );
        assert!(evaluate_from(&swap, &until, 4));
    }

    #[test]
    fn derived_operators_agree_with_until_encoding() {
        let t = trace(
            vec![state!["p"], state![], state!["q"], state!["p", "q"]],
            vec![0, 1, 3, 7],
        );
        let formulas = vec![
            Formula::eventually(Interval::bounded(1, 4), Formula::atom("q")),
            Formula::always(Interval::bounded(0, 4), Formula::atom("p")),
            Formula::always(Interval::bounded(0, 1), Formula::atom("p")),
            Formula::eventually(
                Interval::bounded(5, 9),
                Formula::and(Formula::atom("p"), Formula::atom("q")),
            ),
        ];
        for phi in formulas {
            assert_eq!(
                evaluate(&t, &phi),
                evaluate(&t, &phi.to_core()),
                "mismatch for {phi}"
            );
        }
    }
}
