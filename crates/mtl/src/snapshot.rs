//! Hand-rolled binary snapshot codec for arena and formula state.
//!
//! The streaming runtime checkpoints its entire state at GC epochs (see the
//! `rvmtl-runtime` crate's "Checkpoint format & recovery semantics" section);
//! this module provides the logic-layer half of that format: length-prefixed
//! little-endian primitives ([`SnapshotWriter`] / [`SnapshotReader`]), a
//! CRC-32 for the container checksum, tree codecs for [`Formula`], [`State`]
//! and [`Interval`], and the arena codec ([`encode_arena`] /
//! [`decode_arena`]) that persists an [`Interner`]'s node table together
//! with its fused [`crate::NodeMeta`] records and `ever_shifted` watermark.
//!
//! Everything is hand-rolled because the build environment is offline (no
//! serde); the format is versioned at the container level (the runtime's
//! envelope), kept deliberately flat, and **paranoid on decode**: no input,
//! however truncated or bit-flipped, may panic the decoder — every failure
//! is a [`SnapshotError`]. The same codec grammar carries the `rvmtl-wire`
//! streaming frames; `docs/PROTOCOL.md` at the repository root is the
//! normative byte-level specification of the shared primitives, the
//! checkpoint container and the wire stream.
//!
//! # Arena encoding and remap-on-restore
//!
//! The node table is written in id order with children as raw `u32` indices
//! (children always precede their parents, so every index refers backwards).
//! Decoding does **not** splice raw nodes into a new arena: each stored node
//! is re-interned bottom-up through the same canonicalising smart
//! constructors that built it (`mk_and_all`, `mk_until`, …), and the decoder
//! returns a *remap table* from stored index to fresh [`FormulaId`]. This
//! keeps every arena invariant (hash-consing, shift-normal canon links,
//! metadata) true by construction — the decoder then cross-checks the stored
//! [`crate::NodeMeta`] records and watermark against the re-interned arena
//! and rejects any disagreement as corruption. Callers translate their
//! persisted ids (e.g. pending [`crate::ShiftedId`] sets) through the remap
//! table, exactly as they would through a [`crate::FormulaRemap`] after GC.

use crate::{Formula, FormulaId, Interner, Interval, Node, Prop, State};
use std::fmt;

/// Maximum formula-tree nesting the decoder will follow. Deeper input is
/// rejected as malformed instead of risking stack exhaustion — real
/// specifications are orders of magnitude shallower.
pub const MAX_FORMULA_DEPTH: usize = 512;

/// Error produced when snapshot bytes cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The input ended before a field's bytes.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A structurally invalid field: unknown tag, dangling child index,
    /// metadata that disagrees with the re-interned arena, and so on.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needed {needed} more bytes, {available} available"
            ),
            SnapshotError::Malformed(reason) => write!(f, "malformed snapshot: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn malformed(reason: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed(reason.into())
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes` — the
/// checksum the runtime's checkpoint envelope carries.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Append-only little-endian byte writer for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte (`0` / `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds `u32::MAX` bytes (no real proposition
    /// name does).
    pub fn put_str(&mut self, s: &str) {
        let len = u32::try_from(s.len())
            .unwrap_or_else(|_| panic!("snapshot string field of {} bytes", s.len()));
        self.put_u32(len);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a collection length as a `u32` prefix.
    ///
    /// # Panics
    ///
    /// Panics if the length exceeds `u32::MAX` (arena ids are `u32`, so no
    /// real table does).
    pub fn put_len(&mut self, len: usize) {
        let len =
            u32::try_from(len).unwrap_or_else(|_| panic!("snapshot collection of {len} entries"));
        self.put_u32(len);
    }
}

/// Cursor over snapshot bytes; every read is bounds-checked and returns a
/// [`SnapshotError`] instead of panicking.
#[derive(Debug, Clone)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapshotReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed (trailing garbage is
    /// corruption, not padding).
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(malformed(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(bytes))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(bytes))
    }

    /// Reads a bool byte, rejecting anything but `0` / `1`.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(malformed(format!("bool byte {other:#04x}"))),
        }
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|e| malformed(format!("non-UTF-8 string: {e}")))
    }

    /// Reads a collection length prefix and checks it against the remaining
    /// input (each element needs at least `min_item_bytes`), so a corrupt
    /// count can neither over-allocate nor mask a truncation.
    pub fn len(&mut self, min_item_bytes: usize) -> Result<usize, SnapshotError> {
        let count = self.u32()? as usize;
        let needed = count.saturating_mul(min_item_bytes.max(1));
        if needed > self.remaining() {
            return Err(SnapshotError::Truncated {
                needed,
                available: self.remaining(),
            });
        }
        Ok(count)
    }
}

/// Encodes an observation [`State`] (its propositions in sorted order).
pub fn encode_state(w: &mut SnapshotWriter, state: &State) {
    w.put_len(state.iter().count());
    for p in state.iter() {
        w.put_str(p.name());
    }
}

/// Decodes an observation [`State`].
pub fn decode_state(r: &mut SnapshotReader<'_>) -> Result<State, SnapshotError> {
    let count = r.len(4)?;
    let mut state = State::empty();
    for _ in 0..count {
        state.insert(Prop::new(r.str()?));
    }
    Ok(state)
}

/// Encodes a timing [`Interval`].
pub fn encode_interval(w: &mut SnapshotWriter, i: Interval) {
    w.put_u64(i.start());
    match i.end() {
        Some(end) => {
            w.put_bool(true);
            w.put_u64(end);
        }
        None => w.put_bool(false),
    }
}

/// Decodes a timing [`Interval`], rejecting `end < start` (which the
/// constructor would assert on).
pub fn decode_interval(r: &mut SnapshotReader<'_>) -> Result<Interval, SnapshotError> {
    let start = r.u64()?;
    let end = if r.bool()? { Some(r.u64()?) } else { None };
    if let Some(end) = end {
        if end < start {
            return Err(malformed(format!("interval [{start}, {end}) ends early")));
        }
    }
    Ok(Interval::new(start, end))
}

const TAG_TRUE: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_ATOM: u8 = 2;
const TAG_NOT: u8 = 3;
const TAG_AND: u8 = 4;
const TAG_OR: u8 = 5;
const TAG_IMPLIES: u8 = 6;
const TAG_UNTIL: u8 = 7;
const TAG_EVENTUALLY: u8 = 8;
const TAG_ALWAYS: u8 = 9;

/// Encodes a plain [`Formula`] tree (pre-order, tagged).
pub fn encode_formula(w: &mut SnapshotWriter, phi: &Formula) {
    match phi {
        Formula::True => w.put_u8(TAG_TRUE),
        Formula::False => w.put_u8(TAG_FALSE),
        Formula::Atom(p) => {
            w.put_u8(TAG_ATOM);
            w.put_str(p.name());
        }
        Formula::Not(a) => {
            w.put_u8(TAG_NOT);
            encode_formula(w, a);
        }
        Formula::And(a, b) => {
            w.put_u8(TAG_AND);
            encode_formula(w, a);
            encode_formula(w, b);
        }
        Formula::Or(a, b) => {
            w.put_u8(TAG_OR);
            encode_formula(w, a);
            encode_formula(w, b);
        }
        Formula::Implies(a, b) => {
            w.put_u8(TAG_IMPLIES);
            encode_formula(w, a);
            encode_formula(w, b);
        }
        Formula::Until(a, i, b) => {
            w.put_u8(TAG_UNTIL);
            encode_interval(w, *i);
            encode_formula(w, a);
            encode_formula(w, b);
        }
        Formula::Eventually(i, a) => {
            w.put_u8(TAG_EVENTUALLY);
            encode_interval(w, *i);
            encode_formula(w, a);
        }
        Formula::Always(i, a) => {
            w.put_u8(TAG_ALWAYS);
            encode_interval(w, *i);
            encode_formula(w, a);
        }
    }
}

/// Decodes a plain [`Formula`] tree (depth-bounded by
/// [`MAX_FORMULA_DEPTH`]).
pub fn decode_formula(r: &mut SnapshotReader<'_>) -> Result<Formula, SnapshotError> {
    decode_formula_at(r, 0)
}

fn decode_formula_at(r: &mut SnapshotReader<'_>, depth: usize) -> Result<Formula, SnapshotError> {
    if depth >= MAX_FORMULA_DEPTH {
        return Err(malformed(format!(
            "formula nests deeper than {MAX_FORMULA_DEPTH}"
        )));
    }
    let tag = r.u8()?;
    Ok(match tag {
        TAG_TRUE => Formula::True,
        TAG_FALSE => Formula::False,
        TAG_ATOM => Formula::Atom(Prop::new(r.str()?)),
        TAG_NOT => Formula::Not(Box::new(decode_formula_at(r, depth + 1)?)),
        TAG_AND => Formula::And(
            Box::new(decode_formula_at(r, depth + 1)?),
            Box::new(decode_formula_at(r, depth + 1)?),
        ),
        TAG_OR => Formula::Or(
            Box::new(decode_formula_at(r, depth + 1)?),
            Box::new(decode_formula_at(r, depth + 1)?),
        ),
        TAG_IMPLIES => Formula::Implies(
            Box::new(decode_formula_at(r, depth + 1)?),
            Box::new(decode_formula_at(r, depth + 1)?),
        ),
        TAG_UNTIL => {
            let i = decode_interval(r)?;
            Formula::Until(
                Box::new(decode_formula_at(r, depth + 1)?),
                i,
                Box::new(decode_formula_at(r, depth + 1)?),
            )
        }
        TAG_EVENTUALLY => {
            let i = decode_interval(r)?;
            Formula::Eventually(i, Box::new(decode_formula_at(r, depth + 1)?))
        }
        TAG_ALWAYS => {
            let i = decode_interval(r)?;
            Formula::Always(i, Box::new(decode_formula_at(r, depth + 1)?))
        }
        other => return Err(malformed(format!("formula tag {other:#04x}"))),
    })
}

fn encode_node(w: &mut SnapshotWriter, node: &Node) {
    match node {
        Node::True => w.put_u8(TAG_TRUE),
        Node::False => w.put_u8(TAG_FALSE),
        Node::Atom(p) => {
            w.put_u8(TAG_ATOM);
            w.put_str(p.name());
        }
        Node::Not(a) => {
            w.put_u8(TAG_NOT);
            w.put_u32(a.raw());
        }
        Node::And(children) | Node::Or(children) => {
            w.put_u8(if matches!(node, Node::And(_)) {
                TAG_AND
            } else {
                TAG_OR
            });
            w.put_len(children.len());
            for c in children.iter() {
                w.put_u32(c.raw());
            }
        }
        Node::Implies(a, b) => {
            w.put_u8(TAG_IMPLIES);
            w.put_u32(a.raw());
            w.put_u32(b.raw());
        }
        Node::Until(a, i, b) => {
            w.put_u8(TAG_UNTIL);
            encode_interval(w, *i);
            w.put_u32(a.raw());
            w.put_u32(b.raw());
        }
        Node::Eventually(i, a) => {
            w.put_u8(TAG_EVENTUALLY);
            encode_interval(w, *i);
            w.put_u32(a.raw());
        }
        Node::Always(i, a) => {
            w.put_u8(TAG_ALWAYS);
            encode_interval(w, *i);
            w.put_u32(a.raw());
        }
    }
}

/// Resolves a stored child index through the remap table built so far; a
/// child may only refer to an earlier node.
fn child(map: &[FormulaId], r: &mut SnapshotReader<'_>) -> Result<FormulaId, SnapshotError> {
    let idx = r.u32()? as usize;
    map.get(idx).copied().ok_or_else(|| {
        malformed(format!(
            "child index {idx} refers at or beyond node {}",
            map.len()
        ))
    })
}

fn decode_node(r: &mut SnapshotReader<'_>, map: &[FormulaId]) -> Result<Node, SnapshotError> {
    let tag = r.u8()?;
    Ok(match tag {
        TAG_TRUE => Node::True,
        TAG_FALSE => Node::False,
        TAG_ATOM => Node::Atom(Prop::new(r.str()?)),
        TAG_NOT => Node::Not(child(map, r)?),
        TAG_AND | TAG_OR => {
            let count = r.len(4)?;
            if count < 2 {
                return Err(malformed(format!("n-ary node with {count} operands")));
            }
            let mut children = Vec::with_capacity(count);
            for _ in 0..count {
                children.push(child(map, r)?);
            }
            let children = children.into_boxed_slice();
            if tag == TAG_AND {
                Node::And(children)
            } else {
                Node::Or(children)
            }
        }
        TAG_IMPLIES => Node::Implies(child(map, r)?, child(map, r)?),
        TAG_UNTIL => {
            let i = decode_interval(r)?;
            Node::Until(child(map, r)?, i, child(map, r)?)
        }
        TAG_EVENTUALLY => Node::Eventually(decode_interval(r)?, child(map, r)?),
        TAG_ALWAYS => Node::Always(decode_interval(r)?, child(map, r)?),
        other => return Err(malformed(format!("node tag {other:#04x}"))),
    })
}

/// Re-interns a decoded node (whose children were already remapped) through
/// the canonicalising smart constructors.
fn reinsert(arena: &mut Interner, node: Node) -> FormulaId {
    match node {
        Node::True => FormulaId::TRUE,
        Node::False => FormulaId::FALSE,
        Node::Atom(p) => arena.mk_atom(p),
        Node::Not(a) => arena.mk_not(a),
        Node::And(children) => arena.mk_and_all(children.iter().copied()),
        Node::Or(children) => arena.mk_or_all(children.iter().copied()),
        Node::Implies(a, b) => arena.mk_implies(a, b),
        Node::Until(a, i, b) => arena.mk_until(a, i, b),
        Node::Eventually(i, a) => arena.mk_eventually(i, a),
        Node::Always(i, a) => arena.mk_always(i, a),
    }
}

/// Encodes an [`Interner`]'s node table, fused metadata records and
/// `ever_shifted` watermark. Interned observation states and progression
/// caches are *not* persisted — they are warmth, not state, and re-warm
/// naturally after a restore.
pub fn encode_arena(w: &mut SnapshotWriter, arena: &Interner) {
    w.put_bool(arena.ever_shifted());
    w.put_len(arena.len());
    for i in 0..arena.len() {
        let id = FormulaId::from_raw(i as u32);
        encode_node(w, arena.node(id));
    }
    for i in 0..arena.len() {
        let meta = arena.node_meta(FormulaId::from_raw(i as u32));
        w.put_u64(meta.horizon);
        w.put_u64(meta.slack);
        w.put_u32(meta.canon.raw());
    }
}

/// Decodes an arena snapshot into a fresh [`Interner`], returning the remap
/// table from stored node index to re-interned [`FormulaId`].
///
/// Every stored node is rebuilt through the smart constructors (see the
/// module documentation), then the stored metadata records and watermark are
/// cross-checked against the re-interned arena; any disagreement — dangling
/// child, non-canonical structure, forged horizon/slack/canon — is rejected
/// as [`SnapshotError::Malformed`]. No input can panic this function.
pub fn decode_arena(
    r: &mut SnapshotReader<'_>,
) -> Result<(Interner, Vec<FormulaId>), SnapshotError> {
    let ever_shifted = r.bool()?;
    let count = r.len(1)?;
    if count < 2 {
        return Err(malformed(format!(
            "arena of {count} nodes cannot hold the boolean constants"
        )));
    }
    let mut arena = Interner::new();
    let mut map: Vec<FormulaId> = Vec::with_capacity(count);
    for i in 0..count {
        let node = decode_node(r, &map)?;
        match i {
            0 if node != Node::True => return Err(malformed("node 0 must be the constant true")),
            1 if node != Node::False => return Err(malformed("node 1 must be the constant false")),
            _ => {}
        }
        map.push(reinsert(&mut arena, node));
    }
    // Deferred metadata cross-check: a canon link may point *forward* (the
    // canonical residual is interned right after its translate), so it can
    // only be verified once the whole remap table exists.
    for (i, &id) in map.iter().enumerate() {
        let horizon = r.u64()?;
        let slack = r.u64()?;
        let canon_idx = r.u32()? as usize;
        let canon = map
            .get(canon_idx)
            .copied()
            .ok_or_else(|| malformed(format!("canon index {canon_idx} out of range")))?;
        let meta = arena.node_meta(id);
        if meta.horizon != horizon || meta.slack != slack || meta.canon != canon {
            return Err(malformed(format!(
                "metadata of node {i} disagrees with the re-interned arena"
            )));
        }
    }
    if arena.ever_shifted() != ever_shifted {
        return Err(malformed(
            "ever_shifted watermark disagrees with the re-interned arena",
        ));
    }
    Ok((arena, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, state, ArenaOps};

    fn sample_formulas() -> Vec<Formula> {
        vec![
            parse("a U[0,6) b").unwrap(),
            parse("G[0,inf) (a -> F[2,8) b)").unwrap(),
            parse("(a & b) | !c").unwrap(),
            parse("F[3,9) (a U[1,4) (b & c))").unwrap(),
            Formula::True,
        ]
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = SnapshotWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_bool(true);
        w.put_str("hello ε");
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello ε");
        r.expect_end().unwrap();
    }

    #[test]
    fn reader_rejects_truncation_and_bad_bools() {
        let mut r = SnapshotReader::new(&[1, 2]);
        assert!(matches!(
            r.u64(),
            Err(SnapshotError::Truncated {
                needed: 8,
                available: 2
            })
        ));
        let mut r = SnapshotReader::new(&[3]);
        assert!(matches!(r.bool(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn length_prefix_is_checked_against_remaining_input() {
        // A count of u32::MAX with 4 payload bytes must fail fast instead of
        // allocating or looping.
        let mut w = SnapshotWriter::new();
        w.put_u32(u32::MAX);
        w.put_u32(0);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(r.len(4), Err(SnapshotError::Truncated { .. })));
    }

    #[test]
    fn states_and_intervals_roundtrip() {
        let mut w = SnapshotWriter::new();
        encode_state(&mut w, &state!["b.ack", "a.req"]);
        encode_state(&mut w, &State::empty());
        encode_interval(&mut w, Interval::bounded(2, 9));
        encode_interval(&mut w, Interval::unbounded(4));
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(decode_state(&mut r).unwrap(), state!["a.req", "b.ack"]);
        assert_eq!(decode_state(&mut r).unwrap(), State::empty());
        assert_eq!(decode_interval(&mut r).unwrap(), Interval::bounded(2, 9));
        assert_eq!(decode_interval(&mut r).unwrap(), Interval::unbounded(4));
        r.expect_end().unwrap();
    }

    #[test]
    fn inverted_interval_is_rejected_not_asserted() {
        let mut w = SnapshotWriter::new();
        w.put_u64(9);
        w.put_bool(true);
        w.put_u64(2);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(
            decode_interval(&mut r),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn formulas_roundtrip() {
        for phi in sample_formulas() {
            let mut w = SnapshotWriter::new();
            encode_formula(&mut w, &phi);
            let bytes = w.into_bytes();
            let mut r = SnapshotReader::new(&bytes);
            assert_eq!(decode_formula(&mut r).unwrap(), phi, "{phi}");
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn formula_decode_bounds_depth() {
        // A run of Not tags with no leaf: must fail (by depth or truncation)
        // without exhausting the stack.
        let bytes = vec![TAG_NOT; 100_000];
        let mut r = SnapshotReader::new(&bytes);
        assert!(decode_formula(&mut r).is_err());
    }

    #[test]
    fn arena_roundtrip_preserves_structure_and_metadata() {
        let mut arena = Interner::new();
        let roots: Vec<FormulaId> = sample_formulas().iter().map(|f| arena.intern(f)).collect();
        // Touch the shift-normal machinery so canon links and the watermark
        // are non-trivial.
        let normals: Vec<_> = roots
            .iter()
            .map(|&id| ArenaOps::normalize(&arena, id))
            .collect();
        let mut w = SnapshotWriter::new();
        encode_arena(&mut w, &arena);
        let bytes = w.into_bytes();

        let mut r = SnapshotReader::new(&bytes);
        let (restored, map) = decode_arena(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(map.len(), arena.len());
        assert_eq!(restored.ever_shifted(), arena.ever_shifted());
        for (i, &new_id) in map.iter().enumerate() {
            let old_id = FormulaId::from_raw(i as u32);
            assert_eq!(
                ArenaOps::resolve(&restored, new_id),
                ArenaOps::resolve(&arena, old_id),
                "node {i} must resolve identically"
            );
            let old_meta = arena.node_meta(old_id);
            let new_meta = restored.node_meta(new_id);
            assert_eq!(old_meta.horizon, new_meta.horizon);
            assert_eq!(old_meta.slack, new_meta.slack);
            assert_eq!(map[old_meta.canon.index()], new_meta.canon);
        }
        // Shift-normal decompositions survive the roundtrip.
        for (&root, &normal) in roots.iter().zip(&normals) {
            let restored_normal = ArenaOps::normalize(&restored, map[root.index()]);
            assert_eq!(restored_normal.shift, normal.shift);
            assert_eq!(restored_normal.id, map[normal.id.index()]);
        }
    }

    #[test]
    fn arena_roundtrips_after_compaction() {
        let mut arena = Interner::new();
        let keep = arena.intern(&parse("G[0,inf) (a -> F[2,8) b)").unwrap());
        let _dead = arena.intern(&parse("F[0,30) zz").unwrap());
        let keep = ArenaOps::normalize(&arena, keep);
        let remap = arena.compact([keep.id]);
        let keep = remap.remap_unchecked(keep.id);
        let mut w = SnapshotWriter::new();
        encode_arena(&mut w, &arena);
        let bytes = w.into_bytes();
        let (restored, map) = decode_arena(&mut SnapshotReader::new(&bytes)).unwrap();
        assert_eq!(
            ArenaOps::resolve(&restored, map[keep.index()]),
            ArenaOps::resolve(&arena, keep)
        );
    }

    #[test]
    fn arena_decode_never_panics_on_corrupt_input() {
        let mut arena = Interner::new();
        for phi in sample_formulas() {
            arena.intern(&phi);
        }
        let mut w = SnapshotWriter::new();
        encode_arena(&mut w, &arena);
        let pristine = w.into_bytes();
        // Pristine decodes.
        assert!(decode_arena(&mut SnapshotReader::new(&pristine)).is_ok());
        // Every truncation either errors cleanly or (never) panics.
        for cut in 0..pristine.len() {
            let mut r = SnapshotReader::new(&pristine[..cut]);
            assert!(
                decode_arena(&mut r).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        // Every single-bit flip either decodes (it may hit redundant
        // structure the cross-checks cannot distinguish) or errors — but
        // never panics. The container CRC catches these in production; this
        // exercises the decoder's own robustness.
        for i in 0..pristine.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut corrupt = pristine.clone();
                corrupt[i] ^= bit;
                let _ = decode_arena(&mut SnapshotReader::new(&corrupt));
            }
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }
}
