//! A concrete text syntax for MTL formulas.
//!
//! The grammar (lowest to highest precedence):
//!
//! ```text
//! formula  := until ('->' formula)?          (right associative)
//! until    := or ('U' interval? or)?
//! or       := and ('|' and)*
//! and      := unary ('&' unary)*
//! unary    := '!' unary
//!           | 'G' interval? unary
//!           | 'F' interval? unary
//!           | primary
//! primary  := 'true' | 'false' | atom | '(' formula ')'
//! interval := '[' nat ',' (nat | 'inf') ')'
//! atom     := ident ('(' ident (',' ident)* ')')?
//! ident    := [A-Za-z_][A-Za-z0-9_.\[\]]*
//! ```
//!
//! Omitting the interval after `U`, `G` or `F` means `[0, inf)`. Atom names
//! may contain dots, brackets and a parenthesised argument list so that the
//! paper's propositions (`ban.premium_deposited(alice)`, `Train[1].Cross`)
//! parse verbatim.

use crate::{Formula, Interval};
use std::fmt;

/// Error produced when parsing a formula from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which the error was detected.
    pub position: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an MTL formula from its text representation.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending position if the
/// input does not conform to the grammar.
///
/// # Examples
///
/// ```
/// use rvmtl_mtl::{parse, Formula, Interval};
///
/// let phi = parse("!Apr.Redeem(bob) U[0,8) Ban.Redeem(alice)")?;
/// assert_eq!(
///     phi,
///     Formula::until(
///         Formula::not(Formula::atom("Apr.Redeem(bob)")),
///         Interval::bounded(0, 8),
///         Formula::atom("Ban.Redeem(alice)"),
///     )
/// );
/// # Ok::<(), rvmtl_mtl::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Formula, ParseError> {
    let mut parser = Parser::new(input);
    let phi = parser.formula()?;
    parser.skip_ws();
    if parser.pos < parser.bytes.len() {
        return Err(parser.error("unexpected trailing input"));
    }
    Ok(phi)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.eat(expected) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", expected as char)))
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.until()?;
        self.skip_ws();
        if self.starts_with("->") {
            self.pos += 2;
            let rhs = self.formula()?;
            return Ok(Formula::implies(lhs, rhs));
        }
        Ok(lhs)
    }

    fn until(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or()?;
        self.skip_ws();
        if self.peek() == Some(b'U') && !self.is_ident_continuation(self.pos + 1) {
            self.pos += 1;
            let interval = self.optional_interval()?;
            let rhs = self.or()?;
            return Ok(Formula::until(lhs, interval, rhs));
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.and()?;
        loop {
            self.skip_ws();
            if self.peek() == Some(b'|') {
                self.pos += 1;
                let rhs = self.and()?;
                lhs = Formula::or(lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            self.skip_ws();
            if self.peek() == Some(b'&') {
                self.pos += 1;
                let rhs = self.unary()?;
                lhs = Formula::and(lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'!') => {
                self.pos += 1;
                Ok(Formula::not(self.unary()?))
            }
            Some(b'G') if !self.is_ident_continuation(self.pos + 1) => {
                self.pos += 1;
                let interval = self.optional_interval()?;
                Ok(Formula::always(interval, self.unary()?))
            }
            Some(b'F') if !self.is_ident_continuation(self.pos + 1) => {
                self.pos += 1;
                let interval = self.optional_interval()?;
                Ok(Formula::eventually(interval, self.unary()?))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let phi = self.formula()?;
                self.skip_ws();
                self.expect(b')')?;
                Ok(phi)
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.atom_name()?;
                match name.as_str() {
                    "true" => Ok(Formula::True),
                    "false" => Ok(Formula::False),
                    _ => Ok(Formula::atom(name)),
                }
            }
            _ => Err(self.error("expected a formula")),
        }
    }

    /// `true` if the byte at `at` continues an identifier, which tells `U`,
    /// `G` and `F` operators apart from atoms such as `Gate.Occ`. A `[` does
    /// not count as a continuation here: `G[0,6)` is the always operator with
    /// an interval, not an atom.
    fn is_ident_continuation(&self, at: usize) -> bool {
        matches!(self.bytes.get(at), Some(c) if c.is_ascii_alphanumeric() || *c == b'_' || *c == b'.')
    }

    fn atom_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'.' | b'[' | b']') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected an identifier"));
        }
        let mut name = self.input[start..self.pos].to_string();
        // Optional argument list: `event(alice,bob)`.
        if self.peek() == Some(b'(') {
            let args_start = self.pos;
            self.pos += 1;
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b')') => {
                        self.pos += 1;
                        break;
                    }
                    Some(c)
                        if c.is_ascii_alphanumeric()
                            || matches!(c, b'_' | b'.' | b',' | b' ' | b'+' | b'-') =>
                    {
                        self.pos += 1;
                    }
                    _ => {
                        return Err(ParseError {
                            position: args_start,
                            message: "unterminated argument list in atom".into(),
                        })
                    }
                }
            }
            name.push_str(&self.input[args_start..self.pos]);
        }
        Ok(name)
    }

    fn optional_interval(&mut self) -> Result<Interval, ParseError> {
        self.skip_ws();
        if self.peek() != Some(b'[') {
            return Ok(Interval::full());
        }
        self.pos += 1;
        let start = self.number()?;
        self.skip_ws();
        self.expect(b',')?;
        self.skip_ws();
        let end = if self.starts_with("inf") {
            self.pos += 3;
            None
        } else {
            Some(self.number()?)
        };
        self.skip_ws();
        self.expect(b')')?;
        match end {
            Some(e) if e < start => Err(self.error("interval end precedes start")),
            _ => Ok(Interval::new(start, end)),
        }
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        self.input[start..self.pos]
            .parse()
            .map_err(|_| self.error("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_and_constants() {
        assert_eq!(parse("true").unwrap(), Formula::True);
        assert_eq!(parse("false").unwrap(), Formula::False);
        assert_eq!(parse("p").unwrap(), Formula::atom("p"));
        assert_eq!(
            parse("ban.premium_deposited(alice)").unwrap(),
            Formula::atom("ban.premium_deposited(alice)")
        );
        assert_eq!(
            parse("Train[1].Cross").unwrap(),
            Formula::atom("Train[1].Cross")
        );
    }

    #[test]
    fn boolean_connectives_and_precedence() {
        assert_eq!(
            parse("a & b | c").unwrap(),
            Formula::or(
                Formula::and(Formula::atom("a"), Formula::atom("b")),
                Formula::atom("c")
            )
        );
        assert_eq!(
            parse("a -> b -> c").unwrap(),
            Formula::implies(
                Formula::atom("a"),
                Formula::implies(Formula::atom("b"), Formula::atom("c"))
            )
        );
        assert_eq!(
            parse("!(a | b)").unwrap(),
            Formula::not(Formula::or(Formula::atom("a"), Formula::atom("b")))
        );
    }

    #[test]
    fn temporal_operators_with_intervals() {
        assert_eq!(
            parse("G[0,6) r").unwrap(),
            Formula::always(Interval::bounded(0, 6), Formula::atom("r"))
        );
        assert_eq!(
            parse("F[2,9) q").unwrap(),
            Formula::eventually(Interval::bounded(2, 9), Formula::atom("q"))
        );
        assert_eq!(
            parse("a U[0,8) b").unwrap(),
            Formula::until(
                Formula::atom("a"),
                Interval::bounded(0, 8),
                Formula::atom("b")
            )
        );
        assert_eq!(
            parse("F[1,inf) p").unwrap(),
            Formula::eventually(Interval::unbounded(1), Formula::atom("p"))
        );
    }

    #[test]
    fn omitted_interval_means_full() {
        assert_eq!(
            parse("G p").unwrap(),
            Formula::always_untimed(Formula::atom("p"))
        );
        assert_eq!(
            parse("a U b").unwrap(),
            Formula::until_untimed(Formula::atom("a"), Formula::atom("b"))
        );
    }

    #[test]
    fn paper_specifications_parse() {
        let phi_spec = parse("!Apr.Redeem(bob) U[0,8) Ban.Redeem(alice)").unwrap();
        assert_eq!(phi_spec.temporal_depth(), 1);
        let fig4 = parse("F[0,6) r -> (!p U[2,9) q)").unwrap();
        assert_eq!(fig4.temporal_operator_count(), 2);
        let phi2 = parse("G (Train[1].Appr -> (Gate.Occ U Train[1].Cross))").unwrap();
        assert_eq!(phi2.temporal_depth(), 2);
        let liveness =
            parse("F[0,500) ban.premium_deposited(alice) & F[0,1000) apr.premium_deposited(bob)")
                .unwrap();
        assert_eq!(liveness.atoms().len(), 2);
    }

    #[test]
    fn atoms_starting_with_operator_letters() {
        assert_eq!(parse("Gate.Occ").unwrap(), Formula::atom("Gate.Occ"));
        assert_eq!(parse("Free").unwrap(), Formula::atom("Free"));
        assert_eq!(parse("Up").unwrap(), Formula::atom("Up"));
    }

    #[test]
    fn roundtrip_display_parse() {
        let formulas = vec![
            "(!Apr.Redeem(bob) U[0,8) Ban.Redeem(alice))",
            "G[0,6) (a -> F[2,9) b)",
            "((a & b) | !c)",
            "F[0,inf) p",
        ];
        for text in formulas {
            let parsed = parse(text).unwrap();
            let reparsed = parse(&parsed.to_string()).unwrap();
            assert_eq!(parsed, reparsed, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn errors_reported() {
        assert!(parse("").is_err());
        assert!(parse("a &").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("G[5,2) a").is_err());
        assert!(parse("a U[0,8 b").is_err());
        assert!(parse("a b").is_err());
    }
}
