//! Deterministic random-case generators shared by the workspace's property
//! tests (the offline stand-in for `proptest` strategies).
//!
//! Every suite that needs random states, traces, intervals or formulas pulls
//! them from here instead of re-implementing the recursion, so generator
//! tweaks (biases, new [`Formula`] variants) land in one place. Generation is
//! a pure function of the seeded [`StdRng`], keeping failures reproducible.

use crate::{Formula, Interval, State, TimedTrace};
use rvmtl_prng::StdRng;

/// The proposition alphabet used across the property tests.
pub const PROPS: [&str; 3] = ["p", "q", "r"];

/// Tuning knobs for [`gen_formula`] / [`gen_interval`]. `Default` matches the
/// MTL-layer property tests; the solver/monitor differential suites shrink
/// the interval bounds to keep their brute-force oracles tractable.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum operator nesting depth.
    pub max_depth: usize,
    /// Interval start is drawn from `0..interval_start_max`.
    pub interval_start_max: u64,
    /// Interval length is drawn from `1..interval_len_max`.
    pub interval_len_max: u64,
    /// Whether intervals may be unbounded (`[s, ∞)`).
    pub unbounded_intervals: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 3,
            interval_start_max: 6,
            interval_len_max: 10,
            unbounded_intervals: true,
        }
    }
}

/// A random state over [`PROPS`] (each proposition holds with probability ½).
pub fn gen_state(rng: &mut StdRng) -> State {
    PROPS.iter().filter(|_| rng.gen_bool()).copied().collect()
}

/// A random non-empty timed trace of up to `max_len` observations with
/// non-decreasing timestamps (gaps of 0–3 time units).
// Generated timestamps only ever grow, so the trace is monotone.
#[allow(clippy::expect_used)]
pub fn gen_trace(rng: &mut StdRng, max_len: usize) -> TimedTrace {
    let len = rng.gen_range(1usize..max_len + 1);
    let mut trace = TimedTrace::empty();
    let mut t = 0;
    for _ in 0..len {
        t += rng.gen_range(0u64..4);
        trace
            .push(gen_state(rng), t)
            .expect("monotone by construction");
    }
    trace
}

/// A random interval within the configured bounds.
pub fn gen_interval(rng: &mut StdRng, cfg: &GenConfig) -> Interval {
    let start = rng.gen_range(0u64..cfg.interval_start_max);
    if cfg.unbounded_intervals && rng.gen_bool() {
        Interval::unbounded(start)
    } else {
        Interval::bounded(start, start + rng.gen_range(1u64..cfg.interval_len_max))
    }
}

/// A random formula over [`PROPS`] with at most `cfg.max_depth` nested
/// operators, covering every [`Formula`] constructor.
pub fn gen_formula(rng: &mut StdRng, cfg: &GenConfig) -> Formula {
    gen_formula_at(rng, cfg, cfg.max_depth)
}

fn gen_formula_at(rng: &mut StdRng, cfg: &GenConfig, depth: usize) -> Formula {
    if depth == 0 || rng.gen_range(0u32..4) == 0 {
        return match rng.gen_range(0u32..5) {
            0 => Formula::True,
            1 => Formula::False,
            _ => Formula::atom(PROPS[rng.gen_range(0usize..PROPS.len())]),
        };
    }
    match rng.gen_range(0u32..7) {
        0 => Formula::not(gen_formula_at(rng, cfg, depth - 1)),
        1 => Formula::and(
            gen_formula_at(rng, cfg, depth - 1),
            gen_formula_at(rng, cfg, depth - 1),
        ),
        2 => Formula::or(
            gen_formula_at(rng, cfg, depth - 1),
            gen_formula_at(rng, cfg, depth - 1),
        ),
        3 => Formula::implies(
            gen_formula_at(rng, cfg, depth - 1),
            gen_formula_at(rng, cfg, depth - 1),
        ),
        4 => Formula::eventually(gen_interval(rng, cfg), gen_formula_at(rng, cfg, depth - 1)),
        5 => Formula::always(gen_interval(rng, cfg), gen_formula_at(rng, cfg, depth - 1)),
        _ => Formula::until(
            gen_formula_at(rng, cfg, depth - 1),
            gen_interval(rng, cfg),
            gen_formula_at(rng, cfg, depth - 1),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(gen_formula(&mut a, &cfg), gen_formula(&mut b, &cfg));
        }
    }

    #[test]
    fn depth_and_interval_bounds_are_respected() {
        let cfg = GenConfig {
            max_depth: 2,
            interval_start_max: 4,
            interval_len_max: 8,
            unbounded_intervals: false,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let phi = gen_formula(&mut rng, &cfg);
            assert!(phi.temporal_depth() <= 2);
            assert!(phi.max_horizon().unwrap_or(0) <= 11); // start < 4, len < 8
            let i = gen_interval(&mut rng, &cfg);
            assert!(!i.is_unbounded());
            let trace = gen_trace(&mut rng, 8);
            assert!(!trace.is_empty() && trace.len() <= 8);
        }
    }
}
