//! Metric temporal logic (MTL) for runtime verification: syntax, finite-trace
//! semantics, and segment-wise formula progression.
//!
//! This crate is the logic layer of the `rvmtl` workspace, a reproduction of
//! *Distributed Runtime Verification of Metric Temporal Properties for
//! Cross-Chain Protocols* (ICDCS 2022). It provides:
//!
//! * [`Formula`] — the MTL abstract syntax (`p`, `¬`, `∨`, `∧`, `→`, `U_I`,
//!   `◇_I`, `□_I`) with timing [`Interval`]s;
//! * [`TimedTrace`] — finite timed traces `(α, τ̄)` over [`State`]s of
//!   [`Prop`]ositions;
//! * [`evaluate`] — the finite-trace semantics `⊨F` of Sec. II-B;
//! * [`progress`] — the segment-wise formula progression of Sec. IV
//!   (Algorithms 1–3), the building block of the distributed monitor;
//! * [`simplify`] — canonicalising simplification used to deduplicate the
//!   rewritten formulas produced for different event interleavings;
//! * [`parse`] — a concrete text syntax.
//!
//! # Quick example
//!
//! ```
//! use rvmtl_mtl::{evaluate, parse, progress, state, TimedTrace};
//!
//! // The paper's two-party swap property: Alice must not be outrun by Bob
//! // within 8 time units.
//! let phi = parse("!Apr.Redeem(bob) U[0,8) Ban.Redeem(alice)")?;
//!
//! // A segment in which nothing happened for 4 time units...
//! let seg1 = TimedTrace::new(vec![state![], state![]], vec![0, 4])?;
//! // ...shrinks the obligation to 4 remaining time units.
//! let rewritten = progress(&seg1, &phi, 4);
//! assert_eq!(rewritten.to_string(), "(!Apr.Redeem(bob) U[0,4) Ban.Redeem(alice))");
//!
//! // A second segment where Alice redeems first discharges the obligation.
//! let seg2 = TimedTrace::new(
//!     vec![state!["Ban.Redeem(alice)"], state!["Apr.Redeem(bob)"]],
//!     vec![5, 6],
//! )?;
//! assert!(evaluate(&seg2, &rewritten));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod arena;
mod atom;
mod eval;
mod formula;
pub mod hashing;
mod intern;
mod interval;
mod parser;
mod progress;
mod sharded;
mod simplify;
pub mod snapshot;
mod state;
pub mod testgen;
mod trace;

pub use arena::{ArenaOps, ProbeScratch, RangeKind, SplitRange};
pub use atom::Prop;
pub use eval::{evaluate, evaluate_at, evaluate_from};
pub use formula::Formula;
pub use intern::{
    ArenaMemory, CacheStats, FormulaId, FormulaRemap, GapKey, Interner, Node, NodeKind, NodeMeta,
    OneKey, RemapCollected, ShiftedId, StateKey,
};
pub use interval::Interval;
pub use parser::{parse, ParseError};
pub use progress::{progress, progress_default, progress_gap};
pub use sharded::ShardedInterner;
pub use simplify::simplify;
pub use state::State;
pub use trace::{TimedTrace, TraceError};

/// Convenience re-exports of the smart constructors used when building
/// formulas programmatically with on-the-fly simplification.
pub mod smart {
    pub use crate::simplify::{always, and, and_all, eventually, implies, not, or, or_all, until};
}
