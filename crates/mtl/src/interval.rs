//! Half-open discrete time intervals `[start, end)` over `u64`, with `end = None`
//! denoting an unbounded (infinite) right endpoint.
//!
//! Intervals are the time bounds attached to the temporal operators of MTL
//! (`U_I`, `◇_I`, `□_I`). The operation [`Interval::shift_down`] implements the
//! paper's `I − τ` used by formula progression: both endpoints are lowered by a
//! delay and clamped at zero.

use std::fmt;

/// A half-open interval `[start, end)` over discrete time.
///
/// `end == None` represents an infinite right endpoint, i.e. `[start, ∞)`.
///
/// # Examples
///
/// ```
/// use rvmtl_mtl::Interval;
///
/// let i = Interval::bounded(2, 9);
/// assert!(i.contains(2));
/// assert!(i.contains(8));
/// assert!(!i.contains(9));
///
/// // The paper's `I − τ` operation, used when progressing formulas.
/// assert_eq!(i.shift_down(3), Interval::bounded(0, 6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    start: u64,
    end: Option<u64>,
}

impl Interval {
    /// Creates the bounded interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`; an interval with `start == end` is allowed and
    /// is empty (this arises naturally when shifting intervals down).
    pub fn bounded(start: u64, end: u64) -> Self {
        assert!(
            start <= end,
            "interval start {start} must not exceed end {end}"
        );
        Interval {
            start,
            end: Some(end),
        }
    }

    /// Creates the unbounded interval `[start, ∞)`.
    pub fn unbounded(start: u64) -> Self {
        Interval { start, end: None }
    }

    /// Creates an interval from a start and an optional exclusive end.
    pub fn new(start: u64, end: Option<u64>) -> Self {
        match end {
            Some(e) => Self::bounded(start, e),
            None => Self::unbounded(start),
        }
    }

    /// The full time line `[0, ∞)`.
    pub fn full() -> Self {
        Interval {
            start: 0,
            end: None,
        }
    }

    /// The inclusive lower endpoint.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// The exclusive upper endpoint (`None` means `∞`).
    pub fn end(&self) -> Option<u64> {
        self.end
    }

    /// Returns `true` if the interval contains no time point.
    pub fn is_empty(&self) -> bool {
        matches!(self.end, Some(e) if e <= self.start)
    }

    /// Returns `true` if the interval has an infinite right endpoint.
    pub fn is_unbounded(&self) -> bool {
        self.end.is_none()
    }

    /// Membership test: `t ∈ [start, end)`.
    pub fn contains(&self, t: u64) -> bool {
        t >= self.start && self.end.is_none_or(|e| t < e)
    }

    /// The paper's `I − τ`: lowers both endpoints by `delay`, clamping at zero.
    ///
    /// `[s, e) − d = [max(0, s − d), max(0, e − d))`; an unbounded end stays
    /// unbounded. The result may be empty when the whole interval has elapsed.
    pub fn shift_down(&self, delay: u64) -> Self {
        Interval {
            start: self.start.saturating_sub(delay),
            end: self.end.map(|e| e.saturating_sub(delay)),
        }
    }

    /// Shifts both endpoints up by `delay` (no clamping needed).
    pub fn shift_up(&self, delay: u64) -> Self {
        Interval {
            start: self.start + delay,
            end: self.end.map(|e| e + delay),
        }
    }

    /// Exact translation towards zero: `[s, e) − δ = [s − δ, e − δ)` with the
    /// precondition `δ ≤ s`, so — unlike [`Interval::shift_down`] — no endpoint
    /// is clamped and the result is a faithful time-translate of the interval
    /// ([`Interval::shift_up`] inverts it). This is the interval-level move of
    /// the arena's shift-normal form: a temporal node is stored with the
    /// greatest common offset of its live intervals factored out, and
    /// `translate_down`/`shift_up` carry intervals between a formula and its
    /// canonical residual.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `delay > start`; the translation would not
    /// be exact.
    pub fn translate_down(&self, delay: u64) -> Self {
        debug_assert!(
            delay <= self.start,
            "translate_down({delay}) of {self} is not exact"
        );
        Interval {
            start: self.start - delay,
            end: self.end.map(|e| e - delay),
        }
    }

    /// The largest exact [`Interval::translate_down`] the interval admits:
    /// its start. Translating by more would clamp and lose the shift-normal
    /// invariant.
    pub fn translation_slack(&self) -> u64 {
        self.start
    }

    /// Returns `true` if every point of the interval is strictly below `t`,
    /// i.e. the interval has fully elapsed once `t` time units have passed.
    pub fn elapsed_by(&self, t: u64) -> bool {
        match self.end {
            Some(e) => e <= t,
            None => false,
        }
    }

    /// Returns `true` if the interval starts at or after `t` (no point of the
    /// interval is below `t`).
    pub fn starts_at_or_after(&self, t: u64) -> bool {
        self.start >= t
    }

    /// Intersection of two intervals.
    pub fn intersect(&self, other: &Interval) -> Interval {
        let start = self.start.max(other.start);
        let end = match (self.end, other.end) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };
        Interval {
            start,
            end: end.map(|e| e.max(start)),
        }
    }

    /// Number of integer time points in the interval, `None` if infinite.
    pub fn len(&self) -> Option<u64> {
        self.end.map(|e| e.saturating_sub(self.start))
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::full()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.end {
            Some(e) => write!(f, "[{},{})", self.start, e),
            None => write!(f, "[{},inf)", self.start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_membership() {
        let i = Interval::bounded(2, 9);
        assert!(!i.contains(0));
        assert!(!i.contains(1));
        assert!(i.contains(2));
        assert!(i.contains(5));
        assert!(i.contains(8));
        assert!(!i.contains(9));
        assert!(!i.contains(100));
    }

    #[test]
    fn unbounded_membership() {
        let i = Interval::unbounded(3);
        assert!(!i.contains(2));
        assert!(i.contains(3));
        assert!(i.contains(u64::MAX));
        assert!(i.is_unbounded());
        assert!(!i.is_empty());
        assert_eq!(i.len(), None);
    }

    #[test]
    fn empty_interval() {
        let i = Interval::bounded(4, 4);
        assert!(i.is_empty());
        assert!(!i.contains(4));
        assert_eq!(i.len(), Some(0));
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn invalid_interval_panics() {
        let _ = Interval::bounded(5, 2);
    }

    #[test]
    fn shift_down_matches_paper_example() {
        // From Fig. 4: [2,9) shifted by 3 becomes [0,6).
        assert_eq!(
            Interval::bounded(2, 9).shift_down(3),
            Interval::bounded(0, 6)
        );
        // From Fig. 2: [0,8) shifted by 4 becomes [0,4).
        assert_eq!(
            Interval::bounded(0, 8).shift_down(4),
            Interval::bounded(0, 4)
        );
    }

    #[test]
    fn shift_down_clamps_at_zero() {
        assert_eq!(
            Interval::bounded(2, 9).shift_down(20),
            Interval::bounded(0, 0)
        );
        assert!(Interval::bounded(2, 9).shift_down(20).is_empty());
        assert_eq!(
            Interval::unbounded(5).shift_down(100),
            Interval::unbounded(0)
        );
    }

    #[test]
    fn shift_up_then_down_roundtrips() {
        let i = Interval::bounded(3, 7);
        assert_eq!(i.shift_up(5).shift_down(5), i);
    }

    #[test]
    fn translate_down_is_exact_and_inverts_shift_up() {
        let i = Interval::bounded(3, 7);
        assert_eq!(i.translation_slack(), 3);
        assert_eq!(i.translate_down(3), Interval::bounded(0, 4));
        assert_eq!(i.translate_down(3).shift_up(3), i);
        let u = Interval::unbounded(5);
        assert_eq!(u.translate_down(2), Interval::unbounded(3));
        assert_eq!(u.translate_down(2).shift_up(2), u);
        // Within the slack, translate_down agrees with shift_down.
        for d in 0..=3 {
            assert_eq!(i.translate_down(d), i.shift_down(d));
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not exact")]
    fn translate_past_the_slack_panics() {
        let _ = Interval::bounded(3, 7).translate_down(4);
    }

    #[test]
    fn elapsed_by() {
        let i = Interval::bounded(2, 9);
        assert!(!i.elapsed_by(8));
        assert!(i.elapsed_by(9));
        assert!(i.elapsed_by(100));
        assert!(!Interval::unbounded(0).elapsed_by(u64::MAX));
    }

    #[test]
    fn intersection() {
        let a = Interval::bounded(2, 9);
        let b = Interval::bounded(5, 20);
        assert_eq!(a.intersect(&b), Interval::bounded(5, 9));
        let c = Interval::unbounded(7);
        assert_eq!(a.intersect(&c), Interval::bounded(7, 9));
        let disjoint = Interval::bounded(10, 20);
        assert!(a.intersect(&disjoint).is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(Interval::bounded(0, 8).to_string(), "[0,8)");
        assert_eq!(Interval::unbounded(5).to_string(), "[5,inf)");
    }
}
