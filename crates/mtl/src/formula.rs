//! The abstract syntax of metric temporal logic (MTL) formulas.
//!
//! The grammar follows Sec. II-B of the paper:
//!
//! ```text
//! φ ::= p | ¬φ | φ ∨ φ | φ U_I φ
//! ```
//!
//! with the usual derived operators kept as first-class constructors because
//! the progression algorithm (Sec. IV) treats them directly: `∧`, `→`,
//! `◇_I` (eventually) and `□_I` (always).

use crate::{Interval, Prop};
use std::collections::BTreeSet;
use std::fmt;

/// An MTL formula.
///
/// # Examples
///
/// ```
/// use rvmtl_mtl::{Formula, Interval};
///
/// // ¬Apr.Redeem(bob) U_[0,8) Ban.Redeem(alice)   (the paper's φ_spec)
/// let phi = Formula::until(
///     Formula::not(Formula::atom("Apr.Redeem(bob)")),
///     Interval::bounded(0, 8),
///     Formula::atom("Ban.Redeem(alice)"),
/// );
/// assert_eq!(phi.to_string(), "(!Apr.Redeem(bob) U[0,8) Ban.Redeem(alice))");
/// assert_eq!(phi.size(), 4);
/// assert_eq!(phi.temporal_depth(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// An atomic proposition.
    Atom(Prop),
    /// Negation `¬φ`.
    Not(Box<Formula>),
    /// Conjunction `φ₁ ∧ φ₂`.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction `φ₁ ∨ φ₂`.
    Or(Box<Formula>, Box<Formula>),
    /// Implication `φ₁ → φ₂`.
    Implies(Box<Formula>, Box<Formula>),
    /// Timed until `φ₁ U_I φ₂`.
    Until(Box<Formula>, Interval, Box<Formula>),
    /// Timed eventually `◇_I φ`.
    Eventually(Interval, Box<Formula>),
    /// Timed always `□_I φ`.
    Always(Interval, Box<Formula>),
}

impl Formula {
    /// The constant `true`.
    pub fn tt() -> Self {
        Formula::True
    }

    /// The constant `false`.
    pub fn ff() -> Self {
        Formula::False
    }

    /// An atomic proposition.
    pub fn atom(p: impl Into<Prop>) -> Self {
        Formula::Atom(p.into())
    }

    /// Negation `¬φ`.
    #[allow(clippy::should_implement_trait)] // `Formula::not(..)` reads as logic, not `!`
    pub fn not(phi: Formula) -> Self {
        Formula::Not(Box::new(phi))
    }

    /// Conjunction `φ₁ ∧ φ₂`.
    pub fn and(a: Formula, b: Formula) -> Self {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// Disjunction `φ₁ ∨ φ₂`.
    pub fn or(a: Formula, b: Formula) -> Self {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// Implication `φ₁ → φ₂`.
    pub fn implies(a: Formula, b: Formula) -> Self {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// Timed until `φ₁ U_I φ₂`.
    pub fn until(a: Formula, i: Interval, b: Formula) -> Self {
        Formula::Until(Box::new(a), i, Box::new(b))
    }

    /// Untimed until `φ₁ U φ₂` (interval `[0,∞)`).
    pub fn until_untimed(a: Formula, b: Formula) -> Self {
        Formula::until(a, Interval::full(), b)
    }

    /// Timed eventually `◇_I φ`.
    pub fn eventually(i: Interval, phi: Formula) -> Self {
        Formula::Eventually(i, Box::new(phi))
    }

    /// Untimed eventually `◇ φ` (interval `[0,∞)`).
    pub fn eventually_untimed(phi: Formula) -> Self {
        Formula::eventually(Interval::full(), phi)
    }

    /// Timed always `□_I φ`.
    pub fn always(i: Interval, phi: Formula) -> Self {
        Formula::Always(i, Box::new(phi))
    }

    /// Untimed always `□ φ` (interval `[0,∞)`).
    pub fn always_untimed(phi: Formula) -> Self {
        Formula::always(Interval::full(), phi)
    }

    /// N-ary conjunction; returns `true` for an empty iterator.
    pub fn and_all(parts: impl IntoIterator<Item = Formula>) -> Self {
        let mut iter = parts.into_iter();
        match iter.next() {
            None => Formula::True,
            Some(first) => iter.fold(first, Formula::and),
        }
    }

    /// N-ary disjunction; returns `false` for an empty iterator.
    pub fn or_all(parts: impl IntoIterator<Item = Formula>) -> Self {
        let mut iter = parts.into_iter();
        match iter.next() {
            None => Formula::False,
            Some(first) => iter.fold(first, Formula::or),
        }
    }

    /// Returns `true` if the formula is the constant `true` or `false`.
    pub fn is_constant(&self) -> bool {
        matches!(self, Formula::True | Formula::False)
    }

    /// Returns `Some(b)` if the formula is the boolean constant `b`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Formula::True => Some(true),
            Formula::False => Some(false),
            _ => None,
        }
    }

    /// Number of syntactic nodes in the formula.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::Not(a) | Formula::Eventually(_, a) | Formula::Always(_, a) => 1 + a.size(),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Until(a, _, b) => 1 + a.size() + b.size(),
        }
    }

    /// Maximum nesting depth of temporal operators (the paper observes that
    /// runtime grows with this depth; see Fig. 5a).
    pub fn temporal_depth(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 0,
            Formula::Not(a) => a.temporal_depth(),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.temporal_depth().max(b.temporal_depth())
            }
            Formula::Until(a, _, b) => 1 + a.temporal_depth().max(b.temporal_depth()),
            Formula::Eventually(_, a) | Formula::Always(_, a) => 1 + a.temporal_depth(),
        }
    }

    /// Number of temporal operators in the formula.
    pub fn temporal_operator_count(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 0,
            Formula::Not(a) => a.temporal_operator_count(),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.temporal_operator_count() + b.temporal_operator_count()
            }
            Formula::Until(a, _, b) => {
                1 + a.temporal_operator_count() + b.temporal_operator_count()
            }
            Formula::Eventually(_, a) | Formula::Always(_, a) => 1 + a.temporal_operator_count(),
        }
    }

    /// The set of atomic propositions occurring in the formula.
    pub fn atoms(&self) -> BTreeSet<Prop> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<Prop>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(p) => {
                out.insert(p.clone());
            }
            Formula::Not(a) | Formula::Eventually(_, a) | Formula::Always(_, a) => {
                a.collect_atoms(out)
            }
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Until(a, _, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
        }
    }

    /// The largest finite interval endpoint mentioned in the formula, if any.
    /// Useful for sizing monitoring horizons.
    pub fn max_horizon(&self) -> Option<u64> {
        fn interval_bound(i: &Interval) -> Option<u64> {
            i.end()
        }
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => None,
            Formula::Not(a) => a.max_horizon(),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                match (a.max_horizon(), b.max_horizon()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            Formula::Until(a, i, b) => {
                let inner = match (a.max_horizon(), b.max_horizon()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                };
                match (interval_bound(i), inner) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            Formula::Eventually(i, a) | Formula::Always(i, a) => {
                match (interval_bound(i), a.max_horizon()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
        }
    }

    /// Rewrites the formula into the core grammar (`p`, `¬`, `∨`, `U_I`),
    /// eliminating `∧`, `→`, `◇` and `□` via the standard dualities.
    pub fn to_core(&self) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(p) => Formula::Atom(p.clone()),
            Formula::Not(a) => Formula::not(a.to_core()),
            Formula::Or(a, b) => Formula::or(a.to_core(), b.to_core()),
            Formula::And(a, b) => Formula::not(Formula::or(
                Formula::not(a.to_core()),
                Formula::not(b.to_core()),
            )),
            Formula::Implies(a, b) => Formula::or(Formula::not(a.to_core()), b.to_core()),
            Formula::Until(a, i, b) => Formula::until(a.to_core(), *i, b.to_core()),
            Formula::Eventually(i, a) => Formula::until(Formula::True, *i, a.to_core()),
            Formula::Always(i, a) => {
                Formula::not(Formula::until(Formula::True, *i, Formula::not(a.to_core())))
            }
        }
    }
}

impl From<Prop> for Formula {
    fn from(p: Prop) -> Self {
        Formula::Atom(p)
    }
}

impl From<bool> for Formula {
    fn from(b: bool) -> Self {
        if b {
            Formula::True
        } else {
            Formula::False
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(p) => write!(f, "{p}"),
            Formula::Not(a) => write!(f, "!{a}"),
            Formula::And(a, b) => write!(f, "({a} & {b})"),
            Formula::Or(a, b) => write!(f, "({a} | {b})"),
            Formula::Implies(a, b) => write!(f, "({a} -> {b})"),
            Formula::Until(a, i, b) => write!(f, "({a} U{i} {b})"),
            Formula::Eventually(i, a) => write!(f, "F{i} {a}"),
            Formula::Always(i, a) => write!(f, "G{i} {a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::{state, TimedTrace};

    fn phi_spec() -> Formula {
        Formula::until(
            Formula::not(Formula::atom("Apr.Redeem(bob)")),
            Interval::bounded(0, 8),
            Formula::atom("Ban.Redeem(alice)"),
        )
    }

    #[test]
    fn constructors_and_display() {
        let phi = phi_spec();
        assert_eq!(
            phi.to_string(),
            "(!Apr.Redeem(bob) U[0,8) Ban.Redeem(alice))"
        );
        let g = Formula::always(Interval::bounded(0, 6), Formula::atom("r"));
        assert_eq!(g.to_string(), "G[0,6) r");
        let e = Formula::eventually_untimed(Formula::atom("q"));
        assert_eq!(e.to_string(), "F[0,inf) q");
    }

    #[test]
    fn size_and_depth() {
        let phi = phi_spec();
        assert_eq!(phi.size(), 4);
        assert_eq!(phi.temporal_depth(), 1);
        assert_eq!(phi.temporal_operator_count(), 1);
        let nested = Formula::always_untimed(Formula::eventually(
            Interval::bounded(0, 5),
            Formula::atom("p"),
        ));
        assert_eq!(nested.temporal_depth(), 2);
        assert_eq!(nested.temporal_operator_count(), 2);
    }

    #[test]
    fn atoms_collected() {
        let phi = phi_spec();
        let atoms = phi.atoms();
        assert_eq!(atoms.len(), 2);
        assert!(atoms.contains("Apr.Redeem(bob)"));
        assert!(atoms.contains("Ban.Redeem(alice)"));
    }

    #[test]
    fn and_all_or_all() {
        assert_eq!(Formula::and_all([]), Formula::True);
        assert_eq!(Formula::or_all([]), Formula::False);
        let c = Formula::and_all([Formula::atom("a"), Formula::atom("b"), Formula::atom("c")]);
        assert_eq!(c.size(), 5);
    }

    #[test]
    fn max_horizon() {
        let phi = phi_spec();
        assert_eq!(phi.max_horizon(), Some(8));
        assert_eq!(Formula::atom("a").max_horizon(), None);
        let unbounded = Formula::eventually_untimed(Formula::atom("a"));
        assert_eq!(unbounded.max_horizon(), None);
        let mixed = Formula::and(
            Formula::eventually(Interval::bounded(0, 3), Formula::atom("a")),
            Formula::always(Interval::bounded(0, 12), Formula::atom("b")),
        );
        assert_eq!(mixed.max_horizon(), Some(12));
    }

    #[test]
    fn to_core_preserves_finite_semantics() {
        let trace = TimedTrace::new(
            vec![state!["a"], state!["a"], state!["b"], state![]],
            vec![0, 1, 4, 5],
        )
        .unwrap();
        let formulas = vec![
            Formula::and(Formula::atom("a"), Formula::not(Formula::atom("b"))),
            Formula::implies(
                Formula::atom("a"),
                Formula::eventually(Interval::bounded(0, 6), Formula::atom("b")),
            ),
            Formula::always(Interval::bounded(0, 2), Formula::atom("a")),
            Formula::eventually(Interval::bounded(2, 5), Formula::atom("b")),
            phi_spec(),
        ];
        for phi in formulas {
            assert_eq!(
                evaluate(&trace, &phi),
                evaluate(&trace, &phi.to_core()),
                "core translation changed semantics of {phi}"
            );
        }
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Formula::from(true), Formula::True);
        assert_eq!(Formula::from(false), Formula::False);
        assert_eq!(Formula::from(Prop::new("x")), Formula::atom("x"));
    }
}
