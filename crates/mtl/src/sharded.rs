//! A lock-per-shard concurrent formula arena.
//!
//! [`ShardedInterner`] is the concurrent counterpart of [`Interner`]: the
//! same hash-consing invariant (one node per distinct canonical formula), the
//! same canonicalising smart constructors, and the same progression caches —
//! but every table is split into [`SHARDS`] shards, each behind its own
//! `Mutex`, so worker threads can intern nodes and hit the `one_cache` /
//! `gap_cache` concurrently. This is what lets the parallel monitoring paths
//! share one *query-spanning* arena (and its memoised progressions) instead
//! of rebuilding a throwaway interner per formula.
//!
//! # Id packing
//!
//! A node is assigned to the shard named by the hash of its canonical form,
//! and its [`FormulaId`] packs the shard into the low [`SHARD_BITS`] bits and
//! the index within the shard into the high bits. Ids are therefore *sparse*
//! in [`FormulaId::index`] space (unlike the dense ids of [`Interner`]), but
//! remain 4-byte copies with id-equality. The two boolean constants keep
//! their universal ids: `TRUE` is slot 0 of shard 0 and `FALSE` is slot 0 of
//! shard 1, so `FormulaId::TRUE`/`FormulaId::FALSE` mean the same thing in
//! every arena. [`StateKey`]s are packed the same way.
//!
//! # Locking discipline
//!
//! Every operation locks **at most one shard at a time** and never recurses
//! while holding a lock: cross-shard data (children's nodes, horizons) is
//! read — shard by shard — *before* the target shard is locked, so the lock
//! graph is trivially acyclic. Races are benign by idempotence: two threads
//! interning the same node serialise on its (single) home shard, and two
//! threads racing a cache miss compute the same canonical result.
//!
//! # Determinism
//!
//! *Which* raw id a formula receives depends on thread interleaving (slot
//! indices are handed out in arrival order), but everything observable is
//! canonical: node identity within the arena, [`ArenaOps::resolve`] (which
//! re-sorts n-ary operands structurally), verdicts, and formula *sets*
//! resolved out of the arena are interleaving-independent. The agreement with
//! the sequential [`Interner`] is pinned by `tests/intern_properties.rs`.

use crate::hashing::{FxHashMap, FxHasher};
use crate::intern::{ArenaMemory, CacheStats};
use crate::{
    ArenaOps, Formula, FormulaId, GapKey, Interval, Node, NodeKind, NodeMeta, OneKey, Prop, State,
    StateKey,
};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Number of bits of a packed id that name the shard.
pub const SHARD_BITS: u32 = 4;
/// Number of shards (`2^SHARD_BITS`).
pub const SHARDS: usize = 1 << SHARD_BITS;

/// One shard: a miniature interner plus its slice of the caches.
#[derive(Debug, Default)]
struct Shard {
    nodes: Vec<Node>,
    ids: FxHashMap<Node, u32>,
    /// Fused per-node metadata records (see [`crate::NodeMeta`]): kind tag,
    /// horizon, shift slack and canonical residual (which may live in a
    /// different shard) in one slot-indexed read under the shard lock.
    metas: Vec<NodeMeta>,
    states: Vec<State>,
    state_ids: FxHashMap<State, u32>,
    one_cache: FxHashMap<OneKey, FormulaId>,
    gap_cache: FxHashMap<GapKey, FormulaId>,
}

/// Cumulative hit/miss tallies of the progression caches, shared across all
/// shards (relaxed atomics: worker threads tally concurrently; the figures
/// are telemetry, not synchronisation).
#[derive(Debug, Default)]
struct SharedCacheStats {
    one_hits: AtomicU64,
    one_misses: AtomicU64,
    gap_hits: AtomicU64,
    gap_misses: AtomicU64,
}

impl SharedCacheStats {
    fn tally(cell: &AtomicU64) {
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a whole batch's worth of probes into one relaxed add (zero adds
    /// skipped: the common all-hit / all-miss batch touches one cell).
    fn tally_n(cell: &AtomicU64, n: u64) {
        if n > 0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> CacheStats {
        CacheStats {
            one_hits: self.one_hits.load(Ordering::Relaxed),
            one_misses: self.one_misses.load(Ordering::Relaxed),
            gap_hits: self.gap_hits.load(Ordering::Relaxed),
            gap_misses: self.gap_misses.load(Ordering::Relaxed),
        }
    }
}

/// The concurrent formula arena. See the module documentation.
#[derive(Debug)]
pub struct ShardedInterner {
    shards: Vec<Mutex<Shard>>,
    /// Arena-level shift watermark (see [`crate::Interner::ever_shifted`]),
    /// **monotone under concurrent interning**: it is raised with a release
    /// store *before* the nonzero-slack node is published into its home
    /// shard, so any thread that can observe the node's id (which requires a
    /// synchronising handoff from the interning thread) also observes the
    /// raised watermark with the acquire load in
    /// [`ShardedInterner::ever_shifted`]. A thread racing ahead of the
    /// handoff may still read `false` and take the direct-key fast path for
    /// ids it already holds — harmless: those ids have slack 0 or `MAX`, and
    /// direct/shifted cache entries are disjoint by the key flag, so the two
    /// regimes never alias. Reset only by [`ShardedInterner::clear`] (the
    /// epoch GC), which invalidates all ids anyway.
    ever_shifted: AtomicBool,
    /// Cumulative cache hit/miss tallies (telemetry; preserved across
    /// [`ShardedInterner::clear`] so a stream's figures accumulate over GC
    /// epochs).
    stats: SharedCacheStats,
}

impl Default for ShardedInterner {
    fn default() -> Self {
        ShardedInterner::new()
    }
}

impl Clone for ShardedInterner {
    fn clone(&self) -> Self {
        ShardedInterner {
            shards: self
                .shards
                .iter()
                .map(|s| {
                    let s = s.lock().unwrap_or_else(PoisonError::into_inner);
                    Mutex::new(Shard {
                        nodes: s.nodes.clone(),
                        ids: s.ids.clone(),
                        metas: s.metas.clone(),
                        states: s.states.clone(),
                        state_ids: s.state_ids.clone(),
                        one_cache: s.one_cache.clone(),
                        gap_cache: s.gap_cache.clone(),
                    })
                })
                .collect(),
            ever_shifted: AtomicBool::new(self.ever_shifted.load(Ordering::Acquire)),
            stats: SharedCacheStats {
                one_hits: AtomicU64::new(self.stats.one_hits.load(Ordering::Relaxed)),
                one_misses: AtomicU64::new(self.stats.one_misses.load(Ordering::Relaxed)),
                gap_hits: AtomicU64::new(self.stats.gap_hits.load(Ordering::Relaxed)),
                gap_misses: AtomicU64::new(self.stats.gap_misses.load(Ordering::Relaxed)),
            },
        }
    }
}

fn pack(shard: usize, local: u32) -> u32 {
    debug_assert!(local <= u32::MAX >> SHARD_BITS, "shard overflow");
    (local << SHARD_BITS) | shard as u32
}

fn unpack(raw: u32) -> (usize, usize) {
    (
        (raw & (SHARDS as u32 - 1)) as usize,
        (raw >> SHARD_BITS) as usize,
    )
}

fn shard_of<T: Hash>(value: &T) -> usize {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    (hasher.finish() as usize) & (SHARDS - 1)
}

impl ShardedInterner {
    /// Creates an arena holding only the two boolean constants.
    // Freshly constructed mutexes cannot be poisoned.
    #[allow(clippy::expect_used)]
    pub fn new() -> Self {
        let interner = ShardedInterner {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            ever_shifted: AtomicBool::new(false),
            stats: SharedCacheStats::default(),
        };
        // The constants live at fixed slots so their universal ids hold:
        // TRUE = raw 0 = (shard 0, slot 0), FALSE = raw 1 = (shard 1, slot 0).
        {
            let mut s0 = interner.shards[0].lock().expect("fresh shard");
            s0.nodes.push(Node::True);
            s0.metas.push(NodeMeta {
                horizon: 0,
                slack: u64::MAX,
                canon: FormulaId::TRUE,
                kind: NodeKind::True,
            });
            s0.ids.insert(Node::True, 0);
        }
        {
            let mut s1 = interner.shards[1].lock().expect("fresh shard");
            s1.nodes.push(Node::False);
            s1.metas.push(NodeMeta {
                horizon: 0,
                slack: u64::MAX,
                canon: FormulaId::FALSE,
                kind: NodeKind::False,
            });
            s1.ids.insert(Node::False, 0);
        }
        debug_assert_eq!(pack(0, 0), FormulaId::TRUE.raw());
        debug_assert_eq!(pack(1, 0), FormulaId::FALSE.raw());
        interner
    }

    fn lock(&self, shard: usize) -> std::sync::MutexGuard<'_, Shard> {
        // Recover from poisoning instead of propagating it: every critical
        // section below appends complete entries (node, meta, id) or reads —
        // a panic between the pushes of one intern cannot be observed because
        // the id is published only after all three — so a poisoned shard is
        // still structurally consistent, and panic-isolated callers (the
        // runtime's worker pool) keep the arena usable after a caught panic.
        self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of distinct formulas interned so far (sums the shards; a moment
    ///-in-time figure under concurrent use).
    pub fn len(&self) -> usize {
        (0..SHARDS).map(|i| self.lock(i).nodes.len()).sum()
    }

    /// Always `false`: a fresh arena holds the two constants.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current memory footprint across all shards, in table entries.
    pub fn memory(&self) -> ArenaMemory {
        let mut memory = ArenaMemory::default();
        for i in 0..SHARDS {
            let s = self.lock(i);
            memory.nodes += s.nodes.len();
            memory.states += s.states.len();
            memory.one_cache_entries += s.one_cache.len();
            memory.gap_cache_entries += s.gap_cache.len();
        }
        memory
    }

    /// Drops every node, state and cache entry except the two constants —
    /// the epoch reset of the streaming runtime's GC: all previously issued
    /// ids (other than the constants) are invalidated. The shift watermark
    /// ([`ShardedInterner::ever_shifted`]) resets with the arena, so a new
    /// epoch re-arms the shift-free fast paths until a nonzero-slack node is
    /// interned again.
    pub fn clear(&mut self) {
        let stats = std::mem::take(&mut self.stats);
        *self = ShardedInterner::new();
        self.stats = stats;
    }

    /// Cumulative progression-cache hit/miss tallies (monotone across
    /// [`ShardedInterner::clear`]; see [`CacheStats`]). A moment-in-time
    /// figure under concurrent use.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// The node named by `id` (a clone; the shard lock cannot be held across
    /// the caller's use).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not come from this arena.
    pub fn node(&self, id: FormulaId) -> Node {
        let (shard, local) = unpack(id.raw());
        self.lock(shard).nodes[local].clone()
    }

    /// The fused metadata record of `id` (see
    /// [`Interner::node_meta`](crate::Interner::node_meta)) — one shard lock
    /// and one indexed read serve every metadata query.
    pub fn node_meta(&self, id: FormulaId) -> NodeMeta {
        let (shard, local) = unpack(id.raw());
        self.lock(shard).metas[local]
    }

    /// The arena-level shift watermark (see
    /// [`Interner::ever_shifted`](crate::Interner::ever_shifted)); monotone
    /// under concurrent interning — see the field documentation.
    pub fn ever_shifted(&self) -> bool {
        self.ever_shifted.load(Ordering::Acquire)
    }

    /// The temporal horizon of `id` (see [`Interner::temporal_horizon`](crate::Interner::temporal_horizon)).
    pub fn temporal_horizon(&self, id: FormulaId) -> u64 {
        self.node_meta(id).horizon
    }

    /// The shift slack of `id` (see [`Interner::shift_slack`](crate::Interner::shift_slack)).
    pub fn shift_slack(&self, id: FormulaId) -> u64 {
        self.node_meta(id).slack
    }

    /// The canonical shift-normal residual of `id` (see
    /// [`Interner::shift_canon`](crate::Interner::shift_canon)).
    pub fn shift_canon(&self, id: FormulaId) -> FormulaId {
        self.node_meta(id).canon
    }

    /// Returns `true` if the interned state satisfies the proposition.
    pub fn state_holds(&self, key: StateKey, p: &Prop) -> bool {
        let (shard, local) = unpack(key.raw());
        self.lock(shard).states[local].holds_prop(p)
    }

    /// Interns an observation state (see [`Interner::intern_state`](crate::Interner::intern_state)).
    // Shard overflow is unrecoverable by design (packed u32 keys), as for
    // the sequential interner.
    #[allow(clippy::expect_used)]
    pub fn intern_state(&self, state: &State) -> StateKey {
        let shard = shard_of(state);
        let mut s = self.lock(shard);
        if let Some(&local) = s.state_ids.get(state) {
            return StateKey::from_raw(pack(shard, local));
        }
        let local = u32::try_from(s.states.len()).expect("state shard overflow");
        assert!(
            local <= u32::MAX >> SHARD_BITS,
            "sharded state interner overflow (shard {shard})"
        );
        s.states.push(state.clone());
        s.state_ids.insert(state.clone(), local);
        StateKey::from_raw(pack(shard, local))
    }

    /// The temporal horizon and shift slack of a node from its (already
    /// interned) children — mirror of the sequential interner's fused rule,
    /// computed in **one** pass over the children (one shard lock per child
    /// instead of the two the split horizon/slack walks used to take).
    /// Reads the children's shards, so it must be called with no lock held.
    fn meta_of(&self, node: &Node) -> (u64, u64) {
        fn endpoint(i: &Interval) -> u64 {
            i.end().unwrap_or(i.start())
        }
        match node {
            Node::True | Node::False | Node::Atom(_) => (0, u64::MAX),
            Node::Not(a) => {
                let m = self.node_meta(*a);
                (m.horizon, m.slack)
            }
            Node::And(children) | Node::Or(children) => {
                children.iter().fold((0, u64::MAX), |(h, s), c| {
                    let m = self.node_meta(*c);
                    (h.max(m.horizon), s.min(m.slack))
                })
            }
            Node::Implies(a, b) => {
                let (ma, mb) = (self.node_meta(*a), self.node_meta(*b));
                (ma.horizon.max(mb.horizon), ma.slack.min(mb.slack))
            }
            Node::Eventually(i, a) | Node::Always(i, a) => (
                endpoint(i).max(self.node_meta(*a).horizon),
                i.translation_slack(),
            ),
            Node::Until(a, i, b) => {
                let (ma, mb) = (self.node_meta(*a), self.node_meta(*b));
                let slack = if ma.horizon == 0 {
                    i.translation_slack()
                } else {
                    0
                };
                (endpoint(i).max(ma.horizon).max(mb.horizon), slack)
            }
        }
    }

    /// Builds the exact downward translate of a (possibly not yet interned)
    /// node; the smart constructors lock shards transiently, so no lock may
    /// be held here.
    fn translate_down_node(&self, node: &Node, delta: u64) -> FormulaId {
        match node {
            Node::True | Node::False | Node::Atom(_) => {
                unreachable!("propositional nodes have slack MAX and are their own canonical form")
            }
            Node::Not(a) => {
                let a = self.translate_down_id(*a, delta);
                self.mk_not(a)
            }
            Node::And(children) => {
                let parts = children
                    .iter()
                    .map(|&c| self.translate_down_id(c, delta))
                    .collect();
                self.mk_and_all(parts)
            }
            Node::Or(children) => {
                let parts = children
                    .iter()
                    .map(|&c| self.translate_down_id(c, delta))
                    .collect();
                self.mk_or_all(parts)
            }
            Node::Implies(a, b) => {
                let a = self.translate_down_id(*a, delta);
                let b = self.translate_down_id(*b, delta);
                self.mk_implies(a, b)
            }
            Node::Eventually(i, a) => self.mk_eventually(i.translate_down(delta), *a),
            Node::Always(i, a) => self.mk_always(i.translate_down(delta), *a),
            Node::Until(a, i, b) => self.mk_until(*a, i.translate_down(delta), *b),
        }
    }

    fn translate_down_id(&self, id: FormulaId, delta: u64) -> FormulaId {
        // Interned children go through the shared trait algorithm so the two
        // arenas cannot diverge; only the not-yet-interned top node needs the
        // node-level variant above.
        let mut handle = self;
        ArenaOps::translate_down(&mut handle, id, delta)
    }

    // Shard overflow is unrecoverable by design (packed u32 ids), as for
    // the sequential interner.
    #[allow(clippy::expect_used)]
    fn insert(&self, node: Node) -> FormulaId {
        debug_assert!(
            !matches!(node, Node::True | Node::False),
            "constants are pre-seeded and folded by the smart constructors"
        );
        let shard = shard_of(&node);
        // Fast path: the node is already interned (canonical-residual
        // construction below is not free, so look before computing).
        if let Some(&local) = self.lock(shard).ids.get(&node) {
            return FormulaId::from_raw(pack(shard, local));
        }
        // Bottom-up metadata and the canonical residual read (and, for the
        // canon, populate) other shards — no lock may be held while they do.
        // Races are benign: two threads computing the same node derive the
        // same canonical id and serialise on the home shard below.
        let (horizon, slack) = self.meta_of(&node);
        let canon = if slack > 0 && slack < u64::MAX {
            // Raise the watermark *before* the node becomes observable: any
            // thread that receives this node's id through a synchronising
            // handoff also sees the raised flag (see the field docs).
            self.ever_shifted.store(true, Ordering::Release);
            Some(self.translate_down_node(&node, slack))
        } else {
            None
        };
        let kind = NodeKind::of(&node);
        let mut s = self.lock(shard);
        if let Some(&local) = s.ids.get(&node) {
            return FormulaId::from_raw(pack(shard, local));
        }
        let local = u32::try_from(s.nodes.len()).expect("shard overflow");
        assert!(
            local <= u32::MAX >> SHARD_BITS,
            "sharded interner overflow (shard {shard})"
        );
        let id = FormulaId::from_raw(pack(shard, local));
        s.nodes.push(node.clone());
        s.metas.push(NodeMeta {
            horizon,
            slack,
            canon: canon.unwrap_or(id),
            kind,
        });
        s.ids.insert(node, local);
        id
    }

    /// Interns an atomic proposition.
    pub fn mk_atom(&self, p: Prop) -> FormulaId {
        self.insert(Node::Atom(p))
    }

    /// Smart negation (same canonicalisation as [`Interner::mk_not`](crate::Interner::mk_not)).
    pub fn mk_not(&self, a: FormulaId) -> FormulaId {
        match a {
            FormulaId::TRUE => FormulaId::FALSE,
            FormulaId::FALSE => FormulaId::TRUE,
            _ => match self.node(a) {
                Node::Not(inner) => inner,
                _ => self.insert(Node::Not(a)),
            },
        }
    }

    /// Smart binary conjunction.
    pub fn mk_and(&self, a: FormulaId, b: FormulaId) -> FormulaId {
        self.mk_and_all(vec![a, b])
    }

    /// Smart binary disjunction.
    pub fn mk_or(&self, a: FormulaId, b: FormulaId) -> FormulaId {
        self.mk_or_all(vec![a, b])
    }

    /// Smart n-ary conjunction (same canonicalisation as
    /// [`Interner::mk_and_all`](crate::Interner::mk_and_all)).
    pub fn mk_and_all(&self, parts: Vec<FormulaId>) -> FormulaId {
        self.mk_nary(parts, true)
    }

    /// Smart n-ary disjunction.
    pub fn mk_or_all(&self, parts: Vec<FormulaId>) -> FormulaId {
        self.mk_nary(parts, false)
    }

    fn mk_nary(&self, parts: Vec<FormulaId>, conjunction: bool) -> FormulaId {
        let (absorbing, neutral) = if conjunction {
            (FormulaId::FALSE, FormulaId::TRUE)
        } else {
            (FormulaId::TRUE, FormulaId::FALSE)
        };
        let mut operands: Vec<FormulaId> = Vec::new();
        for part in parts {
            if part == absorbing {
                return absorbing;
            }
            if part == neutral {
                continue;
            }
            // Flatten one level: nested n-ary nodes of the same kind cannot
            // occur as children of each other, so this keeps the set flat.
            match (conjunction, self.node(part)) {
                (true, Node::And(children)) | (false, Node::Or(children)) => {
                    operands.extend(children.iter().copied());
                }
                _ => operands.push(part),
            }
        }
        operands.sort_unstable();
        operands.dedup();
        // Complementary-literal collapse: φ and ¬φ together absorb.
        for &op in &operands {
            if let Node::Not(inner) = self.node(op) {
                if operands.binary_search(&inner).is_ok() {
                    return absorbing;
                }
            }
        }
        match operands.len() {
            0 => neutral,
            1 => operands[0],
            _ => {
                let node = if conjunction {
                    Node::And(operands.into_boxed_slice())
                } else {
                    Node::Or(operands.into_boxed_slice())
                };
                self.insert(node)
            }
        }
    }

    /// Smart implication.
    pub fn mk_implies(&self, a: FormulaId, b: FormulaId) -> FormulaId {
        match (a, b) {
            (FormulaId::TRUE, _) => b,
            (FormulaId::FALSE, _) => FormulaId::TRUE,
            (_, FormulaId::TRUE) => FormulaId::TRUE,
            (_, FormulaId::FALSE) => self.mk_not(a),
            _ if a == b => FormulaId::TRUE,
            _ => self.insert(Node::Implies(a, b)),
        }
    }

    /// Smart timed until.
    pub fn mk_until(&self, a: FormulaId, i: Interval, b: FormulaId) -> FormulaId {
        if i.is_empty() || b == FormulaId::FALSE {
            return FormulaId::FALSE;
        }
        self.insert(Node::Until(a, i, b))
    }

    /// Smart timed eventually.
    pub fn mk_eventually(&self, i: Interval, a: FormulaId) -> FormulaId {
        if i.is_empty() || a == FormulaId::FALSE {
            return FormulaId::FALSE;
        }
        self.insert(Node::Eventually(i, a))
    }

    /// Smart timed always.
    pub fn mk_always(&self, i: Interval, a: FormulaId) -> FormulaId {
        if i.is_empty() || a == FormulaId::TRUE {
            return FormulaId::TRUE;
        }
        self.insert(Node::Always(i, a))
    }

    fn one_cache_get(&self, key: OneKey) -> Option<FormulaId> {
        let (shard, _) = unpack(key.formula().raw());
        let found = self.lock(shard).one_cache.get(&key).copied();
        SharedCacheStats::tally(if found.is_some() {
            &self.stats.one_hits
        } else {
            &self.stats.one_misses
        });
        found
    }

    fn one_cache_put(&self, key: OneKey, value: FormulaId) {
        let (shard, _) = unpack(key.formula().raw());
        self.lock(shard).one_cache.insert(key, value);
    }

    fn gap_cache_get(&self, key: GapKey) -> Option<FormulaId> {
        let (shard, _) = unpack(key.formula().raw());
        let found = self.lock(shard).gap_cache.get(&key).copied();
        SharedCacheStats::tally(if found.is_some() {
            &self.stats.gap_hits
        } else {
            &self.stats.gap_misses
        });
        found
    }

    fn gap_cache_put(&self, key: GapKey, value: FormulaId) {
        let (shard, _) = unpack(key.formula().raw());
        self.lock(shard).gap_cache.insert(key, value);
    }

    /// Batched one-cache probe: locks each shard **once per maximal run of
    /// same-shard keys** instead of once per key, and folds the hit/miss
    /// tallies into two relaxed adds per run. A splitter batch keys every
    /// tick against the same formula, so the common case is one lock
    /// round-trip for the whole batch. Tally totals are identical to the
    /// per-key path: one probe counted per key, in order.
    fn one_cache_get_batch(&self, keys: &[OneKey], out: &mut Vec<Option<FormulaId>>) {
        out.clear();
        out.reserve(keys.len());
        let mut i = 0;
        let mut hits = 0u64;
        let mut misses = 0u64;
        while i < keys.len() {
            let (shard, _) = unpack(keys[i].formula().raw());
            let guard = self.lock(shard);
            while i < keys.len() && unpack(keys[i].formula().raw()).0 == shard {
                let found = guard.one_cache.get(&keys[i]).copied();
                if found.is_some() {
                    hits += 1;
                } else {
                    misses += 1;
                }
                out.push(found);
                i += 1;
            }
        }
        SharedCacheStats::tally_n(&self.stats.one_hits, hits);
        SharedCacheStats::tally_n(&self.stats.one_misses, misses);
    }

    /// Batched gap-cache probe; see [`ShardedInterner::one_cache_get_batch`].
    fn gap_cache_get_batch(&self, keys: &[GapKey], out: &mut Vec<Option<FormulaId>>) {
        out.clear();
        out.reserve(keys.len());
        let mut i = 0;
        let mut hits = 0u64;
        let mut misses = 0u64;
        while i < keys.len() {
            let (shard, _) = unpack(keys[i].formula().raw());
            let guard = self.lock(shard);
            while i < keys.len() && unpack(keys[i].formula().raw()).0 == shard {
                let found = guard.gap_cache.get(&keys[i]).copied();
                if found.is_some() {
                    hits += 1;
                } else {
                    misses += 1;
                }
                out.push(found);
                i += 1;
            }
        }
        SharedCacheStats::tally_n(&self.stats.gap_hits, hits);
        SharedCacheStats::tally_n(&self.stats.gap_misses, misses);
    }
}

/// The [`ArenaOps`] algorithms run directly on the concurrent arena. This
/// impl allows `&mut ShardedInterner` call sites (e.g. the sequential parts
/// of a monitor that owns one); use the impl on `&ShardedInterner` to hand
/// *shared* handles to worker threads.
impl ArenaOps for ShardedInterner {
    fn node(&self, id: FormulaId) -> Node {
        ShardedInterner::node(self, id)
    }

    fn state_holds(&self, key: StateKey, p: &Prop) -> bool {
        ShardedInterner::state_holds(self, key, p)
    }

    fn node_meta(&self, id: FormulaId) -> NodeMeta {
        ShardedInterner::node_meta(self, id)
    }

    fn ever_shifted(&self) -> bool {
        ShardedInterner::ever_shifted(self)
    }

    fn intern_state(&mut self, state: &State) -> StateKey {
        ShardedInterner::intern_state(self, state)
    }

    fn mk_atom(&mut self, p: Prop) -> FormulaId {
        ShardedInterner::mk_atom(self, p)
    }

    fn mk_not(&mut self, a: FormulaId) -> FormulaId {
        ShardedInterner::mk_not(self, a)
    }

    fn mk_and_all(&mut self, parts: Vec<FormulaId>) -> FormulaId {
        ShardedInterner::mk_and_all(self, parts)
    }

    fn mk_or_all(&mut self, parts: Vec<FormulaId>) -> FormulaId {
        ShardedInterner::mk_or_all(self, parts)
    }

    fn mk_implies(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        ShardedInterner::mk_implies(self, a, b)
    }

    fn mk_until(&mut self, a: FormulaId, i: Interval, b: FormulaId) -> FormulaId {
        ShardedInterner::mk_until(self, a, i, b)
    }

    fn mk_eventually(&mut self, i: Interval, a: FormulaId) -> FormulaId {
        ShardedInterner::mk_eventually(self, i, a)
    }

    fn mk_always(&mut self, i: Interval, a: FormulaId) -> FormulaId {
        ShardedInterner::mk_always(self, i, a)
    }

    fn one_cache_get(&self, key: OneKey) -> Option<FormulaId> {
        ShardedInterner::one_cache_get(self, key)
    }

    fn one_cache_put(&mut self, key: OneKey, value: FormulaId) {
        ShardedInterner::one_cache_put(self, key, value)
    }

    fn gap_cache_get(&self, key: GapKey) -> Option<FormulaId> {
        ShardedInterner::gap_cache_get(self, key)
    }

    fn gap_cache_put(&mut self, key: GapKey, value: FormulaId) {
        ShardedInterner::gap_cache_put(self, key, value)
    }

    fn one_cache_get_batch(&self, keys: &[OneKey], out: &mut Vec<Option<FormulaId>>) {
        ShardedInterner::one_cache_get_batch(self, keys, out)
    }

    fn gap_cache_get_batch(&self, keys: &[GapKey], out: &mut Vec<Option<FormulaId>>) {
        ShardedInterner::gap_cache_get_batch(self, keys, out)
    }
}

/// Shared-handle impl: lets any number of worker threads drive the arena
/// through `&ShardedInterner` handles (each handle satisfies the `&mut self`
/// contract of [`ArenaOps`] while the arena itself is only shared).
impl ArenaOps for &ShardedInterner {
    fn node(&self, id: FormulaId) -> Node {
        ShardedInterner::node(self, id)
    }

    fn state_holds(&self, key: StateKey, p: &Prop) -> bool {
        ShardedInterner::state_holds(self, key, p)
    }

    fn node_meta(&self, id: FormulaId) -> NodeMeta {
        ShardedInterner::node_meta(self, id)
    }

    fn ever_shifted(&self) -> bool {
        ShardedInterner::ever_shifted(self)
    }

    fn intern_state(&mut self, state: &State) -> StateKey {
        ShardedInterner::intern_state(self, state)
    }

    fn mk_atom(&mut self, p: Prop) -> FormulaId {
        ShardedInterner::mk_atom(self, p)
    }

    fn mk_not(&mut self, a: FormulaId) -> FormulaId {
        ShardedInterner::mk_not(self, a)
    }

    fn mk_and_all(&mut self, parts: Vec<FormulaId>) -> FormulaId {
        ShardedInterner::mk_and_all(self, parts)
    }

    fn mk_or_all(&mut self, parts: Vec<FormulaId>) -> FormulaId {
        ShardedInterner::mk_or_all(self, parts)
    }

    fn mk_implies(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        ShardedInterner::mk_implies(self, a, b)
    }

    fn mk_until(&mut self, a: FormulaId, i: Interval, b: FormulaId) -> FormulaId {
        ShardedInterner::mk_until(self, a, i, b)
    }

    fn mk_eventually(&mut self, i: Interval, a: FormulaId) -> FormulaId {
        ShardedInterner::mk_eventually(self, i, a)
    }

    fn mk_always(&mut self, i: Interval, a: FormulaId) -> FormulaId {
        ShardedInterner::mk_always(self, i, a)
    }

    fn one_cache_get(&self, key: OneKey) -> Option<FormulaId> {
        ShardedInterner::one_cache_get(self, key)
    }

    fn one_cache_put(&mut self, key: OneKey, value: FormulaId) {
        ShardedInterner::one_cache_put(self, key, value)
    }

    fn gap_cache_get(&self, key: GapKey) -> Option<FormulaId> {
        ShardedInterner::gap_cache_get(self, key)
    }

    fn gap_cache_put(&mut self, key: GapKey, value: FormulaId) {
        ShardedInterner::gap_cache_put(self, key, value)
    }

    fn one_cache_get_batch(&self, keys: &[OneKey], out: &mut Vec<Option<FormulaId>>) {
        ShardedInterner::one_cache_get_batch(self, keys, out)
    }

    fn gap_cache_get_batch(&self, keys: &[GapKey], out: &mut Vec<Option<FormulaId>>) {
        ShardedInterner::gap_cache_get_batch(self, keys, out)
    }
}

impl ShardedInterner {
    /// Interns a formula tree (see [`ArenaOps::intern`]; provided inherently
    /// so shared handles can intern without importing the trait).
    pub fn intern(&self, phi: &Formula) -> FormulaId {
        let mut handle = self;
        ArenaOps::intern(&mut handle, phi)
    }

    /// Rebuilds the plain formula tree named by `id` (see
    /// [`ArenaOps::resolve`]).
    pub fn resolve(&self, id: FormulaId) -> Formula {
        let handle = self;
        ArenaOps::resolve(&handle, id)
    }

    /// Closes a formula against the empty future (see
    /// [`ArenaOps::eval_empty`]).
    pub fn eval_empty(&self, id: FormulaId) -> bool {
        let handle = self;
        ArenaOps::eval_empty(&handle, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, state, Interner};

    #[test]
    fn constants_keep_universal_ids() {
        let arena = ShardedInterner::new();
        assert_eq!(arena.intern(&Formula::True), FormulaId::TRUE);
        assert_eq!(arena.intern(&Formula::False), FormulaId::FALSE);
        assert!(matches!(arena.node(FormulaId::TRUE), Node::True));
        assert!(matches!(arena.node(FormulaId::FALSE), Node::False));
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn hash_consing_across_threads() {
        let arena = ShardedInterner::new();
        let phi = parse("(F[0,5) p) & (q U[1,8) r)").unwrap();
        let ids: Vec<FormulaId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|_| scope.spawn(|| arena.intern(&phi))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        let again = arena.intern(&phi);
        assert_eq!(again, ids[0]);
    }

    #[test]
    fn agrees_with_sequential_interner() {
        let mut plain = Interner::new();
        let arena = ShardedInterner::new();
        for text in [
            "a U[0,8) b",
            "F[2,6) a",
            "G[0,4) (a | b)",
            "!a U[2,9) (a & b)",
            "(F[0,5) a) | (G[1,inf) b)",
            "a -> (b & !a)",
        ] {
            let phi = parse(text).unwrap();
            let plain_id = plain.intern(&phi);
            let sharded_id = arena.intern(&phi);
            assert_eq!(plain.resolve(plain_id), arena.resolve(sharded_id), "{text}");
            assert_eq!(
                plain.temporal_horizon(plain_id),
                arena.temporal_horizon(sharded_id),
                "{text}"
            );
            assert_eq!(
                plain.eval_empty(plain_id),
                arena.eval_empty(sharded_id),
                "{text}"
            );
            // Progression agrees too (resolved structurally).
            for s in [state!["a"], state!["b"], state![]] {
                for elapsed in [0u64, 1, 3, 10] {
                    let key_p = plain.intern_state(&s);
                    let key_s = arena.intern_state(&s);
                    let mut handle = &arena;
                    let via_plain = plain.progress_one_cached(key_p, plain_id, elapsed);
                    let via_sharded =
                        ArenaOps::progress_one_cached(&mut handle, key_s, sharded_id, elapsed);
                    assert_eq!(
                        plain.resolve(via_plain),
                        arena.resolve(via_sharded),
                        "{text}, state {s}, elapsed {elapsed}"
                    );
                }
            }
        }
    }

    #[test]
    fn clear_resets_to_constants() {
        let mut arena = ShardedInterner::new();
        let id = arena.intern(&parse("F[0,5) p").unwrap());
        assert!(arena.len() > 2);
        arena.clear();
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.memory().nodes, 2);
        // Old non-constant ids are invalid now; re-interning works.
        let again = arena.intern(&parse("F[0,5) p").unwrap());
        let _ = id;
        assert!(matches!(arena.node(again), Node::Eventually(..)));
    }
}
