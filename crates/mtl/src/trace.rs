//! Timed traces: a finite sequence of states paired with non-decreasing
//! timestamps, i.e. an element of `(Σ*, Z*≥0)` from the paper.

use crate::State;
use std::fmt;

/// Error returned when constructing an ill-formed [`TimedTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The state and time sequences have different lengths.
    LengthMismatch {
        /// Number of states provided.
        states: usize,
        /// Number of timestamps provided.
        times: usize,
    },
    /// Timestamps are not non-decreasing.
    NonMonotonicTime {
        /// Index at which monotonicity is violated.
        index: usize,
        /// Timestamp at `index - 1`.
        previous: u64,
        /// Timestamp at `index`.
        current: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::LengthMismatch { states, times } => write!(
                f,
                "state sequence has {states} entries but time sequence has {times}"
            ),
            TraceError::NonMonotonicTime {
                index,
                previous,
                current,
            } => write!(
                f,
                "timestamps must be non-decreasing: time[{index}] = {current} < time[{}] = {previous}",
                index - 1
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// A finite timed trace `(α, τ̄)`: states `s₀s₁…sₙ` with timestamps `τ₀τ₁…τₙ`.
///
/// Timestamps are non-decreasing; repeated timestamps are allowed (several
/// states can share a time point, as happens when concurrent events are
/// linearised).
///
/// # Examples
///
/// ```
/// use rvmtl_mtl::{state, TimedTrace};
///
/// let trace = TimedTrace::new(
///     vec![state!["a"], state!["a"], state!["b"]],
///     vec![1, 2, 4],
/// )?;
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.duration(), 3);
/// # Ok::<(), rvmtl_mtl::TraceError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct TimedTrace {
    states: Vec<State>,
    times: Vec<u64>,
}

impl TimedTrace {
    /// Creates a timed trace from parallel state and time sequences.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] if the sequences differ in
    /// length, and [`TraceError::NonMonotonicTime`] if timestamps decrease.
    pub fn new(states: Vec<State>, times: Vec<u64>) -> Result<Self, TraceError> {
        if states.len() != times.len() {
            return Err(TraceError::LengthMismatch {
                states: states.len(),
                times: times.len(),
            });
        }
        for i in 1..times.len() {
            if times[i] < times[i - 1] {
                return Err(TraceError::NonMonotonicTime {
                    index: i,
                    previous: times[i - 1],
                    current: times[i],
                });
            }
        }
        Ok(TimedTrace { states, times })
    }

    /// Creates an empty trace.
    pub fn empty() -> Self {
        TimedTrace::default()
    }

    /// Creates a trace from `(state, time)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if timestamps decrease.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (State, u64)>) -> Result<Self, TraceError> {
        let (states, times): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        TimedTrace::new(states, times)
    }

    /// Appends an observation.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NonMonotonicTime`] if `time` is smaller than the
    /// last timestamp.
    pub fn push(&mut self, state: State, time: u64) -> Result<(), TraceError> {
        if let Some(&last) = self.times.last() {
            if time < last {
                return Err(TraceError::NonMonotonicTime {
                    index: self.times.len(),
                    previous: last,
                    current: time,
                });
            }
        }
        self.states.push(state);
        self.times.push(time);
        Ok(())
    }

    /// Removes and returns the last observation, or `None` for an empty
    /// trace. The O(1) inverse of [`TimedTrace::push`], used by backtracking
    /// enumerators.
    pub fn pop(&mut self) -> Option<(State, u64)> {
        match (self.states.pop(), self.times.pop()) {
            (Some(s), Some(t)) => Some((s, t)),
            _ => None,
        }
    }

    /// Number of observations in the trace.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the trace has no observations.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn state(&self, i: usize) -> &State {
        &self.states[i]
    }

    /// The timestamp at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn time(&self, i: usize) -> u64 {
        self.times[i]
    }

    /// All states.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// All timestamps.
    pub fn times(&self) -> &[u64] {
        &self.times
    }

    /// The first timestamp, or `None` for an empty trace.
    pub fn first_time(&self) -> Option<u64> {
        self.times.first().copied()
    }

    /// The last timestamp, or `None` for an empty trace.
    pub fn last_time(&self) -> Option<u64> {
        self.times.last().copied()
    }

    /// Elapsed time between the first and last observation (0 for traces with
    /// fewer than two observations).
    pub fn duration(&self) -> u64 {
        match (self.first_time(), self.last_time()) {
            (Some(a), Some(b)) => b - a,
            _ => 0,
        }
    }

    /// The suffix trace `(αⁱ, τ̄ⁱ)` starting at position `i` (an owned copy).
    ///
    /// # Panics
    ///
    /// Panics if `i > len()`.
    pub fn suffix(&self, i: usize) -> TimedTrace {
        TimedTrace {
            states: self.states[i..].to_vec(),
            times: self.times[i..].to_vec(),
        }
    }

    /// The prefix consisting of the first `n` observations (an owned copy).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn prefix(&self, n: usize) -> TimedTrace {
        TimedTrace {
            states: self.states[..n].to_vec(),
            times: self.times[..n].to_vec(),
        }
    }

    /// Concatenation `α.α′` of two traces.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NonMonotonicTime`] if the first timestamp of
    /// `other` is smaller than the last timestamp of `self`.
    pub fn concat(&self, other: &TimedTrace) -> Result<TimedTrace, TraceError> {
        let mut out = self.clone();
        for i in 0..other.len() {
            out.push(other.state(i).clone(), other.time(i))?;
        }
        Ok(out)
    }

    /// Iterates over `(state, time)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&State, u64)> {
        self.states.iter().zip(self.times.iter().copied())
    }

    /// Returns the sub-trace of observations whose timestamps fall in
    /// `[from, to)` (global times, not offsets).
    // Filtering preserves monotonicity, so re-validation cannot fail.
    #[allow(clippy::expect_used)]
    pub fn window(&self, from: u64, to: u64) -> TimedTrace {
        let pairs = self
            .iter()
            .filter(|&(_, t)| t >= from && t < to)
            .map(|(s, t)| (s.clone(), t));
        TimedTrace::from_pairs(pairs).expect("window of a monotone trace is monotone")
    }
}

impl fmt::Display for TimedTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (s, t)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "({s},{t})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state;

    fn sample() -> TimedTrace {
        TimedTrace::new(
            vec![state![], state![], state![], state!["r"]],
            vec![1, 2, 3, 3],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.time(0), 1);
        assert_eq!(t.time(3), 3);
        assert!(t.state(3).holds("r"));
        assert_eq!(t.first_time(), Some(1));
        assert_eq!(t.last_time(), Some(3));
        assert_eq!(t.duration(), 2);
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = TimedTrace::new(vec![state![]], vec![1, 2]).unwrap_err();
        assert!(matches!(err, TraceError::LengthMismatch { .. }));
    }

    #[test]
    fn non_monotonic_rejected() {
        let err = TimedTrace::new(vec![state![], state![]], vec![5, 3]).unwrap_err();
        assert!(matches!(err, TraceError::NonMonotonicTime { index: 1, .. }));
        let mut t = sample();
        assert!(t.push(state![], 2).is_err());
        assert!(t.push(state![], 3).is_ok());
    }

    #[test]
    fn equal_timestamps_allowed() {
        let t = TimedTrace::new(vec![state!["a"], state!["b"]], vec![7, 7]).unwrap();
        assert_eq!(t.duration(), 0);
    }

    #[test]
    fn suffix_and_prefix() {
        let t = sample();
        let s = t.suffix(2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.time(0), 3);
        let p = t.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.last_time(), Some(2));
        assert_eq!(t.suffix(4).len(), 0);
    }

    #[test]
    fn pop_inverts_push() {
        let mut t = sample();
        let popped = t.pop().unwrap();
        assert_eq!(popped.1, 3);
        assert!(popped.0.holds("r"));
        assert_eq!(t.len(), 3);
        assert_eq!(t.last_time(), Some(3));
        t.push(popped.0, popped.1).unwrap();
        assert_eq!(t, sample());
        let mut empty = TimedTrace::empty();
        assert_eq!(empty.pop(), None);
    }

    #[test]
    fn concat() {
        let a = TimedTrace::new(vec![state!["x"]], vec![1]).unwrap();
        let b = TimedTrace::new(vec![state!["y"]], vec![5]).unwrap();
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 2);
        assert!(b.concat(&a).is_err());
    }

    #[test]
    fn window_selects_by_global_time() {
        let t = sample();
        let w = t.window(2, 3);
        assert_eq!(w.len(), 1);
        assert_eq!(w.time(0), 2);
        let all = t.window(0, 100);
        assert_eq!(all.len(), t.len());
    }

    #[test]
    fn from_pairs_and_iter() {
        let t = TimedTrace::from_pairs([(state!["a"], 0), (state!["b"], 2)]).unwrap();
        let collected: Vec<_> = t.iter().map(|(s, time)| (s.holds("a"), time)).collect();
        assert_eq!(collected, vec![(true, 0), (false, 2)]);
    }

    #[test]
    fn display_format() {
        let t = TimedTrace::new(vec![state!["a"]], vec![3]).unwrap();
        assert_eq!(t.to_string(), "({a},3)");
    }
}
