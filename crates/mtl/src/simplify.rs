//! Semantics-preserving simplification and canonicalisation of formulas.
//!
//! Progression (Sec. IV) produces large boolean combinations of residual
//! formulas; the monitor deduplicates the *distinct* rewritten formulas across
//! the possible interleavings of a segment, so rewritten formulas must be
//! brought into a canonical form. All rewrites preserve the finite-trace
//! semantics of [`crate::evaluate`] (this is checked by property tests).

use crate::{Formula, Interval};
use std::collections::BTreeSet;

/// Simplifies and canonicalises a formula.
///
/// The rewrites applied are:
/// * constant folding through `¬`, `∧`, `∨`, `→`;
/// * double-negation elimination;
/// * flattening of `∧`/`∨` trees with sorted, deduplicated operands;
/// * complementary-literal collapse (`φ ∧ ¬φ → false`, `φ ∨ ¬φ → true`);
/// * empty-interval collapse (`◇_∅ φ → false`, `□_∅ φ → true`, `φ U_∅ ψ → false`);
/// * `◇_I false → false`, `□_I true → true`, `φ U_I false → false`.
///
/// # Examples
///
/// ```
/// use rvmtl_mtl::{simplify, Formula};
///
/// let phi = Formula::and(Formula::atom("a"), Formula::and(Formula::True, Formula::atom("a")));
/// assert_eq!(simplify(&phi), Formula::atom("a"));
/// ```
pub fn simplify(phi: &Formula) -> Formula {
    // Interning applies exactly these rewrites through the arena's smart
    // constructors; resolving rebuilds the canonical tree.
    let mut interner = crate::Interner::new();
    let id = interner.intern(phi);
    interner.resolve(id)
}

/// Smart negation: folds constants and removes double negations.
pub fn not(a: Formula) -> Formula {
    match a {
        Formula::True => Formula::False,
        Formula::False => Formula::True,
        Formula::Not(inner) => *inner,
        other => Formula::not(other),
    }
}

/// Smart conjunction: flattens, sorts, deduplicates and folds constants.
pub fn and(a: Formula, b: Formula) -> Formula {
    let mut operands = BTreeSet::new();
    if collect_and(a, &mut operands) || collect_and(b, &mut operands) {
        return Formula::False;
    }
    if has_complementary_pair(&operands) {
        return Formula::False;
    }
    rebuild(operands, true)
}

/// Smart disjunction: flattens, sorts, deduplicates and folds constants.
pub fn or(a: Formula, b: Formula) -> Formula {
    let mut operands = BTreeSet::new();
    if collect_or(a, &mut operands) || collect_or(b, &mut operands) {
        return Formula::True;
    }
    if has_complementary_pair(&operands) {
        return Formula::True;
    }
    rebuild(operands, false)
}

/// Smart conjunction over an arbitrary number of operands.
pub fn and_all(parts: impl IntoIterator<Item = Formula>) -> Formula {
    parts.into_iter().fold(Formula::True, and)
}

/// Smart disjunction over an arbitrary number of operands.
pub fn or_all(parts: impl IntoIterator<Item = Formula>) -> Formula {
    parts.into_iter().fold(Formula::False, or)
}

/// Smart implication.
pub fn implies(a: Formula, b: Formula) -> Formula {
    match (&a, &b) {
        (Formula::True, _) => b,
        (Formula::False, _) => Formula::True,
        (_, Formula::True) => Formula::True,
        (_, Formula::False) => not(a),
        _ => {
            if a == b {
                Formula::True
            } else {
                Formula::Implies(Box::new(a), Box::new(b))
            }
        }
    }
}

/// Smart timed until.
pub fn until(a: Formula, i: Interval, b: Formula) -> Formula {
    if i.is_empty() || b == Formula::False {
        return Formula::False;
    }
    Formula::Until(Box::new(a), i, Box::new(b))
}

/// Smart timed eventually.
pub fn eventually(i: Interval, a: Formula) -> Formula {
    if i.is_empty() || a == Formula::False {
        return Formula::False;
    }
    Formula::Eventually(i, Box::new(a))
}

/// Smart timed always.
pub fn always(i: Interval, a: Formula) -> Formula {
    if i.is_empty() || a == Formula::True {
        return Formula::True;
    }
    Formula::Always(i, Box::new(a))
}

/// Collects operands of an `∧`-tree; returns `true` if a `false` operand makes
/// the whole conjunction false.
fn collect_and(f: Formula, out: &mut BTreeSet<Formula>) -> bool {
    match f {
        Formula::True => false,
        Formula::False => true,
        Formula::And(a, b) => collect_and(*a, out) || collect_and(*b, out),
        other => {
            out.insert(other);
            false
        }
    }
}

/// Collects operands of an `∨`-tree; returns `true` if a `true` operand makes
/// the whole disjunction true.
fn collect_or(f: Formula, out: &mut BTreeSet<Formula>) -> bool {
    match f {
        Formula::False => false,
        Formula::True => true,
        Formula::Or(a, b) => collect_or(*a, out) || collect_or(*b, out),
        other => {
            out.insert(other);
            false
        }
    }
}

fn has_complementary_pair(operands: &BTreeSet<Formula>) -> bool {
    operands.iter().any(|f| match f {
        Formula::Not(inner) => operands.contains(inner.as_ref()),
        _ => false,
    })
}

fn rebuild(operands: BTreeSet<Formula>, conjunction: bool) -> Formula {
    let neutral = if conjunction {
        Formula::True
    } else {
        Formula::False
    };
    let mut iter = operands.into_iter();
    let first = match iter.next() {
        None => return neutral,
        Some(f) => f,
    };
    iter.fold(first, |acc, f| {
        if conjunction {
            Formula::And(Box::new(acc), Box::new(f))
        } else {
            Formula::Or(Box::new(acc), Box::new(f))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use crate::{state, TimedTrace};

    #[test]
    fn constant_folding() {
        assert_eq!(not(Formula::True), Formula::False);
        assert_eq!(not(Formula::not(Formula::atom("a"))), Formula::atom("a"));
        assert_eq!(and(Formula::True, Formula::atom("a")), Formula::atom("a"));
        assert_eq!(and(Formula::False, Formula::atom("a")), Formula::False);
        assert_eq!(or(Formula::False, Formula::atom("a")), Formula::atom("a"));
        assert_eq!(or(Formula::True, Formula::atom("a")), Formula::True);
        assert_eq!(implies(Formula::False, Formula::atom("a")), Formula::True);
        assert_eq!(
            implies(Formula::atom("a"), Formula::False),
            Formula::not(Formula::atom("a"))
        );
    }

    #[test]
    fn idempotence_and_commutativity_canonicalised() {
        let a = Formula::atom("a");
        let b = Formula::atom("b");
        assert_eq!(and(a.clone(), a.clone()), a);
        assert_eq!(and(a.clone(), b.clone()), and(b.clone(), a.clone()));
        assert_eq!(or(a.clone(), b.clone()), or(b, a));
    }

    #[test]
    fn complementary_pairs_collapse() {
        let a = Formula::atom("a");
        assert_eq!(and(a.clone(), Formula::not(a.clone())), Formula::False);
        assert_eq!(or(a.clone(), Formula::not(a)), Formula::True);
    }

    #[test]
    fn nested_and_or_flattened() {
        let f = Formula::and(
            Formula::and(Formula::atom("a"), Formula::atom("b")),
            Formula::and(Formula::atom("b"), Formula::atom("c")),
        );
        let s = simplify(&f);
        assert_eq!(s.size(), 5); // a & b & c
    }

    #[test]
    fn empty_intervals_collapse() {
        let empty = Interval::bounded(3, 3);
        assert_eq!(eventually(empty, Formula::atom("a")), Formula::False);
        assert_eq!(always(empty, Formula::atom("a")), Formula::True);
        assert_eq!(
            until(Formula::atom("a"), empty, Formula::atom("b")),
            Formula::False
        );
    }

    #[test]
    fn temporal_constant_operands() {
        let i = Interval::bounded(0, 5);
        assert_eq!(eventually(i, Formula::False), Formula::False);
        assert_eq!(always(i, Formula::True), Formula::True);
        assert_eq!(until(Formula::atom("a"), i, Formula::False), Formula::False);
    }

    #[test]
    fn simplify_preserves_semantics_on_samples() {
        let trace = TimedTrace::new(
            vec![state!["a"], state!["a", "b"], state![], state!["b"]],
            vec![0, 1, 3, 6],
        )
        .unwrap();
        let i = Interval::bounded(0, 5);
        let samples = vec![
            Formula::and(
                Formula::atom("a"),
                Formula::and(Formula::True, Formula::atom("a")),
            ),
            Formula::or(
                Formula::not(Formula::not(Formula::atom("b"))),
                Formula::False,
            ),
            Formula::implies(Formula::atom("a"), Formula::atom("a")),
            Formula::and(
                Formula::eventually(i, Formula::atom("b")),
                Formula::always(Interval::bounded(2, 2), Formula::atom("z")),
            ),
            Formula::until(
                Formula::atom("a"),
                i,
                Formula::or(Formula::atom("b"), Formula::False),
            ),
        ];
        for phi in samples {
            let simplified = simplify(&phi);
            assert_eq!(
                evaluate(&trace, &phi),
                evaluate(&trace, &simplified),
                "simplification changed semantics: {phi} vs {simplified}"
            );
            assert!(simplified.size() <= phi.size());
        }
    }

    #[test]
    fn and_all_or_all_neutral_elements() {
        assert_eq!(and_all([]), Formula::True);
        assert_eq!(or_all([]), Formula::False);
        assert_eq!(
            and_all([Formula::atom("x"), Formula::True]),
            Formula::atom("x")
        );
    }
}
