//! A fast, non-cryptographic hasher for the solver's hot maps.
//!
//! The progression search performs one memo lookup per visited node with a
//! fixed-size 20-byte key; the standard library's SipHash dominates that
//! lookup. This is the Fx multiply-xor hash (the rustc hasher): a handful of
//! cycles per word, perfectly adequate for in-process tables that are not
//! exposed to untrusted keys.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiply-xor hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    // chunks_exact(8) yields exactly 8-byte slices, so the conversion holds.
    #[allow(clippy::unwrap_used)]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        // The packed progression-cache keys are single u128 scalars; hash
        // them as two words instead of routing through the byte-slice path.
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }
}

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"abc"), hash(b"abc"));
        assert_ne!(hash(b"abc"), hash(b"abd"));
        assert_ne!(hash(b"abcdefgh1"), hash(b"abcdefgh2"));
    }

    #[test]
    fn usable_as_map_hasher() {
        let mut map: FxHashMap<(u64, u64, u32), usize> = FxHashMap::default();
        for i in 0..1000u64 {
            map.insert((i, i * 7, i as u32), i as usize);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&(41, 287, 41)), Some(&41));
    }
}
