//! The formula-arena abstraction: one trait, two implementations.
//!
//! The solver engine and the monitors are written against [`ArenaOps`], the
//! common interface of the single-threaded [`crate::Interner`] and the
//! lock-per-shard [`crate::ShardedInterner`]. The trait has two layers:
//!
//! * **Required methods** — node storage, canonicalising smart constructors,
//!   state interning and the two progression caches. Each arena implements
//!   these natively (plain vectors and maps for `Interner`, sharded
//!   `Mutex`-protected tables for `ShardedInterner`).
//! * **Provided methods** — the *algorithms*: memoised single-observation and
//!   gap progression, interval-splitting progression over occurrence windows,
//!   empty-future evaluation, and conversion to/from the plain [`Formula`]
//!   tree. These are written once, here, on top of the required methods, so
//!   the sequential and the concurrent arena cannot diverge semantically —
//!   `intern_properties.rs` additionally pins their agreement on random
//!   formulas.
//!
//! The provided algorithms mirror the documented contracts of the inherent
//! [`crate::Interner`] methods of the same names (see `intern.rs` for the
//! soundness arguments: horizon clamping, invariant-only range merging, the
//! stable tail); the interner's inherent methods delegate here.

use crate::{
    Formula, FormulaId, GapKey, Interval, Node, NodeKind, NodeMeta, OneKey, Prop, ShiftedId, State,
    StateKey,
};

/// Reusable buffers for the batched interval-splitting progressions
/// ([`ArenaOps::progress_one_over_batched`] /
/// [`ArenaOps::progress_gap_over_batched`]). One instance amortises the key,
/// probe-result and residual vectors across every window a caller splits —
/// the solver keeps one per segment, so the batch entry points allocate
/// nothing in steady state.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    /// Packed one-cache keys of the current tick run.
    one_keys: Vec<OneKey>,
    /// Packed gap-cache keys of the current tick run.
    gap_keys: Vec<GapKey>,
    /// Probe results, aligned with the key vector (`None` = miss).
    probes: Vec<Option<FormulaId>>,
    /// Per-tick residuals after misses are resolved.
    residuals: Vec<FormulaId>,
}

/// How the residuals of a [`SplitRange`] vary across the range; see
/// [`crate::Interner::progress_one_over`] for the full contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeKind {
    /// Every time point of the range yields the range's residual.
    Uniform,
    /// The residual at `lo + k` is `translate_down(residual, k)`: the range
    /// sweeps one shift-normal zone (canonical residual constant, shift
    /// decrementing per tick and staying ≥ 1). A caller performing a
    /// union-of-contributions search may collapse the range to its earliest
    /// point, exactly as for a time-invariant `Uniform` range.
    Translated,
}

/// One maximal range of an interval-splitting progression
/// ([`crate::Interner::progress_one_over`] /
/// [`crate::Interner::progress_gap_over`]): the occurrence times `[lo, hi]`
/// (inclusive) together with the residual at `lo` and the law giving the
/// residuals of the remaining points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitRange {
    /// Earliest occurrence time of the range.
    pub lo: u64,
    /// Latest occurrence time of the range (inclusive).
    pub hi: u64,
    /// The residual at `lo`.
    pub residual: FormulaId,
    /// How the residuals of the later points relate to `residual`.
    pub kind: RangeKind,
}

/// Operations every formula arena provides; see the module documentation.
///
/// The provided methods implement progression, evaluation and conversion
/// generically; implementors only supply storage, canonicalising constructors
/// and caches. The trait is not object-safe (the interval-splitting helpers
/// take closures); it is used via monomorphisation only.
pub trait ArenaOps {
    /// The node named by `id` (a clone — nodes are small, and the concurrent
    /// arena cannot hand out references across its shard locks).
    fn node(&self, id: FormulaId) -> Node;

    /// Returns `true` if the interned state `key` satisfies the proposition.
    fn state_holds(&self, key: StateKey, p: &Prop) -> bool;

    /// The fused metadata record of `id` — kind tag, temporal horizon, shift
    /// slack and canonical residual in **one** indexed read (see
    /// [`crate::NodeMeta`]). This is the only per-node metadata primitive;
    /// [`ArenaOps::temporal_horizon`] and friends are projections of it, so
    /// hot paths that need several properties should call this once and
    /// project locally.
    fn node_meta(&self, id: FormulaId) -> NodeMeta;

    /// The arena-level shift watermark (see [`crate::Interner::ever_shifted`]):
    /// `false` while no node with a nonzero finite shift slack has ever been
    /// interned, in which case shift-normal decomposition is the identity on
    /// every id of this arena and callers skip the zone machinery wholesale.
    fn ever_shifted(&self) -> bool;

    /// Interns an observation state (see [`crate::Interner::intern_state`]).
    fn intern_state(&mut self, state: &State) -> StateKey;

    /// Interns an atomic proposition.
    fn mk_atom(&mut self, p: Prop) -> FormulaId;
    /// Smart negation.
    fn mk_not(&mut self, a: FormulaId) -> FormulaId;
    /// Smart n-ary conjunction.
    fn mk_and_all(&mut self, parts: Vec<FormulaId>) -> FormulaId;
    /// Smart n-ary disjunction.
    fn mk_or_all(&mut self, parts: Vec<FormulaId>) -> FormulaId;
    /// Smart implication.
    fn mk_implies(&mut self, a: FormulaId, b: FormulaId) -> FormulaId;
    /// Smart timed until.
    fn mk_until(&mut self, a: FormulaId, i: Interval, b: FormulaId) -> FormulaId;
    /// Smart timed eventually.
    fn mk_eventually(&mut self, i: Interval, a: FormulaId) -> FormulaId;
    /// Smart timed always.
    fn mk_always(&mut self, i: Interval, a: FormulaId) -> FormulaId;

    /// Looks up a memoised single-observation progression. The key is the
    /// packed shift-relative scalar `(state, canonical residual, elapsed −
    /// shift, shifted?)` — see [`ArenaOps::progress_one_cached`].
    fn one_cache_get(&self, key: OneKey) -> Option<FormulaId>;
    /// Memoises a single-observation progression.
    fn one_cache_put(&mut self, key: OneKey, value: FormulaId);
    /// Looks up a memoised gap progression (packed shift-relative key
    /// `(canonical residual, elapsed − shift)`; see
    /// [`ArenaOps::progress_gap_cached`]).
    fn gap_cache_get(&self, key: GapKey) -> Option<FormulaId>;
    /// Memoises a gap progression.
    fn gap_cache_put(&mut self, key: GapKey, value: FormulaId);

    /// Probes the one-cache for every key of a run, in order, writing one
    /// `Option` per key into `out` (cleared first). Semantically identical to
    /// looping [`ArenaOps::one_cache_get`] — including the hit/miss tallies,
    /// which must count one probe per key — but implementors may amortise the
    /// table traffic: the sharded arena locks each shard once per maximal
    /// same-shard key run instead of once per key, and every key of one
    /// splitter run shares a formula (hence a shard), so a whole batch is one
    /// lock round-trip.
    fn one_cache_get_batch(&self, keys: &[OneKey], out: &mut Vec<Option<FormulaId>>) {
        out.clear();
        out.extend(keys.iter().map(|&k| self.one_cache_get(k)));
    }

    /// Batched counterpart of [`ArenaOps::gap_cache_get`]; same contract as
    /// [`ArenaOps::one_cache_get_batch`].
    fn gap_cache_get_batch(&self, keys: &[GapKey], out: &mut Vec<Option<FormulaId>>) {
        out.clear();
        out.extend(keys.iter().map(|&k| self.gap_cache_get(k)));
    }

    /// Interns a slice of formula trees in order. The sequential arena gains
    /// nothing over a loop; the sharded arena still pays per-node lock
    /// traffic (hash-consing is per-shard), but callers get one entry point
    /// to hand a whole query set to either arena.
    fn intern_all(&mut self, phis: &[Formula]) -> Vec<FormulaId> {
        phis.iter().map(|phi| self.intern(phi)).collect()
    }

    /// Smart binary conjunction.
    fn mk_and(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        self.mk_and_all(vec![a, b])
    }

    /// Smart binary disjunction.
    fn mk_or(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        self.mk_or_all(vec![a, b])
    }

    /// The temporal horizon of `id` (see [`crate::Interner::temporal_horizon`];
    /// a projection of [`ArenaOps::node_meta`]).
    fn temporal_horizon(&self, id: FormulaId) -> u64 {
        self.node_meta(id).horizon
    }

    /// The shift slack of `id` (see [`crate::Interner::shift_slack`]):
    /// `u64::MAX` for propositional formulas, otherwise the largest exact
    /// downward translation of the top-level intervals. A projection of
    /// [`ArenaOps::node_meta`].
    fn shift_slack(&self, id: FormulaId) -> u64 {
        self.node_meta(id).slack
    }

    /// The canonical shift-normal residual of `id` (see
    /// [`crate::Interner::shift_canon`]; a projection of
    /// [`ArenaOps::node_meta`]).
    fn shift_canon(&self, id: FormulaId) -> FormulaId {
        self.node_meta(id).canon
    }

    /// Returns `true` if progression of `id` is independent of elapsed time
    /// (see [`crate::Interner::temporal_horizon`]).
    fn is_time_invariant(&self, id: FormulaId) -> bool {
        self.node_meta(id).horizon == 0
    }

    /// Shifts every top-level temporal interval of `id` up by `delta` —
    /// the exact inverse of [`ArenaOps::translate_down`] on its domain.
    /// Propositional formulas are fixed points; subformulas *under* a
    /// temporal operator are untouched (their anchor is the operator's
    /// window, which moves as a whole).
    fn translate_up(&mut self, id: FormulaId, delta: u64) -> FormulaId {
        if delta == 0 || self.shift_slack(id) == u64::MAX {
            return id;
        }
        match self.node(id) {
            Node::True | Node::False | Node::Atom(_) => id,
            Node::Not(a) => {
                let a = self.translate_up(a, delta);
                self.mk_not(a)
            }
            Node::And(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.translate_up(c, delta))
                    .collect();
                self.mk_and_all(parts)
            }
            Node::Or(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.translate_up(c, delta))
                    .collect();
                self.mk_or_all(parts)
            }
            Node::Implies(a, b) => {
                let a = self.translate_up(a, delta);
                let b = self.translate_up(b, delta);
                self.mk_implies(a, b)
            }
            Node::Eventually(i, a) => self.mk_eventually(i.shift_up(delta), a),
            Node::Always(i, a) => self.mk_always(i.shift_up(delta), a),
            Node::Until(a, i, b) => self.mk_until(a, i.shift_up(delta), b),
        }
    }

    /// Translates every top-level temporal interval of `id` down by `delta`,
    /// exactly — `delta` must not exceed [`ArenaOps::shift_slack`], so no
    /// endpoint clamps and [`ArenaOps::translate_up`] inverts the move.
    /// Equals `progress_gap(id, delta)` on that domain (a gap shorter than
    /// the slack elapses no window, it only slides them).
    fn translate_down(&mut self, id: FormulaId, delta: u64) -> FormulaId {
        debug_assert!(
            delta <= self.shift_slack(id),
            "translate_down past the shift slack is not exact"
        );
        if delta == 0 || self.shift_slack(id) == u64::MAX {
            return id;
        }
        match self.node(id) {
            Node::True | Node::False | Node::Atom(_) => id,
            Node::Not(a) => {
                let a = self.translate_down(a, delta);
                self.mk_not(a)
            }
            Node::And(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.translate_down(c, delta))
                    .collect();
                self.mk_and_all(parts)
            }
            Node::Or(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.translate_down(c, delta))
                    .collect();
                self.mk_or_all(parts)
            }
            Node::Implies(a, b) => {
                let a = self.translate_down(a, delta);
                let b = self.translate_down(b, delta);
                self.mk_implies(a, b)
            }
            Node::Eventually(i, a) => self.mk_eventually(i.translate_down(delta), a),
            Node::Always(i, a) => self.mk_always(i.translate_down(delta), a),
            Node::Until(a, i, b) => self.mk_until(a, i.translate_down(delta), b),
        }
    }

    /// Decomposes `id` into its shift-normal form `(shift, canonical
    /// residual)`: the greatest common offset of the top-level intervals is
    /// factored out. Formulas with slack 0 (a window already open, or an
    /// `Until` with a non-invariant left argument) and propositional formulas
    /// are their own canonical form with shift 0.
    fn normalize(&self, id: FormulaId) -> ShiftedId {
        // Shift-free arenas (watermark down) have no decomposable node at
        // all: skip even the metadata read.
        if !self.ever_shifted() {
            return ShiftedId::unshifted(id);
        }
        let meta = self.node_meta(id);
        if meta.is_translatable() {
            ShiftedId {
                shift: meta.slack,
                id: meta.canon,
            }
        } else {
            ShiftedId::unshifted(id)
        }
    }

    /// Rebuilds the plain id of a shift-normal pair
    /// (`translate_up(s.id, s.shift)`) — the inverse of
    /// [`ArenaOps::normalize`].
    fn materialize(&mut self, s: ShiftedId) -> FormulaId {
        self.translate_up(s.id, s.shift)
    }

    /// Resolves a shift-normal pair to a plain [`Formula`] tree without
    /// materialising the translated node in the arena. Produces exactly
    /// `resolve(materialize(s))`: top-level intervals are shifted up *before*
    /// the structural re-sort of n-ary operands.
    fn resolve_shifted(&self, s: ShiftedId) -> Formula {
        fn go<A: ArenaOps + ?Sized>(arena: &A, id: FormulaId, delta: u64) -> Formula {
            if delta == 0 || arena.shift_slack(id) == u64::MAX {
                return arena.resolve(id);
            }
            match arena.node(id) {
                Node::True | Node::False | Node::Atom(_) => arena.resolve(id),
                Node::Not(a) => Formula::not(go(arena, a, delta)),
                Node::And(children) => fold_nary(
                    children.iter().map(|&c| go(arena, c, delta)).collect(),
                    true,
                ),
                Node::Or(children) => fold_nary(
                    children.iter().map(|&c| go(arena, c, delta)).collect(),
                    false,
                ),
                Node::Implies(a, b) => Formula::implies(go(arena, a, delta), go(arena, b, delta)),
                Node::Eventually(i, a) => Formula::eventually(i.shift_up(delta), arena.resolve(a)),
                Node::Always(i, a) => Formula::always(i.shift_up(delta), arena.resolve(a)),
                Node::Until(a, i, b) => {
                    Formula::until(arena.resolve(a), i.shift_up(delta), arena.resolve(b))
                }
            }
        }
        go(self, s.id, s.shift)
    }

    /// Memoised single-observation progression over an interned state (see
    /// [`crate::Interner::progress_one_cached`] for the original contract and
    /// the horizon-clamping argument).
    ///
    /// # Shift-relative memoisation
    ///
    /// For a formula with shift slack σ ≥ 1 the progression at elapsed time
    /// Δ depends only on the *canonical residual* and the relative time
    /// Δ − σ — for every Δ, not only while the window is still closed. Two
    /// translates `S_{σ₁}c`, `S_{σ₂}c` (σᵢ ≥ 1) compared at matching
    /// relative times Δᵢ − σᵢ behave identically at each constructor: a
    /// top-level window `[s+σᵢ, e+σᵢ)` never contains the observation point
    /// 0 (s + σᵢ ≥ 1), so the observed parts of `◇`/`□`/`U` are closed
    /// (`⊥`/`⊤`) in *both* members regardless of Δ, an `U`'s left obligation
    /// is time-invariant by the slack definition (its progression ignores
    /// Δ), and the residual windows land at `tops − Δ = canonical tops −
    /// (Δ − σ)` with clamping that also depends only on Δ − σ. (For
    /// Δ ≥ σ the result does mention open-window residuals such as
    /// `observed ∨ F[0, e−(Δ−σ)) …` — produced by the *residual* clause, not
    /// the observation, and still a function of Δ − σ alone.) The
    /// memo key is therefore `(state, canon, Δ − σ, shifted=true)` and one
    /// entry serves the obligation at *every* absolute time it is
    /// re-encountered — across windows, segments and queries. Slack-0
    /// formulas (window open: the observation participates) keep direct
    /// `(state, id, min(Δ, horizon), shifted=false)` entries; the flag keeps
    /// the two regimes of one canonical residual apart. The relative time of
    /// shifted entries is clamped at the canonical residual's horizon, which
    /// is at least the member's own stability threshold minus its shift.
    fn progress_one_cached(&mut self, key: StateKey, id: FormulaId, elapsed: u64) -> FormulaId {
        // One fused metadata read serves the slack branch, the horizon clamp
        // and the canonical id. A shift-free node (slack 0 or MAX — the only
        // possibility while the arena watermark is down) takes the direct-key
        // path with no further table traffic.
        let meta = self.node_meta(id);
        // Clamping is sound per node: for `elapsed ≥ temporal_horizon(id)`
        // every bounded interval in `id` has elapsed and every unbounded
        // start has saturated, so the result equals the horizon's.
        let clamped = elapsed.min(meta.horizon);
        let cache_key = if meta.is_translatable() {
            let canon_horizon = self.node_meta(meta.canon).horizon;
            let rel = (elapsed as i64 - meta.slack as i64).min(canon_horizon as i64);
            OneKey::pack(key, meta.canon, rel, true)
        } else {
            OneKey::pack(key, id, clamped as i64, false)
        };
        if let Some(f) = self.one_cache_get(cache_key) {
            return f;
        }
        let f = self.progress_one_compute(key, id, clamped);
        self.one_cache_put(cache_key, f);
        f
    }

    /// The uncached body of [`ArenaOps::progress_one_cached`]: structural
    /// progression of `id` against the observation `key` at horizon-clamped
    /// elapsed time `clamped`. Issues **no** top-level cache traffic (children
    /// still go through the cached entry point) — callers that probed and
    /// missed call this and then memoise the result themselves, which is what
    /// lets the batched splitter collect a run of misses and resolve them
    /// together without double-counting probes.
    fn progress_one_compute(&mut self, key: StateKey, id: FormulaId, clamped: u64) -> FormulaId {
        match self.node(id) {
            Node::True => FormulaId::TRUE,
            Node::False => FormulaId::FALSE,
            Node::Atom(p) => {
                if self.state_holds(key, &p) {
                    FormulaId::TRUE
                } else {
                    FormulaId::FALSE
                }
            }
            Node::Not(a) => {
                let a = self.progress_one_cached(key, a, clamped);
                self.mk_not(a)
            }
            Node::And(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_one_cached(key, c, clamped))
                    .collect();
                self.mk_and_all(parts)
            }
            Node::Or(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_one_cached(key, c, clamped))
                    .collect();
                self.mk_or_all(parts)
            }
            Node::Implies(a, b) => {
                let a = self.progress_one_cached(key, a, clamped);
                let b = self.progress_one_cached(key, b, clamped);
                self.mk_implies(a, b)
            }
            Node::Eventually(interval, a) => {
                let observed = if interval.contains(0) {
                    self.progress_one_cached(key, a, clamped)
                } else {
                    FormulaId::FALSE
                };
                if interval.elapsed_by(clamped) {
                    observed
                } else {
                    let residual = self.mk_eventually(interval.shift_down(clamped), a);
                    self.mk_or(observed, residual)
                }
            }
            Node::Always(interval, a) => {
                let observed = if interval.contains(0) {
                    self.progress_one_cached(key, a, clamped)
                } else {
                    FormulaId::TRUE
                };
                if interval.elapsed_by(clamped) {
                    observed
                } else {
                    let residual = self.mk_always(interval.shift_down(clamped), a);
                    self.mk_and(observed, residual)
                }
            }
            Node::Until(a, interval, b) => {
                let pre = if interval.start() > 0 {
                    self.progress_one_cached(key, a, clamped)
                } else {
                    FormulaId::TRUE
                };
                let observed_witness = if interval.contains(0) {
                    self.progress_one_cached(key, b, clamped)
                } else {
                    FormulaId::FALSE
                };
                let future_witness = if interval.elapsed_by(clamped) {
                    FormulaId::FALSE
                } else {
                    let all_a = self.progress_one_cached(key, a, clamped);
                    let residual = self.mk_until(a, interval.shift_down(clamped), b);
                    self.mk_and(all_a, residual)
                };
                let witness = self.mk_or(observed_witness, future_witness);
                self.mk_and(pre, witness)
            }
        }
    }

    /// Memoised gap progression (see [`crate::Interner::progress_gap_cached`]),
    /// keyed shift-relative like [`ArenaOps::progress_one_cached`] — without a
    /// regime flag, because a gap consumes no observation: `gap(S_σ c, Δ)`
    /// equals `gap(c, Δ − σ)` for `Δ ≥ σ` and the pure translate
    /// `S_{σ−Δ} c` for `Δ ≤ σ` (negative relative times in the key).
    fn progress_gap_cached(&mut self, id: FormulaId, elapsed: u64) -> FormulaId {
        let meta = self.node_meta(id);
        let clamped = elapsed.min(meta.horizon);
        if clamped == 0 {
            // A zero gap is the identity, and a time-invariant formula is a
            // fixpoint of every gap.
            return id;
        }
        let slack = meta.slack;
        // Non-invariant formulas (horizon > 0) always have a finite slack:
        // slack == MAX means no top-level temporal operator at all.
        let cache_key = if slack >= 1 {
            let canon_horizon = self.node_meta(meta.canon).horizon;
            GapKey::pack(
                meta.canon,
                (elapsed as i64 - slack as i64).min(canon_horizon as i64),
            )
        } else {
            GapKey::pack(id, clamped as i64)
        };
        if let Some(f) = self.gap_cache_get(cache_key) {
            return f;
        }
        let f = self.progress_gap_compute(id, elapsed);
        self.gap_cache_put(cache_key, f);
        f
    }

    /// The uncached body of [`ArenaOps::progress_gap_cached`]: structural gap
    /// progression of `id` by `elapsed` ticks with **no** top-level cache
    /// traffic (the counterpart of [`ArenaOps::progress_one_compute`] for the
    /// batched splitter's collected-miss resolution).
    fn progress_gap_compute(&mut self, id: FormulaId, elapsed: u64) -> FormulaId {
        let meta = self.node_meta(id);
        let clamped = elapsed.min(meta.horizon);
        if clamped == 0 {
            return id;
        }
        if elapsed < meta.slack {
            // The gap is shorter than the slack: no window elapses, they all
            // slide — the result is the exact translate.
            return self.translate_down(id, elapsed);
        }
        match self.node(id) {
            Node::True | Node::False | Node::Atom(_) => id,
            Node::Not(a) => {
                let a = self.progress_gap_cached(a, clamped);
                self.mk_not(a)
            }
            Node::And(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_gap_cached(c, clamped))
                    .collect();
                self.mk_and_all(parts)
            }
            Node::Or(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_gap_cached(c, clamped))
                    .collect();
                self.mk_or_all(parts)
            }
            Node::Implies(a, b) => {
                let a = self.progress_gap_cached(a, clamped);
                let b = self.progress_gap_cached(b, clamped);
                self.mk_implies(a, b)
            }
            Node::Eventually(i, a) => {
                if i.elapsed_by(clamped) {
                    FormulaId::FALSE
                } else {
                    self.mk_eventually(i.shift_down(clamped), a)
                }
            }
            Node::Always(i, a) => {
                if i.elapsed_by(clamped) {
                    FormulaId::TRUE
                } else {
                    self.mk_always(i.shift_down(clamped), a)
                }
            }
            Node::Until(a, i, b) => {
                if i.elapsed_by(clamped) {
                    FormulaId::FALSE
                } else {
                    self.mk_until(a, i.shift_down(clamped), b)
                }
            }
        }
    }

    /// Interval-splitting progression over a pre-interned observation state
    /// (see [`crate::Interner::progress_one_over`] for the contract: the
    /// returned ranges tile `[lo, hi]`; multi-point ranges below the
    /// stability threshold carry time-invariant residuals or sweep one
    /// shift-normal zone).
    fn progress_one_over_keyed(
        &mut self,
        key: StateKey,
        time: u64,
        id: FormulaId,
        lo: u64,
        hi: u64,
    ) -> Vec<SplitRange> {
        progress_over_with(
            self,
            lo,
            hi,
            time.saturating_add(self.temporal_horizon(id)),
            |arena, t| arena.progress_one_cached(key, id, t.saturating_sub(time)),
        )
    }

    /// Interval-splitting gap progression (see
    /// [`crate::Interner::progress_gap_over`]).
    fn progress_gap_over(&mut self, id: FormulaId, base: u64, lo: u64, hi: u64) -> Vec<SplitRange> {
        progress_over_with(
            self,
            lo,
            hi,
            base.saturating_add(self.temporal_horizon(id)),
            |arena, t| arena.progress_gap_cached(id, t.saturating_sub(base)),
        )
    }

    /// Batched variant of [`ArenaOps::progress_one_over_keyed`]: splits the
    /// same window into the same ranges (appended to `out`, cleared first),
    /// but issues the per-tick cache probes as **one contiguous batch**
    /// through [`ArenaOps::one_cache_get_batch`], collects the misses, and
    /// resolves them together in tick order. Returns the number of probes
    /// issued (the tick count of the clamped run), which the solver surfaces
    /// as its `batched_probe_ticks` counter.
    ///
    /// # Tally equivalence
    ///
    /// Probe-all-then-resolve sees exactly the hits and misses the
    /// interleaved scalar loop would see, because within one run every packed
    /// key is distinct — the relative time strictly increases tick over tick
    /// and the horizon clamp is only reached at the final tick (the run stops
    /// at the stability threshold) — and resolving a missed tick can never
    /// insert another tick's key: a resolution memoises only its own key
    /// (top-level) plus keys of *structurally smaller* subterms, while every
    /// run key names `id` or its equal-size canonical residual.
    #[allow(clippy::too_many_arguments)]
    fn progress_one_over_batched(
        &mut self,
        key: StateKey,
        time: u64,
        id: FormulaId,
        lo: u64,
        hi: u64,
        scratch: &mut ProbeScratch,
        out: &mut Vec<SplitRange>,
    ) -> usize {
        debug_assert!(lo <= hi, "window [{lo}, {hi}] is empty");
        let meta = self.node_meta(id);
        let stable_from = time.saturating_add(meta.horizon);
        // The scalar loop steps `lo ..= hi` but breaks at the first stable
        // tick, so the probed run is clamped at the stability threshold.
        let run_hi = hi.min(stable_from.max(lo));
        let ProbeScratch {
            one_keys,
            probes,
            residuals,
            ..
        } = scratch;
        one_keys.clear();
        if meta.is_translatable() {
            let canon_horizon = self.node_meta(meta.canon).horizon;
            for t in lo..=run_hi {
                let elapsed = t.saturating_sub(time);
                let rel = (elapsed as i64 - meta.slack as i64).min(canon_horizon as i64);
                one_keys.push(OneKey::pack(key, meta.canon, rel, true));
            }
        } else {
            for t in lo..=run_hi {
                let clamped = t.saturating_sub(time).min(meta.horizon);
                one_keys.push(OneKey::pack(key, id, clamped as i64, false));
            }
        }
        self.one_cache_get_batch(one_keys, probes);
        residuals.clear();
        for i in 0..probes.len() {
            let f = match probes[i] {
                Some(f) => f,
                None => {
                    let t = lo + i as u64;
                    let clamped = t.saturating_sub(time).min(meta.horizon);
                    let f = self.progress_one_compute(key, id, clamped);
                    self.one_cache_put(one_keys[i], f);
                    f
                }
            };
            residuals.push(f);
        }
        out.clear();
        merge_residual_run(self, lo, hi, stable_from, residuals, out);
        one_keys.len()
    }

    /// Batched variant of [`ArenaOps::progress_gap_over`]; same contract and
    /// tally-equivalence argument as [`ArenaOps::progress_one_over_batched`].
    /// Returns the probe count — ticks whose clamped gap is zero (the scalar
    /// path's identity early-return) issue no probe and form a prefix of the
    /// run, so they are excluded from both the batch and the count.
    fn progress_gap_over_batched(
        &mut self,
        id: FormulaId,
        base: u64,
        lo: u64,
        hi: u64,
        scratch: &mut ProbeScratch,
        out: &mut Vec<SplitRange>,
    ) -> usize {
        debug_assert!(lo <= hi, "window [{lo}, {hi}] is empty");
        let meta = self.node_meta(id);
        let stable_from = base.saturating_add(meta.horizon);
        let run_hi = hi.min(stable_from.max(lo));
        let ProbeScratch {
            gap_keys,
            probes,
            residuals,
            ..
        } = scratch;
        gap_keys.clear();
        residuals.clear();
        // A translatable node's relative times are keyed against its
        // canonical residual's horizon; read it once. (Finite nonzero slack
        // implies a temporal top level, so `canon` is populated; the other
        // arms never read the value.)
        let canon_horizon = if meta.slack >= 1 && meta.slack != u64::MAX {
            self.node_meta(meta.canon).horizon
        } else {
            0
        };
        // Zero-gap ticks (elapsed == 0, or any tick of a time-invariant
        // formula) are the identity with no cache traffic on the scalar
        // path; elapsed is monotone in `t`, so they form a prefix of the
        // run, recorded directly as residuals. The probed suffix starts at
        // tick `lo + residuals.len()`.
        for t in lo..=run_hi {
            let elapsed = t.saturating_sub(base);
            if elapsed.min(meta.horizon) == 0 {
                residuals.push(id);
            } else if meta.slack >= 1 {
                gap_keys.push(GapKey::pack(
                    meta.canon,
                    (elapsed as i64 - meta.slack as i64).min(canon_horizon as i64),
                ));
            } else {
                gap_keys.push(GapKey::pack(id, elapsed.min(meta.horizon) as i64));
            }
        }
        let prefix = residuals.len() as u64;
        self.gap_cache_get_batch(gap_keys, probes);
        for i in 0..probes.len() {
            let f = match probes[i] {
                Some(f) => f,
                None => {
                    let elapsed = (lo + prefix + i as u64).saturating_sub(base);
                    let f = self.progress_gap_compute(id, elapsed);
                    self.gap_cache_put(gap_keys[i], f);
                    f
                }
            };
            residuals.push(f);
        }
        out.clear();
        merge_residual_run(self, lo, hi, stable_from, residuals, out);
        gap_keys.len()
    }

    /// Closes a formula against the empty future (see
    /// [`crate::Interner::eval_empty`]). Leaf-deciding kinds (constants,
    /// atoms, temporal operators) are classified from the metadata kind tag
    /// alone — no node clone; only boolean connectives fetch the node for its
    /// children.
    fn eval_empty(&self, id: FormulaId) -> bool {
        match self.node_meta(id).kind {
            NodeKind::True | NodeKind::Always => true,
            NodeKind::False | NodeKind::Atom | NodeKind::Eventually | NodeKind::Until => false,
            NodeKind::Not | NodeKind::And | NodeKind::Or | NodeKind::Implies => {
                match self.node(id) {
                    Node::Not(a) => !self.eval_empty(a),
                    Node::And(children) => children.iter().all(|&c| self.eval_empty(c)),
                    Node::Or(children) => children.iter().any(|&c| self.eval_empty(c)),
                    Node::Implies(a, b) => !self.eval_empty(a) || self.eval_empty(b),
                    _ => unreachable!("kind tag agrees with the node"),
                }
            }
        }
    }

    /// Interns a formula tree, canonicalising through the smart constructors.
    fn intern(&mut self, phi: &Formula) -> FormulaId {
        match phi {
            Formula::True => FormulaId::TRUE,
            Formula::False => FormulaId::FALSE,
            Formula::Atom(p) => self.mk_atom(p.clone()),
            Formula::Not(a) => {
                let a = self.intern(a);
                self.mk_not(a)
            }
            Formula::And(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_and(a, b)
            }
            Formula::Or(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_or(a, b)
            }
            Formula::Implies(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_implies(a, b)
            }
            Formula::Until(a, i, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_until(a, *i, b)
            }
            Formula::Eventually(i, a) => {
                let a = self.intern(a);
                self.mk_eventually(*i, a)
            }
            Formula::Always(i, a) => {
                let a = self.intern(a);
                self.mk_always(*i, a)
            }
        }
    }

    /// Rebuilds the plain formula tree named by `id` (same canonical shape as
    /// [`crate::Interner::resolve`]: n-ary operands re-sorted structurally, so
    /// resolutions agree across arenas with different id assignments).
    fn resolve(&self, id: FormulaId) -> Formula {
        match self.node(id) {
            Node::True => Formula::True,
            Node::False => Formula::False,
            Node::Atom(p) => Formula::Atom(p),
            Node::Not(a) => Formula::not(self.resolve(a)),
            Node::And(children) => resolve_nary(self, &children, true),
            Node::Or(children) => resolve_nary(self, &children, false),
            Node::Implies(a, b) => Formula::implies(self.resolve(a), self.resolve(b)),
            Node::Until(a, i, b) => Formula::until(self.resolve(a), i, self.resolve(b)),
            Node::Eventually(i, a) => Formula::eventually(i, self.resolve(a)),
            Node::Always(i, a) => Formula::always(i, self.resolve(a)),
        }
    }
}

fn resolve_nary<A: ArenaOps + ?Sized>(arena: &A, children: &[FormulaId], conj: bool) -> Formula {
    fold_nary(children.iter().map(|&c| arena.resolve(c)).collect(), conj)
}

/// Left-associates resolved n-ary operands in structural order (the shape
/// [`crate::simplify`] produces).
// n-ary nodes hold >= 2 operands by the smart-constructor invariant.
#[allow(clippy::expect_used)]
fn fold_nary(mut resolved: Vec<Formula>, conj: bool) -> Formula {
    resolved.sort();
    let mut iter = resolved.into_iter();
    let first = iter.next().expect("n-ary nodes have at least two operands");
    iter.fold(first, |acc, f| {
        if conj {
            Formula::and(acc, f)
        } else {
            Formula::or(acc, f)
        }
    })
}

/// Shared splitting loop: walks `t` over `[lo, hi]`, calling `step` once per
/// time point below `stable_from` and once for the whole tail at or beyond
/// it, merging adjacent residuals into one range when they are equal and
/// time-invariant (`Uniform`) or exact unit translates of one another with
/// shifts staying ≥ 1 (`Translated`) — see
/// [`crate::Interner::progress_one_over`] for why exactly these merges are
/// sound for a union-of-contributions caller.
fn progress_over_with<A: ArenaOps + ?Sized>(
    arena: &mut A,
    lo: u64,
    hi: u64,
    stable_from: u64,
    mut step: impl FnMut(&mut A, u64) -> FormulaId,
) -> Vec<SplitRange> {
    debug_assert!(lo <= hi, "window [{lo}, {hi}] is empty");
    // `prev` is the step result at `t − 1` (the residual of the previous
    // tick, which for a `Translated` range differs from the range's stored
    // `residual`).
    let mut out: Vec<SplitRange> = Vec::new();
    let mut prev: Option<FormulaId> = None;
    let mut t = lo;
    while t <= hi {
        let f = step(arena, t);
        let stable = t >= stable_from;
        let upper = if stable { hi } else { t };
        let extended = match out.last_mut() {
            Some(r) if r.hi + 1 == t => {
                if prev == Some(f) && r.kind == RangeKind::Uniform && arena.is_time_invariant(f) {
                    r.hi = upper;
                    true
                } else if !stable
                    && (r.kind == RangeKind::Translated || r.lo == r.hi)
                    && prev.is_some_and(|p| is_unit_translate(arena, p, f))
                {
                    // The previous residual is the exact one-tick-later
                    // translate of this one: keep sweeping the zone. The
                    // check requires the *new* member's shift ≥ 1, so the
                    // shift-0 member (window opening) always starts its own
                    // range.
                    r.kind = RangeKind::Translated;
                    r.hi = t;
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if !extended {
            out.push(SplitRange {
                lo: t,
                hi: upper,
                residual: f,
                kind: RangeKind::Uniform,
            });
        }
        prev = Some(f);
        if stable {
            break;
        }
        t += 1;
    }
    out
}

/// Returns `true` if `prev` is the exact unit translate `S₁ f` of `f` and
/// `f` itself still has shift slack ≥ 1 — the condition under which a range
/// ending in `prev` may absorb `f` as a [`RangeKind::Translated`] member.
fn is_unit_translate<A: ArenaOps + ?Sized>(arena: &A, prev: FormulaId, f: FormulaId) -> bool {
    let mf = arena.node_meta(f);
    if !mf.is_translatable() {
        return false;
    }
    let mp = arena.node_meta(prev);
    mp.slack == mf.slack + 1 && mp.canon == mf.canon
}

/// The merge half of [`progress_over_with`], applied to a run of residuals
/// that has already been resolved (`residuals[i]` is the residual at tick
/// `lo + i`): folds adjacent ticks into `Uniform` / `Translated` ranges and
/// extends the final (stable) tick's range to `hi`, appending to `out`. The
/// run must cover `lo ..= min(hi, max(lo, stable_from))` — exactly the ticks
/// the scalar loop steps before breaking on stability — so both splitters
/// produce identical range vectors for identical residual sequences.
fn merge_residual_run<A: ArenaOps + ?Sized>(
    arena: &A,
    lo: u64,
    hi: u64,
    stable_from: u64,
    residuals: &[FormulaId],
    out: &mut Vec<SplitRange>,
) {
    let mut prev: Option<FormulaId> = None;
    for (i, &f) in residuals.iter().enumerate() {
        let t = lo + i as u64;
        let stable = t >= stable_from;
        let upper = if stable { hi } else { t };
        let extended = match out.last_mut() {
            Some(r) if r.hi + 1 == t => {
                if prev == Some(f) && r.kind == RangeKind::Uniform && arena.is_time_invariant(f) {
                    r.hi = upper;
                    true
                } else if !stable
                    && (r.kind == RangeKind::Translated || r.lo == r.hi)
                    && prev.is_some_and(|p| is_unit_translate(arena, p, f))
                {
                    r.kind = RangeKind::Translated;
                    r.hi = t;
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if !extended {
            out.push(SplitRange {
                lo: t,
                hi: upper,
                residual: f,
                kind: RangeKind::Uniform,
            });
        }
        prev = Some(f);
        if stable {
            break;
        }
    }
}
