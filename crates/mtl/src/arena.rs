//! The formula-arena abstraction: one trait, two implementations.
//!
//! The solver engine and the monitors are written against [`ArenaOps`], the
//! common interface of the single-threaded [`crate::Interner`] and the
//! lock-per-shard [`crate::ShardedInterner`]. The trait has two layers:
//!
//! * **Required methods** — node storage, canonicalising smart constructors,
//!   state interning and the two progression caches. Each arena implements
//!   these natively (plain vectors and maps for `Interner`, sharded
//!   `Mutex`-protected tables for `ShardedInterner`).
//! * **Provided methods** — the *algorithms*: memoised single-observation and
//!   gap progression, interval-splitting progression over occurrence windows,
//!   empty-future evaluation, and conversion to/from the plain [`Formula`]
//!   tree. These are written once, here, on top of the required methods, so
//!   the sequential and the concurrent arena cannot diverge semantically —
//!   `intern_properties.rs` additionally pins their agreement on random
//!   formulas.
//!
//! The provided algorithms mirror the documented contracts of the inherent
//! [`crate::Interner`] methods of the same names (see `intern.rs` for the
//! soundness arguments: horizon clamping, invariant-only range merging, the
//! stable tail); the interner's inherent methods delegate here.

use crate::{Formula, FormulaId, Interval, Node, Prop, State, StateKey};

/// Operations every formula arena provides; see the module documentation.
///
/// The provided methods implement progression, evaluation and conversion
/// generically; implementors only supply storage, canonicalising constructors
/// and caches. The trait is not object-safe (the interval-splitting helpers
/// take closures); it is used via monomorphisation only.
pub trait ArenaOps {
    /// The node named by `id` (a clone — nodes are small, and the concurrent
    /// arena cannot hand out references across its shard locks).
    fn node(&self, id: FormulaId) -> Node;

    /// Returns `true` if the interned state `key` satisfies the proposition.
    fn state_holds(&self, key: StateKey, p: &Prop) -> bool;

    /// The temporal horizon of `id` (see [`crate::Interner::temporal_horizon`]).
    fn temporal_horizon(&self, id: FormulaId) -> u64;

    /// Interns an observation state (see [`crate::Interner::intern_state`]).
    fn intern_state(&mut self, state: &State) -> StateKey;

    /// Interns an atomic proposition.
    fn mk_atom(&mut self, p: Prop) -> FormulaId;
    /// Smart negation.
    fn mk_not(&mut self, a: FormulaId) -> FormulaId;
    /// Smart n-ary conjunction.
    fn mk_and_all(&mut self, parts: Vec<FormulaId>) -> FormulaId;
    /// Smart n-ary disjunction.
    fn mk_or_all(&mut self, parts: Vec<FormulaId>) -> FormulaId;
    /// Smart implication.
    fn mk_implies(&mut self, a: FormulaId, b: FormulaId) -> FormulaId;
    /// Smart timed until.
    fn mk_until(&mut self, a: FormulaId, i: Interval, b: FormulaId) -> FormulaId;
    /// Smart timed eventually.
    fn mk_eventually(&mut self, i: Interval, a: FormulaId) -> FormulaId;
    /// Smart timed always.
    fn mk_always(&mut self, i: Interval, a: FormulaId) -> FormulaId;

    /// Looks up a memoised single-observation progression.
    fn one_cache_get(&self, key: &(StateKey, FormulaId, u64)) -> Option<FormulaId>;
    /// Memoises a single-observation progression.
    fn one_cache_put(&mut self, key: (StateKey, FormulaId, u64), value: FormulaId);
    /// Looks up a memoised gap progression.
    fn gap_cache_get(&self, key: &(FormulaId, u64)) -> Option<FormulaId>;
    /// Memoises a gap progression.
    fn gap_cache_put(&mut self, key: (FormulaId, u64), value: FormulaId);

    /// Smart binary conjunction.
    fn mk_and(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        self.mk_and_all(vec![a, b])
    }

    /// Smart binary disjunction.
    fn mk_or(&mut self, a: FormulaId, b: FormulaId) -> FormulaId {
        self.mk_or_all(vec![a, b])
    }

    /// Returns `true` if progression of `id` is independent of elapsed time
    /// (see [`crate::Interner::temporal_horizon`]).
    fn is_time_invariant(&self, id: FormulaId) -> bool {
        self.temporal_horizon(id) == 0
    }

    /// Memoised single-observation progression over an interned state (see
    /// [`crate::Interner::progress_one_cached`] for the full contract and the
    /// horizon-clamping argument).
    fn progress_one_cached(&mut self, key: StateKey, id: FormulaId, elapsed: u64) -> FormulaId {
        // Clamping is sound per node: for `elapsed ≥ temporal_horizon(id)`
        // every bounded interval in `id` has elapsed and every unbounded
        // start has saturated, so the result equals the horizon's.
        let clamped = elapsed.min(self.temporal_horizon(id));
        if let Some(f) = self.one_cache_get(&(key, id, clamped)) {
            return f;
        }
        let f = match self.node(id) {
            Node::True => FormulaId::TRUE,
            Node::False => FormulaId::FALSE,
            Node::Atom(p) => {
                if self.state_holds(key, &p) {
                    FormulaId::TRUE
                } else {
                    FormulaId::FALSE
                }
            }
            Node::Not(a) => {
                let a = self.progress_one_cached(key, a, clamped);
                self.mk_not(a)
            }
            Node::And(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_one_cached(key, c, clamped))
                    .collect();
                self.mk_and_all(parts)
            }
            Node::Or(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_one_cached(key, c, clamped))
                    .collect();
                self.mk_or_all(parts)
            }
            Node::Implies(a, b) => {
                let a = self.progress_one_cached(key, a, clamped);
                let b = self.progress_one_cached(key, b, clamped);
                self.mk_implies(a, b)
            }
            Node::Eventually(interval, a) => {
                let observed = if interval.contains(0) {
                    self.progress_one_cached(key, a, clamped)
                } else {
                    FormulaId::FALSE
                };
                if interval.elapsed_by(clamped) {
                    observed
                } else {
                    let residual = self.mk_eventually(interval.shift_down(clamped), a);
                    self.mk_or(observed, residual)
                }
            }
            Node::Always(interval, a) => {
                let observed = if interval.contains(0) {
                    self.progress_one_cached(key, a, clamped)
                } else {
                    FormulaId::TRUE
                };
                if interval.elapsed_by(clamped) {
                    observed
                } else {
                    let residual = self.mk_always(interval.shift_down(clamped), a);
                    self.mk_and(observed, residual)
                }
            }
            Node::Until(a, interval, b) => {
                let pre = if interval.start() > 0 {
                    self.progress_one_cached(key, a, clamped)
                } else {
                    FormulaId::TRUE
                };
                let observed_witness = if interval.contains(0) {
                    self.progress_one_cached(key, b, clamped)
                } else {
                    FormulaId::FALSE
                };
                let future_witness = if interval.elapsed_by(clamped) {
                    FormulaId::FALSE
                } else {
                    let all_a = self.progress_one_cached(key, a, clamped);
                    let residual = self.mk_until(a, interval.shift_down(clamped), b);
                    self.mk_and(all_a, residual)
                };
                let witness = self.mk_or(observed_witness, future_witness);
                self.mk_and(pre, witness)
            }
        };
        self.one_cache_put((key, id, clamped), f);
        f
    }

    /// Memoised gap progression (see [`crate::Interner::progress_gap_cached`]).
    fn progress_gap_cached(&mut self, id: FormulaId, elapsed: u64) -> FormulaId {
        let clamped = elapsed.min(self.temporal_horizon(id));
        if clamped == 0 {
            // A zero gap is the identity, and a time-invariant formula is a
            // fixpoint of every gap.
            return id;
        }
        if let Some(f) = self.gap_cache_get(&(id, clamped)) {
            return f;
        }
        let f = match self.node(id) {
            Node::True | Node::False | Node::Atom(_) => id,
            Node::Not(a) => {
                let a = self.progress_gap_cached(a, clamped);
                self.mk_not(a)
            }
            Node::And(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_gap_cached(c, clamped))
                    .collect();
                self.mk_and_all(parts)
            }
            Node::Or(children) => {
                let parts: Vec<FormulaId> = children
                    .iter()
                    .map(|&c| self.progress_gap_cached(c, clamped))
                    .collect();
                self.mk_or_all(parts)
            }
            Node::Implies(a, b) => {
                let a = self.progress_gap_cached(a, clamped);
                let b = self.progress_gap_cached(b, clamped);
                self.mk_implies(a, b)
            }
            Node::Eventually(i, a) => {
                if i.elapsed_by(clamped) {
                    FormulaId::FALSE
                } else {
                    self.mk_eventually(i.shift_down(clamped), a)
                }
            }
            Node::Always(i, a) => {
                if i.elapsed_by(clamped) {
                    FormulaId::TRUE
                } else {
                    self.mk_always(i.shift_down(clamped), a)
                }
            }
            Node::Until(a, i, b) => {
                if i.elapsed_by(clamped) {
                    FormulaId::FALSE
                } else {
                    self.mk_until(a, i.shift_down(clamped), b)
                }
            }
        };
        self.gap_cache_put((id, clamped), f);
        f
    }

    /// Interval-splitting progression over a pre-interned observation state
    /// (see [`crate::Interner::progress_one_over`] for the contract: the
    /// returned ranges tile `[lo, hi]`, multi-point ranges below the stability
    /// threshold carry time-invariant residuals).
    fn progress_one_over_keyed(
        &mut self,
        key: StateKey,
        time: u64,
        id: FormulaId,
        lo: u64,
        hi: u64,
    ) -> Vec<(u64, u64, FormulaId)> {
        progress_over_with(
            self,
            lo,
            hi,
            time.saturating_add(self.temporal_horizon(id)),
            |arena, t| arena.progress_one_cached(key, id, t.saturating_sub(time)),
        )
    }

    /// Interval-splitting gap progression (see
    /// [`crate::Interner::progress_gap_over`]).
    fn progress_gap_over(
        &mut self,
        id: FormulaId,
        base: u64,
        lo: u64,
        hi: u64,
    ) -> Vec<(u64, u64, FormulaId)> {
        progress_over_with(
            self,
            lo,
            hi,
            base.saturating_add(self.temporal_horizon(id)),
            |arena, t| arena.progress_gap_cached(id, t.saturating_sub(base)),
        )
    }

    /// Closes a formula against the empty future (see
    /// [`crate::Interner::eval_empty`]).
    fn eval_empty(&self, id: FormulaId) -> bool {
        match self.node(id) {
            Node::True => true,
            Node::False => false,
            Node::Atom(_) => false,
            Node::Not(a) => !self.eval_empty(a),
            Node::And(children) => children.iter().all(|&c| self.eval_empty(c)),
            Node::Or(children) => children.iter().any(|&c| self.eval_empty(c)),
            Node::Implies(a, b) => !self.eval_empty(a) || self.eval_empty(b),
            Node::Eventually(..) | Node::Until(..) => false,
            Node::Always(..) => true,
        }
    }

    /// Interns a formula tree, canonicalising through the smart constructors.
    fn intern(&mut self, phi: &Formula) -> FormulaId {
        match phi {
            Formula::True => FormulaId::TRUE,
            Formula::False => FormulaId::FALSE,
            Formula::Atom(p) => self.mk_atom(p.clone()),
            Formula::Not(a) => {
                let a = self.intern(a);
                self.mk_not(a)
            }
            Formula::And(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_and(a, b)
            }
            Formula::Or(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_or(a, b)
            }
            Formula::Implies(a, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_implies(a, b)
            }
            Formula::Until(a, i, b) => {
                let a = self.intern(a);
                let b = self.intern(b);
                self.mk_until(a, *i, b)
            }
            Formula::Eventually(i, a) => {
                let a = self.intern(a);
                self.mk_eventually(*i, a)
            }
            Formula::Always(i, a) => {
                let a = self.intern(a);
                self.mk_always(*i, a)
            }
        }
    }

    /// Rebuilds the plain formula tree named by `id` (same canonical shape as
    /// [`crate::Interner::resolve`]: n-ary operands re-sorted structurally, so
    /// resolutions agree across arenas with different id assignments).
    fn resolve(&self, id: FormulaId) -> Formula {
        match self.node(id) {
            Node::True => Formula::True,
            Node::False => Formula::False,
            Node::Atom(p) => Formula::Atom(p),
            Node::Not(a) => Formula::not(self.resolve(a)),
            Node::And(children) => resolve_nary(self, &children, true),
            Node::Or(children) => resolve_nary(self, &children, false),
            Node::Implies(a, b) => Formula::implies(self.resolve(a), self.resolve(b)),
            Node::Until(a, i, b) => Formula::until(self.resolve(a), i, self.resolve(b)),
            Node::Eventually(i, a) => Formula::eventually(i, self.resolve(a)),
            Node::Always(i, a) => Formula::always(i, self.resolve(a)),
        }
    }
}

fn resolve_nary<A: ArenaOps + ?Sized>(arena: &A, children: &[FormulaId], conj: bool) -> Formula {
    let mut resolved: Vec<Formula> = children.iter().map(|&c| arena.resolve(c)).collect();
    resolved.sort();
    let mut iter = resolved.into_iter();
    let first = iter.next().expect("n-ary nodes have at least two operands");
    iter.fold(first, |acc, f| {
        if conj {
            Formula::and(acc, f)
        } else {
            Formula::or(acc, f)
        }
    })
}

/// Shared splitting loop: walks `t` over `[lo, hi]`, calling `step` once per
/// time point below `stable_from` and once for the whole tail at or beyond
/// it, merging adjacent equal residuals when they are time-invariant (see
/// [`crate::Interner::progress_one_over`] for why the merge is restricted to
/// invariant residuals).
fn progress_over_with<A: ArenaOps + ?Sized>(
    arena: &mut A,
    lo: u64,
    hi: u64,
    stable_from: u64,
    mut step: impl FnMut(&mut A, u64) -> FormulaId,
) -> Vec<(u64, u64, FormulaId)> {
    debug_assert!(lo <= hi, "window [{lo}, {hi}] is empty");
    let mut out: Vec<(u64, u64, FormulaId)> = Vec::new();
    let mut t = lo;
    while t <= hi {
        let f = step(arena, t);
        let stable = t >= stable_from;
        let upper = if stable { hi } else { t };
        match out.last_mut() {
            // Extend the previous range only when the residual is the same
            // *and* time-invariant.
            Some((_, end, prev)) if *prev == f && *end + 1 == t && arena.is_time_invariant(f) => {
                *end = upper;
            }
            _ => out.push((t, upper, f)),
        }
        if stable {
            break;
        }
        t += 1;
    }
    out
}
