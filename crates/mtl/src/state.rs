//! States: sets of atomic propositions that hold at an instant.
//!
//! A [`State`] is an element of `Σ = 2^AP`. Timed traces pair a sequence of
//! states with a sequence of timestamps (see [`crate::TimedTrace`]).

use crate::Prop;
use std::collections::BTreeSet;
use std::fmt;

/// A set of atomic propositions that hold simultaneously.
///
/// # Examples
///
/// ```
/// use rvmtl_mtl::{Prop, State};
///
/// let s: State = ["a", "b"].into_iter().collect();
/// assert!(s.holds("a"));
/// assert!(!s.holds("c"));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct State {
    props: BTreeSet<Prop>,
}

impl State {
    /// Creates an empty state (no proposition holds).
    pub fn empty() -> Self {
        State::default()
    }

    /// Creates a state containing a single proposition.
    pub fn singleton(p: impl Into<Prop>) -> Self {
        let mut s = State::empty();
        s.insert(p);
        s
    }

    /// Inserts a proposition; returns `true` if it was not already present.
    pub fn insert(&mut self, p: impl Into<Prop>) -> bool {
        self.props.insert(p.into())
    }

    /// Removes a proposition; returns `true` if it was present.
    pub fn remove(&mut self, p: &str) -> bool {
        self.props.remove(p)
    }

    /// Returns `true` if the proposition named `p` holds in this state.
    pub fn holds(&self, p: &str) -> bool {
        self.props.contains(p)
    }

    /// Returns `true` if the proposition holds in this state.
    pub fn holds_prop(&self, p: &Prop) -> bool {
        self.props.contains(p)
    }

    /// Number of propositions that hold.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// Returns `true` if no proposition holds.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// Iterates over the propositions that hold, in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &Prop> {
        self.props.iter()
    }

    /// Set union with another state (used when merging simultaneous events).
    pub fn union(&self, other: &State) -> State {
        State {
            props: self.props.union(&other.props).cloned().collect(),
        }
    }

    /// Extends this state with all propositions of `other`.
    pub fn extend_from(&mut self, other: &State) {
        for p in &other.props {
            self.props.insert(p.clone());
        }
    }
}

impl FromIterator<Prop> for State {
    fn from_iter<I: IntoIterator<Item = Prop>>(iter: I) -> Self {
        State {
            props: iter.into_iter().collect(),
        }
    }
}

impl<'a> FromIterator<&'a str> for State {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> Self {
        State {
            props: iter.into_iter().map(Prop::new).collect(),
        }
    }
}

impl Extend<Prop> for State {
    fn extend<I: IntoIterator<Item = Prop>>(&mut self, iter: I) {
        self.props.extend(iter);
    }
}

impl IntoIterator for State {
    type Item = Prop;
    type IntoIter = std::collections::btree_set::IntoIter<Prop>;

    fn into_iter(self) -> Self::IntoIter {
        self.props.into_iter()
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.props.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

/// Convenience macro for building a [`State`] from proposition names.
///
/// ```
/// use rvmtl_mtl::state;
///
/// let s = state!["a", "b"];
/// assert!(s.holds("a"));
/// let empty = state![];
/// assert!(empty.is_empty());
/// ```
#[macro_export]
macro_rules! state {
    () => { $crate::State::empty() };
    ($($p:expr),+ $(,)?) => {{
        let mut s = $crate::State::empty();
        $( s.insert($crate::Prop::new($p)); )+
        s
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_state_holds_nothing() {
        let s = State::empty();
        assert!(s.is_empty());
        assert!(!s.holds("a"));
        assert_eq!(s.to_string(), "{}");
    }

    #[test]
    fn insert_and_query() {
        let mut s = State::empty();
        assert!(s.insert("a"));
        assert!(!s.insert("a"));
        assert!(s.holds("a"));
        assert!(s.holds_prop(&Prop::new("a")));
        assert_eq!(s.len(), 1);
        assert!(s.remove("a"));
        assert!(!s.remove("a"));
        assert!(s.is_empty());
    }

    #[test]
    fn from_iterator_of_strs() {
        let s: State = ["b", "a", "a"].into_iter().collect();
        assert_eq!(s.len(), 2);
        let names: Vec<_> = s.iter().map(|p| p.name().to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn union_and_extend() {
        let a = state!["x"];
        let b = state!["y", "x"];
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        let mut c = state!["z"];
        c.extend_from(&u);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn state_macro() {
        let s = state!["p", "q"];
        assert!(s.holds("p") && s.holds("q"));
        assert_eq!(state![].len(), 0);
    }

    #[test]
    fn display_sorted() {
        let s = state!["b", "a"];
        assert_eq!(s.to_string(), "{a, b}");
    }

    #[test]
    fn ordering_and_equality() {
        assert_eq!(state!["a", "b"], state!["b", "a"]);
        assert!(state!["a"] < state!["a", "b"]);
    }
}
