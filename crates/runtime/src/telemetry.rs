//! The monitor's instrument panel: every [`rvmtl_obs`] instrument the
//! streaming runtime records into, in one struct.
//!
//! The split of responsibilities (see the crate documentation's
//! "Observability" section): *timing* instruments — histograms of wall-clock
//! spans, the pipeline busy/wall counters, the flight recorder's timestamps —
//! live here and exist only when [`crate::StreamConfig::with_telemetry`]
//! enabled them; with telemetry off every handle is a no-op and each
//! instrumented call site costs one never-taken branch. *Count-shape* metrics
//! (segments processed, GC epochs, cache hits, pending obligations) are
//! bridged from always-on monitor state at snapshot time by
//! [`crate::StreamMonitor::telemetry`] and cost nothing extra at all.

use rvmtl_obs::{Counter, FlightRecorder, Histogram, Registry};

/// All registry-resident instruments of one [`crate::StreamMonitor`].
pub(crate) struct RuntimeMetrics {
    /// The registry the instruments were minted from (snapshotted by
    /// [`crate::StreamMonitor::telemetry`]).
    pub(crate) registry: Registry,
    /// The lifecycle flight recorder. Recorded into **only from the
    /// monitor's own thread at deterministic points**, so the kind sequence
    /// is identical across the sequential and pipelined execution paths.
    pub(crate) flight: FlightRecorder,
    /// Wall time of one segment through the sequential solver stage (ns).
    pub(crate) segment_solve: Histogram,
    /// Wall time of one drained batch through either execution path (ns).
    pub(crate) batch_solve: Histogram,
    /// Per-segment close→solved latency (ns): the time between "this
    /// segment can never change again" and "its verdict contribution is
    /// visible".
    pub(crate) event_to_verdict: Histogram,
    /// Per-query verdict latency (ns), one labelled histogram per query:
    /// close of the newest segment a query observed in a batch → that
    /// query's pending set updated. Indexed by [`crate::QueryId::index`].
    pub(crate) verdict_latency: Vec<Histogram>,
    /// GC epoch pause (ns): arena compaction plus worker-arena reset.
    pub(crate) gc_pause: Histogram,
    /// Checkpoint serialize + write + fsync time (ns).
    pub(crate) checkpoint_write: Histogram,
    /// Wall time of one `(query, segment, pending formula)` work item (ns),
    /// recorded on both execution paths.
    pub(crate) work_item: Histogram,
    /// Wall time of one same-segment *batch* of work items drained by a
    /// pipeline worker and solved through a single solver instance (ns) —
    /// the unit the data-oriented solver core is fed in.
    pub(crate) segment_batch: Histogram,
    /// Total nanoseconds pipeline workers spent solving items (summed across
    /// workers; compare against `pipeline_wall × workers` for idle time).
    pub(crate) pipeline_busy: Counter,
    /// Total wall nanoseconds spent inside pipelined batch runs.
    pub(crate) pipeline_wall: Counter,
}

impl RuntimeMetrics {
    /// Builds the panel: live instruments when `enabled`, no-ops otherwise.
    pub(crate) fn new(enabled: bool, flight_capacity: usize) -> Self {
        let registry = if enabled {
            Registry::new()
        } else {
            Registry::no_op()
        };
        let flight = if enabled {
            FlightRecorder::with_capacity(flight_capacity.max(1))
        } else {
            FlightRecorder::no_op()
        };
        RuntimeMetrics {
            segment_solve: registry.histogram("rvmtl_segment_solve_nanos", ""),
            batch_solve: registry.histogram("rvmtl_batch_solve_nanos", ""),
            event_to_verdict: registry.histogram("rvmtl_event_to_verdict_nanos", ""),
            verdict_latency: Vec::new(),
            gc_pause: registry.histogram("rvmtl_gc_pause_nanos", ""),
            checkpoint_write: registry.histogram("rvmtl_checkpoint_write_nanos", ""),
            work_item: registry.histogram("rvmtl_work_item_nanos", ""),
            segment_batch: registry.histogram("rvmtl_pipeline_segment_batch_nanos", ""),
            pipeline_busy: registry.counter("rvmtl_pipeline_busy_nanos_total", ""),
            pipeline_wall: registry.counter("rvmtl_pipeline_wall_nanos_total", ""),
            registry,
            flight,
        }
    }

    /// Whether the timing instruments record anywhere.
    pub(crate) fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// Mints the per-query verdict-latency histogram for the next query
    /// (called by [`crate::StreamMonitor::add_query`] in registration
    /// order, so indices stay aligned with [`crate::QueryId::index`]).
    pub(crate) fn register_query(&mut self) {
        let index = self.verdict_latency.len();
        self.verdict_latency.push(
            self.registry
                .histogram("rvmtl_verdict_latency_nanos", &format!("query=\"{index}\"")),
        );
    }
}

/// The pipeline executor's slice of the panel (handed into
/// [`crate::pipeline::run_pipeline`]; all no-ops when telemetry is off).
pub(crate) struct PipelineTelemetry {
    /// Per-work-item wall time (ns).
    pub(crate) work_item: Histogram,
    /// Per same-segment batch wall time (ns).
    pub(crate) segment_batch: Histogram,
    /// Summed worker solve nanoseconds.
    pub(crate) busy: Counter,
}

impl RuntimeMetrics {
    /// The executor's slice of the panel.
    pub(crate) fn pipeline_slice(&self) -> PipelineTelemetry {
        PipelineTelemetry {
            work_item: self.work_item.clone(),
            segment_batch: self.segment_batch.clone(),
            busy: self.pipeline_busy.clone(),
        }
    }
}
