//! Epoch checkpoints: the container format, crash-safe file IO, and the
//! monitor-state codec on top of [`rvmtl_mtl::snapshot`].
//!
//! See the crate documentation's "Checkpoint format & recovery semantics"
//! section for the architecture, and `docs/PROTOCOL.md` at the repository
//! root for the normative byte-level specification of both this container
//! and the `rvmtl-wire` frame stream that shares its codec grammar (the
//! spec is sufficient to re-implement either without reading this source).
//! This module owns three layers:
//!
//! 1. **Envelope** — `magic | version | payload length | CRC-32 | payload`,
//!    sealed by [`seal`] and opened (with full validation) by [`open`];
//! 2. **File IO** — [`write_epoch`] writes to a temp file, fsyncs, and
//!    atomically renames into `epoch-NNNNNNNNNNNN.ckpt`, retaining the
//!    previous epoch as the fallback; [`epochs_newest_first`] lists what a
//!    restore may try;
//! 3. **Monitor image codec** — `encode_monitor` / `decode_monitor`
//!    serialize the full [`crate::StreamMonitor`] state: segmenter image,
//!    query-spanning arena, per-query pending sets and fault provenance,
//!    and the runtime counters.
//!
//! Everything here is deliberately infallible on encode and paranoid on
//! decode: any byte-level damage surfaces as a [`CheckpointError`], never a
//! panic, and [`crate::StreamMonitor::restore_latest`] falls back to the
//! previous epoch when the newest is damaged.

use rvmtl_distrib::{FaultCounters, FaultPolicy, SegmenterState};
use rvmtl_mtl::snapshot::{
    crc32, decode_arena, decode_formula, decode_state, encode_arena, encode_formula, encode_state,
    SnapshotError, SnapshotReader, SnapshotWriter,
};
use rvmtl_mtl::{Formula, FormulaId, Interner};
use rvmtl_solver::SolverStats;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// First bytes of every checkpoint file.
pub const MAGIC: &[u8; 8] = b"RVMTLCKP";

/// Version of the checkpoint container and payload format.
pub const FORMAT_VERSION: u32 = 2;

/// Number of epoch files retained on disk (the newest plus its fallback).
pub const RETAINED_EPOCHS: usize = 2;

/// Error produced when a checkpoint cannot be written, read, or decoded.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Filesystem failure while writing or reading an epoch.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The container version is not one this build understands.
    UnsupportedVersion(u32),
    /// The payload checksum does not match — the file was corrupted.
    ChecksumMismatch {
        /// Checksum recorded in the container.
        expected: u32,
        /// Checksum of the payload as read.
        found: u32,
    },
    /// The file ended before a field's bytes (crash mid-write).
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A structurally invalid payload field.
    Malformed(String),
    /// The snapshot is valid but disagrees with the restoring configuration
    /// (segment length or fault policy): replaying into it would change
    /// verdicts, so the restore is refused.
    ConfigMismatch(String),
    /// No (readable) checkpoint exists in the directory.
    NoCheckpoint,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint IO error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: expected {expected:#010x}, found {found:#010x}"
            ),
            CheckpointError::Truncated { needed, available } => write!(
                f,
                "checkpoint truncated: needed {needed} more bytes, {available} available"
            ),
            CheckpointError::Malformed(reason) => write!(f, "malformed checkpoint: {reason}"),
            CheckpointError::ConfigMismatch(reason) => {
                write!(f, "checkpoint/config mismatch: {reason}")
            }
            CheckpointError::NoCheckpoint => write!(f, "no checkpoint found"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<SnapshotError> for CheckpointError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Truncated { needed, available } => {
                CheckpointError::Truncated { needed, available }
            }
            SnapshotError::Malformed(reason) => CheckpointError::Malformed(reason),
            other => CheckpointError::Malformed(other.to_string()),
        }
    }
}

fn malformed(reason: impl Into<String>) -> CheckpointError {
    CheckpointError::Malformed(reason.into())
}

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

/// Wraps a payload in the checkpoint container:
/// `magic | version | payload length (u64) | CRC-32 | payload`.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 16 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates the container and returns the checksummed payload.
pub fn open(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    let header = MAGIC.len() + 4 + 8 + 4;
    if bytes.len() < MAGIC.len() {
        return Err(CheckpointError::Truncated {
            needed: header,
            available: bytes.len(),
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes.len() < header {
        return Err(CheckpointError::Truncated {
            needed: header,
            available: bytes.len(),
        });
    }
    let mut word4 = [0u8; 4];
    word4.copy_from_slice(&bytes[8..12]);
    let version = u32::from_le_bytes(word4);
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let mut word8 = [0u8; 8];
    word8.copy_from_slice(&bytes[12..20]);
    let len = u64::from_le_bytes(word8);
    word4.copy_from_slice(&bytes[20..24]);
    let expected = u32::from_le_bytes(word4);
    let payload = &bytes[header..];
    let len = usize::try_from(len).map_err(|_| malformed("payload length exceeds usize"))?;
    if payload.len() < len {
        return Err(CheckpointError::Truncated {
            needed: len,
            available: payload.len(),
        });
    }
    if payload.len() > len {
        return Err(malformed(format!(
            "{} bytes beyond the declared payload",
            payload.len() - len
        )));
    }
    let found = crc32(payload);
    if found != expected {
        return Err(CheckpointError::ChecksumMismatch { expected, found });
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// File IO
// ---------------------------------------------------------------------------

/// Path of the epoch file for `epoch` inside `dir` (zero-padded so the
/// lexicographic order of file names is the numeric order of epochs).
pub fn epoch_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("epoch-{epoch:012}.ckpt"))
}

fn parse_epoch_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("epoch-")?.strip_suffix(".ckpt")?;
    if digits.len() != 12 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Epoch numbers present in `dir`, newest first — the order a restore tries
/// them in. IO errors listing the directory surface; unreadable or foreign
/// entries are skipped.
pub fn epochs_newest_first(dir: &Path) -> Result<Vec<u64>, CheckpointError> {
    let mut epochs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(epoch) = entry.file_name().to_str().and_then(parse_epoch_name) {
            epochs.push(epoch);
        }
    }
    epochs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(epochs)
}

/// Crash-safely writes `bytes` as the epoch-`epoch` checkpoint in `dir`:
/// write to a temp file, fsync it, atomically rename into place, then fsync
/// the directory (best-effort) and prune all but the newest
/// [`RETAINED_EPOCHS`] epochs. A crash at any point leaves either the
/// previous epoch set or the new one — never a half-written visible file.
pub fn write_epoch(dir: &Path, epoch: u64, bytes: &[u8]) -> Result<PathBuf, CheckpointError> {
    fs::create_dir_all(dir)?;
    let final_path = epoch_path(dir, epoch);
    let tmp_path = final_path.with_extension("ckpt.tmp");
    {
        let mut tmp = fs::File::create(&tmp_path)?;
        tmp.write_all(bytes)?;
        tmp.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Make the rename durable. Directory fsync is not supported everywhere;
    // failure here weakens durability, not consistency, so it is tolerated.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    // Prune old epochs (best-effort: a leftover file only wastes space).
    if let Ok(epochs) = epochs_newest_first(dir) {
        for &old in epochs.iter().skip(RETAINED_EPOCHS) {
            let _ = fs::remove_file(epoch_path(dir, old));
        }
    }
    Ok(final_path)
}

// ---------------------------------------------------------------------------
// Monitor image codec
// ---------------------------------------------------------------------------

/// Per-query state as captured at a checkpoint.
pub(crate) struct QueryImage {
    /// The original specification.
    pub root: Formula,
    /// Pending obligations as `(shift, arena snapshot index)` — translated
    /// through the decode remap table on restore.
    pub pending: Vec<(u64, u32)>,
    /// The query's anchor boundary.
    pub anchored_at: u64,
    /// Faults absorbed in windows this query observes.
    pub faults: FaultCounters,
    /// Work items lost to panicking solver stages.
    pub panics: u64,
    /// Obligations those lost items carried.
    pub lost: Vec<Formula>,
}

/// Monitor-wide counters as captured at a checkpoint.
pub(crate) struct MonitorCounters {
    pub segments_processed: u64,
    pub gc_runs: u64,
    pub rejected: u64,
    pub worker_panics: u64,
    pub backpressure_stalls: u64,
    pub checkpoint_failures: u64,
    pub stats: SolverStats,
}

/// The decoded image of a checkpointed monitor.
pub(crate) struct MonitorImage {
    pub segmenter: SegmenterState,
    pub arena: Interner,
    /// Snapshot node index → id in `arena` (remap-on-restore).
    pub node_map: Vec<FormulaId>,
    pub queries: Vec<QueryImage>,
    pub counters: MonitorCounters,
}

fn encode_policy(w: &mut SnapshotWriter, policy: FaultPolicy) {
    w.put_u8(match policy {
        FaultPolicy::Strict => 0,
        FaultPolicy::Dedup => 1,
        FaultPolicy::BestEffort => 2,
    });
}

fn decode_policy(r: &mut SnapshotReader<'_>) -> Result<FaultPolicy, SnapshotError> {
    match r.u8()? {
        0 => Ok(FaultPolicy::Strict),
        1 => Ok(FaultPolicy::Dedup),
        2 => Ok(FaultPolicy::BestEffort),
        other => Err(SnapshotError::Malformed(format!(
            "fault policy byte {other:#04x}"
        ))),
    }
}

fn encode_fault_counters(w: &mut SnapshotWriter, c: &FaultCounters) {
    w.put_u64(c.deduped);
    w.put_u64(c.dropped);
    w.put_u64(c.late_beyond_epsilon);
}

fn decode_fault_counters(r: &mut SnapshotReader<'_>) -> Result<FaultCounters, SnapshotError> {
    Ok(FaultCounters {
        deduped: r.u64()?,
        dropped: r.u64()?,
        late_beyond_epsilon: r.u64()?,
    })
}

fn put_usize(w: &mut SnapshotWriter, v: usize) {
    w.put_u64(v as u64);
}

fn take_usize(r: &mut SnapshotReader<'_>) -> Result<usize, SnapshotError> {
    let v = r.u64()?;
    usize::try_from(v).map_err(|_| SnapshotError::Malformed(format!("counter {v} exceeds usize")))
}

fn encode_segmenter(w: &mut SnapshotWriter, s: &SegmenterState) {
    put_usize(w, s.process_count);
    w.put_u64(s.epsilon);
    w.put_u64(s.segment_length);
    w.put_u64(s.open_base);
    for clock in &s.clocks {
        match clock {
            Some(t) => {
                w.put_bool(true);
                w.put_u64(*t);
            }
            None => w.put_bool(false),
        }
    }
    for state in &s.carried {
        encode_state(w, state);
    }
    for buf in &s.buffered {
        w.put_len(buf.len());
        for (t, state) in buf {
            w.put_u64(*t);
            encode_state(w, state);
        }
    }
    w.put_u64(s.max_event_time);
    w.put_bool(s.any_event);
    w.put_bool(s.finished);
    encode_policy(w, s.policy);
    encode_fault_counters(w, &s.faults);
}

fn decode_segmenter(r: &mut SnapshotReader<'_>) -> Result<SegmenterState, SnapshotError> {
    let process_count = take_usize(r)?;
    // One bool byte per process at minimum; rejects absurd counts before any
    // allocation below.
    if process_count == 0 || process_count > r.remaining() {
        return Err(SnapshotError::Malformed(format!(
            "segmenter claims {process_count} processes"
        )));
    }
    let epsilon = r.u64()?;
    let segment_length = r.u64()?;
    let open_base = r.u64()?;
    let mut clocks = Vec::with_capacity(process_count);
    for _ in 0..process_count {
        clocks.push(if r.bool()? { Some(r.u64()?) } else { None });
    }
    let mut carried = Vec::with_capacity(process_count);
    for _ in 0..process_count {
        carried.push(decode_state(r)?);
    }
    let mut buffered = Vec::with_capacity(process_count);
    for _ in 0..process_count {
        let count = r.len(12)?;
        let mut buf = Vec::with_capacity(count);
        for _ in 0..count {
            let t = r.u64()?;
            buf.push((t, decode_state(r)?));
        }
        buffered.push(buf);
    }
    Ok(SegmenterState {
        process_count,
        epsilon,
        segment_length,
        open_base,
        clocks,
        carried,
        buffered,
        max_event_time: r.u64()?,
        any_event: r.bool()?,
        finished: r.bool()?,
        policy: decode_policy(r)?,
        faults: decode_fault_counters(r)?,
    })
}

fn encode_stats(w: &mut SnapshotWriter, stats: &SolverStats) {
    // Field-list driven (declaration order), so a counter added to
    // `SolverStats` is serialised without touching this codec — the format
    // version gates compatibility.
    stats.for_each_field(|_, value| put_usize(w, value));
}

fn decode_stats(r: &mut SnapshotReader<'_>) -> Result<SolverStats, SnapshotError> {
    let mut stats = SolverStats::default();
    let mut failure = None;
    stats.for_each_field_mut(|_, value| {
        if failure.is_none() {
            match take_usize(r) {
                Ok(v) => *value = v,
                Err(e) => failure = Some(e),
            }
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(stats),
    }
}

fn encode_query(w: &mut SnapshotWriter, q: &QueryImage) {
    encode_formula(w, &q.root);
    w.put_len(q.pending.len());
    for &(shift, index) in &q.pending {
        w.put_u64(shift);
        w.put_u32(index);
    }
    w.put_u64(q.anchored_at);
    encode_fault_counters(w, &q.faults);
    w.put_u64(q.panics);
    w.put_len(q.lost.len());
    for phi in &q.lost {
        encode_formula(w, phi);
    }
}

fn decode_query(
    r: &mut SnapshotReader<'_>,
    arena_nodes: usize,
) -> Result<QueryImage, SnapshotError> {
    let root = decode_formula(r)?;
    let count = r.len(12)?;
    let mut pending = Vec::with_capacity(count);
    for _ in 0..count {
        let shift = r.u64()?;
        let index = r.u32()?;
        if index as usize >= arena_nodes {
            return Err(SnapshotError::Malformed(format!(
                "pending obligation refers to node {index} of a {arena_nodes}-node arena"
            )));
        }
        pending.push((shift, index));
    }
    let anchored_at = r.u64()?;
    let faults = decode_fault_counters(r)?;
    let panics = r.u64()?;
    let lost_count = r.len(1)?;
    let mut lost = Vec::with_capacity(lost_count);
    for _ in 0..lost_count {
        lost.push(decode_formula(r)?);
    }
    Ok(QueryImage {
        root,
        pending,
        anchored_at,
        faults,
        panics,
        lost,
    })
}

/// Serializes the full monitor state into a sealed checkpoint.
pub(crate) fn encode_monitor(
    segmenter: &SegmenterState,
    arena: &Interner,
    queries: &[QueryImage],
    counters: &MonitorCounters,
) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    encode_segmenter(&mut w, segmenter);
    encode_arena(&mut w, arena);
    w.put_len(queries.len());
    for q in queries {
        encode_query(&mut w, q);
    }
    w.put_u64(counters.segments_processed);
    w.put_u64(counters.gc_runs);
    w.put_u64(counters.rejected);
    w.put_u64(counters.worker_panics);
    w.put_u64(counters.backpressure_stalls);
    w.put_u64(counters.checkpoint_failures);
    encode_stats(&mut w, &counters.stats);
    seal(&w.into_bytes())
}

/// Opens and decodes a sealed checkpoint into a [`MonitorImage`].
pub(crate) fn decode_monitor(bytes: &[u8]) -> Result<MonitorImage, CheckpointError> {
    let payload = open(bytes)?;
    let mut r = SnapshotReader::new(payload);
    let segmenter = decode_segmenter(&mut r)?;
    let (arena, node_map) = decode_arena(&mut r)?;
    let query_count = r.len(1)?;
    let mut queries = Vec::with_capacity(query_count);
    for _ in 0..query_count {
        queries.push(decode_query(&mut r, node_map.len())?);
    }
    let counters = MonitorCounters {
        segments_processed: r.u64()?,
        gc_runs: r.u64()?,
        rejected: r.u64()?,
        worker_panics: r.u64()?,
        backpressure_stalls: r.u64()?,
        checkpoint_failures: r.u64()?,
        stats: decode_stats(&mut r)?,
    };
    r.expect_end()?;
    Ok(MonitorImage {
        segmenter,
        arena,
        node_map,
        queries,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip_and_validation() {
        let payload = b"the payload".to_vec();
        let sealed = seal(&payload);
        assert_eq!(open(&sealed).unwrap(), &payload[..]);

        // Bad magic.
        let mut bad = sealed.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(open(&bad), Err(CheckpointError::BadMagic)));

        // Unsupported version.
        let mut bad = sealed.clone();
        bad[8] = 0xFF;
        assert!(matches!(
            open(&bad),
            Err(CheckpointError::UnsupportedVersion(_))
        ));

        // Flipped payload byte -> checksum mismatch.
        let mut bad = sealed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            open(&bad),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));

        // Truncation at any prefix is caught by the envelope alone.
        for cut in 0..sealed.len() {
            assert!(open(&sealed[..cut]).is_err(), "cut at {cut}");
        }

        // Trailing garbage is rejected.
        let mut bad = sealed.clone();
        bad.push(0);
        assert!(matches!(open(&bad), Err(CheckpointError::Malformed(_))));
    }

    #[test]
    fn epoch_names_sort_numerically() {
        assert_eq!(parse_epoch_name("epoch-000000000042.ckpt"), Some(42));
        assert_eq!(parse_epoch_name("epoch-000000000042.ckpt.tmp"), None);
        assert_eq!(parse_epoch_name("epoch-42.ckpt"), None);
        assert_eq!(parse_epoch_name("other.ckpt"), None);
        let dir = Path::new("/tmp");
        assert!(epoch_path(dir, 7)
            .to_string_lossy()
            .ends_with("epoch-000000000007.ckpt"));
    }
}
