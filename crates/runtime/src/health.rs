//! The runtime health surface: one counter per degradation event class.

use std::fmt;

/// Cumulative health counters of a [`crate::StreamMonitor`].
///
/// Every way the runtime deviates from the exact, fault-free path is counted
/// exactly once here, so an operator (or a test) can assert `is_healthy()`
/// instead of re-deriving the invariants. The per-query slice of the same
/// information — restricted to the windows that could have affected one
/// query's verdicts — is the [`crate::Integrity`] tag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeHealth {
    /// Events and heartbeats rejected with a [`crate::StreamError`] (the
    /// caller saw the error; the monitor state was left unchanged).
    pub rejected: u64,
    /// Exact duplicate events absorbed under
    /// [`crate::FaultPolicy::Dedup`] or [`crate::FaultPolicy::BestEffort`].
    pub deduped: u64,
    /// Out-of-order events dropped under [`crate::FaultPolicy::BestEffort`].
    pub dropped: u64,
    /// Events beyond the closed segment boundary (late beyond `ε`) dropped
    /// under [`crate::FaultPolicy::BestEffort`].
    pub late_beyond_epsilon: u64,
    /// Work items lost to a panicking solver stage; each lost item degrades
    /// exactly one query.
    pub worker_panics: u64,
    /// Times ingestion forced a queue flush because the closed-segment queue
    /// hit [`crate::StreamConfig::max_queued_segments`] before the configured
    /// flush depth.
    pub backpressure_stalls: u64,
    /// Automatic epoch checkpoints that failed to write (the monitor kept
    /// running; the previous epoch remains the recovery point).
    pub checkpoint_failures: u64,
    /// Automatic epoch checkpoints successfully written and fsynced — the
    /// one *success* counter on this surface: it tells an operator the
    /// recovery point is actually advancing, not merely that writes aren't
    /// failing (a monitor that never attempts a checkpoint also has zero
    /// failures).
    pub checkpoints_written: u64,
}

impl RuntimeHealth {
    /// Returns `true` when every *degradation* counter is zero — the stream
    /// so far was ingested exactly, in order, and solved to completion
    /// without backpressure interventions. `checkpoints_written` is a
    /// success counter and deliberately excluded: a monitor that has safely
    /// checkpointed ten epochs is healthier, not less healthy.
    pub fn is_healthy(&self) -> bool {
        self.rejected == 0
            && self.deduped == 0
            && self.dropped == 0
            && self.late_beyond_epsilon == 0
            && self.worker_panics == 0
            && self.backpressure_stalls == 0
            && self.checkpoint_failures == 0
    }

    /// Sum of the counters that degrade verdict evidence (everything except
    /// `rejected`, `backpressure_stalls` and `checkpoint_failures`, which
    /// leave verdicts exact).
    pub fn degradations(&self) -> u64 {
        self.deduped + self.dropped + self.late_beyond_epsilon + self.worker_panics
    }
}

impl fmt::Display for RuntimeHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rejected {}, deduped {}, dropped {}, late beyond ε {}, worker panics {}, backpressure stalls {}, checkpoint failures {}, checkpoints written {}",
            self.rejected,
            self.deduped,
            self.dropped,
            self.late_beyond_epsilon,
            self.worker_panics,
            self.backpressure_stalls,
            self.checkpoint_failures,
            self.checkpoints_written
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_is_all_zero_and_degradations_exclude_rejections() {
        let mut health = RuntimeHealth::default();
        assert!(health.is_healthy());
        assert_eq!(health.degradations(), 0);
        health.checkpoints_written = 7;
        assert!(
            health.is_healthy(),
            "successful checkpoints are not a degradation"
        );
        health.rejected = 3;
        health.backpressure_stalls = 2;
        assert!(!health.is_healthy());
        assert_eq!(health.degradations(), 0, "rejections leave verdicts exact");
        health.deduped = 1;
        health.dropped = 2;
        health.late_beyond_epsilon = 3;
        health.worker_panics = 4;
        health.checkpoint_failures = 5;
        assert_eq!(
            health.degradations(),
            10,
            "checkpoints leave verdicts exact"
        );
        let text = health.to_string();
        for needle in [
            "rejected 3",
            "deduped 1",
            "panics 4",
            "stalls 2",
            "checkpoint failures 5",
            "checkpoints written 7",
        ] {
            assert!(text.contains(needle), "{text:?} must contain {needle:?}");
        }
    }
}
