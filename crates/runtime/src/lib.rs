//! Streaming monitoring runtime: online verification of live per-process
//! event streams, at production cadence.
//!
//! The paper's monitor (Sec. V-C) consumes a *complete* distributed
//! computation. Its target deployment — live cross-chain protocols — instead
//! delivers one event stream per process under an ε-skew bound, and a
//! monitoring service watches many specifications at once, indefinitely.
//! This crate turns the batch monitor into that service. Architecture, in
//! stream order:
//!
//! # 1. Incremental segmentation (the watermark rule)
//!
//! Events enter a [`rvmtl_distrib::IncrementalSegmenter`]: per-process
//! streams in non-decreasing local-time order, interleaved arbitrarily
//! across processes. The *watermark* is `min_p clock_p − ε` over the largest
//! local time heard from each process (events or
//! [`StreamMonitor::heartbeat`] beacons). A segment `[lo, hi)` closes — is
//! guaranteed to never receive another event — once the watermark passes
//! `hi`; it is then materialised with exactly the batch segmenter's boundary
//! rules (base time `lo`, horizon `hi`, carried per-process frontier
//! states), so the stream-produced partition is byte-for-byte the partition
//! [`rvmtl_distrib::segment_at_boundaries`] would produce, and the verdicts
//! are *identical* to batch monitoring — the differential suite in
//! `tests/differential.rs` pins this on the synthetic corpus and the
//! protocol drivers.
//!
//! # 2. Pipelined segment stages (same-segment batching)
//!
//! Closed segments buffer up to the configured flush depth and are processed
//! as one batch by a pool of scoped worker threads (`std::thread::scope`).
//! The unit of work is one `(query, segment, pending formula)` triple, but
//! workers *drain and solve in same-segment batches*: a worker pops an item
//! and takes every queued item of the same segment along with it (capped to
//! a fair share under contention), progressing the whole batch through
//! **one** [`rvmtl_solver::SegmentSolver`] — the segment's cache slot is
//! taken and merged back once per batch, and the solver's pooled work-stack
//! frames and probe scratch stay warm across it. Each distinct rewritten
//! formula is enqueued immediately as a work item for the next segment, so
//! segment `k + 1` starts progressing a formula **as soon as stage `k`
//! emits it** — there is no barrier between segments, and idle cores pick
//! up whatever stage has work. Per-`(segment, query)` dedup sets keep the
//! pending-set semantics identical to the sequential union; a per-segment
//! result cache additionally collapses *cross-query* duplicates (several
//! queries carrying the same canonical pending obligation solve the segment
//! once), and the solver's per-segment memo/feasibility caches
//! ([`rvmtl_solver::SegmentCaches`]) live in one slot per segment, taken
//! and merged back per batch instead of rebuilt per formula. A query
//! registered mid-stream ([`StreamMonitor::add_query`] after segments
//! closed) is re-anchored at the current watermark boundary and enters the
//! pipeline at that boundary's stage.
//!
//! Inside each batch the solver explores with the data-oriented work-stack
//! engine ([`rvmtl_solver::ExploreEngine::WorkStack`], the default): an
//! explicit frontier over flat batches with batched one/gap cache probes
//! and staged memo slots. The reference recursion
//! ([`rvmtl_solver::ExploreEngine::Reference`]) is retained behind the same
//! trait for A/B equivalence runs (`bench_snapshot --abtest`); both engines
//! execute the identical search, so the choice never shows in verdicts or
//! search-shape counters.
//!
//! # 3. One arena, shared — ids remapped at stage boundaries
//!
//! Workers intern rewritten formulas into one
//! [`rvmtl_mtl::ShardedInterner`] — the arena is split into hash-addressed
//! shards, each behind its own lock, so worker threads intern and hit the
//! `one_cache`/`gap_cache` progression memos concurrently instead of
//! rebuilding a throwaway interner per formula (the pre-runtime parallel
//! path's design, deleted with this crate). Between batches the pending ids
//! are remapped into the exclusive query-spanning [`rvmtl_mtl::Interner`]
//! (structural re-interning; both arenas hash-cons, so this is a lookup per
//! node) where they live between stages and across the monitor's lifetime.
//!
//! Pending sets are held in *shift-normal form*
//! ([`rvmtl_mtl::ShiftedId`]): an obligation is stored as its canonical
//! residual plus a time offset, so obligations that are exact
//! time-translates of each other — across segments and across queries —
//! share one arena node, and the solver's zone-canonical memoisation fires
//! across the whole stream. Finalisation resolves through the shift
//! (empty-future verdicts depend only on operator kinds, which translation
//! preserves).
//!
//! # 4. GC epochs (bounded memory forever)
//!
//! Every `gc_interval` processed segments the runtime runs
//! [`rvmtl_mtl::Interner::compact`]: a mark-and-renumber pass over the dense
//! `u32` formula ids rooted at the *canonical residuals* of the live pending
//! sets (their materialised translates are rebuilt on demand). Dead nodes,
//! dead observation states and progression-cache entries with a dead
//! endpoint are reclaimed; surviving entries keep their warmth. The worker
//! arena is reset on the same epochs. Long-running monitoring therefore
//! holds a bounded arena regardless of stream length — pinned by the GC
//! tests. Backpressure on the closed-segment queue
//! ([`StreamConfig::max_queued_segments`]) bounds the ingestion side the
//! same way.
//!
//! # 5. Fault policies and degradation semantics
//!
//! Live feeds misbehave: retried deliveries duplicate events, reorderings
//! surface events late, crashed relayers replay history. The
//! [`FaultPolicy`] configured via [`StreamConfig::fault_policy`] defines
//! what ingestion does with each fault class — and every deviation from the
//! exact path is *counted*, never silent:
//!
//! | Fault at ingestion                        | `Strict` (default)      | `Dedup`                  | `BestEffort`                     |
//! |-------------------------------------------|-------------------------|--------------------------|----------------------------------|
//! | Exact duplicate of a buffered event       | error (`Duplicate`)     | absorbed, counted        | absorbed, counted                |
//! | Same process and time, *different* state  | accepted (simultaneity) | error (`ConflictingState`) | error (`ConflictingState`)     |
//! | Out of order (behind the process frontier)| error (`OutOfOrder`)    | error (`OutOfOrder`)     | dropped, counted                 |
//! | Before the closed segment boundary        | error (`BeyondClosedBoundary`) | error (`BeyondClosedBoundary`) | dropped, counted (`late_beyond_epsilon`) |
//! | Unknown process / finished stream         | error                   | error                    | error                            |
//!
//! A rejected call leaves the monitor unchanged (and increments
//! [`RuntimeHealth::rejected`]); an absorbed fault leaves the *stream state*
//! unchanged but degrades the evidence behind the verdicts of every query
//! observing that window. The per-query [`Integrity`] tag
//! ([`StreamReport::integrity`], [`StreamMonitor::current_integrity`]) makes
//! that explicit: `Exact` unless something was absorbed or lost, `Degraded`
//! with the exact counters otherwise. Under `Dedup`, a duplicated stream
//! produces verdicts *identical* to the clean stream; under `BestEffort`,
//! verdicts equal those of the surviving sub-stream — both pinned by the
//! fault-injection differential suite in `tests/faults.rs`, driven by the
//! deterministic seeded [`FaultInjector`].
//!
//! Solver stages are *panic-isolated*: each `(query, segment, pending
//! formula)` work item runs under `catch_unwind` on both execution paths, so
//! a panicking obligation is lost alone — it is reported as an inconclusive
//! verdict, its query is tagged `Degraded { worker_panics, .. }`, and every
//! other obligation and query proceeds exactly. Shared-state locks recover
//! from poisoning (the guarded structures are consistent at every panic
//! point); the global [`RuntimeHealth`] surface
//! ([`StreamMonitor::health`]) counts rejections, absorptions, lost items
//! and backpressure stalls in one place.
//!
//! # 6. Checkpoint format & recovery semantics
//!
//! A monitor is a single point of total state loss: without snapshots, a
//! crash forces replaying the entire stream. Epoch checkpoints bound
//! recovery independently of stream length. At GC boundaries — where the
//! segment queue is drained and the arena freshly compacted — the monitor
//! can serialize its complete state ([`StreamMonitor::checkpoint_bytes`],
//! [`StreamMonitor::write_checkpoint`], or automatically via
//! [`StreamConfig::checkpoint`]): the segmenter image (per-process clocks,
//! carried frontier states, buffered open-window events, watermark inputs,
//! fault policy and counters), the query-spanning arena (node table, fused
//! metadata, `ever_shifted` watermark), each query's shift-normal pending
//! set with its anchor and fault provenance, and the runtime counters.
//!
//! The format is a hand-rolled length-prefixed little-endian encoding
//! ([`rvmtl_mtl::snapshot`]) inside a checksummed container:
//! `magic | version | payload length | CRC-32 | payload` — versioned so it
//! can seed the fleet wire format later. **Epoch layout**: files are named
//! `epoch-NNNNNNNNNNNN.ckpt` (zero-padded segment count, so lexicographic
//! and numeric order agree) and the newest two epochs are retained.
//! **Atomicity**: writes go to a temp file, fsync, then atomically rename —
//! a crash mid-write leaves the previous epoch set intact, never a
//! half-written visible file. **Restores are paranoid**: magic/version/CRC
//! validation, every length prefix bounds-checked, arena nodes re-interned
//! through the canonicalising constructors and cross-checked against the
//! stored metadata (*remap on restore* — pending ids translate through the
//! snapshot-index → fresh-id table), segmenter invariants revalidated. A
//! damaged snapshot yields a [`CheckpointError`], never a panic, and
//! [`StreamMonitor::restore_latest`] falls back to the previous epoch.
//! **Replay bound**: a restored monitor resumes at the snapshot's
//! watermark; only events after the per-process clocks it carries need to
//! be re-fed (at most one open segment plus `ε` of history per process),
//! and the restart-differential suite in `tests/checkpoint.rs` pins
//! restored runs verdict-identical to uninterrupted ones across both
//! execution paths and all three fault policies.
//!
//! # 7. Observability (telemetry, flight recorder, exposition)
//!
//! A monitoring service is itself a production system, so the runtime
//! carries its own instrument panel ([`rvmtl_obs`] — dependency-free, built
//! for this workspace). Two kinds of signal, deliberately separated:
//!
//! * **Count-shape metrics** — events observed, segments processed, GC
//!   epochs, checkpoints written, solver work counters, progression-cache
//!   hit/miss tallies, arena populations, pending obligations per query.
//!   These are bridged from always-on monitor state at snapshot time by
//!   [`StreamMonitor::telemetry`]: they cost nothing extra, work whether or
//!   not telemetry is enabled, and are **deterministic** — identical across
//!   the sequential and pipelined execution paths and across
//!   checkpoint/restore of the same stream, so the bench pin suite pins
//!   them like any other search-shape figure.
//! * **Timing instruments** — log2-bucketed histograms (p50/p90/p99) of
//!   segment solve time, batch solve time, event-to-verdict latency,
//!   per-query verdict latency, GC pause, checkpoint write time and
//!   per-work-item wall time, plus pipeline busy/wall counters. These exist
//!   only under [`StreamConfig::with_telemetry`]; disabled, every
//!   instrument is a no-op handle and each call site costs one never-taken
//!   branch (the enabled-path overhead budget is ~2% on the bench
//!   workloads). Timing values are wall-clock and are never pinned.
//!
//! The **flight recorder** ([`StreamMonitor::flight_recorder`]) retains the
//! last `flight_capacity` lifecycle events — event observed → segment
//! closed → queued → solve start → solved → GC epoch → checkpoint written —
//! in a ring allocated once and never reallocated. Events are recorded only
//! from the monitor's own thread at deterministic points, so the *kind
//! sequence* is identical across execution paths (timestamps differ);
//! [`FlightRecorder::dump_jsonl`] dumps the window as JSON Lines and
//! [`FlightRecorder::segment_latencies_micros`] derives per-segment
//! close→solved latency from it.
//!
//! Everything exports: [`StreamMonitor::telemetry`] returns a typed
//! [`TelemetrySnapshot`], [`StreamMonitor::telemetry_text`] renders
//! Prometheus-style text exposition (`name{labels} value`, round-trips
//! through [`parse_exposition`]), and the final snapshot rides on
//! [`StreamReport::telemetry`].
//!
//! # Multi-query front end
//!
//! [`StreamMonitor::add_query`] multiplexes any number of formulas over one
//! stream: segmentation, solver per-segment caches (sequential path), the
//! shared worker arena (pipelined path) and GC epochs are all shared;
//! pending sets, verdicts and integrity tags stay per-query.
//!
//! # Wire ingestion
//!
//! [`StreamMonitor::observe`] / [`StreamMonitor::heartbeat`] are plain
//! function calls; the `rvmtl-wire` crate gives the same ingestion surface
//! a byte representation — a versioned, CRC-protected frame stream (format
//! spec: `docs/PROTOCOL.md`) whose `WireSource` adapter drains any
//! `std::io::Read` into a monitor after validating a `Hello` configuration
//! handshake against [`StreamMonitor::process_count`],
//! [`StreamMonitor::epsilon`] and [`StreamMonitor::fault_policy`]. Wire
//! replay is differentially pinned verdict-identical to direct calls;
//! `examples/wire_replay.rs` shows the file-capture round trip.
//!
//! # Example
//!
//! ```
//! use rvmtl_mtl::{parse, state};
//! use rvmtl_runtime::{StreamConfig, StreamMonitor};
//!
//! let mut monitor = StreamMonitor::new(2, 1, StreamConfig::new(5));
//! let q = monitor.add_query(&parse("!apr.redeem(bob) U[0,8) ban.redeem(alice)")?);
//! monitor.observe(0, 1, state!["apr.escrow(alice)"])?;
//! monitor.observe(1, 2, state!["ban.escrow(bob)"])?;
//! monitor.observe(1, 5, state!["ban.redeem(alice)"])?;
//! monitor.observe(0, 6, state!["apr.redeem(bob)"])?;
//! let report = monitor.finish();
//! assert!(report.verdicts[q.index()].may_be_satisfied());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Every lock acquisition and invariant in non-test runtime code must state
// its recovery story instead of unwrapping: panics are supposed to be
// *contained* here, not propagated (see section 5 of the crate docs).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod checkpoint;
mod config;
mod health;
mod monitor;
mod pipeline;
mod telemetry;

pub use checkpoint::CheckpointError;
pub use config::StreamConfig;
pub use health::RuntimeHealth;
pub use monitor::{QueryId, StreamMonitor, StreamReport};
pub use rvmtl_distrib::{
    FaultConfig, FaultCounters, FaultInjector, FaultPolicy, StreamError, StreamEvent,
};
pub use rvmtl_monitor::Integrity;
pub use rvmtl_obs::{
    parse_exposition, CounterSnapshot, ExpositionSample, FlightEvent, FlightKind, FlightRecorder,
    GaugeSnapshot, HistogramSnapshot, TelemetrySnapshot,
};
