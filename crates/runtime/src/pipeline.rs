//! The pipelined segment-stage executor.
//!
//! A *batch* of consecutive closed segments is processed by a pool of scoped
//! worker threads sharing one work queue. The unit of work is one `(query,
//! segment, pending formula)` triple, but workers *drain and solve them in
//! same-segment batches*: a worker pops an item and takes every queued item
//! of the same segment along with it (capped to a fair share under
//! contention), then progresses the whole batch through **one**
//! [`SegmentSolver`] over the batch's shared [`ShardedInterner`] — the
//! segment's cache slot is taken and merged back once per batch instead of
//! once per item, and the solver's pooled work-stack frames and probe
//! scratch stay warm across the batch. Each distinct rewritten formula is
//! enqueued *immediately* as a work item for the next segment — segment
//! `k + 1` starts progressing a formula as soon as stage `k` emits it, while
//! other formulas (of any query) are still inside stage `k`. There is no barrier between stages; the only synchronisation
//! points are the shared queue, the per-`(segment, query)` dedup sets that
//! keep the pending *sets* identical to the sequential union semantics, the
//! per-segment cache slots, and the output sets of the last segment of the
//! batch. A query registered mid-stream enters the pipeline at its anchor
//! boundary's segment instead of stage 0.
//!
//! Two levels of cross-item sharing keep the per-item cost down:
//!
//! * **Per-segment result cache.** Work items are deduplicated per
//!   `(segment, canonical pending formula)` *across queries*: when several
//!   queries carry the same pending obligation (common once shift-normal
//!   pendings collapse time-translates to shared canonical residuals), the
//!   segment is solved once and the later items replay the cached result
//!   set. Statistics are accounted once per distinct item: a replay (or the
//!   loser of two workers racing the same item past the cache miss) adds
//!   nothing.
//! * **Per-segment solver caches.** The solver's memo/feasibility/per-cut
//!   caches ([`SegmentCaches`]) live in one slot per segment: a worker takes
//!   the slot, continues from it, and merges it back, so consecutive work
//!   items of a segment stop rebuilding the memo from scratch — previously
//!   the main single-thread regression of the pipelined path against the
//!   sequential one. Two workers racing the same segment simply build
//!   independent caches and merge afterwards (memo entries are complete,
//!   deterministic contribution sets keyed by mixed-radix cut ranks).
//!
//! Remaining worker-local state is genuinely per-item; the arena — nodes,
//! states and the `one_cache`/`gap_cache` progression memos, which carry the
//! cross-segment reuse — is shared by every worker through `&` handles.

use crate::telemetry::PipelineTelemetry;
use rvmtl_distrib::DistributedComputation;
use rvmtl_mtl::hashing::FxHashMap;
use rvmtl_mtl::{FormulaId, ShardedInterner};
use rvmtl_obs::Stopwatch;
use rvmtl_solver::{SegmentCaches, SegmentSolver, SolverStats};
use std::collections::{BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering from poisoning instead of propagating it.
///
/// Every mutex in this module guards state that is consistent at each await
/// point of the holding critical section (sets and maps are only ever grown,
/// cache slots are take-then-put): a panic inside a critical section cannot
/// leave a half-updated value behind, so clearing the poison flag is sound.
/// The panic itself is contained by the per-item [`catch_unwind`] in
/// [`worker`] and surfaced through [`PipelineOutcome::lost`].
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One unit of work: progress `psi` (of `query`) over `segment`.
struct Item {
    query: usize,
    segment: usize,
    psi: FormulaId,
}

struct PipelineState {
    queue: Mutex<VecDeque<Item>>,
    ready: Condvar,
    /// Items queued or being processed; workers exit when it reaches zero.
    open: AtomicUsize,
    /// Per-`(segment, query)` dedup: a formula is progressed through a
    /// segment once per query, no matter how many stage-`k` branches emitted
    /// it.
    seen: Vec<Vec<Mutex<BTreeSet<FormulaId>>>>,
    /// Per-segment cross-query result cache: pending formula → rewritten
    /// set. The second and later queries carrying the same pending formula
    /// replay the first query's solve.
    results: Vec<Mutex<FxHashMap<FormulaId, BTreeSet<FormulaId>>>>,
    /// Per-segment solver caches, passed from work item to work item.
    caches: Vec<Mutex<Option<SegmentCaches>>>,
    /// Per-query pending set leaving the batch's last segment.
    outs: Vec<Mutex<BTreeSet<FormulaId>>>,
    stats: Mutex<SolverStats>,
    /// `(query, pending formula)` pairs whose solve panicked: the item's
    /// obligation is lost, its rewrites are never fanned out, and the
    /// affected query must be reported as degraded.
    lost: Mutex<Vec<(usize, FormulaId)>>,
}

/// What a pipeline batch produced: per-query pending sets leaving the last
/// segment, aggregated solver statistics, and the work items lost to panics.
pub(crate) struct PipelineOutcome {
    pub(crate) outs: Vec<BTreeSet<FormulaId>>,
    pub(crate) stats: SolverStats,
    /// Obligations whose solve panicked, one `(query, pending formula)` pair
    /// per lost item. Empty on a healthy run.
    pub(crate) lost: Vec<(usize, FormulaId)>,
}

/// Runs `seeds` (per-query pending formulas, interned in `shared`) through
/// the pipeline of `segments` (each with its residual anchor) on `workers`
/// threads. `entries[q]` is the segment index at which query `q` enters the
/// pipeline (`segments.len()` for a query that saw no segment of this batch —
/// its output set is its seed set, returned untouched). Returns the
/// per-query pending sets after the last segment, the aggregated solver
/// statistics, and any work items lost to panics.
pub(crate) fn run_pipeline(
    segments: &[(DistributedComputation, u64)],
    seeds: &[Vec<FormulaId>],
    entries: &[usize],
    shared: &ShardedInterner,
    workers: usize,
    limit: Option<usize>,
    telemetry: &PipelineTelemetry,
) -> PipelineOutcome {
    assert!(!segments.is_empty(), "a pipeline batch needs segments");
    assert_eq!(seeds.len(), entries.len(), "one entry stage per query");
    let state = PipelineState {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        open: AtomicUsize::new(0),
        seen: (0..segments.len())
            .map(|_| {
                (0..seeds.len())
                    .map(|_| Mutex::new(BTreeSet::new()))
                    .collect()
            })
            .collect(),
        results: (0..segments.len())
            .map(|_| Mutex::new(FxHashMap::default()))
            .collect(),
        caches: (0..segments.len()).map(|_| Mutex::new(None)).collect(),
        outs: (0..seeds.len())
            .map(|_| Mutex::new(BTreeSet::new()))
            .collect(),
        stats: Mutex::new(SolverStats::default()),
        lost: Mutex::new(Vec::new()),
    };
    {
        let mut queue = lock_recover(&state.queue);
        for (query, pending) in seeds.iter().enumerate() {
            let entry = entries[query];
            if entry >= segments.len() {
                // The query entered after every segment of this batch: its
                // pending set passes through unchanged.
                lock_recover(&state.outs[query]).extend(pending.iter().copied());
                continue;
            }
            let mut seen = lock_recover(&state.seen[entry][query]);
            for &psi in pending {
                if seen.insert(psi) {
                    state.open.fetch_add(1, Ordering::AcqRel);
                    queue.push_back(Item {
                        query,
                        segment: entry,
                        psi,
                    });
                }
            }
        }
    }

    let workers = workers.max(1);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles
                .push(scope.spawn(|| worker(&state, segments, shared, limit, workers, telemetry)));
        }
        for handle in handles {
            // A solve panic is caught *inside* the worker and recorded in
            // `state.lost`; a join error would mean the queue plumbing itself
            // panicked. Either way the surviving queries' results are intact,
            // so the outcome is returned rather than the panic re-raised.
            let _ = handle.join();
        }
    });

    let outs = state
        .outs
        .into_iter()
        .map(|set| set.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();
    let stats = state
        .stats
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let lost = state
        .lost
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    PipelineOutcome { outs, stats, lost }
}

/// Drains a same-segment *batch* of work items from the queue: the first
/// item plus every queued item of the same segment (relative order
/// preserved), capped so that a contended queue still leaves work for the
/// other workers. Returns `None` when the pipeline has drained.
fn pop_batch(state: &PipelineState, workers: usize) -> Option<Vec<Item>> {
    let mut queue = lock_recover(&state.queue);
    loop {
        if let Some(first) = queue.pop_front() {
            // Leave roughly a worker's fair share behind when siblings are
            // competing for the queue (single-worker runs take everything).
            let cap = (queue.len() + 1).div_ceil(workers.max(1)).max(1);
            let segment = first.segment;
            let mut batch = vec![first];
            let mut keep = VecDeque::with_capacity(queue.len());
            while let Some(item) = queue.pop_front() {
                if batch.len() < cap && item.segment == segment {
                    batch.push(item);
                } else {
                    keep.push_back(item);
                }
            }
            *queue = keep;
            return Some(batch);
        }
        if state.open.load(Ordering::Acquire) == 0 {
            return None;
        }
        queue = state
            .ready
            .wait(queue)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// Solves one same-segment batch of work items through a *single*
/// [`SegmentSolver`]: the segment's cache slot is taken once, every item of
/// the batch progresses through the warm solver (frames, probe scratch and
/// memo stay hot), and the caches are merged back once — instead of one
/// take/solve/merge round-trip per `(query, segment, formula)` item. Items
/// whose pending formula was already solved by another query replay the
/// per-segment result cache without touching the solver.
///
/// Returns one outcome per item, in order: `Some(rewrites)` or `None` for an
/// item whose solve panicked. A panic is isolated to its item — the poisoned
/// solver (and the caches it held) is discarded, exactly like the previous
/// per-item path, and the remaining items of the batch continue on a fresh
/// solver.
fn solve_batch(
    state: &PipelineState,
    segments: &[(DistributedComputation, u64)],
    shared: &ShardedInterner,
    limit: Option<usize>,
    items: &[Item],
    telemetry: &PipelineTelemetry,
) -> Vec<Option<BTreeSet<FormulaId>>> {
    let seg_ix = items[0].segment;
    let (segment, anchor) = &segments[seg_ix];
    let mut outcomes: Vec<Option<BTreeSet<FormulaId>>> = Vec::with_capacity(items.len());
    while outcomes.len() < items.len() {
        // Replay-cache fast path: no solver needed.
        {
            let results = lock_recover(&state.results[seg_ix]);
            while outcomes.len() < items.len() {
                match results.get(&items[outcomes.len()].psi) {
                    Some(cached) => outcomes.push(Some(cached.clone())),
                    None => break,
                }
            }
        }
        if outcomes.len() == items.len() {
            break;
        }
        // Build one solver for the remaining run of the batch.
        let caches = lock_recover(&state.caches[seg_ix])
            .take()
            .unwrap_or_else(|| SegmentCaches::new(segment));
        let mut handle = shared;
        let mut solver = SegmentSolver::with_caches(segment, *anchor, &mut handle, caches);
        if let Some(l) = limit {
            solver = solver.with_limit(l);
        }
        let mut poisoned = false;
        while outcomes.len() < items.len() && !poisoned {
            let item = &items[outcomes.len()];
            if let Some(cached) = lock_recover(&state.results[seg_ix]).get(&item.psi) {
                outcomes.push(Some(cached.clone()));
                continue;
            }
            // Isolate the solve: a panicking query loses this one item while
            // every other item — including the same query's siblings —
            // proceeds untouched.
            let timer = telemetry.work_item.is_enabled().then(Stopwatch::start);
            let solved = catch_unwind(AssertUnwindSafe(|| solver.progress(item.psi)));
            if let Some(timer) = timer {
                let nanos = timer.elapsed_nanos();
                telemetry.work_item.record(nanos);
                telemetry.busy.add(nanos);
            }
            match solved {
                Ok(result) => {
                    // Publish result and stats atomically: two workers may
                    // race the same (segment, formula) item past the lookup
                    // above and both solve it (the duplicate search is benign
                    // — results are deterministic), but only the one that
                    // first publishes accounts its statistics, so the
                    // aggregated counters stay those of one solve per
                    // distinct item.
                    let won = lock_recover(&state.results[seg_ix])
                        .insert(item.psi, result.formulas.clone())
                        .is_none();
                    if won {
                        lock_recover(&state.stats).absorb(&result.stats);
                    }
                    outcomes.push(Some(result.formulas));
                }
                Err(_) => {
                    outcomes.push(None);
                    poisoned = true;
                }
            }
        }
        if poisoned {
            // The solver may have panicked mid-search; its state (and the
            // caches it took) is not trusted — dropped here, same as the old
            // per-item path, which lost the taken caches on a panic too.
            continue;
        }
        let caches = solver.into_caches();
        let mut slot = lock_recover(&state.caches[seg_ix]);
        match slot.as_mut() {
            Some(existing) => existing.absorb(caches),
            None => *slot = Some(caches),
        }
    }
    outcomes
}

fn worker(
    state: &PipelineState,
    segments: &[(DistributedComputation, u64)],
    shared: &ShardedInterner,
    limit: Option<usize>,
    workers: usize,
    telemetry: &PipelineTelemetry,
) {
    loop {
        let Some(batch) = pop_batch(state, workers) else {
            // Everything drained: wake any sibling still waiting.
            state.ready.notify_all();
            return;
        };

        let batch_timer = telemetry.segment_batch.is_enabled().then(Stopwatch::start);
        let outcomes = solve_batch(state, segments, shared, limit, &batch, telemetry);
        if let Some(timer) = batch_timer {
            telemetry.segment_batch.record(timer.elapsed_nanos());
        }

        for (item, outcome) in batch.iter().zip(outcomes) {
            let Some(formulas) = outcome else {
                lock_recover(&state.lost).push((item.query, item.psi));
                if state.open.fetch_sub(1, Ordering::AcqRel) == 1 {
                    state.ready.notify_all();
                }
                continue;
            };

            let next_segment = item.segment + 1;
            if next_segment < segments.len() {
                // Hand each fresh rewrite to the next stage immediately.
                let fresh: Vec<FormulaId> = {
                    let mut seen = lock_recover(&state.seen[next_segment][item.query]);
                    formulas
                        .into_iter()
                        .filter(|&psi| seen.insert(psi))
                        .collect()
                };
                if !fresh.is_empty() {
                    let mut queue = lock_recover(&state.queue);
                    for psi in fresh {
                        state.open.fetch_add(1, Ordering::AcqRel);
                        queue.push_back(Item {
                            query: item.query,
                            segment: next_segment,
                            psi,
                        });
                    }
                    drop(queue);
                    state.ready.notify_all();
                }
            } else {
                lock_recover(&state.outs[item.query]).extend(formulas);
            }

            if state.open.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last open item: release every waiting sibling.
                state.ready.notify_all();
            }
        }
    }
}
