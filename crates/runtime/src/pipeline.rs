//! The pipelined segment-stage executor.
//!
//! A *batch* of consecutive closed segments is processed by a pool of scoped
//! worker threads sharing one work queue. The unit of work is one `(query,
//! segment, pending formula)` triple: a worker progresses the formula through
//! a [`SegmentSolver`] over the batch's shared [`ShardedInterner`] and
//! enqueues each distinct rewritten formula *immediately* as a work item for
//! the next segment — segment `k + 1` starts progressing a formula as soon as
//! stage `k` emits it, while other formulas (of any query) are still inside
//! stage `k`. There is no barrier between stages; the only synchronisation
//! points are the shared queue, the per-`(segment, query)` dedup sets that
//! keep the pending *sets* identical to the sequential union semantics, and
//! the output sets of the last segment of the batch.
//!
//! Worker-local state stays worker-local: each item gets its own solver (memo
//! table, feasibility and per-cut caches), while the arena — nodes, states
//! and the `one_cache`/`gap_cache` progression memos, which carry most of the
//! cross-segment reuse — is shared by every worker through `&` handles.

use rvmtl_distrib::DistributedComputation;
use rvmtl_mtl::{FormulaId, ShardedInterner};
use rvmtl_solver::{SegmentSolver, SolverStats};
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// One unit of work: progress `psi` (of `query`) over `segment`.
struct Item {
    query: usize,
    segment: usize,
    psi: FormulaId,
}

struct PipelineState {
    queue: Mutex<VecDeque<Item>>,
    ready: Condvar,
    /// Items queued or being processed; workers exit when it reaches zero.
    open: AtomicUsize,
    /// Per-`(segment, query)` dedup: a formula is progressed through a
    /// segment once, no matter how many stage-`k` branches emitted it.
    seen: Vec<Vec<Mutex<BTreeSet<FormulaId>>>>,
    /// Per-query pending set leaving the batch's last segment.
    outs: Vec<Mutex<BTreeSet<FormulaId>>>,
    stats: Mutex<SolverStats>,
}

/// Runs `seeds` (per-query pending formulas, interned in `shared`) through
/// the pipeline of `segments` (each with its residual anchor) on `workers`
/// threads. Returns the per-query pending sets after the last segment and
/// the aggregated solver statistics.
pub(crate) fn run_pipeline(
    segments: &[(DistributedComputation, u64)],
    seeds: &[Vec<FormulaId>],
    shared: &ShardedInterner,
    workers: usize,
    limit: Option<usize>,
) -> (Vec<BTreeSet<FormulaId>>, SolverStats) {
    assert!(!segments.is_empty(), "a pipeline batch needs segments");
    let state = PipelineState {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        open: AtomicUsize::new(0),
        seen: (0..segments.len())
            .map(|_| {
                (0..seeds.len())
                    .map(|_| Mutex::new(BTreeSet::new()))
                    .collect()
            })
            .collect(),
        outs: (0..seeds.len())
            .map(|_| Mutex::new(BTreeSet::new()))
            .collect(),
        stats: Mutex::new(SolverStats::default()),
    };
    {
        let mut queue = state.queue.lock().expect("fresh queue");
        for (query, pending) in seeds.iter().enumerate() {
            let mut seen = state.seen[0][query].lock().expect("fresh seen set");
            for &psi in pending {
                if seen.insert(psi) {
                    state.open.fetch_add(1, Ordering::AcqRel);
                    queue.push_back(Item {
                        query,
                        segment: 0,
                        psi,
                    });
                }
            }
        }
    }

    let workers = workers.max(1);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| worker(&state, segments, shared, limit)));
        }
        for handle in handles {
            handle.join().expect("pipeline worker panicked");
        }
    });

    let outs = state
        .outs
        .into_iter()
        .map(|set| set.into_inner().expect("worker poisoned an output set"))
        .collect();
    let stats = state.stats.into_inner().expect("worker poisoned the stats");
    (outs, stats)
}

fn worker(
    state: &PipelineState,
    segments: &[(DistributedComputation, u64)],
    shared: &ShardedInterner,
    limit: Option<usize>,
) {
    loop {
        let item = {
            let mut queue = state.queue.lock().expect("queue poisoned");
            loop {
                if let Some(item) = queue.pop_front() {
                    break Some(item);
                }
                if state.open.load(Ordering::Acquire) == 0 {
                    break None;
                }
                queue = state.ready.wait(queue).expect("queue poisoned");
            }
        };
        let Some(item) = item else {
            // Everything drained: wake any sibling still waiting.
            state.ready.notify_all();
            return;
        };

        let (segment, anchor) = &segments[item.segment];
        let mut handle = shared;
        let mut solver = SegmentSolver::new(segment, *anchor, &mut handle);
        if let Some(l) = limit {
            solver = solver.with_limit(l);
        }
        let result = solver.progress(item.psi);
        state
            .stats
            .lock()
            .expect("stats poisoned")
            .absorb(&result.stats);

        let next_segment = item.segment + 1;
        if next_segment < segments.len() {
            // Hand each fresh rewrite to the next stage immediately.
            let fresh: Vec<FormulaId> = {
                let mut seen = state.seen[next_segment][item.query]
                    .lock()
                    .expect("seen set poisoned");
                result
                    .formulas
                    .into_iter()
                    .filter(|&psi| seen.insert(psi))
                    .collect()
            };
            if !fresh.is_empty() {
                let mut queue = state.queue.lock().expect("queue poisoned");
                for psi in fresh {
                    state.open.fetch_add(1, Ordering::AcqRel);
                    queue.push_back(Item {
                        query: item.query,
                        segment: next_segment,
                        psi,
                    });
                }
                drop(queue);
                state.ready.notify_all();
            }
        } else {
            state.outs[item.query]
                .lock()
                .expect("output set poisoned")
                .extend(result.formulas);
        }

        if state.open.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last open item: release every waiting sibling.
            state.ready.notify_all();
        }
    }
}
