//! Configuration of the streaming runtime.

use rvmtl_distrib::FaultPolicy;

/// Configuration of a [`crate::StreamMonitor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Nominal segment length in local-time units: segment boundaries fall on
    /// multiples of this from the base time.
    pub segment_length: u64,
    /// Base (anchor) time of the stream: the first segment starts here and
    /// every query is anchored here. Defaults to 0.
    pub base_time: u64,
    /// Process queued closed segments through the pipelined worker pool
    /// (requires `workers > 1` to take effect; the sequential path is used
    /// otherwise).
    pub pipeline: bool,
    /// Worker-thread count for the pipelined path. `None` uses
    /// [`std::thread::available_parallelism`].
    pub workers: Option<usize>,
    /// Number of closed segments to buffer before processing them as one
    /// pipelined batch. Deeper buffers expose more segment-level parallelism
    /// at the cost of verdict latency. Defaults to 1 (process as soon as a
    /// segment closes).
    pub flush_depth: usize,
    /// Hard bound on the closed-segment queue (backpressure): when an
    /// [`crate::StreamMonitor::observe`] or
    /// [`crate::StreamMonitor::heartbeat`] call would leave this many
    /// segments queued, the queue is drained synchronously inside that call
    /// even if the flush depth has not been reached — a watermark jump over
    /// an idle period can close arbitrarily many segments at once, and
    /// without a bound the queue (and its buffered events) would grow without
    /// limit. `None` (the default) bounds the queue by the flush depth
    /// alone.
    pub max_queued_segments: Option<usize>,
    /// Upper bound on distinct rewritten formulas kept per pending formula
    /// per segment (`None` = unbounded; see
    /// [`rvmtl_monitor::MonitorConfig::max_solutions_per_segment`]).
    ///
    /// Note: under the pipelined path a bound makes the *choice* of kept
    /// rewrites scheduling-dependent (the set of verdicts found is still
    /// sound, but which `limit` representatives survive may vary run to
    /// run); exhaustive (unbounded) runs are fully deterministic.
    pub max_solutions_per_segment: Option<usize>,
    /// Compact the query-spanning arena every this many processed segments
    /// (the GC epoch; 0 disables compaction). Defaults to 32.
    pub gc_interval: usize,
    /// What ingestion does with faulty events — duplicates, out-of-order
    /// arrivals, events beyond the closed boundary (see
    /// [`FaultPolicy`] and the crate documentation's fault-semantics table).
    /// Defaults to [`FaultPolicy::Strict`]: every fault is an error.
    pub fault_policy: FaultPolicy,
    /// Write an epoch checkpoint to [`StreamConfig::checkpoint_dir`] every
    /// this many GC epochs (0, the default, disables automatic
    /// checkpointing; see the crate documentation's "Checkpoint format &
    /// recovery semantics" section). Has no effect while `checkpoint_dir`
    /// is `None`.
    pub checkpoint_interval: usize,
    /// Directory automatic epoch checkpoints are written to. `None` (the
    /// default) disables automatic checkpointing;
    /// [`crate::StreamMonitor::write_checkpoint`] can still snapshot on
    /// demand.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Enables the timing telemetry instruments and the flight recorder (see
    /// the crate documentation's "Observability" section). Off by default:
    /// with telemetry disabled every instrument is a no-op handle, so the
    /// hot paths pay one never-taken branch per call site and nothing else.
    /// Count-shape metrics ([`crate::StreamMonitor::telemetry`]) are derived
    /// from always-on monitor state and work either way.
    pub telemetry: bool,
    /// Capacity of the flight recorder's event ring (allocated once, never
    /// reallocated; oldest events are overwritten when full). Only consulted
    /// when [`StreamConfig::telemetry`] is on. Defaults to 1024.
    pub flight_capacity: usize,
}

impl StreamConfig {
    /// A configuration with the given segment length and defaults everywhere
    /// else (sequential processing, GC every 32 segments).
    ///
    /// # Panics
    ///
    /// Panics if `segment_length` is 0.
    pub fn new(segment_length: u64) -> Self {
        assert!(segment_length > 0, "segment length must be at least 1");
        StreamConfig {
            segment_length,
            base_time: 0,
            pipeline: false,
            workers: None,
            flush_depth: 1,
            max_queued_segments: None,
            max_solutions_per_segment: None,
            gc_interval: 32,
            fault_policy: FaultPolicy::Strict,
            checkpoint_interval: 0,
            checkpoint_dir: None,
            telemetry: false,
            flight_capacity: 1024,
        }
    }

    /// Enables the timing telemetry instruments and the flight recorder.
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Sets the flight recorder's ring capacity (clamped to at least 1; has
    /// effect only together with [`StreamConfig::with_telemetry`]).
    pub fn flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity.max(1);
        self
    }

    /// Sets the ingestion fault policy (see the crate documentation's
    /// fault-semantics table).
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// Enables the pipelined worker pool with the given thread count
    /// (`None` = [`std::thread::available_parallelism`]).
    pub fn pipelined(mut self, workers: Option<usize>) -> Self {
        self.pipeline = true;
        self.workers = workers;
        self
    }

    /// Sets the closed-segment buffer depth.
    pub fn flush_depth(mut self, depth: usize) -> Self {
        self.flush_depth = depth.max(1);
        self
    }

    /// Bounds the closed-segment queue: `observe`/`heartbeat` drain
    /// synchronously once this many segments are queued, regardless of the
    /// flush depth.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0 (a closed segment must be queueable at least
    /// until the ingestion call that closed it returns).
    pub fn max_queued_segments(mut self, bound: usize) -> Self {
        assert!(
            bound > 0,
            "StreamConfig::max_queued_segments: the bound must be at least 1"
        );
        self.max_queued_segments = Some(bound);
        self
    }

    /// Sets the GC epoch length (0 disables compaction).
    pub fn gc_interval(mut self, interval: usize) -> Self {
        self.gc_interval = interval;
        self
    }

    /// Enables automatic epoch checkpoints: every `interval` GC epochs a
    /// crash-safe snapshot is written to `dir` (see
    /// [`crate::StreamMonitor::restore_latest`] for the recovery side).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is 0 — disable checkpointing by not calling
    /// this builder instead.
    pub fn checkpoint(mut self, dir: impl Into<std::path::PathBuf>, interval: usize) -> Self {
        assert!(
            interval > 0,
            "StreamConfig::checkpoint: the interval must be at least 1"
        );
        self.checkpoint_interval = interval;
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Bounds the number of distinct rewritten formulas kept per pending
    /// formula per segment.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is 0 (same contract as
    /// [`rvmtl_monitor::MonitorConfig::max_solutions`]).
    pub fn max_solutions(mut self, limit: usize) -> Self {
        assert!(
            limit > 0,
            "StreamConfig::max_solutions: the solution limit must be at least 1"
        );
        self.max_solutions_per_segment = Some(limit);
        self
    }

    /// The effective worker count of the pipelined path.
    pub fn effective_workers(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let cfg = StreamConfig::new(10);
        assert_eq!(cfg.segment_length, 10);
        assert!(!cfg.pipeline);
        assert_eq!(cfg.flush_depth, 1);
        assert_eq!(cfg.gc_interval, 32);
        assert_eq!(cfg.fault_policy, FaultPolicy::Strict);
        assert_eq!(cfg.checkpoint_interval, 0);
        assert_eq!(cfg.checkpoint_dir, None);
        assert!(!cfg.telemetry);
        assert_eq!(cfg.flight_capacity, 1024);
        let cfg = cfg
            .pipelined(Some(4))
            .flush_depth(8)
            .gc_interval(0)
            .max_solutions(2)
            .fault_policy(FaultPolicy::BestEffort)
            .checkpoint("/tmp/ckpt", 3)
            .with_telemetry()
            .flight_capacity(64);
        assert!(cfg.telemetry);
        assert_eq!(cfg.flight_capacity, 64);
        assert!(cfg.pipeline);
        assert_eq!(cfg.effective_workers(), 4);
        assert_eq!(cfg.flush_depth, 8);
        assert_eq!(cfg.gc_interval, 0);
        assert_eq!(cfg.max_solutions_per_segment, Some(2));
        assert_eq!(cfg.fault_policy, FaultPolicy::BestEffort);
        assert_eq!(cfg.checkpoint_interval, 3);
        assert_eq!(
            cfg.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/ckpt"))
        );
    }

    #[test]
    #[should_panic(expected = "interval must be at least 1")]
    fn zero_checkpoint_interval_panics() {
        let _ = StreamConfig::new(5).checkpoint("/tmp/ckpt", 0);
    }

    #[test]
    #[should_panic(expected = "segment length")]
    fn zero_length_panics() {
        let _ = StreamConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_limit_panics() {
        let _ = StreamConfig::new(5).max_solutions(0);
    }
}
