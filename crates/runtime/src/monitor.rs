//! The streaming monitor: multi-query online verification of live
//! per-process event streams.

use crate::pipeline::run_pipeline;
use crate::StreamConfig;
use rvmtl_distrib::{DistributedComputation, IncrementalSegmenter, StreamError};
use rvmtl_monitor::VerdictSet;
use rvmtl_mtl::{ArenaMemory, Formula, FormulaId, Interner, ShardedInterner, State};
use rvmtl_solver::{SegmentSolver, SolverStats};
use std::collections::{BTreeSet, VecDeque};

/// Handle to one query multiplexed over a [`StreamMonitor`]'s stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueryId(usize);

impl QueryId {
    /// The query's index (dense, in registration order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A closed segment awaiting processing, with the anchor time of its residual
/// obligations (the base time of the next segment, or `end + ε` for the final
/// one).
struct QueuedSegment {
    comp: DistributedComputation,
    next_anchor: u64,
}

struct QueryState {
    /// The original specification (kept for reporting).
    root: Formula,
    /// Pending rewritten formulas, as ids in the query-spanning arena.
    pending: BTreeSet<FormulaId>,
}

/// The final report of a finished stream.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Final verdict set per query, indexed by [`QueryId::index`].
    pub verdicts: Vec<VerdictSet>,
    /// Rewritten formulas pending after the last segment, per query, before
    /// finalisation (the same quantity as
    /// [`rvmtl_monitor::MonitorReport::pending`]).
    pub pending: Vec<std::collections::BTreeSet<Formula>>,
    /// Number of segments processed.
    pub segments: usize,
    /// Aggregated solver statistics.
    pub stats: SolverStats,
    /// Post-run footprint of the query-spanning arena.
    pub memory: ArenaMemory,
    /// Number of GC epochs that ran.
    pub gc_runs: usize,
}

/// A streaming monitoring engine: ingests per-process event streams, closes
/// segments by the watermark rule, runs closed segments through sequential or
/// pipelined solver stages, and multiplexes any number of MTL queries over
/// one shared segmentation.
///
/// See the crate documentation for the architecture (watermark rule, pipeline
/// stages, GC epochs). The verdict sets produced are identical to running the
/// batch [`rvmtl_monitor::Monitor`] over the completed computation with the
/// same segment boundaries — pinned by the differential test suite.
pub struct StreamMonitor {
    config: StreamConfig,
    segmenter: IncrementalSegmenter,
    /// The query-spanning arena every pending formula lives in between
    /// stages; compacted at GC epochs.
    arena: Interner,
    /// The worker arena of the pipelined path, shared (with its progression
    /// caches) across every worker, segment, and query of an epoch; reset at
    /// GC epochs.
    shared: ShardedInterner,
    queries: Vec<QueryState>,
    queue: VecDeque<QueuedSegment>,
    segments_processed: usize,
    since_gc: usize,
    gc_runs: usize,
    stats: SolverStats,
}

impl StreamMonitor {
    /// Creates a monitor for a stream over `process_count` processes with
    /// skew bound `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `process_count` is 0 (via the segmenter).
    pub fn new(process_count: usize, epsilon: u64, config: StreamConfig) -> Self {
        let segmenter = IncrementalSegmenter::with_base_time(
            process_count,
            epsilon,
            config.segment_length,
            config.base_time,
        );
        StreamMonitor {
            config,
            segmenter,
            arena: Interner::new(),
            shared: ShardedInterner::new(),
            queries: Vec::new(),
            queue: VecDeque::new(),
            segments_processed: 0,
            since_gc: 0,
            gc_runs: 0,
            stats: SolverStats::default(),
        }
    }

    /// Registers a query, anchored at the stream's base time.
    ///
    /// # Panics
    ///
    /// Panics if a segment has already been processed or queued — all queries
    /// of a stream share its segmentation from the first boundary on, so they
    /// must be registered before monitoring starts.
    pub fn add_query(&mut self, phi: &Formula) -> QueryId {
        assert!(
            self.segments_processed == 0 && self.queue.is_empty(),
            "StreamMonitor::add_query: queries must be registered before the first segment closes"
        );
        let root = self.arena.intern(phi);
        self.queries.push(QueryState {
            root: phi.clone(),
            pending: BTreeSet::from([root]),
        });
        QueryId(self.queries.len() - 1)
    }

    /// Sets the carried-over initial local state of a process — the state it
    /// had established before the stream began (see
    /// [`IncrementalSegmenter::initial_state`]; the batch monitor picks the
    /// same information up from
    /// [`rvmtl_distrib::ComputationBuilder::initial_state`]).
    ///
    /// # Panics
    ///
    /// Panics if the process is unknown or the stream has already started.
    pub fn initial_state(&mut self, process: usize, state: State) {
        self.segmenter.initial_state(process, state);
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// The specification a query was registered with.
    pub fn query(&self, id: QueryId) -> &Formula {
        &self.queries[id.0].root
    }

    /// Ingests one event of `process` at local `time` establishing `state`,
    /// processing any segments this closes (subject to the configured flush
    /// depth).
    ///
    /// # Errors
    ///
    /// See [`StreamError`]; a rejected event leaves the monitor unchanged.
    pub fn observe(&mut self, process: usize, time: u64, state: State) -> Result<(), StreamError> {
        let closed = self.segmenter.observe(process, time, state)?;
        self.enqueue(closed);
        Ok(())
    }

    /// Advances a process's local clock without an event (drives the
    /// watermark through idle processes).
    ///
    /// # Errors
    ///
    /// See [`StreamError`].
    pub fn heartbeat(&mut self, process: usize, time: u64) -> Result<(), StreamError> {
        let closed = self.segmenter.heartbeat(process, time)?;
        self.enqueue(closed);
        Ok(())
    }

    fn enqueue(&mut self, closed: Vec<DistributedComputation>) {
        for comp in closed {
            // A watermark-closed segment is never final: its residuals are
            // anchored at the next segment's base, which is its own horizon.
            let next_anchor = comp
                .horizon()
                .expect("watermark-closed segments carry their end boundary");
            self.queue.push_back(QueuedSegment { comp, next_anchor });
        }
        if self.queue.len() >= self.config.flush_depth {
            self.process_queue();
        }
    }

    /// Processes every queued closed segment now, regardless of the flush
    /// depth (useful before reading [`StreamMonitor::current_verdicts`]).
    pub fn drain(&mut self) {
        self.process_queue();
    }

    /// Number of segments processed so far.
    pub fn segments_processed(&self) -> usize {
        self.segments_processed
    }

    /// Number of closed segments waiting to be processed.
    pub fn segments_queued(&self) -> usize {
        self.queue.len()
    }

    /// The segmenter's current watermark (see
    /// [`IncrementalSegmenter::watermark`]).
    pub fn watermark(&self) -> Option<u64> {
        self.segmenter.watermark()
    }

    /// Aggregated solver statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Footprint of the query-spanning arena (the quantity the GC bounds).
    pub fn memory(&self) -> ArenaMemory {
        self.arena.memory()
    }

    /// Number of GC epochs that have run.
    pub fn gc_runs(&self) -> usize {
        self.gc_runs
    }

    /// Number of open obligations of a query (over the *processed* prefix of
    /// the stream).
    pub fn pending_count(&self, id: QueryId) -> usize {
        self.queries[id.0].pending.len()
    }

    /// The current verdict set of a query over the processed prefix:
    /// conclusive verdicts for formulas that have collapsed to a constant,
    /// inconclusive entries (with the remaining obligation) otherwise. Call
    /// [`StreamMonitor::drain`] first to fold in queued segments.
    pub fn current_verdicts(&self, id: QueryId) -> VerdictSet {
        let resolved: BTreeSet<Formula> = self.queries[id.0]
            .pending
            .iter()
            .map(|&f| self.arena.resolve(f))
            .collect();
        VerdictSet::from_formulas(resolved.iter())
    }

    /// Ends the stream: remaining buffered events are segmented out, every
    /// queued segment is processed, and each query's remaining obligations
    /// are closed against the empty future.
    pub fn finish(mut self) -> StreamReport {
        let mut tail = self.segmenter.finish();
        let final_anchor = self.segmenter.max_event_time() + self.segmenter.epsilon();
        if let Some(last) = tail.pop() {
            for comp in tail {
                let next_anchor = comp
                    .horizon()
                    .expect("non-final segments carry their end boundary");
                self.queue.push_back(QueuedSegment { comp, next_anchor });
            }
            self.queue.push_back(QueuedSegment {
                comp: last,
                next_anchor: final_anchor,
            });
        }
        self.process_queue();
        let verdicts = self
            .queries
            .iter()
            .map(|q| VerdictSet::from_bools(q.pending.iter().map(|&f| self.arena.eval_empty(f))))
            .collect();
        let pending = self
            .queries
            .iter()
            .map(|q| q.pending.iter().map(|&f| self.arena.resolve(f)).collect())
            .collect();
        StreamReport {
            verdicts,
            pending,
            segments: self.segments_processed,
            stats: self.stats,
            memory: self.arena.memory(),
            gc_runs: self.gc_runs,
        }
    }

    fn process_queue(&mut self) {
        if self.queue.is_empty() || self.queries.is_empty() {
            self.segments_processed += self.queue.len();
            self.queue.clear();
            return;
        }
        let batch: Vec<QueuedSegment> = self.queue.drain(..).collect();
        let processed = batch.len();
        let workers = self.config.effective_workers();
        if self.config.pipeline && workers > 1 {
            self.process_pipelined(batch, workers);
        } else {
            self.process_sequential(batch);
        }
        self.segments_processed += processed;
        self.since_gc += processed;
        if self.config.gc_interval > 0 && self.since_gc >= self.config.gc_interval {
            self.collect_garbage();
        }
    }

    /// Sequential stage execution: one [`SegmentSolver`] per segment, shared
    /// by every pending formula of every query (cross-query memo sharing).
    fn process_sequential(&mut self, batch: Vec<QueuedSegment>) {
        for QueuedSegment { comp, next_anchor } in batch {
            let mut solver = SegmentSolver::new(&comp, next_anchor, &mut self.arena);
            if let Some(l) = self.config.max_solutions_per_segment {
                solver = solver.with_limit(l);
            }
            for query in &mut self.queries {
                let pending = std::mem::take(&mut query.pending);
                for psi in pending {
                    let result = solver.progress(psi);
                    self.stats.absorb(&result.stats);
                    query.pending.extend(result.formulas);
                }
            }
        }
    }

    /// Pipelined stage execution over the shared sharded arena; pending ids
    /// are remapped between the query-spanning arena and the worker arena at
    /// the batch boundaries (structural re-interning — cheap, since both
    /// arenas hash-cons).
    fn process_pipelined(&mut self, batch: Vec<QueuedSegment>, workers: usize) {
        let segments: Vec<(DistributedComputation, u64)> =
            batch.into_iter().map(|s| (s.comp, s.next_anchor)).collect();
        let seeds: Vec<Vec<FormulaId>> = self
            .queries
            .iter()
            .map(|q| {
                q.pending
                    .iter()
                    .map(|&psi| self.shared.intern(&self.arena.resolve(psi)))
                    .collect()
            })
            .collect();
        let (outs, stats) = run_pipeline(
            &segments,
            &seeds,
            &self.shared,
            workers,
            self.config.max_solutions_per_segment,
        );
        self.stats.absorb(&stats);
        for (query, out) in self.queries.iter_mut().zip(outs) {
            query.pending = out
                .into_iter()
                .map(|psi| self.arena.intern(&self.shared.resolve(psi)))
                .collect();
        }
    }

    /// One GC epoch: mark-and-renumber the query-spanning arena over the live
    /// pending sets and reset the worker arena (its caches re-warm from the
    /// live formulas on the next batch).
    fn collect_garbage(&mut self) {
        let roots: Vec<FormulaId> = self
            .queries
            .iter()
            .flat_map(|q| q.pending.iter().copied())
            .collect();
        let remap = self.arena.compact(roots);
        for query in &mut self.queries {
            query.pending = query.pending.iter().map(|&f| remap.remap(f)).collect();
        }
        self.shared.clear();
        self.since_gc = 0;
        self.gc_runs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvmtl_mtl::{parse, state};

    #[test]
    fn single_query_single_segment_stream() {
        let mut monitor = StreamMonitor::new(1, 1, StreamConfig::new(100));
        let q = monitor.add_query(&parse("req -> F[0,5) cs").unwrap());
        monitor.observe(0, 1, state!["req"]).unwrap();
        monitor.observe(0, 3, state!["cs"]).unwrap();
        let report = monitor.finish();
        assert!(report.verdicts[q.index()].definitely_satisfied());
        assert_eq!(report.segments, 1);
    }

    #[test]
    fn verdicts_visible_as_segments_close() {
        let mut monitor = StreamMonitor::new(1, 0, StreamConfig::new(4));
        let q = monitor.add_query(&parse("F[0,20) done").unwrap());
        monitor.observe(0, 1, state!["work"]).unwrap();
        monitor.observe(0, 6, state!["work"]).unwrap();
        assert!(monitor.segments_processed() >= 1);
        let midway = monitor.current_verdicts(q);
        assert!(!midway.pending_formulas().is_empty(), "{midway}");
        monitor.observe(0, 9, state!["done"]).unwrap();
        let report = monitor.finish();
        assert!(report.verdicts[q.index()].definitely_satisfied());
    }

    #[test]
    fn multi_query_shares_the_stream() {
        let mut monitor = StreamMonitor::new(2, 1, StreamConfig::new(5));
        let q_live = monitor.add_query(&parse("F[0,12) b.ack").unwrap());
        let q_safe = monitor.add_query(&parse("G[0,12) !a.err").unwrap());
        monitor.observe(0, 2, state!["a.req"]).unwrap();
        monitor.observe(1, 4, state!["b.ack"]).unwrap();
        monitor.observe(0, 11, state!["a.done"]).unwrap();
        monitor.heartbeat(1, 11).unwrap();
        let report = monitor.finish();
        assert!(report.verdicts[q_live.index()].definitely_satisfied());
        assert!(report.verdicts[q_safe.index()].definitely_satisfied());
        assert_eq!(report.verdicts.len(), 2);
    }

    #[test]
    #[should_panic(expected = "before the first segment closes")]
    fn late_query_registration_panics() {
        let mut monitor = StreamMonitor::new(1, 0, StreamConfig::new(2));
        monitor.add_query(&parse("F[0,9) p").unwrap());
        monitor.observe(0, 1, state![]).unwrap();
        monitor.observe(0, 7, state![]).unwrap();
        assert!(monitor.segments_processed() > 0);
        monitor.add_query(&parse("G[0,3) q").unwrap());
    }

    #[test]
    fn gc_epochs_bound_arena_memory() {
        let mut config = StreamConfig::new(3).gc_interval(4);
        config.flush_depth = 1;
        let mut monitor = StreamMonitor::new(1, 0, config);
        let q = monitor.add_query(&parse("G[0,inf) (tick -> F[0,6) tock)").unwrap());
        let mut no_gc_peak = 0usize;
        for round in 0..120u64 {
            let t = 1 + round * 2;
            let label = if round % 2 == 0 { "tick" } else { "tock" };
            monitor.observe(0, t, state![label]).unwrap();
            no_gc_peak = no_gc_peak.max(monitor.memory().total_entries());
        }
        assert!(monitor.gc_runs() > 10, "GC must have cycled");
        let report = monitor.finish();
        assert!(
            report.memory.total_entries() < 100,
            "post-GC arena footprint must stay small: {:?}",
            report.memory
        );
        assert!(!report.verdicts[q.index()].is_empty());
    }

    #[test]
    fn pipelined_matches_sequential_midstream() {
        let events: Vec<(usize, u64, rvmtl_mtl::State)> = (0..30u64)
            .map(|k| {
                let label = if k % 3 == 0 { "a" } else { "b" };
                ((k % 2) as usize, 1 + k, state![label])
            })
            .collect();
        let phi = parse("G[0,inf) (a -> F[0,4) b)").unwrap();
        let run = |config: StreamConfig| {
            let mut monitor = StreamMonitor::new(2, 1, config);
            let q = monitor.add_query(&phi);
            for (p, t, s) in &events {
                monitor.observe(*p, *t, s.clone()).unwrap();
            }
            let report = monitor.finish();
            report.verdicts[q.index()].clone()
        };
        let sequential = run(StreamConfig::new(4));
        let pipelined = run(StreamConfig::new(4).pipelined(Some(3)).flush_depth(4));
        assert_eq!(sequential, pipelined);
    }
}
