//! The streaming monitor: multi-query online verification of live
//! per-process event streams.

use crate::checkpoint::{
    decode_monitor, encode_monitor, epochs_newest_first, write_epoch, CheckpointError,
    MonitorCounters, MonitorImage, QueryImage,
};
use crate::pipeline::run_pipeline;
use crate::telemetry::RuntimeMetrics;
use crate::{RuntimeHealth, StreamConfig};
use rvmtl_distrib::{
    DistributedComputation, FaultCounters, FaultPolicy, IncrementalSegmenter, StreamError,
};
use rvmtl_monitor::{Integrity, Verdict, VerdictSet};
use rvmtl_mtl::{
    ArenaMemory, ArenaOps, Formula, FormulaId, Interner, ShardedInterner, ShiftedId, State,
};
use rvmtl_obs::{FlightKind, FlightRecorder, Stopwatch, TelemetrySnapshot};
use rvmtl_solver::{SegmentSolver, SolverStats};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Handle to one query multiplexed over a [`StreamMonitor`]'s stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueryId(usize);

impl QueryId {
    /// The query's index (dense, in registration order).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A closed segment awaiting processing, with the anchor time of its residual
/// obligations (the base time of the next segment, or `end + ε` for the final
/// one).
struct QueuedSegment {
    comp: DistributedComputation,
    next_anchor: u64,
}

struct QueryState {
    /// The original specification (kept for reporting).
    root: Formula,
    /// Pending rewritten formulas in shift-normal form over the
    /// query-spanning arena: obligations that are exact time-translates of
    /// each other — within one query or across queries — share one arena
    /// node and differ only in the shift word.
    pending: BTreeSet<ShiftedId>,
    /// Boundary at which the query entered the stream: it participates in
    /// segments whose base time is at or after this. Queries registered
    /// before monitoring started are anchored at the stream's base time;
    /// queries added mid-stream are re-anchored at the boundary following
    /// every segment closed so far.
    anchored_at: u64,
    /// Ingestion faults absorbed in windows this query observes (events at or
    /// after its anchor boundary) — the evidence behind its verdicts is
    /// degraded by exactly these.
    faults: FaultCounters,
    /// Work items of this query lost to a panicking solver stage.
    panics: u64,
    /// The obligations those lost items carried, resolved to plain formulas
    /// (so they survive arena GC) and reported as
    /// [`Verdict::Inconclusive`] entries.
    lost: BTreeSet<Formula>,
}

impl QueryState {
    /// The integrity tag of this query's verdicts so far.
    fn integrity(&self) -> Integrity {
        Integrity::from_counters(
            self.faults.dropped,
            self.faults.deduped,
            self.faults.late_beyond_epsilon,
            self.panics,
        )
    }
}

/// The final report of a finished stream.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Final verdict set per query, indexed by [`QueryId::index`].
    pub verdicts: Vec<VerdictSet>,
    /// Rewritten formulas pending after the last segment, per query, before
    /// finalisation (the same quantity as
    /// [`rvmtl_monitor::MonitorReport::pending`]).
    pub pending: Vec<std::collections::BTreeSet<Formula>>,
    /// Number of segments processed.
    pub segments: usize,
    /// Aggregated solver statistics.
    pub stats: SolverStats,
    /// Post-run footprint of the query-spanning arena.
    pub memory: ArenaMemory,
    /// Number of GC epochs that ran.
    pub gc_runs: usize,
    /// Integrity tag per query, indexed by [`QueryId::index`]:
    /// [`Integrity::Exact`] unless a fault was absorbed or a work item lost
    /// in a window the query observes.
    pub integrity: Vec<Integrity>,
    /// Final runtime health counters (see [`RuntimeHealth`]).
    pub health: RuntimeHealth,
    /// Final telemetry snapshot (count-shape metrics always; timing
    /// histograms when [`StreamConfig::with_telemetry`] was on) — the same
    /// view [`StreamMonitor::telemetry`] returns mid-stream.
    pub telemetry: TelemetrySnapshot,
    /// The rendered error behind the most recent automatic checkpoint
    /// failure, if any (the count is in
    /// [`RuntimeHealth::checkpoint_failures`]).
    pub last_checkpoint_error: Option<String>,
}

impl fmt::Display for StreamReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stream report: {} queries over {} segments, {} GC epochs",
            self.verdicts.len(),
            self.segments,
            self.gc_runs
        )?;
        for (index, (verdicts, integrity)) in self.verdicts.iter().zip(&self.integrity).enumerate()
        {
            writeln!(f, "  query {index} [{integrity}]: {verdicts}")?;
        }
        writeln!(
            f,
            "  solver: {} states, {} frontier batches, {} batched probe ticks",
            self.stats.explored_states, self.stats.frontier_batches, self.stats.batched_probe_ticks
        )?;
        writeln!(f, "  health: {}", self.health)?;
        match &self.last_checkpoint_error {
            Some(error) => writeln!(f, "  last checkpoint error: {error}"),
            None => writeln!(f, "  last checkpoint error: none"),
        }
    }
}

/// A streaming monitoring engine: ingests per-process event streams, closes
/// segments by the watermark rule, runs closed segments through sequential or
/// pipelined solver stages, and multiplexes any number of MTL queries over
/// one shared segmentation.
///
/// See the crate documentation for the architecture (watermark rule, pipeline
/// stages, GC epochs). The verdict sets produced are identical to running the
/// batch [`rvmtl_monitor::Monitor`] over the completed computation with the
/// same segment boundaries — pinned by the differential test suite.
pub struct StreamMonitor {
    config: StreamConfig,
    segmenter: IncrementalSegmenter,
    /// The query-spanning arena every pending formula lives in between
    /// stages; compacted at GC epochs.
    arena: Interner,
    /// The worker arena of the pipelined path, shared (with its progression
    /// caches) across every worker, segment, and query of an epoch; reset at
    /// GC epochs.
    shared: ShardedInterner,
    queries: Vec<QueryState>,
    queue: VecDeque<QueuedSegment>,
    segments_processed: usize,
    since_gc: usize,
    gc_runs: usize,
    stats: SolverStats,
    /// Events and heartbeats rejected with a [`StreamError`].
    rejected: u64,
    /// Work items lost to panicking solver stages, across all queries.
    worker_panics: u64,
    /// Forced queue flushes triggered by the backpressure bound.
    backpressure_stalls: u64,
    /// Automatic epoch checkpoints that failed to write.
    checkpoint_failures: u64,
    /// The error behind the most recent automatic checkpoint failure.
    last_checkpoint_error: Option<CheckpointError>,
    /// Epoch checkpoints successfully written and fsynced (automatic and
    /// [`StreamMonitor::write_checkpoint`]). Deliberately *not* part of the
    /// checkpoint wire format: a restored monitor starts counting from its
    /// restore point.
    checkpoints_written: u64,
    /// Events accepted into the stream (rejected calls are counted in
    /// `rejected` instead).
    events_observed: u64,
    /// Heartbeats accepted.
    heartbeats: u64,
    /// Deepest the closed-segment queue ever got.
    queue_depth_peak: usize,
    /// Wall-clock close instant per queued segment base, for the
    /// event-to-verdict and per-query verdict-latency histograms. Populated
    /// only while telemetry is enabled; entries are consumed when their
    /// segment is solved.
    closed_at: HashMap<u64, Instant>,
    /// The registry-resident timing instruments and the flight recorder
    /// (all no-ops unless [`StreamConfig::with_telemetry`] was set).
    metrics: RuntimeMetrics,
}

impl StreamMonitor {
    /// Creates a monitor for a stream over `process_count` processes with
    /// skew bound `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `process_count` is 0 (via the segmenter).
    pub fn new(process_count: usize, epsilon: u64, config: StreamConfig) -> Self {
        let segmenter = IncrementalSegmenter::with_base_time(
            process_count,
            epsilon,
            config.segment_length,
            config.base_time,
        )
        .with_policy(config.fault_policy);
        let metrics = RuntimeMetrics::new(config.telemetry, config.flight_capacity);
        StreamMonitor {
            config,
            segmenter,
            arena: Interner::new(),
            shared: ShardedInterner::new(),
            queries: Vec::new(),
            queue: VecDeque::new(),
            segments_processed: 0,
            since_gc: 0,
            gc_runs: 0,
            stats: SolverStats::default(),
            rejected: 0,
            worker_panics: 0,
            backpressure_stalls: 0,
            checkpoint_failures: 0,
            last_checkpoint_error: None,
            checkpoints_written: 0,
            events_observed: 0,
            heartbeats: 0,
            queue_depth_peak: 0,
            closed_at: HashMap::new(),
            metrics,
        }
    }

    /// Registers a query. A query added before monitoring starts is anchored
    /// at the stream's base time; a query added *after* segments have closed
    /// is re-anchored at the current watermark boundary — the base of the
    /// segment currently open — and participates in every segment from that
    /// boundary on (its timing intervals are measured from the boundary, and
    /// events before it are invisible to it). Closed-but-unprocessed
    /// segments in the queue always predate the boundary, so a late query is
    /// never progressed through a segment it did not observe.
    pub fn add_query(&mut self, phi: &Formula) -> QueryId {
        let anchored_at = self.segmenter.open_base();
        let root = self.arena.intern(phi);
        let root = ArenaOps::normalize(&self.arena, root);
        self.metrics.register_query();
        self.queries.push(QueryState {
            root: phi.clone(),
            pending: BTreeSet::from([root]),
            anchored_at,
            faults: FaultCounters::default(),
            panics: 0,
            lost: BTreeSet::new(),
        });
        QueryId(self.queries.len() - 1)
    }

    /// Sets the carried-over initial local state of a process — the state it
    /// had established before the stream began (see
    /// [`IncrementalSegmenter::initial_state`]; the batch monitor picks the
    /// same information up from
    /// [`rvmtl_distrib::ComputationBuilder::initial_state`]).
    ///
    /// # Panics
    ///
    /// Panics if the process is unknown or the stream has already started.
    pub fn initial_state(&mut self, process: usize, state: State) {
        self.segmenter.initial_state(process, state);
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// The specification a query was registered with.
    pub fn query(&self, id: QueryId) -> &Formula {
        &self.queries[id.0].root
    }

    /// Number of processes the monitor ingests from (fixed at
    /// construction). Together with [`StreamMonitor::epsilon`] and
    /// [`StreamMonitor::fault_policy`] this is the configuration a wire
    /// `Hello` handshake must match.
    pub fn process_count(&self) -> usize {
        self.segmenter.process_count()
    }

    /// The clock-skew bound ε the watermark segmentation assumes.
    pub fn epsilon(&self) -> u64 {
        self.segmenter.epsilon()
    }

    /// The ingestion fault policy in force (see
    /// [`StreamConfig::fault_policy`]).
    pub fn fault_policy(&self) -> FaultPolicy {
        self.segmenter.policy()
    }

    /// Ingests one event of `process` at local `time` establishing `state`,
    /// processing any segments this closes (subject to the configured flush
    /// depth).
    ///
    /// # Errors
    ///
    /// See [`StreamError`]; a rejected event leaves the monitor unchanged.
    /// What counts as rejectable depends on the configured [`FaultPolicy`] —
    /// under the default `Strict` policy a duplicate observation is an
    /// error, under `Dedup` it is absorbed (and the affected queries'
    /// verdicts are integrity-tagged):
    ///
    /// ```
    /// use rvmtl_mtl::{parse, state};
    /// use rvmtl_runtime::{StreamConfig, StreamMonitor};
    ///
    /// let mut monitor = StreamMonitor::new(1, 0, StreamConfig::new(10));
    /// monitor.add_query(&parse("G[0,5) p").unwrap());
    /// monitor.observe(0, 1, state!["p"]).unwrap();
    /// // Same (process, time) again: Strict rejects, monitor unchanged.
    /// assert!(monitor.observe(0, 1, state!["p"]).is_err());
    /// let report = monitor.finish();
    /// assert!(report.integrity.iter().all(|i| i.is_exact()));
    /// ```
    pub fn observe(&mut self, process: usize, time: u64, state: State) -> Result<(), StreamError> {
        let before = self.segmenter.fault_counters();
        let closed = match self.segmenter.observe(process, time, state) {
            Ok(closed) => closed,
            Err(e) => {
                self.rejected += 1;
                return Err(e);
            }
        };
        // A fault the policy absorbed in this call degrades the evidence of
        // every query that observes the event's window — those anchored at or
        // before the event's time. (Queries anchored later never see the
        // window, absorbed or not, so their verdicts stay exact.)
        let delta = self.segmenter.fault_counters().delta_since(&before);
        if !delta.is_zero() {
            for query in &mut self.queries {
                if time >= query.anchored_at {
                    query.faults.absorb(&delta);
                }
            }
        }
        self.events_observed += 1;
        self.metrics.flight.record(FlightKind::EventObserved {
            process: u32::try_from(process).unwrap_or(u32::MAX),
            time,
        });
        self.enqueue(closed);
        Ok(())
    }

    /// Advances a process's local clock without an event (drives the
    /// watermark through idle processes).
    ///
    /// # Errors
    ///
    /// See [`StreamError`].
    pub fn heartbeat(&mut self, process: usize, time: u64) -> Result<(), StreamError> {
        // Heartbeats carry no observation, so an absorbed stale heartbeat
        // (best-effort policy) degrades nothing and is not counted.
        let closed = match self.segmenter.heartbeat(process, time) {
            Ok(closed) => closed,
            Err(e) => {
                self.rejected += 1;
                return Err(e);
            }
        };
        self.heartbeats += 1;
        self.metrics.flight.record(FlightKind::Heartbeat {
            process: u32::try_from(process).unwrap_or(u32::MAX),
            time,
        });
        self.enqueue(closed);
        Ok(())
    }

    /// Queues one closed segment, recording its lifecycle events (close
    /// instant, queue depth) for the telemetry surfaces.
    fn push_segment(&mut self, comp: DistributedComputation, next_anchor: u64) {
        let base = comp.base_time();
        self.metrics.flight.record(FlightKind::SegmentClosed {
            base,
            end: comp.horizon().unwrap_or(next_anchor),
        });
        if self.metrics.is_enabled() {
            self.closed_at.insert(base, Instant::now());
        }
        self.queue.push_back(QueuedSegment { comp, next_anchor });
        self.metrics.flight.record(FlightKind::SegmentQueued {
            base,
            depth: self.queue.len() as u64,
        });
        self.queue_depth_peak = self.queue_depth_peak.max(self.queue.len());
    }

    fn enqueue(&mut self, closed: Vec<DistributedComputation>) {
        for comp in closed {
            // A watermark-closed segment is never final: its residuals are
            // anchored at the next segment's base, which is its own horizon.
            let Some(next_anchor) = comp.horizon() else {
                unreachable!("watermark-closed segments carry their end boundary");
            };
            self.push_segment(comp, next_anchor);
        }
        let over_bound = self
            .config
            .max_queued_segments
            .is_some_and(|bound| self.queue.len() >= bound);
        if over_bound && self.queue.len() < self.config.flush_depth {
            // The backpressure bound forced this flush before the configured
            // depth was reached: the ingestion call stalls on the drain.
            self.backpressure_stalls += 1;
        }
        if self.queue.len() >= self.config.flush_depth || over_bound {
            self.process_queue();
        }
    }

    /// Processes every queued closed segment now, regardless of the flush
    /// depth (useful before reading [`StreamMonitor::current_verdicts`]).
    pub fn drain(&mut self) {
        self.process_queue();
    }

    /// Number of segments processed so far.
    pub fn segments_processed(&self) -> usize {
        self.segments_processed
    }

    /// Number of closed segments waiting to be processed.
    pub fn segments_queued(&self) -> usize {
        self.queue.len()
    }

    /// The segmenter's current watermark (see
    /// [`IncrementalSegmenter::watermark`]).
    pub fn watermark(&self) -> Option<u64> {
        self.segmenter.watermark()
    }

    /// Aggregated solver statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Footprint of the query-spanning arena (the quantity the GC bounds).
    pub fn memory(&self) -> ArenaMemory {
        self.arena.memory()
    }

    /// Number of GC epochs that have run.
    pub fn gc_runs(&self) -> usize {
        self.gc_runs
    }

    /// The runtime health counters so far (see [`RuntimeHealth`]): every
    /// deviation from the exact fault-free path, counted once.
    pub fn health(&self) -> RuntimeHealth {
        let faults = self.segmenter.fault_counters();
        RuntimeHealth {
            rejected: self.rejected,
            deduped: faults.deduped,
            dropped: faults.dropped,
            late_beyond_epsilon: faults.late_beyond_epsilon,
            worker_panics: self.worker_panics,
            backpressure_stalls: self.backpressure_stalls,
            checkpoint_failures: self.checkpoint_failures,
            checkpoints_written: self.checkpoints_written,
        }
    }

    /// A point-in-time telemetry snapshot: every registry-resident timing
    /// instrument (empty unless [`StreamConfig::with_telemetry`] was set)
    /// plus the count-shape metrics bridged from always-on monitor state —
    /// those are exact whether or not telemetry is enabled, and being
    /// state-derived they are deterministic across execution paths (the
    /// bench pin suite pins them). Instruments are sorted by name so the
    /// text exposition groups each metric family under one `# TYPE` line.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut snap = self.metrics.registry.snapshot();
        let faults = self.segmenter.fault_counters();
        snap.push_counter("rvmtl_events_observed_total", "", self.events_observed);
        snap.push_counter("rvmtl_heartbeats_total", "", self.heartbeats);
        snap.push_counter(
            "rvmtl_segments_processed_total",
            "",
            self.segments_processed as u64,
        );
        snap.push_counter("rvmtl_gc_epochs_total", "", self.gc_runs as u64);
        snap.push_counter("rvmtl_events_rejected_total", "", self.rejected);
        snap.push_counter("rvmtl_events_deduped_total", "", faults.deduped);
        snap.push_counter("rvmtl_events_dropped_total", "", faults.dropped);
        snap.push_counter("rvmtl_events_late_total", "", faults.late_beyond_epsilon);
        snap.push_counter("rvmtl_worker_panics_total", "", self.worker_panics);
        snap.push_counter(
            "rvmtl_backpressure_stalls_total",
            "",
            self.backpressure_stalls,
        );
        snap.push_counter(
            "rvmtl_checkpoints_written_total",
            "",
            self.checkpoints_written,
        );
        snap.push_counter(
            "rvmtl_checkpoint_failures_total",
            "",
            self.checkpoint_failures,
        );
        // Field-list driven (SolverStats::for_each_field), so a counter added
        // to the solver — e.g. the batch-shape counters `frontier_batches` /
        // `batched_probe_ticks` — is bridged here without further plumbing.
        self.stats.for_each_field(|name, value| {
            snap.push_counter(format!("rvmtl_solver_{name}_total"), "", value as u64);
        });
        for (arena, stats) in [
            ("query", self.arena.cache_stats()),
            ("worker", self.shared.cache_stats()),
        ] {
            let labels = format!("arena=\"{arena}\"");
            snap.push_counter("rvmtl_one_cache_hits_total", &labels, stats.one_hits);
            snap.push_counter("rvmtl_one_cache_misses_total", &labels, stats.one_misses);
            snap.push_counter("rvmtl_gap_cache_hits_total", &labels, stats.gap_hits);
            snap.push_counter("rvmtl_gap_cache_misses_total", &labels, stats.gap_misses);
        }
        snap.push_counter(
            "rvmtl_flight_events_recorded_total",
            "",
            self.metrics.flight.recorded(),
        );
        snap.push_gauge("rvmtl_queue_depth", "", self.queue.len() as i64);
        snap.push_gauge("rvmtl_queue_depth_peak", "", self.queue_depth_peak as i64);
        snap.push_gauge(
            "rvmtl_watermark_lag",
            "",
            i64::try_from(self.segmenter.watermark_lag()).unwrap_or(i64::MAX),
        );
        snap.push_gauge(
            "rvmtl_open_segment_span",
            "",
            i64::try_from(self.segmenter.open_span()).unwrap_or(i64::MAX),
        );
        for (arena, memory) in [
            ("query", self.arena.memory()),
            ("worker", self.shared.memory()),
        ] {
            let labels = format!("arena=\"{arena}\"");
            snap.push_gauge("rvmtl_arena_nodes", &labels, memory.nodes as i64);
            snap.push_gauge("rvmtl_arena_states", &labels, memory.states as i64);
            snap.push_gauge(
                "rvmtl_arena_one_cache_entries",
                &labels,
                memory.one_cache_entries as i64,
            );
            snap.push_gauge(
                "rvmtl_arena_gap_cache_entries",
                &labels,
                memory.gap_cache_entries as i64,
            );
        }
        for (index, query) in self.queries.iter().enumerate() {
            snap.push_gauge(
                "rvmtl_pending_obligations",
                format!("query=\"{index}\""),
                query.pending.len() as i64,
            );
        }
        snap.counters
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snap.gauges
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snap.histograms
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snap
    }

    /// The current telemetry as Prometheus-style text exposition (see
    /// [`TelemetrySnapshot::to_prometheus`]; validated by
    /// [`rvmtl_obs::parse_exposition`]).
    pub fn telemetry_text(&self) -> String {
        self.telemetry().to_prometheus()
    }

    /// The lifecycle flight recorder (a no-op recorder with an empty window
    /// unless [`StreamConfig::with_telemetry`] was set).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.metrics.flight
    }

    /// The flight recorder's retained window as JSON Lines (empty when
    /// telemetry is off).
    pub fn flight_jsonl(&self) -> String {
        self.metrics.flight.dump_jsonl()
    }

    /// The error behind the most recent automatic checkpoint failure, if any
    /// (the count is in [`RuntimeHealth::checkpoint_failures`]).
    pub fn last_checkpoint_error(&self) -> Option<&CheckpointError> {
        self.last_checkpoint_error.as_ref()
    }

    /// The integrity tag of a query's verdicts over the processed prefix:
    /// [`Integrity::Exact`] unless a fault was absorbed (or a work item lost
    /// to a panic) in a window the query observes.
    pub fn current_integrity(&self, id: QueryId) -> Integrity {
        self.queries[id.0].integrity()
    }

    /// Number of open obligations of a query (over the *processed* prefix of
    /// the stream).
    pub fn pending_count(&self, id: QueryId) -> usize {
        self.queries[id.0].pending.len()
    }

    /// The current verdict set of a query over the processed prefix:
    /// conclusive verdicts for formulas that have collapsed to a constant,
    /// inconclusive entries (with the remaining obligation) otherwise. Call
    /// [`StreamMonitor::drain`] first to fold in queued segments.
    pub fn current_verdicts(&self, id: QueryId) -> VerdictSet {
        let query = &self.queries[id.0];
        let resolved: BTreeSet<Formula> = query
            .pending
            .iter()
            .map(|&s| ArenaOps::resolve_shifted(&self.arena, s))
            .collect();
        let mut verdicts = VerdictSet::from_formulas(resolved.iter());
        // An obligation lost to a panic can never collapse to a constant: it
        // stays visibly inconclusive (and the integrity tag says why).
        for phi in &query.lost {
            verdicts.insert(Verdict::Inconclusive(phi.clone()));
        }
        verdicts
    }

    /// Ends the stream: remaining buffered events are segmented out, every
    /// queued segment is processed, and each query's remaining obligations
    /// are closed against the empty future.
    pub fn finish(mut self) -> StreamReport {
        let mut tail = self.segmenter.finish();
        let final_anchor = self.segmenter.max_event_time() + self.segmenter.epsilon();
        if let Some(last) = tail.pop() {
            for comp in tail {
                let Some(next_anchor) = comp.horizon() else {
                    unreachable!("non-final segments carry their end boundary");
                };
                self.push_segment(comp, next_anchor);
            }
            self.push_segment(last, final_anchor);
        }
        self.process_queue();
        self.metrics.flight.record(FlightKind::StreamFinished);
        // `eval_empty` resolves through the shift for free: translation
        // moves interval anchors, never operator kinds, and the empty-future
        // verdict depends only on the kinds. An obligation lost to a panic is
        // *not* closed against the empty future — nothing was solved for it,
        // so it stays inconclusive in the final report.
        let verdicts = self
            .queries
            .iter()
            .map(|q| {
                let mut set =
                    VerdictSet::from_bools(q.pending.iter().map(|&s| self.arena.eval_empty(s.id)));
                for phi in &q.lost {
                    set.insert(Verdict::Inconclusive(phi.clone()));
                }
                set
            })
            .collect();
        let pending = self
            .queries
            .iter()
            .map(|q| {
                q.pending
                    .iter()
                    .map(|&s| ArenaOps::resolve_shifted(&self.arena, s))
                    .collect()
            })
            .collect();
        let integrity = self.queries.iter().map(QueryState::integrity).collect();
        let health = self.health();
        let telemetry = self.telemetry();
        let last_checkpoint_error = self.last_checkpoint_error.as_ref().map(|e| e.to_string());
        StreamReport {
            verdicts,
            pending,
            segments: self.segments_processed,
            stats: self.stats,
            memory: self.arena.memory(),
            gc_runs: self.gc_runs,
            integrity,
            health,
            telemetry,
            last_checkpoint_error,
        }
    }

    fn process_queue(&mut self) {
        if self.queue.is_empty() || self.queries.is_empty() {
            self.segments_processed += self.queue.len();
            for queued in &self.queue {
                // No query observes these segments; drop their close
                // instants so the latency map stays bounded.
                self.closed_at.remove(&queued.comp.base_time());
            }
            self.queue.clear();
            return;
        }
        let batch: Vec<QueuedSegment> = self.queue.drain(..).collect();
        let processed = batch.len();
        let bases: Vec<u64> = batch.iter().map(|s| s.comp.base_time()).collect();
        // Flight events are recorded here, from the monitor's thread, in
        // batch order — never from workers — so the kind sequence is
        // identical across the sequential and pipelined paths.
        for &base in &bases {
            self.metrics.flight.record(FlightKind::SolveStart { base });
        }
        let enabled = self.metrics.is_enabled();
        let batch_timer = enabled.then(Stopwatch::start);
        let workers = self.config.effective_workers();
        if self.config.pipeline && workers > 1 {
            self.process_pipelined(batch, workers);
        } else {
            self.process_sequential(batch);
        }
        let closes: Vec<(u64, Option<Instant>)> = bases
            .iter()
            .map(|base| (*base, self.closed_at.remove(base)))
            .collect();
        let done = enabled.then(Instant::now);
        for &(base, closed) in &closes {
            self.metrics
                .flight
                .record(FlightKind::SegmentSolved { base });
            if let (Some(done), Some(closed)) = (done, closed) {
                self.metrics
                    .event_to_verdict
                    .record_duration(done.duration_since(closed));
            }
        }
        if let Some(done) = done {
            // Per-query verdict latency: close of the newest batch segment
            // the query observed → its pending set updated (now).
            for (index, query) in self.queries.iter().enumerate() {
                let newest = closes
                    .iter()
                    .rev()
                    .find(|(base, at)| *base >= query.anchored_at && at.is_some())
                    .and_then(|(_, at)| *at);
                if let (Some(closed), Some(histogram)) =
                    (newest, self.metrics.verdict_latency.get(index))
                {
                    histogram.record_duration(done.duration_since(closed));
                }
            }
        }
        if let Some(timer) = batch_timer {
            self.metrics.batch_solve.record(timer.elapsed_nanos());
        }
        self.segments_processed += processed;
        self.since_gc += processed;
        if self.config.gc_interval > 0 && self.since_gc >= self.config.gc_interval {
            self.collect_garbage();
        }
    }

    /// Sequential stage execution: one [`SegmentSolver`] per segment, shared
    /// by every pending formula of every query (cross-query memo sharing).
    /// Queries anchored after a segment's base skip it.
    fn process_sequential(&mut self, batch: Vec<QueuedSegment>) {
        let enabled = self.metrics.is_enabled();
        for QueuedSegment { comp, next_anchor } in batch {
            let segment_timer = enabled.then(Stopwatch::start);
            // Materialise the shift-normal pendings before the solver
            // borrows the arena exclusively.
            let seeds: Vec<Option<Vec<FormulaId>>> = self
                .queries
                .iter()
                .map(|query| {
                    (comp.base_time() >= query.anchored_at).then(|| {
                        query
                            .pending
                            .iter()
                            .map(|&s| ArenaOps::materialize(&mut self.arena, s))
                            .collect()
                    })
                })
                .collect();
            let mut solver = SegmentSolver::new(&comp, next_anchor, &mut self.arena);
            if let Some(l) = self.config.max_solutions_per_segment {
                solver = solver.with_limit(l);
            }
            let mut outs: Vec<Option<BTreeSet<FormulaId>>> = Vec::with_capacity(seeds.len());
            let mut lost: Vec<(usize, FormulaId)> = Vec::new();
            for (qi, seed) in seeds.into_iter().enumerate() {
                let Some(seed) = seed else {
                    outs.push(None);
                    continue;
                };
                let mut out = BTreeSet::new();
                for psi in seed {
                    // Isolate the solve exactly like the pipelined path: a
                    // panicking obligation is lost (recorded below, reported
                    // inconclusive) while the query's other obligations and
                    // every other query proceed.
                    let item_timer = enabled.then(Stopwatch::start);
                    match catch_unwind(AssertUnwindSafe(|| solver.progress(psi))) {
                        Ok(result) => {
                            self.stats.absorb(&result.stats);
                            out.extend(result.formulas);
                        }
                        Err(_) => lost.push((qi, psi)),
                    }
                    if let Some(timer) = item_timer {
                        self.metrics.work_item.record(timer.elapsed_nanos());
                    }
                }
                outs.push(Some(out));
            }
            drop(solver);
            if let Some(timer) = segment_timer {
                self.metrics.segment_solve.record(timer.elapsed_nanos());
            }
            for (query, out) in self.queries.iter_mut().zip(outs) {
                if let Some(out) = out {
                    query.pending = out
                        .into_iter()
                        .map(|id| ArenaOps::normalize(&self.arena, id))
                        .collect();
                }
            }
            // Resolve lost obligations to plain formulas now, while their
            // ids are still valid (GC may renumber the arena later).
            for (qi, psi) in lost {
                let phi = ArenaOps::resolve(&self.arena, psi);
                self.queries[qi].lost.insert(phi);
                self.queries[qi].panics += 1;
                self.worker_panics += 1;
            }
        }
    }

    /// Pipelined stage execution over the shared sharded arena; pending ids
    /// are remapped between the query-spanning arena and the worker arena at
    /// the batch boundaries (structural re-interning — cheap, since both
    /// arenas hash-cons). A query anchored mid-batch enters the pipeline at
    /// the first segment of its boundary; identical pending formulas of
    /// different queries solve once per segment (the pipeline's result cache
    /// collapses the duplicate work items shift-normal pendings expose).
    fn process_pipelined(&mut self, batch: Vec<QueuedSegment>, workers: usize) {
        let segments: Vec<(DistributedComputation, u64)> =
            batch.into_iter().map(|s| (s.comp, s.next_anchor)).collect();
        let entries: Vec<usize> = self
            .queries
            .iter()
            .map(|q| {
                segments
                    .iter()
                    .position(|(comp, _)| comp.base_time() >= q.anchored_at)
                    .unwrap_or(segments.len())
            })
            .collect();
        let seeds: Vec<Vec<FormulaId>> = self
            .queries
            .iter()
            .zip(&entries)
            .map(|(q, &entry)| {
                if entry >= segments.len() {
                    // The query saw no segment of this batch: its pending set
                    // passes through untouched, so nothing is re-interned
                    // into the worker arena for it.
                    return Vec::new();
                }
                q.pending
                    .iter()
                    .map(|&s| {
                        self.shared
                            .intern(&ArenaOps::resolve_shifted(&self.arena, s))
                    })
                    .collect()
            })
            .collect();
        let wall_timer = self.metrics.is_enabled().then(Stopwatch::start);
        let outcome = run_pipeline(
            &segments,
            &seeds,
            &entries,
            &self.shared,
            workers,
            self.config.max_solutions_per_segment,
            &self.metrics.pipeline_slice(),
        );
        if let Some(timer) = wall_timer {
            self.metrics.pipeline_wall.add(timer.elapsed_nanos());
        }
        self.stats.absorb(&outcome.stats);
        // Resolve lost obligations out of the worker arena *now*: a GC epoch
        // at the end of this batch clears the worker arena wholesale.
        for (qi, psi) in outcome.lost {
            let phi = self.shared.resolve(psi);
            self.queries[qi].lost.insert(phi);
            self.queries[qi].panics += 1;
            self.worker_panics += 1;
        }
        for ((query, out), entry) in self.queries.iter_mut().zip(outcome.outs).zip(&entries) {
            if *entry >= segments.len() {
                continue; // The query saw no segment of this batch.
            }
            query.pending = out
                .into_iter()
                .map(|psi| {
                    let id = self.arena.intern(&self.shared.resolve(psi));
                    ArenaOps::normalize(&self.arena, id)
                })
                .collect();
        }
    }

    /// One GC epoch: mark-and-renumber the query-spanning arena over the live
    /// pending sets and reset the worker arena (its caches re-warm from the
    /// live formulas on the next batch).
    fn collect_garbage(&mut self) {
        // Shift-normal pendings root the GC at canonical residuals only:
        // translates of one obligation cost one root, and the materialised
        // translate nodes of past segments are reclaimed here.
        let roots: Vec<FormulaId> = self
            .queries
            .iter()
            .flat_map(|q| q.pending.iter().map(|s| s.id))
            .collect();
        let gc_timer = self.metrics.is_enabled().then(Stopwatch::start);
        let remap = self.arena.compact(roots);
        for query in &mut self.queries {
            query.pending = query
                .pending
                .iter()
                .map(|&s| ShiftedId {
                    shift: s.shift,
                    // Every pending id was a compaction root above, so it
                    // survived by construction.
                    id: remap.remap_unchecked(s.id),
                })
                .collect();
        }
        self.shared.clear();
        self.since_gc = 0;
        self.gc_runs += 1;
        if self.metrics.flight.is_enabled() {
            self.metrics.flight.record(FlightKind::GcEpoch {
                retained: remap.retained() as u64,
            });
        }
        if let Some(timer) = gc_timer {
            self.metrics.gc_pause.record(timer.elapsed_nanos());
        }
        self.maybe_checkpoint();
    }

    /// Writes the automatic epoch checkpoint when the config asks for one at
    /// this GC epoch. Failures are absorbed into the health counters: a
    /// monitor that cannot checkpoint keeps monitoring (the previous epoch
    /// remains the recovery point).
    fn maybe_checkpoint(&mut self) {
        let Some(dir) = self.config.checkpoint_dir.clone() else {
            return;
        };
        if self.config.checkpoint_interval == 0
            || !self.gc_runs.is_multiple_of(self.config.checkpoint_interval)
        {
            return;
        }
        // The queue is empty here: automatic checkpoints fire from
        // `collect_garbage`, which `process_queue` reaches only after
        // draining the whole batch (the drain-before-snapshot invariant).
        debug_assert!(self.queue.is_empty());
        let timer = self.metrics.is_enabled().then(Stopwatch::start);
        let bytes = self.encode_checkpoint();
        match write_epoch(&dir, self.segments_processed as u64, &bytes) {
            Ok(_) => self.record_checkpoint_written(bytes.len(), timer),
            Err(e) => {
                self.checkpoint_failures += 1;
                self.last_checkpoint_error = Some(e);
                self.metrics.flight.record(FlightKind::CheckpointFailed);
            }
        }
    }

    /// Accounts one durably written checkpoint (serialize + write + fsync
    /// span in `timer`, snapshot size in `bytes`).
    fn record_checkpoint_written(&mut self, bytes: usize, timer: Option<Stopwatch>) {
        self.checkpoints_written += 1;
        self.metrics.flight.record(FlightKind::CheckpointWritten {
            epoch: self.segments_processed as u64,
            bytes: bytes as u64,
        });
        if let Some(timer) = timer {
            self.metrics.checkpoint_write.record(timer.elapsed_nanos());
        }
    }

    /// Serializes the monitor's full state as a sealed checkpoint, draining
    /// the segment queue first (a queued segment is ingestion work, not
    /// state: snapshots are taken at processing boundaries only).
    pub fn checkpoint_bytes(&mut self) -> Vec<u8> {
        self.process_queue();
        self.encode_checkpoint()
    }

    /// Crash-safely writes the current state as an epoch checkpoint in
    /// `dir` (see [`crate::checkpoint`] semantics: temp file + fsync +
    /// atomic rename, previous epoch retained), returning the path written.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the filesystem refuses.
    pub fn write_checkpoint(&mut self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        let timer = self.metrics.is_enabled().then(Stopwatch::start);
        let bytes = self.checkpoint_bytes();
        let written = write_epoch(dir, self.segments_processed as u64, &bytes)?;
        self.record_checkpoint_written(bytes.len(), timer);
        Ok(written)
    }

    /// Restores a monitor from checkpoint bytes, validating the container
    /// (magic, version, CRC) and every payload invariant. The restored
    /// monitor continues the stream exactly where the snapshot left it:
    /// feed it the events after the snapshot's watermark and it produces
    /// verdicts identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`] except `Io`/`NoCheckpoint`; in particular
    /// [`CheckpointError::ConfigMismatch`] when `config` disagrees with the
    /// snapshot on segment length or fault policy (replaying into such a
    /// monitor would change verdicts).
    pub fn restore_from_bytes(bytes: &[u8], config: StreamConfig) -> Result<Self, CheckpointError> {
        let image = decode_monitor(bytes)?;
        Self::from_image(image, config)
    }

    /// Restores from the newest readable epoch in `dir`, falling back to
    /// older retained epochs when the newest is truncated or corrupt (a
    /// crash mid-write leaves exactly that shape behind).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::NoCheckpoint`] if the directory holds no epoch
    /// files; otherwise the error of the last (oldest) restore attempt.
    pub fn restore_latest(dir: &Path, config: StreamConfig) -> Result<Self, CheckpointError> {
        let epochs = epochs_newest_first(dir)?;
        let mut last_err = CheckpointError::NoCheckpoint;
        for epoch in epochs {
            let path = crate::checkpoint::epoch_path(dir, epoch);
            let attempt = std::fs::read(&path)
                .map_err(CheckpointError::from)
                .and_then(|bytes| Self::restore_from_bytes(&bytes, config.clone()));
            match attempt {
                Ok(monitor) => return Ok(monitor),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn encode_checkpoint(&self) -> Vec<u8> {
        let queries: Vec<QueryImage> = self
            .queries
            .iter()
            .map(|q| QueryImage {
                root: q.root.clone(),
                pending: q
                    .pending
                    .iter()
                    .map(|s| (s.shift, s.id.index() as u32))
                    .collect(),
                anchored_at: q.anchored_at,
                faults: q.faults,
                panics: q.panics,
                lost: q.lost.iter().cloned().collect(),
            })
            .collect();
        let counters = MonitorCounters {
            segments_processed: self.segments_processed as u64,
            gc_runs: self.gc_runs as u64,
            rejected: self.rejected,
            worker_panics: self.worker_panics,
            backpressure_stalls: self.backpressure_stalls,
            checkpoint_failures: self.checkpoint_failures,
            stats: self.stats,
        };
        encode_monitor(
            &self.segmenter.export_state(),
            &self.arena,
            &queries,
            &counters,
        )
    }

    fn from_image(image: MonitorImage, config: StreamConfig) -> Result<Self, CheckpointError> {
        if config.segment_length != image.segmenter.segment_length {
            return Err(CheckpointError::ConfigMismatch(format!(
                "snapshot segments are {} time units, config asks for {}",
                image.segmenter.segment_length, config.segment_length
            )));
        }
        if config.fault_policy != image.segmenter.policy {
            return Err(CheckpointError::ConfigMismatch(format!(
                "snapshot used fault policy {:?}, config asks for {:?}",
                image.segmenter.policy, config.fault_policy
            )));
        }
        let segmenter = IncrementalSegmenter::from_state(image.segmenter)
            .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        let arena = image.arena;
        let node_map = image.node_map;
        let mut queries = Vec::with_capacity(image.queries.len());
        for q in image.queries {
            let mut pending = BTreeSet::new();
            for (shift, index) in q.pending {
                let id = node_map.get(index as usize).copied().ok_or_else(|| {
                    CheckpointError::Malformed(format!(
                        "pending obligation refers to node {index} beyond the snapshot arena"
                    ))
                })?;
                pending.insert(ShiftedId { shift, id });
            }
            queries.push(QueryState {
                root: q.root,
                pending,
                anchored_at: q.anchored_at,
                faults: q.faults,
                panics: q.panics,
                lost: q.lost.into_iter().collect(),
            });
        }
        let counters = image.counters;
        let as_usize = |v: u64, what: &str| {
            usize::try_from(v)
                .map_err(|_| CheckpointError::Malformed(format!("{what} {v} exceeds usize")))
        };
        // Telemetry is runtime state, not stream state: a restored monitor
        // starts fresh instruments (and a fresh flight window) under the
        // *restoring* configuration.
        let mut metrics = RuntimeMetrics::new(config.telemetry, config.flight_capacity);
        for _ in 0..queries.len() {
            metrics.register_query();
        }
        Ok(StreamMonitor {
            config,
            segmenter,
            arena,
            // Restores always target a fresh worker arena: the pipelined
            // path re-interns pendings structurally per batch, and the old
            // arena's caches were warmth, not state.
            shared: ShardedInterner::new(),
            queries,
            queue: VecDeque::new(),
            segments_processed: as_usize(counters.segments_processed, "segment count")?,
            since_gc: 0,
            gc_runs: as_usize(counters.gc_runs, "GC epoch count")?,
            stats: counters.stats,
            rejected: counters.rejected,
            worker_panics: counters.worker_panics,
            backpressure_stalls: counters.backpressure_stalls,
            checkpoint_failures: counters.checkpoint_failures,
            last_checkpoint_error: None,
            // Deliberately not checkpointed (see the field's docs): the
            // restored monitor counts snapshots from its restore point.
            checkpoints_written: 0,
            events_observed: 0,
            heartbeats: 0,
            queue_depth_peak: 0,
            closed_at: HashMap::new(),
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvmtl_mtl::{parse, state};

    #[test]
    fn single_query_single_segment_stream() {
        let mut monitor = StreamMonitor::new(1, 1, StreamConfig::new(100));
        let q = monitor.add_query(&parse("req -> F[0,5) cs").unwrap());
        monitor.observe(0, 1, state!["req"]).unwrap();
        monitor.observe(0, 3, state!["cs"]).unwrap();
        let report = monitor.finish();
        assert!(report.verdicts[q.index()].definitely_satisfied());
        assert_eq!(report.segments, 1);
    }

    #[test]
    fn verdicts_visible_as_segments_close() {
        let mut monitor = StreamMonitor::new(1, 0, StreamConfig::new(4));
        let q = monitor.add_query(&parse("F[0,20) done").unwrap());
        monitor.observe(0, 1, state!["work"]).unwrap();
        monitor.observe(0, 6, state!["work"]).unwrap();
        assert!(monitor.segments_processed() >= 1);
        let midway = monitor.current_verdicts(q);
        assert!(!midway.pending_formulas().is_empty(), "{midway}");
        monitor.observe(0, 9, state!["done"]).unwrap();
        let report = monitor.finish();
        assert!(report.verdicts[q.index()].definitely_satisfied());
    }

    #[test]
    fn multi_query_shares_the_stream() {
        let mut monitor = StreamMonitor::new(2, 1, StreamConfig::new(5));
        let q_live = monitor.add_query(&parse("F[0,12) b.ack").unwrap());
        let q_safe = monitor.add_query(&parse("G[0,12) !a.err").unwrap());
        monitor.observe(0, 2, state!["a.req"]).unwrap();
        monitor.observe(1, 4, state!["b.ack"]).unwrap();
        monitor.observe(0, 11, state!["a.done"]).unwrap();
        monitor.heartbeat(1, 11).unwrap();
        let report = monitor.finish();
        assert!(report.verdicts[q_live.index()].definitely_satisfied());
        assert!(report.verdicts[q_safe.index()].definitely_satisfied());
        assert_eq!(report.verdicts.len(), 2);
    }

    #[test]
    fn late_query_is_reanchored_at_the_watermark_boundary() {
        // Register a second query after a segment has closed: it must behave
        // exactly like the same query on a fresh stream anchored at the
        // boundary and fed the events from the boundary on.
        let mut monitor = StreamMonitor::new(1, 0, StreamConfig::new(4));
        let q_early = monitor.add_query(&parse("F[0,20) done").unwrap());
        monitor.observe(0, 1, state!["work"]).unwrap();
        monitor.observe(0, 7, state!["work"]).unwrap();
        assert!(monitor.segments_processed() >= 1);
        let q_late = monitor.add_query(&parse("F[0,10) done").unwrap());
        monitor.observe(0, 9, state!["work"]).unwrap();
        monitor.observe(0, 11, state!["done"]).unwrap();
        let report = monitor.finish();

        let mut config = StreamConfig::new(4);
        config.base_time = 4; // the boundary the late query was anchored at
        let mut reference = StreamMonitor::new(1, 0, config);
        let q_ref = reference.add_query(&parse("F[0,10) done").unwrap());
        for (t, s) in [(7, "work"), (9, "work"), (11, "done")] {
            reference.observe(0, t, state![s]).unwrap();
        }
        let expected = reference.finish();
        assert_eq!(
            report.verdicts[q_late.index()],
            expected.verdicts[q_ref.index()]
        );
        assert!(report.verdicts[q_early.index()].definitely_satisfied());
    }

    #[test]
    fn late_query_skips_queued_pre_registration_segments() {
        // With a deep flush buffer, segments closed *before* the late
        // registration are still queued when the query arrives; they must
        // not be fed to it, on either execution path.
        let run = |config: StreamConfig| {
            let mut monitor = StreamMonitor::new(1, 0, config);
            let q_early = monitor.add_query(&parse("G[0,inf) (a -> F[0,6) b)").unwrap());
            for t in [1u64, 3, 5, 9] {
                let label = if t % 2 == 1 { "a" } else { "b" };
                monitor.observe(0, t, state![label]).unwrap();
            }
            let q_late = monitor.add_query(&parse("F[0,30) b").unwrap());
            for t in [11u64, 13, 15, 17, 19, 21] {
                let label = if t == 15 { "b" } else { "a" };
                monitor.observe(0, t, state![label]).unwrap();
            }
            let report = monitor.finish();
            (
                report.verdicts[q_early.index()].clone(),
                report.verdicts[q_late.index()].clone(),
            )
        };
        let sequential = run(StreamConfig::new(3).flush_depth(64));
        let pipelined = run(StreamConfig::new(3).pipelined(Some(3)).flush_depth(64));
        assert_eq!(sequential, pipelined);
        assert!(sequential.1.definitely_satisfied(), "{sequential:?}");
    }

    #[test]
    fn queued_segments_are_bounded_by_backpressure() {
        // A flush depth far above the bound: the queue must drain through
        // the backpressure bound instead.
        let mut config = StreamConfig::new(2).flush_depth(1_000_000);
        config = config.max_queued_segments(2);
        let mut monitor = StreamMonitor::new(1, 0, config);
        let q = monitor.add_query(&parse("G[0,inf) (tick -> F[0,4) tock)").unwrap());
        for round in 0..40u64 {
            let label = if round % 2 == 0 { "tick" } else { "tock" };
            monitor.observe(0, 1 + round * 2, state![label]).unwrap();
            assert!(
                monitor.segments_queued() <= 2,
                "queue exceeded the bound at round {round}: {}",
                monitor.segments_queued()
            );
        }
        assert!(monitor.segments_processed() > 10);
        let report = monitor.finish();
        assert!(!report.verdicts[q.index()].is_empty());
    }

    #[test]
    fn gc_epochs_bound_arena_memory() {
        let mut config = StreamConfig::new(3).gc_interval(4);
        config.flush_depth = 1;
        let mut monitor = StreamMonitor::new(1, 0, config);
        let q = monitor.add_query(&parse("G[0,inf) (tick -> F[0,6) tock)").unwrap());
        let mut no_gc_peak = 0usize;
        for round in 0..120u64 {
            let t = 1 + round * 2;
            let label = if round % 2 == 0 { "tick" } else { "tock" };
            monitor.observe(0, t, state![label]).unwrap();
            no_gc_peak = no_gc_peak.max(monitor.memory().total_entries());
        }
        assert!(monitor.gc_runs() > 10, "GC must have cycled");
        let report = monitor.finish();
        assert!(
            report.memory.total_entries() < 100,
            "post-GC arena footprint must stay small: {:?}",
            report.memory
        );
        assert!(!report.verdicts[q.index()].is_empty());
    }

    #[test]
    fn pipelined_matches_sequential_midstream() {
        let events: Vec<(usize, u64, rvmtl_mtl::State)> = (0..30u64)
            .map(|k| {
                let label = if k % 3 == 0 { "a" } else { "b" };
                ((k % 2) as usize, 1 + k, state![label])
            })
            .collect();
        let phi = parse("G[0,inf) (a -> F[0,4) b)").unwrap();
        let run = |config: StreamConfig| {
            let mut monitor = StreamMonitor::new(2, 1, config);
            let q = monitor.add_query(&phi);
            for (p, t, s) in &events {
                monitor.observe(*p, *t, s.clone()).unwrap();
            }
            let report = monitor.finish();
            report.verdicts[q.index()].clone()
        };
        let sequential = run(StreamConfig::new(4));
        let pipelined = run(StreamConfig::new(4).pipelined(Some(3)).flush_depth(4));
        assert_eq!(sequential, pipelined);
    }
}
